file(REMOVE_RECURSE
  "CMakeFiles/test_healing.dir/test_healing.cpp.o"
  "CMakeFiles/test_healing.dir/test_healing.cpp.o.d"
  "test_healing"
  "test_healing.pdb"
  "test_healing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
