file(REMOVE_RECURSE
  "CMakeFiles/test_organizing.dir/test_organizing.cpp.o"
  "CMakeFiles/test_organizing.dir/test_organizing.cpp.o.d"
  "test_organizing"
  "test_organizing.pdb"
  "test_organizing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_organizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
