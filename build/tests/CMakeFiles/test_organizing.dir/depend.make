# Empty dependencies file for test_organizing.
# This may be replaced when dependencies are built.
