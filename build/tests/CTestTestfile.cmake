# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_reservation[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_loadgen[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_healing[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_organizing[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_interface[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_file_io[1]_include.cmake")
