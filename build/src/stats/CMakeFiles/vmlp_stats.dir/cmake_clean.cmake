file(REMOVE_RECURSE
  "CMakeFiles/vmlp_stats.dir/histogram.cpp.o"
  "CMakeFiles/vmlp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vmlp_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/vmlp_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/vmlp_stats.dir/percentile.cpp.o"
  "CMakeFiles/vmlp_stats.dir/percentile.cpp.o.d"
  "CMakeFiles/vmlp_stats.dir/qos.cpp.o"
  "CMakeFiles/vmlp_stats.dir/qos.cpp.o.d"
  "CMakeFiles/vmlp_stats.dir/summary.cpp.o"
  "CMakeFiles/vmlp_stats.dir/summary.cpp.o.d"
  "CMakeFiles/vmlp_stats.dir/timeseries.cpp.o"
  "CMakeFiles/vmlp_stats.dir/timeseries.cpp.o.d"
  "libvmlp_stats.a"
  "libvmlp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
