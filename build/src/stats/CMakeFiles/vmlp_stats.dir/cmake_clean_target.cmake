file(REMOVE_RECURSE
  "libvmlp_stats.a"
)
