# Empty compiler generated dependencies file for vmlp_stats.
# This may be replaced when dependencies are built.
