file(REMOVE_RECURSE
  "libvmlp_workloads.a"
)
