
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alibaba_trace.cpp" "src/workloads/CMakeFiles/vmlp_workloads.dir/alibaba_trace.cpp.o" "gcc" "src/workloads/CMakeFiles/vmlp_workloads.dir/alibaba_trace.cpp.o.d"
  "/root/repo/src/workloads/social_network.cpp" "src/workloads/CMakeFiles/vmlp_workloads.dir/social_network.cpp.o" "gcc" "src/workloads/CMakeFiles/vmlp_workloads.dir/social_network.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/vmlp_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/vmlp_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/train_ticket.cpp" "src/workloads/CMakeFiles/vmlp_workloads.dir/train_ticket.cpp.o" "gcc" "src/workloads/CMakeFiles/vmlp_workloads.dir/train_ticket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/vmlp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
