file(REMOVE_RECURSE
  "CMakeFiles/vmlp_workloads.dir/alibaba_trace.cpp.o"
  "CMakeFiles/vmlp_workloads.dir/alibaba_trace.cpp.o.d"
  "CMakeFiles/vmlp_workloads.dir/social_network.cpp.o"
  "CMakeFiles/vmlp_workloads.dir/social_network.cpp.o.d"
  "CMakeFiles/vmlp_workloads.dir/suite.cpp.o"
  "CMakeFiles/vmlp_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/vmlp_workloads.dir/train_ticket.cpp.o"
  "CMakeFiles/vmlp_workloads.dir/train_ticket.cpp.o.d"
  "libvmlp_workloads.a"
  "libvmlp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
