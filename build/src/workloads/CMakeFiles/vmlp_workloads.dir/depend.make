# Empty dependencies file for vmlp_workloads.
# This may be replaced when dependencies are built.
