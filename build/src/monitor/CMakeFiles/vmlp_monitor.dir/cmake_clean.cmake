file(REMOVE_RECURSE
  "CMakeFiles/vmlp_monitor.dir/monitor.cpp.o"
  "CMakeFiles/vmlp_monitor.dir/monitor.cpp.o.d"
  "libvmlp_monitor.a"
  "libvmlp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
