file(REMOVE_RECURSE
  "libvmlp_monitor.a"
)
