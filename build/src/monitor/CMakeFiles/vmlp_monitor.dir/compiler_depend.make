# Empty compiler generated dependencies file for vmlp_monitor.
# This may be replaced when dependencies are built.
