
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/monitor.cpp" "src/monitor/CMakeFiles/vmlp_monitor.dir/monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/vmlp_monitor.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vmlp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
