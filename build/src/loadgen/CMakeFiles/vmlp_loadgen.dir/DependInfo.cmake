
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadgen/generator.cpp" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/generator.cpp.o" "gcc" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/generator.cpp.o.d"
  "/root/repo/src/loadgen/patterns.cpp" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/patterns.cpp.o" "gcc" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/patterns.cpp.o.d"
  "/root/repo/src/loadgen/replay.cpp" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/replay.cpp.o" "gcc" "src/loadgen/CMakeFiles/vmlp_loadgen.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/vmlp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
