file(REMOVE_RECURSE
  "CMakeFiles/vmlp_loadgen.dir/generator.cpp.o"
  "CMakeFiles/vmlp_loadgen.dir/generator.cpp.o.d"
  "CMakeFiles/vmlp_loadgen.dir/patterns.cpp.o"
  "CMakeFiles/vmlp_loadgen.dir/patterns.cpp.o.d"
  "CMakeFiles/vmlp_loadgen.dir/replay.cpp.o"
  "CMakeFiles/vmlp_loadgen.dir/replay.cpp.o.d"
  "libvmlp_loadgen.a"
  "libvmlp_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
