# Empty compiler generated dependencies file for vmlp_loadgen.
# This may be replaced when dependencies are built.
