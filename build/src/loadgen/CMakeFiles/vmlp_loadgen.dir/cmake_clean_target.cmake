file(REMOVE_RECURSE
  "libvmlp_loadgen.a"
)
