file(REMOVE_RECURSE
  "libvmlp_sim.a"
)
