file(REMOVE_RECURSE
  "CMakeFiles/vmlp_sim.dir/engine.cpp.o"
  "CMakeFiles/vmlp_sim.dir/engine.cpp.o.d"
  "libvmlp_sim.a"
  "libvmlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
