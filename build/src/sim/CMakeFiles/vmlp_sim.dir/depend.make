# Empty dependencies file for vmlp_sim.
# This may be replaced when dependencies are built.
