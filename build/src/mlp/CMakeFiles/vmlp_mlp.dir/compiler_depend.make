# Empty compiler generated dependencies file for vmlp_mlp.
# This may be replaced when dependencies are built.
