file(REMOVE_RECURSE
  "libvmlp_mlp.a"
)
