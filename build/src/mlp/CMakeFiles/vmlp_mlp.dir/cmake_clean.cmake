file(REMOVE_RECURSE
  "CMakeFiles/vmlp_mlp.dir/metrics.cpp.o"
  "CMakeFiles/vmlp_mlp.dir/metrics.cpp.o.d"
  "CMakeFiles/vmlp_mlp.dir/self_healing.cpp.o"
  "CMakeFiles/vmlp_mlp.dir/self_healing.cpp.o.d"
  "CMakeFiles/vmlp_mlp.dir/self_organizing.cpp.o"
  "CMakeFiles/vmlp_mlp.dir/self_organizing.cpp.o.d"
  "CMakeFiles/vmlp_mlp.dir/vmlp.cpp.o"
  "CMakeFiles/vmlp_mlp.dir/vmlp.cpp.o.d"
  "libvmlp_mlp.a"
  "libvmlp_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
