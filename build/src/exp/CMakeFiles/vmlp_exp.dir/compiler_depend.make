# Empty compiler generated dependencies file for vmlp_exp.
# This may be replaced when dependencies are built.
