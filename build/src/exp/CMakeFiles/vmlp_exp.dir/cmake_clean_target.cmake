file(REMOVE_RECURSE
  "libvmlp_exp.a"
)
