file(REMOVE_RECURSE
  "CMakeFiles/vmlp_exp.dir/analysis.cpp.o"
  "CMakeFiles/vmlp_exp.dir/analysis.cpp.o.d"
  "CMakeFiles/vmlp_exp.dir/experiment.cpp.o"
  "CMakeFiles/vmlp_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/vmlp_exp.dir/report.cpp.o"
  "CMakeFiles/vmlp_exp.dir/report.cpp.o.d"
  "libvmlp_exp.a"
  "libvmlp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
