file(REMOVE_RECURSE
  "CMakeFiles/vmlp_net.dir/comm_model.cpp.o"
  "CMakeFiles/vmlp_net.dir/comm_model.cpp.o.d"
  "CMakeFiles/vmlp_net.dir/topology.cpp.o"
  "CMakeFiles/vmlp_net.dir/topology.cpp.o.d"
  "libvmlp_net.a"
  "libvmlp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
