# Empty dependencies file for vmlp_net.
# This may be replaced when dependencies are built.
