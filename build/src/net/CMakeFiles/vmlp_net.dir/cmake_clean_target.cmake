file(REMOVE_RECURSE
  "libvmlp_net.a"
)
