file(REMOVE_RECURSE
  "libvmlp_sched.a"
)
