
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/common.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/common.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/common.cpp.o.d"
  "/root/repo/src/sched/cur_sched.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/cur_sched.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/cur_sched.cpp.o.d"
  "/root/repo/src/sched/driver.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/driver.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/driver.cpp.o.d"
  "/root/repo/src/sched/fair_sched.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/fair_sched.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/fair_sched.cpp.o.d"
  "/root/repo/src/sched/full_profile.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/full_profile.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/full_profile.cpp.o.d"
  "/root/repo/src/sched/part_profile.cpp" "src/sched/CMakeFiles/vmlp_sched.dir/part_profile.cpp.o" "gcc" "src/sched/CMakeFiles/vmlp_sched.dir/part_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/vmlp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/vmlp_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmlp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/vmlp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vmlp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
