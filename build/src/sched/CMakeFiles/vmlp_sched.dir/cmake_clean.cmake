file(REMOVE_RECURSE
  "CMakeFiles/vmlp_sched.dir/common.cpp.o"
  "CMakeFiles/vmlp_sched.dir/common.cpp.o.d"
  "CMakeFiles/vmlp_sched.dir/cur_sched.cpp.o"
  "CMakeFiles/vmlp_sched.dir/cur_sched.cpp.o.d"
  "CMakeFiles/vmlp_sched.dir/driver.cpp.o"
  "CMakeFiles/vmlp_sched.dir/driver.cpp.o.d"
  "CMakeFiles/vmlp_sched.dir/fair_sched.cpp.o"
  "CMakeFiles/vmlp_sched.dir/fair_sched.cpp.o.d"
  "CMakeFiles/vmlp_sched.dir/full_profile.cpp.o"
  "CMakeFiles/vmlp_sched.dir/full_profile.cpp.o.d"
  "CMakeFiles/vmlp_sched.dir/part_profile.cpp.o"
  "CMakeFiles/vmlp_sched.dir/part_profile.cpp.o.d"
  "libvmlp_sched.a"
  "libvmlp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
