# Empty compiler generated dependencies file for vmlp_sched.
# This may be replaced when dependencies are built.
