file(REMOVE_RECURSE
  "CMakeFiles/vmlp_common.dir/config.cpp.o"
  "CMakeFiles/vmlp_common.dir/config.cpp.o.d"
  "CMakeFiles/vmlp_common.dir/log.cpp.o"
  "CMakeFiles/vmlp_common.dir/log.cpp.o.d"
  "CMakeFiles/vmlp_common.dir/rng.cpp.o"
  "CMakeFiles/vmlp_common.dir/rng.cpp.o.d"
  "CMakeFiles/vmlp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/vmlp_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/vmlp_common.dir/types.cpp.o"
  "CMakeFiles/vmlp_common.dir/types.cpp.o.d"
  "libvmlp_common.a"
  "libvmlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
