# Empty compiler generated dependencies file for vmlp_common.
# This may be replaced when dependencies are built.
