file(REMOVE_RECURSE
  "libvmlp_common.a"
)
