file(REMOVE_RECURSE
  "libvmlp_app.a"
)
