file(REMOVE_RECURSE
  "CMakeFiles/vmlp_app.dir/application.cpp.o"
  "CMakeFiles/vmlp_app.dir/application.cpp.o.d"
  "CMakeFiles/vmlp_app.dir/dag.cpp.o"
  "CMakeFiles/vmlp_app.dir/dag.cpp.o.d"
  "CMakeFiles/vmlp_app.dir/exec_model.cpp.o"
  "CMakeFiles/vmlp_app.dir/exec_model.cpp.o.d"
  "CMakeFiles/vmlp_app.dir/microservice.cpp.o"
  "CMakeFiles/vmlp_app.dir/microservice.cpp.o.d"
  "CMakeFiles/vmlp_app.dir/request_runtime.cpp.o"
  "CMakeFiles/vmlp_app.dir/request_runtime.cpp.o.d"
  "CMakeFiles/vmlp_app.dir/volatility.cpp.o"
  "CMakeFiles/vmlp_app.dir/volatility.cpp.o.d"
  "libvmlp_app.a"
  "libvmlp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
