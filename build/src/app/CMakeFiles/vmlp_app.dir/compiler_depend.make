# Empty compiler generated dependencies file for vmlp_app.
# This may be replaced when dependencies are built.
