
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/application.cpp" "src/app/CMakeFiles/vmlp_app.dir/application.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/application.cpp.o.d"
  "/root/repo/src/app/dag.cpp" "src/app/CMakeFiles/vmlp_app.dir/dag.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/dag.cpp.o.d"
  "/root/repo/src/app/exec_model.cpp" "src/app/CMakeFiles/vmlp_app.dir/exec_model.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/exec_model.cpp.o.d"
  "/root/repo/src/app/microservice.cpp" "src/app/CMakeFiles/vmlp_app.dir/microservice.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/microservice.cpp.o.d"
  "/root/repo/src/app/request_runtime.cpp" "src/app/CMakeFiles/vmlp_app.dir/request_runtime.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/request_runtime.cpp.o.d"
  "/root/repo/src/app/volatility.cpp" "src/app/CMakeFiles/vmlp_app.dir/volatility.cpp.o" "gcc" "src/app/CMakeFiles/vmlp_app.dir/volatility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
