# Empty compiler generated dependencies file for vmlp_trace.
# This may be replaced when dependencies are built.
