file(REMOVE_RECURSE
  "CMakeFiles/vmlp_trace.dir/export.cpp.o"
  "CMakeFiles/vmlp_trace.dir/export.cpp.o.d"
  "CMakeFiles/vmlp_trace.dir/profile_store.cpp.o"
  "CMakeFiles/vmlp_trace.dir/profile_store.cpp.o.d"
  "CMakeFiles/vmlp_trace.dir/tracer.cpp.o"
  "CMakeFiles/vmlp_trace.dir/tracer.cpp.o.d"
  "libvmlp_trace.a"
  "libvmlp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
