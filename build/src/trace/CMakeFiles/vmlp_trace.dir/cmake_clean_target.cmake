file(REMOVE_RECURSE
  "libvmlp_trace.a"
)
