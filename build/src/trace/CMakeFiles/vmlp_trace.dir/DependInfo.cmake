
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/export.cpp" "src/trace/CMakeFiles/vmlp_trace.dir/export.cpp.o" "gcc" "src/trace/CMakeFiles/vmlp_trace.dir/export.cpp.o.d"
  "/root/repo/src/trace/profile_store.cpp" "src/trace/CMakeFiles/vmlp_trace.dir/profile_store.cpp.o" "gcc" "src/trace/CMakeFiles/vmlp_trace.dir/profile_store.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/vmlp_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/vmlp_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vmlp_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
