file(REMOVE_RECURSE
  "libvmlp_cluster.a"
)
