file(REMOVE_RECURSE
  "CMakeFiles/vmlp_cluster.dir/cluster.cpp.o"
  "CMakeFiles/vmlp_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/vmlp_cluster.dir/container.cpp.o"
  "CMakeFiles/vmlp_cluster.dir/container.cpp.o.d"
  "CMakeFiles/vmlp_cluster.dir/machine.cpp.o"
  "CMakeFiles/vmlp_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/vmlp_cluster.dir/reservation.cpp.o"
  "CMakeFiles/vmlp_cluster.dir/reservation.cpp.o.d"
  "CMakeFiles/vmlp_cluster.dir/resources.cpp.o"
  "CMakeFiles/vmlp_cluster.dir/resources.cpp.o.d"
  "libvmlp_cluster.a"
  "libvmlp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
