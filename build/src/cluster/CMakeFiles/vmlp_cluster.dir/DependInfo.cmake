
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/vmlp_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/vmlp_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/container.cpp" "src/cluster/CMakeFiles/vmlp_cluster.dir/container.cpp.o" "gcc" "src/cluster/CMakeFiles/vmlp_cluster.dir/container.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/cluster/CMakeFiles/vmlp_cluster.dir/machine.cpp.o" "gcc" "src/cluster/CMakeFiles/vmlp_cluster.dir/machine.cpp.o.d"
  "/root/repo/src/cluster/reservation.cpp" "src/cluster/CMakeFiles/vmlp_cluster.dir/reservation.cpp.o" "gcc" "src/cluster/CMakeFiles/vmlp_cluster.dir/reservation.cpp.o.d"
  "/root/repo/src/cluster/resources.cpp" "src/cluster/CMakeFiles/vmlp_cluster.dir/resources.cpp.o" "gcc" "src/cluster/CMakeFiles/vmlp_cluster.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
