# Empty compiler generated dependencies file for vmlp_cluster.
# This may be replaced when dependencies are built.
