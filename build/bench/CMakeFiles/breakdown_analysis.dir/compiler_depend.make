# Empty compiler generated dependencies file for breakdown_analysis.
# This may be replaced when dependencies are built.
