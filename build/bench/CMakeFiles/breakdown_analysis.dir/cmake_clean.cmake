file(REMOVE_RECURSE
  "CMakeFiles/breakdown_analysis.dir/breakdown_analysis.cpp.o"
  "CMakeFiles/breakdown_analysis.dir/breakdown_analysis.cpp.o.d"
  "breakdown_analysis"
  "breakdown_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
