file(REMOVE_RECURSE
  "CMakeFiles/fig09_workload_patterns.dir/fig09_workload_patterns.cpp.o"
  "CMakeFiles/fig09_workload_patterns.dir/fig09_workload_patterns.cpp.o.d"
  "fig09_workload_patterns"
  "fig09_workload_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_workload_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
