# Empty compiler generated dependencies file for fig09_workload_patterns.
# This may be replaced when dependencies are built.
