file(REMOVE_RECURSE
  "CMakeFiles/ablation_vmlp.dir/ablation_vmlp.cpp.o"
  "CMakeFiles/ablation_vmlp.dir/ablation_vmlp.cpp.o.d"
  "ablation_vmlp"
  "ablation_vmlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vmlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
