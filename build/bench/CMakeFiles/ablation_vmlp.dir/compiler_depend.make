# Empty compiler generated dependencies file for ablation_vmlp.
# This may be replaced when dependencies are built.
