# Empty compiler generated dependencies file for fig04_comm_overhead.
# This may be replaced when dependencies are built.
