file(REMOVE_RECURSE
  "CMakeFiles/fig04_comm_overhead.dir/fig04_comm_overhead.cpp.o"
  "CMakeFiles/fig04_comm_overhead.dir/fig04_comm_overhead.cpp.o.d"
  "fig04_comm_overhead"
  "fig04_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
