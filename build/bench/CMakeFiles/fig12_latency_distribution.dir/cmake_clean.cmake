file(REMOVE_RECURSE
  "CMakeFiles/fig12_latency_distribution.dir/fig12_latency_distribution.cpp.o"
  "CMakeFiles/fig12_latency_distribution.dir/fig12_latency_distribution.cpp.o.d"
  "fig12_latency_distribution"
  "fig12_latency_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
