# Empty dependencies file for fig12_latency_distribution.
# This may be replaced when dependencies are built.
