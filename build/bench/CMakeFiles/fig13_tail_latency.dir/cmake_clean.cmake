file(REMOVE_RECURSE
  "CMakeFiles/fig13_tail_latency.dir/fig13_tail_latency.cpp.o"
  "CMakeFiles/fig13_tail_latency.dir/fig13_tail_latency.cpp.o.d"
  "fig13_tail_latency"
  "fig13_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
