# Empty compiler generated dependencies file for fig03c_capping_cdf.
# This may be replaced when dependencies are built.
