file(REMOVE_RECURSE
  "CMakeFiles/fig03c_capping_cdf.dir/fig03c_capping_cdf.cpp.o"
  "CMakeFiles/fig03c_capping_cdf.dir/fig03c_capping_cdf.cpp.o.d"
  "fig03c_capping_cdf"
  "fig03c_capping_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03c_capping_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
