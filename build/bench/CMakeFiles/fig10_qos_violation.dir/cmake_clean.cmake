file(REMOVE_RECURSE
  "CMakeFiles/fig10_qos_violation.dir/fig10_qos_violation.cpp.o"
  "CMakeFiles/fig10_qos_violation.dir/fig10_qos_violation.cpp.o.d"
  "fig10_qos_violation"
  "fig10_qos_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_qos_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
