# Empty dependencies file for fig10_qos_violation.
# This may be replaced when dependencies are built.
