# Empty compiler generated dependencies file for interference_robustness.
# This may be replaced when dependencies are built.
