file(REMOVE_RECURSE
  "CMakeFiles/interference_robustness.dir/interference_robustness.cpp.o"
  "CMakeFiles/interference_robustness.dir/interference_robustness.cpp.o.d"
  "interference_robustness"
  "interference_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
