# Empty compiler generated dependencies file for fig03a_resource_ratio.
# This may be replaced when dependencies are built.
