file(REMOVE_RECURSE
  "CMakeFiles/fig03a_resource_ratio.dir/fig03a_resource_ratio.cpp.o"
  "CMakeFiles/fig03a_resource_ratio.dir/fig03a_resource_ratio.cpp.o.d"
  "fig03a_resource_ratio"
  "fig03a_resource_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03a_resource_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
