# Empty dependencies file for fig03b_alibaba_util.
# This may be replaced when dependencies are built.
