file(REMOVE_RECURSE
  "CMakeFiles/fig03b_alibaba_util.dir/fig03b_alibaba_util.cpp.o"
  "CMakeFiles/fig03b_alibaba_util.dir/fig03b_alibaba_util.cpp.o.d"
  "fig03b_alibaba_util"
  "fig03b_alibaba_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03b_alibaba_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
