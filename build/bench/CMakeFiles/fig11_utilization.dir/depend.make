# Empty dependencies file for fig11_utilization.
# This may be replaced when dependencies are built.
