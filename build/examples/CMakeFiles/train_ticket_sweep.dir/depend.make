# Empty dependencies file for train_ticket_sweep.
# This may be replaced when dependencies are built.
