file(REMOVE_RECURSE
  "CMakeFiles/train_ticket_sweep.dir/train_ticket_sweep.cpp.o"
  "CMakeFiles/train_ticket_sweep.dir/train_ticket_sweep.cpp.o.d"
  "train_ticket_sweep"
  "train_ticket_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_ticket_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
