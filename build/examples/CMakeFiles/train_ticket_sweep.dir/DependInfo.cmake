
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/train_ticket_sweep.cpp" "examples/CMakeFiles/train_ticket_sweep.dir/train_ticket_sweep.cpp.o" "gcc" "examples/CMakeFiles/train_ticket_sweep.dir/train_ticket_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/vmlp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vmlp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mlp/CMakeFiles/vmlp_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vmlp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmlp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/vmlp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vmlp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/vmlp_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vmlp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmlp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
