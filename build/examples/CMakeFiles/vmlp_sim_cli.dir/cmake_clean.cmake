file(REMOVE_RECURSE
  "CMakeFiles/vmlp_sim_cli.dir/vmlp_sim_cli.cpp.o"
  "CMakeFiles/vmlp_sim_cli.dir/vmlp_sim_cli.cpp.o.d"
  "vmlp_sim_cli"
  "vmlp_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmlp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
