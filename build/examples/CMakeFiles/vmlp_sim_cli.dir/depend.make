# Empty dependencies file for vmlp_sim_cli.
# This may be replaced when dependencies are built.
