file(REMOVE_RECURSE
  "CMakeFiles/social_network_sim.dir/social_network_sim.cpp.o"
  "CMakeFiles/social_network_sim.dir/social_network_sim.cpp.o.d"
  "social_network_sim"
  "social_network_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
