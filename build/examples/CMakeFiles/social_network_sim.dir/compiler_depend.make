# Empty compiler generated dependencies file for social_network_sim.
# This may be replaced when dependencies are built.
