// Trial runner: seed splitting, ordered merge, thread-count invariance,
// exception propagation through the pool.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "exp/trial_runner.h"

namespace vmlp::exp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.scheme = SchemeKind::kVmlp;
  c.pattern = loadgen::PatternKind::kL1Pulse;
  c.stream = StreamKind::kMixed;
  c.driver.horizon = 3 * kSec;
  c.driver.cluster.machine_count = 6;
  c.pattern_params.horizon = c.driver.horizon;
  c.pattern_params.base_rate = 12.0;
  c.pattern_params.max_rate = 24.0;
  c.pattern_params.peak_time = 1 * kSec;
  return c;
}

TEST(TrialSeed, DistinctAcrossTrials) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) seeds.insert(trial_seed(2022, i));
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_EQ(seeds.count(2022), 0u) << "trial seed must not echo the base seed";
}

TEST(TrialSeed, PureFunctionOfBaseAndIndex) {
  // Order-independent: the derivation must not thread hidden RNG state, or
  // trial seeds would depend on scheduling order.
  const std::uint64_t late_first = trial_seed(7, 5);
  EXPECT_EQ(trial_seed(7, 0), trial_seed(7, 0));
  EXPECT_EQ(trial_seed(7, 5), late_first);
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
}

TEST(TrialSeed, AdjacentStreamsDecorrelated) {
  // Adjacent trials seed independent RNG streams: the uniform draws of
  // neighbouring streams must show no linear correlation.
  constexpr std::size_t kDraws = 256;
  std::vector<double> a(kDraws);
  std::vector<double> b(kDraws);
  Rng ra(trial_seed(2022, 0));
  Rng rb(trial_seed(2022, 1));
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    a[i] = ra.uniform();
    b[i] = rb.uniform();
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= kDraws;
  mean_b /= kDraws;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    cov += (a[i] - mean_a) * (b[i] - mean_b);
    var_a += (a[i] - mean_a) * (a[i] - mean_a);
    var_b += (b[i] - mean_b) * (b[i] - mean_b);
  }
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.2) << "adjacent trial streams are correlated";
}

TEST(TrialRunner, MergedOutputByteIdenticalAcrossThreadCounts) {
  TrialSpec spec;
  spec.base = tiny_config();
  spec.trials = 5;
  spec.base_seed = 2022;
  const std::string serial = format_trial_set(run_trials(spec, 1));
  EXPECT_FALSE(serial.empty());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(format_trial_set(run_trials(spec, threads)), serial)
        << "merged summary diverged at " << threads << " threads";
  }
}

TEST(TrialTemplateTest, TemplateRunByteIdenticalToTemplateFreeRun) {
  // The CoW template (application + mix built once, shared per trial) must be
  // an exact clone of what run_experiment() would rebuild itself — for every
  // seed, since everything seed-dependent stays per-trial.
  ExperimentConfig base = tiny_config();
  const TrialTemplate tpl = build_trial_template(base);
  for (const std::uint64_t seed : {1u, 2022u, 999u}) {
    ExperimentConfig config = base;
    config.seed = seed;
    const ExperimentResult fresh = run_experiment(config);
    const ExperimentResult templated = run_experiment(config, tpl);
    EXPECT_EQ(fresh.run.arrived, templated.run.arrived) << seed;
    EXPECT_EQ(fresh.run.completed, templated.run.completed) << seed;
    EXPECT_EQ(fresh.run.placements, templated.run.placements) << seed;
    // Doubles compared bitwise-exactly: same arithmetic in the same order.
    EXPECT_EQ(fresh.run.p99_latency_us, templated.run.p99_latency_us) << seed;
    EXPECT_EQ(fresh.run.mean_latency_us, templated.run.mean_latency_us) << seed;
    EXPECT_EQ(fresh.run.throughput_rps, templated.run.throughput_rps) << seed;
    EXPECT_EQ(fresh.run.qos_violation_rate, templated.run.qos_violation_rate) << seed;
    EXPECT_EQ(fresh.utilization_series, templated.utilization_series) << seed;
  }
}

TEST(TrialTemplateTest, OneTemplateSharedByConcurrentTrials) {
  // The same template object served to every shard thread must reproduce the
  // rebuilt-per-trial merged output byte for byte (run_trials uses the
  // template internally; the reference here is the 1-thread sweep).
  TrialSpec spec;
  spec.base = tiny_config();
  spec.trials = 9;  // more trials than lanes: lanes recycle via work stealing
  spec.base_seed = 2022;
  const std::string serial = format_trial_set(run_trials(spec, 1));
  EXPECT_EQ(format_trial_set(run_trials(spec, 3)), serial);
}

TEST(TrialRunner, RowsCarryIndexAndDerivedSeed) {
  TrialSpec spec;
  spec.base = tiny_config();
  spec.trials = 4;
  spec.base_seed = 11;
  const TrialSetResult r = run_trials(spec, 4);
  ASSERT_EQ(r.trials.size(), 4u);
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    EXPECT_EQ(r.trials[i].index, i);
    EXPECT_EQ(r.trials[i].seed, trial_seed(spec.base_seed, i));
  }
}

TEST(TrialRunner, AggregatesFoldOverRows) {
  TrialSpec spec;
  spec.base = tiny_config();
  spec.trials = 3;
  spec.base_seed = 2022;
  const TrialSetResult r = run_trials(spec, 2);
  std::size_t arrived = 0;
  std::size_t completed = 0;
  for (const TrialRow& t : r.trials) {
    arrived += t.run.arrived;
    completed += t.run.completed;
  }
  EXPECT_EQ(r.total_arrived, arrived);
  EXPECT_EQ(r.total_completed, completed);
  EXPECT_GT(r.total_completed, 0u);
  EXPECT_LE(r.throughput_rps.min, r.throughput_rps.mean);
  EXPECT_LE(r.throughput_rps.mean, r.throughput_rps.max);
  EXPECT_LE(r.p99_latency_us.min, r.p99_latency_us.max);
}

TEST(TrialRunner, DifferentBaseSeedsChangeOutcome) {
  TrialSpec a;
  a.base = tiny_config();
  a.trials = 2;
  a.base_seed = 1;
  TrialSpec b = a;
  b.base_seed = 2;
  EXPECT_NE(format_trial_set(run_trials(a, 2)), format_trial_set(run_trials(b, 2)));
}

TEST(TrialRunner, FailingTrialPropagatesThroughPool) {
  // A trial that throws inside a worker must surface on the calling thread
  // (first error wins; the pool stays intact for the next call).
  TrialSpec spec;
  spec.base = tiny_config();
  spec.base.driver.cluster.machine_count = 0;  // cluster ctor throws
  spec.trials = 4;
  EXPECT_THROW(run_trials(spec, 4), InvariantError);
}

TEST(TrialRunner, ZeroTrialsRejected) {
  TrialSpec spec;
  spec.base = tiny_config();
  spec.trials = 0;
  EXPECT_THROW(run_trials(spec, 1), InvariantError);
}

}  // namespace
}  // namespace vmlp::exp
