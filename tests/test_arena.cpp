// ShardArena + ArenaAllocator: bump allocation, chunk growth, reset reuse,
// scope binding, heap fallback — the per-shard memory model trial sharding
// leans on (DESIGN.md §12). CachePadded layout asserts ride along.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/cache_line.h"

namespace vmlp {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ShardArena, AllocationsAreAlignedAndDisjoint) {
  ShardArena arena;
  auto* a = static_cast<char*>(arena.allocate(24, 8));
  auto* b = static_cast<char*>(arena.allocate(24, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(aligned_to(a, 8));
  EXPECT_TRUE(aligned_to(b, 8));
  // Writes to one block must not alias the other.
  std::fill(a, a + 24, 'a');
  std::fill(b, b + 24, 'b');
  EXPECT_EQ(a[23], 'a');
  EXPECT_EQ(b[0], 'b');
  EXPECT_GE(arena.bytes_in_use(), std::size_t{48});
}

TEST(ShardArena, HonorsLargeAlignment) {
  ShardArena arena;
  (void)arena.allocate(1, 1);  // skew the bump pointer
  void* p = arena.allocate(64, 64);
  EXPECT_TRUE(aligned_to(p, 64));
}

TEST(ShardArena, GrowsBeyondOneChunkAndServesOversizedRequests) {
  ShardArena arena;
  // Exhaust the initial chunk with small allocations...
  for (int i = 0; i < 100; ++i) (void)arena.allocate(1024, 8);
  EXPECT_GE(arena.chunk_count(), 2u);
  // ...and ask for more than the max chunk size in one go.
  const std::size_t big = ShardArena::kMaxChunkBytes + 4096;
  auto* p = static_cast<char*>(arena.allocate(big, 16));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;  // the whole span must be writable
  EXPECT_EQ(p[0] + p[big - 1], 3);
}

TEST(ShardArena, ResetRetainsChunksAndReusesMemory) {
  ShardArena arena;
  for (int i = 0; i < 200; ++i) (void)arena.allocate(512, 8);
  const std::size_t chunks_before = arena.chunk_count();
  const std::size_t high_water = arena.high_water_bytes();
  ASSERT_GT(high_water, 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks_before);  // memory retained
  EXPECT_EQ(arena.reset_count(), 1u);

  // The steady state of a trial sweep: the same load replayed after reset()
  // must fit entirely in the retained chunks (no further growth).
  for (int i = 0; i < 200; ++i) (void)arena.allocate(512, 8);
  EXPECT_EQ(arena.chunk_count(), chunks_before);
  EXPECT_EQ(arena.high_water_bytes(), high_water);
}

TEST(ShardArena, CurrentIsNullOutsideScopeAndBoundInside) {
  EXPECT_EQ(ShardArena::current(), nullptr);
  ShardArena arena;
  {
    ShardArena::Scope scope(arena);
    EXPECT_EQ(ShardArena::current(), &arena);
    ShardArena inner;
    {
      ShardArena::Scope nested(inner);
      EXPECT_EQ(ShardArena::current(), &inner);
    }
    EXPECT_EQ(ShardArena::current(), &arena);  // previous binding restored
  }
  EXPECT_EQ(ShardArena::current(), nullptr);
}

TEST(ShardArena, ScopeBindingIsPerThread) {
  ShardArena arena;
  ShardArena::Scope scope(arena);
  ShardArena* seen = &arena;
  std::thread peer([&] { seen = ShardArena::current(); });
  peer.join();
  EXPECT_EQ(seen, nullptr);  // another thread must not inherit the binding
}

TEST(ArenaAllocator, VectorUsesArenaInsideScope) {
  ShardArena arena;
  ShardArena::Scope scope(arena);
  ArenaVector<int> v(1000);
  EXPECT_EQ(v.get_allocator().arena(), &arena);
  EXPECT_GE(arena.bytes_in_use(), 1000 * sizeof(int));
  std::iota(v.begin(), v.end(), 0);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocator, FallsBackToHeapOutsideScope) {
  ASSERT_EQ(ShardArena::current(), nullptr);
  ArenaVector<int> v;
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  for (int i = 0; i < 10000; ++i) v.push_back(i);  // plain heap churn
  EXPECT_EQ(v[9999], 9999);
}

TEST(ArenaAllocator, MovePropagatesTheAllocatorOutOfScope) {
  // A container moved out of a trial scope carries its arena allocator with
  // it — the reason published results are *copied* to plain-heap types, never
  // moved (see the lifetime rule in common/arena.h).
  ShardArena arena;
  ArenaVector<int> out;
  {
    ShardArena::Scope scope(arena);
    ArenaVector<int> in(64, 7);
    out = std::move(in);
  }
  EXPECT_EQ(out.get_allocator().arena(), &arena);
  EXPECT_EQ(out[63], 7);
}

TEST(ArenaAllocator, RebindSharesTheArena) {
  ShardArena arena;
  ArenaAllocator<int> ints(&arena);
  ArenaAllocator<double> doubles(ints);  // converting ctor
  EXPECT_EQ(doubles.arena(), &arena);
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == ints);
  EXPECT_TRUE(ArenaAllocator<int>(nullptr) != ints);
}

TEST(ArenaAllocator, ArenaResetAfterContainerDestruction) {
  // The trial_runner sequence: bind, build, publish copies, destroy, reset.
  ShardArena arena;
  for (int trial = 0; trial < 3; ++trial) {
    arena.reset();
    ShardArena::Scope scope(arena);
    ArenaVector<std::size_t> v;
    for (std::size_t i = 0; i < 5000; ++i) v.push_back(i);
    std::vector<std::size_t> published(v.begin(), v.end());  // heap copy
    EXPECT_EQ(published[4999], 4999u);
  }
  EXPECT_EQ(arena.reset_count(), 3u);
}

TEST(CachePadded, SlotsOccupyDistinctCacheLines) {
  static_assert(alignof(CachePadded<int>) == kCacheLineSize);
  static_assert(sizeof(CachePadded<int>) % kCacheLineSize == 0);
  std::vector<CachePadded<int>> slots(4);
  for (int i = 0; i < 4; ++i) slots[i].value = i;
  for (std::size_t i = 1; i < slots.size(); ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&slots[i - 1].value);
    auto b = reinterpret_cast<std::uintptr_t>(&slots[i].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
  EXPECT_EQ(slots[3].value, 3);
}

TEST(CachePadded, ForwardsConstructorArguments) {
  CachePadded<std::vector<int>> padded(std::vector<int>(3, 9));
  EXPECT_EQ(padded.value.size(), 3u);
  EXPECT_EQ(padded.value[0], 9);
}

}  // namespace
}  // namespace vmlp
