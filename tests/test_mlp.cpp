// v-MLP core: metrics, self-organizing planning, self-healing, the full
// scheduler, and ablation switches.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "loadgen/generator.h"
#include "mlp/metrics.h"
#include "mlp/vmlp.h"
#include "sched/driver.h"
#include "sched/fair_sched.h"
#include "workloads/suite.h"

namespace vmlp::mlp {
namespace {

TEST(Metrics, XPercentBounds) {
  for (double v : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (SimDuration slo : {10 * kMsec, 100 * kMsec, kSec}) {
      const double x = x_percent(v, slo, kSec);
      EXPECT_GE(x, 1.0);
      EXPECT_LE(x, 100.0);
    }
  }
}

TEST(Metrics, XGrowsWithVolatilityAndSlaTightness) {
  EXPECT_LT(x_percent(0.2, kSec, kSec), x_percent(0.8, kSec, kSec));
  EXPECT_LE(x_percent(0.5, kSec, kSec), x_percent(0.5, 500 * kMsec, kSec));
}

TEST(Metrics, XValidation) {
  EXPECT_THROW(x_percent(0.5, 0, kSec), InvariantError);
  EXPECT_THROW(x_percent(0.5, 2 * kSec, kSec), InvariantError);
  EXPECT_THROW(x_percent(1.5, kSec, kSec), InvariantError);
}

TEST(Metrics, ReorderRatioInUnitInterval) {
  for (SimDuration waited : {0LL, 1000LL, 100000LL, 10000000LL}) {
    const double r = reorder_ratio(0.5, 500 * kMsec, waited, 10 * kMsec, 10 * kMsec);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Metrics, ReorderRatioMonotonicities) {
  const SimDuration slo = 500 * kMsec;
  const SimDuration dt0 = 10 * kMsec;
  const SimDuration ref = 10 * kMsec;
  // Higher volatility -> higher priority.
  EXPECT_LT(reorder_ratio(0.2, slo, kMsec, dt0, ref), reorder_ratio(0.9, slo, kMsec, dt0, ref));
  // Longer waiting (FCFS term) -> higher priority.
  EXPECT_LT(reorder_ratio(0.5, slo, kMsec, dt0, ref),
            reorder_ratio(0.5, slo, 50 * kMsec, dt0, ref));
  // Tighter SLA -> higher priority.
  EXPECT_GT(reorder_ratio(0.5, 100 * kMsec, kMsec, dt0, ref),
            reorder_ratio(0.5, kSec, kMsec, dt0, ref));
  // Shorter job (SJF term) -> higher priority.
  EXPECT_GT(reorder_ratio(0.5, slo, kMsec, 5 * kMsec, ref),
            reorder_ratio(0.5, slo, kMsec, 50 * kMsec, ref));
}

TEST(Metrics, EstimateSlackBandBehaviour) {
  trace::ProfileStore profiles;
  const ServiceTypeId svc(0);
  const RequestTypeId req(0);
  // History: 99 fast cases and one slow outlier.
  for (int i = 0; i < 99; ++i) profiles.record(svc, req, {{1, 1, 1}, 0.1, 10 * kMsec});
  profiles.record(svc, req, {{1, 1, 1}, 0.1, 80 * kMsec});

  VmlpParams params;
  // Low band: the historical maximum slack.
  const auto low = estimate_slack(profiles, svc, req, 0.1, 100.0, kMsec, params);
  EXPECT_EQ(low, 80 * kMsec);
  // Mid band: the 50% latency — dominated by the fast mass.
  const auto mid = estimate_slack(profiles, svc, req, 0.5, 100.0, kMsec, params);
  EXPECT_NEAR(static_cast<double>(mid), 10.0 * kMsec, 0.5 * kMsec);
  // High band: the 99% latency — pulled toward the outlier.
  const auto high = estimate_slack(profiles, svc, req, 0.9, 100.0, kMsec, params);
  EXPECT_GT(high, mid);
}

TEST(Metrics, EstimateSlackFallsBack) {
  trace::ProfileStore profiles;
  VmlpParams params;
  EXPECT_EQ(estimate_slack(profiles, ServiceTypeId(1), RequestTypeId(1), 0.5, 50.0, 7 * kMsec,
                           params),
            7 * kMsec);
}

TEST(Metrics, VolatilityBlindUsesMean) {
  trace::ProfileStore profiles;
  const ServiceTypeId svc(0);
  const RequestTypeId req(0);
  for (int i = 0; i < 10; ++i) profiles.record(svc, req, {{1, 1, 1}, 0.1, 10 * kMsec});
  profiles.record(svc, req, {{1, 1, 1}, 0.1, 120 * kMsec});
  VmlpParams params;
  params.volatility_aware = false;
  // Mean regardless of the band (the ablation path).
  const auto low = estimate_slack(profiles, svc, req, 0.1, 100.0, kMsec, params);
  const auto high = estimate_slack(profiles, svc, req, 0.95, 100.0, kMsec, params);
  EXPECT_EQ(low, high);
  EXPECT_LT(low, 40 * kMsec);
}

// ---- end-to-end v-MLP ------------------------------------------------

sched::DriverParams vmlp_test_params() {
  sched::DriverParams p;
  p.horizon = 10 * kSec;
  p.cluster.machine_count = 10;
  p.machines_per_rack = 5;
  p.seed = 55;
  return p;
}

std::vector<loadgen::Arrival> make_stream(const app::Application& application, double rate,
                                          SimTime horizon) {
  loadgen::PatternParams pp;
  pp.horizon = horizon;
  pp.base_rate = rate;
  pp.max_rate = rate * 4;
  pp.peak_time = horizon / 2;
  const auto pattern = loadgen::WorkloadPattern::make(loadgen::PatternKind::kL2Fluctuating, pp, 3);
  Rng rng(3);
  return loadgen::generate_arrivals(pattern, loadgen::RequestMix::all(application), rng);
}

TEST(Vmlp, CompletesStream) {
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler sched;
  sched::SimulationDriver driver(*application, sched, vmlp_test_params());
  driver.load_arrivals(make_stream(*application, 12.0, vmlp_test_params().horizon));
  const sched::RunResult r = driver.run();
  EXPECT_GT(r.arrived, 100u);
  EXPECT_GT(static_cast<double>(r.completed), 0.95 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.name(), "v-MLP");
  EXPECT_GT(sched.organizer()->plans_committed(), 0u);
}

TEST(Vmlp, PlansWholeChainsUpFront) {
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler sched;
  sched::SimulationDriver driver(*application, sched, vmlp_test_params());
  // One compose-post request: all 9 nodes must be placed at admission.
  const auto type = *application->find_request("compose-post");
  driver.load_arrivals({{kMsec, type}});

  bool checked = false;
  // Verify after the arrival by piggybacking on the tick event.
  driver.load_arrivals({});  // no-op; assertion happens post-run via spans
  const sched::RunResult r = driver.run();
  EXPECT_EQ(r.completed, 1u);
  const auto spans = driver.tracer().spans_of(RequestId(0));
  EXPECT_EQ(spans.size(), 9u);
  checked = true;
  EXPECT_TRUE(checked);
}

TEST(Vmlp, SpanCausalityHolds) {
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler sched;
  sched::SimulationDriver driver(*application, sched, vmlp_test_params());
  driver.load_arrivals(make_stream(*application, 8.0, vmlp_test_params().horizon));
  driver.run();
  // For every request: spans of dependent stages never overlap out of order.
  for (const auto* rec : driver.tracer().requests()) {
    if (!rec->finished()) continue;
    const auto& rt = application->request(rec->type);
    const auto spans = driver.tracer().spans_of(rec->id);
    if (spans.size() != rt.size()) continue;
    // Map service -> span (node services are unique within our request types).
    for (const auto& [from, to] : rt.dag().edges()) {
      const trace::Span* parent = nullptr;
      const trace::Span* child = nullptr;
      for (const auto* s : spans) {
        if (s->service == rt.nodes()[from].service) parent = s;
        if (s->service == rt.nodes()[to].service) child = s;
      }
      if (parent != nullptr && child != nullptr) {
        EXPECT_GE(child->start, parent->end) << "request " << rec->id.value();
      }
    }
  }
}

TEST(Vmlp, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto application = workloads::make_benchmark_suite();
    VmlpScheduler sched;
    sched::SimulationDriver driver(*application, sched, vmlp_test_params());
    driver.load_arrivals(make_stream(*application, 10.0, vmlp_test_params().horizon));
    return driver.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_DOUBLE_EQ(a.mean_utilization, b.mean_utilization);
}

TEST(Vmlp, AblationFlagsChangeBehaviour) {
  auto run_with = [](VmlpParams params) {
    auto application = workloads::make_benchmark_suite();
    VmlpScheduler sched(params);
    sched::SimulationDriver driver(*application, sched, vmlp_test_params());
    driver.load_arrivals(make_stream(*application, 24.0, vmlp_test_params().horizon));
    const auto r = driver.run();
    return std::make_pair(r, driver.counters());
  };
  VmlpParams volatility_blind;
  volatility_blind.volatility_aware = false;
  const auto [blind_result, blind_counters] = run_with(volatility_blind);
  const auto [aware_result, aware_counters] = run_with(VmlpParams{});
  // The two configurations must actually schedule differently.
  EXPECT_NE(blind_result.p99_latency_us, aware_result.p99_latency_us);
  (void)blind_counters;
  (void)aware_counters;
}

TEST(Vmlp, HealingDisabledStillCorrect) {
  VmlpParams params;
  params.enable_delay_slot = false;
  params.enable_resource_stretch = false;
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler sched(params);
  sched::SimulationDriver driver(*application, sched, vmlp_test_params());
  driver.load_arrivals(make_stream(*application, 16.0, vmlp_test_params().horizon));
  const auto r = driver.run();
  EXPECT_GT(static_cast<double>(r.completed), 0.9 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.healer()->delay_slot_fills(), 0u);
  EXPECT_EQ(sched.healer()->stretches(), 0u);
}

TEST(Vmlp, OutperformsSimpleSchedulersOnHighVolatilityTail) {
  // The paper's headline (Fig. 13): under volatile streams and load, v-MLP's
  // tail beats contention-blind scheduling by a wide margin.
  auto run_scheme = [](sched::IScheduler& sched) {
    auto application = workloads::make_benchmark_suite();
    sched::DriverParams p = vmlp_test_params();
    p.cluster.machine_count = 8;
    sched::SimulationDriver driver(*application, sched, p);
    loadgen::PatternParams pp;
    pp.horizon = p.horizon;
    pp.base_rate = 28.0;
    pp.max_rate = 65.0;
    pp.peak_time = p.horizon / 2;
    const auto pattern =
        loadgen::WorkloadPattern::make(loadgen::PatternKind::kL2Fluctuating, pp, 9);
    Rng rng(9);
    driver.load_arrivals(loadgen::generate_arrivals(
        pattern, loadgen::RequestMix::category(*application, app::VolatilityBand::kHigh), rng));
    return driver.run();
  };
  VmlpScheduler vmlp_sched;
  sched::FairSched fair_sched;
  const auto vmlp_result = run_scheme(vmlp_sched);
  const auto fair_result = run_scheme(fair_sched);
  EXPECT_LT(vmlp_result.p99_latency_us, fair_result.p99_latency_us);
  EXPECT_LE(vmlp_result.qos_violation_rate, fair_result.qos_violation_rate + 0.01);
}

}  // namespace
}  // namespace vmlp::mlp
