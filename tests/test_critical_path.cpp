// Critical-path latency attribution: phase decomposition on synthetic DAG
// shapes (diamond, wide fan-in, retries, relocation) and the end-to-end
// exactness property on driver-recorded runs — the attributed phases along
// the blocking chain sum to the request's latency with zero rounding.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "app/dag.h"
#include "common/audit.h"
#include "obs/collector.h"
#include "obs/registry.h"
#include "exp/report.h"
#include "loadgen/generator.h"
#include "loadgen/patterns.h"
#include "sched/driver.h"
#include "sched/fair_sched.h"
#include "trace/critical_path.h"
#include "trace/tracer.h"
#include "workloads/suite.h"

namespace vmlp::trace {
namespace {

Span make_span(std::uint32_t node, SimTime start, SimTime end, SimTime startable,
               std::uint32_t blocking) {
  Span s{RequestId(1), RequestTypeId(0), ServiceTypeId(node), InstanceId(node), MachineId(0),
         start, end};
  s.node = node;
  s.startable_at = startable;
  s.blocking_parent = blocking;
  return s;
}

std::vector<const Span*> ptrs(const std::vector<Span>& spans) {
  std::vector<const Span*> out;
  for (const Span& s : spans) out.push_back(&s);
  return out;
}

TEST(CriticalPath, PhaseNamesCoverEnumInOrder) {
  // The report columns are spelled as literals for the lint rule; they must
  // stay in lockstep with the Phase enum.
  const auto columns = exp::attribution_phase_columns();
  ASSERT_EQ(columns.size(), kPhaseCount);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_EQ(columns[p], phase_name(static_cast<Phase>(p))) << "phase " << p;
  }
  // Collector's mirrored constant (obs cannot include trace headers).
  EXPECT_EQ(kPhaseCount, obs::Collector::AttributionMetrics::kPhases);
}

TEST(CriticalPath, DiamondFollowsBlockingArmAndTelescopes) {
  // 0 -> {1, 2} -> 3; node 2's message arrives last, so the chain is 0-2-3.
  app::Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);

  const SimTime arrival = 100;
  std::vector<Span> spans;
  spans.push_back(make_span(0, 110, 200, 105, Span::kNoNode));  // root: ingress 5, queue 5
  spans.push_back(make_span(1, 210, 300, 205, 0));              // fast arm
  spans.push_back(make_span(2, 230, 420, 220, 0));              // slow arm
  spans.push_back(make_span(3, 440, 500, 430, 2));              // joined on node 2

  const auto path = extract_critical_path(arrival, 500, ptrs(spans), &dag);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].span->node, 0u);
  EXPECT_EQ(path.steps[1].span->node, 2u);
  EXPECT_EQ(path.steps[2].span->node, 3u);
  EXPECT_TRUE(path.on_path(2));
  EXPECT_FALSE(path.on_path(1));

  EXPECT_EQ(path.latency, 400);
  EXPECT_EQ(path.phase_sum(), path.latency);  // exact, no tick tolerance
  // network: 5 (ingress) + 20 (0->2) + 10 (2->3); queue: 5 + 10 + 10;
  // exec: 90 + 190 + 60.
  EXPECT_EQ(path.totals[static_cast<std::size_t>(Phase::kNetwork)], 35);
  EXPECT_EQ(path.totals[static_cast<std::size_t>(Phase::kQueue)], 25);
  EXPECT_EQ(path.totals[static_cast<std::size_t>(Phase::kExec)], 340);
  EXPECT_EQ(path.totals[static_cast<std::size_t>(Phase::kLostExec)], 0);

  // The fast arm is the only off-path span; with the DAG its slack is the
  // gap until node 3 became startable (430 - 300), not until completion.
  ASSERT_EQ(path.off_path.size(), 1u);
  EXPECT_EQ(path.off_path[0].span->node, 1u);
  EXPECT_EQ(path.off_path[0].slack, 130);
}

TEST(CriticalPath, WideFanInSinkTieBreaksToLowerNode) {
  // 0 -> {1..4} with two sinks ending at the same instant: the finishing
  // node must be the lower index, deterministically.
  std::vector<Span> spans;
  spans.push_back(make_span(0, 10, 50, 10, Span::kNoNode));
  spans.push_back(make_span(1, 60, 300, 55, 0));
  spans.push_back(make_span(2, 60, 200, 55, 0));
  spans.push_back(make_span(3, 60, 300, 58, 0));  // same end as node 1
  spans.push_back(make_span(4, 60, 120, 52, 0));

  const auto path = extract_critical_path(0, 300, ptrs(spans));
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps.back().span->node, 1u);
  EXPECT_EQ(path.phase_sum(), path.latency);
  EXPECT_EQ(path.off_path.size(), 3u);
  for (const OffPathSlack& off : path.off_path) EXPECT_GE(off.slack, 0);
}

TEST(CriticalPath, RetryLedgerSplitsWaitIntoFailurePhases) {
  // One root whose final attempt waited through a voided execution, a retry
  // backoff, and a heal window; the residual is queue time.
  Span s = make_span(0, 1000, 1500, 100, Span::kNoNode);
  s.lost_exec_us = 300;  // first attempt executed 300us then died
  s.backoff_us = 200;
  s.heal_us = 250;
  const std::vector<Span> spans{s};

  const auto path = extract_critical_path(0, 1500, ptrs(spans));
  ASSERT_EQ(path.steps.size(), 1u);
  const auto& ph = path.steps[0].phase;
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kNetwork)], 100);
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kLostExec)], 300);
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kBackoff)], 200);
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kHeal)], 250);
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kQueue)], 150);  // 900 - 750
  EXPECT_EQ(ph[static_cast<std::size_t>(Phase::kExec)], 500);
  EXPECT_EQ(path.phase_sum(), 1500);
}

TEST(CriticalPath, SyntheticSpansWithoutLedgerCollapseToQueue) {
  // Spans recorded without attribution fields (startable_at = -1) clamp to
  // pred_end: the whole wait shows up as queue, and the sum still matches.
  Span s{RequestId(1), RequestTypeId(0), ServiceTypeId(0), InstanceId(0), MachineId(0), 40, 90};
  s.node = 0;
  const std::vector<Span> spans{s};
  const auto path = extract_critical_path(0, 90, ptrs(spans));
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_EQ(path.steps[0].phase[static_cast<std::size_t>(Phase::kNetwork)], 0);
  EXPECT_EQ(path.steps[0].phase[static_cast<std::size_t>(Phase::kQueue)], 40);
  EXPECT_EQ(path.phase_sum(), 90);
}

TEST(CriticalPath, EmptyAndNodelessInputsYieldEmptyResult) {
  EXPECT_TRUE(extract_critical_path(0, 10, {}).steps.empty());
  Span nodeless{RequestId(1), RequestTypeId(0), ServiceTypeId(0), InstanceId(0), MachineId(0),
                1, 5};
  const std::vector<Span> spans{nodeless};
  const auto path = extract_critical_path(0, 10, ptrs(spans));
  EXPECT_TRUE(path.steps.empty());
  EXPECT_EQ(path.phase_sum(), 0);
}

// ---- driver integration: exactness over a failing, healing run ------------

TEST(CriticalPathDriver, RecordedRequestsTelescopeExactlyUnderFailures) {
  // Crashes (mid-request relocations) + container faults (retries) on, audit
  // on: the driver's per-completion VMLP_AUDIT_ASSERT already enforces the
  // identity; this test re-checks it from the outside for every request.
  const bool prev = audit::enabled();
  audit::set_enabled(true);
  auto application = workloads::make_benchmark_suite();
  sched::FairSched scheduler;
  sched::DriverParams p;
  p.horizon = 10 * kSec;
  p.cluster.machine_count = 10;
  p.machines_per_rack = 5;
  p.seed = 2022;
  p.failure.enabled = true;
  p.failure.crashes_per_second = 0.5;
  p.failure.recovery_mean = 500 * kMsec;
  p.failure.container_fault_prob = 0.05;
  p.attribution = true;
#ifndef VMLP_NO_OBS
  p.obs.enabled = true;
#endif
  sched::SimulationDriver driver(*application, scheduler, p);

  loadgen::PatternParams pp;
  pp.horizon = p.horizon;
  pp.base_rate = 10.0;
  pp.max_rate = 20.0;
  pp.peak_time = p.horizon / 2;
  const auto pattern = loadgen::WorkloadPattern::make(loadgen::PatternKind::kL1Pulse, pp, 3);
  Rng rng(3);
  driver.load_arrivals(loadgen::generate_arrivals(
      pattern, loadgen::RequestMix::all(*application), rng));
  const sched::RunResult r = driver.run();
  audit::set_enabled(prev);

  // The scenario must actually exercise the failure phases, or the exactness
  // claim is vacuous for them.
  ASSERT_GT(r.machine_crashes, 0u);
  ASSERT_GT(r.retries, 0u);
  ASSERT_GT(r.completed, 100u);

  std::size_t checked = 0;
  std::array<SimDuration, kPhaseCount> grand{};
  for (const RequestRecord* rec : driver.tracer().requests()) {
    if (!rec->finished()) continue;
    const app::Dag& dag = application->request(rec->type).dag();
    const auto path = extract_critical_path(*rec, driver.tracer().spans_of(rec->id), &dag);
    ASSERT_FALSE(path.steps.empty());
    EXPECT_EQ(path.phase_sum(), rec->latency()) << "request " << rec->id.value();
    for (const OffPathSlack& off : path.off_path) EXPECT_GE(off.slack, 0);
    for (std::size_t ph = 0; ph < kPhaseCount; ++ph) grand[ph] += path.totals[ph];
    ++checked;
  }
  EXPECT_EQ(checked, r.completed);
  // Retries/relocations must surface as failure-phase time somewhere.
  EXPECT_GT(grand[static_cast<std::size_t>(Phase::kLostExec)] +
                grand[static_cast<std::size_t>(Phase::kBackoff)] +
                grand[static_cast<std::size_t>(Phase::kHeal)],
            0);
  EXPECT_GT(grand[static_cast<std::size_t>(Phase::kExec)], 0);

#ifndef VMLP_NO_OBS
  // The per-band attribution histograms were fed one sample set per request.
  const obs::Collector* c = driver.observer();
  ASSERT_NE(c, nullptr);
  const obs::Snapshot snap = c->snapshot();
  std::uint64_t share_count = 0;
  for (const char* band : {"low", "mid", "high"}) {
    const auto* m = snap.find(std::string("attribution.") + band + ".exec_share");
    ASSERT_NE(m, nullptr) << band;
    share_count += m->hist.count;
    const auto* len = snap.find(std::string("attribution.") + band + ".path_len");
    ASSERT_NE(len, nullptr) << band;
    EXPECT_EQ(len->hist.count, m->hist.count) << band;
  }
  EXPECT_EQ(share_count, r.completed);
#endif
}

}  // namespace
}  // namespace vmlp::trace
