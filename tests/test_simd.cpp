// common/simd.h: runtime dispatch policy and bitwise kernel equivalence.
//
// Two layers of proof:
//  * dispatch — the selected target matches what CPUID reports for this
//    host, the VMLP_NO_SIMD / VMLP_SIMD_TARGET environment policy behaves
//    as documented (driven through the pure resolve_target(), so no
//    subprocesses or setenv races), and the test-only override round-trips;
//  * kernels — every host-reachable intrinsic leg returns bit-identical
//    results to the scalar reference on randomized arrays covering every
//    tail-length class (0..2 full vectors plus 0..width-1 remainder, and
//    the ledger's 32-segment block shape).
#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace vmlp::simd {
namespace {

class ScopedTarget {
 public:
  explicit ScopedTarget(Target t) : prev_(active_target()) { set_target_for_testing(t); }
  ~ScopedTarget() { set_target_for_testing(prev_); }
  ScopedTarget(const ScopedTarget&) = delete;
  ScopedTarget& operator=(const ScopedTarget&) = delete;

 private:
  Target prev_;
};

Target best_supported() {
  if (host_supports(Target::kAvx2)) return Target::kAvx2;
  if (host_supports(Target::kSse2)) return Target::kSse2;
  if (host_supports(Target::kNeon)) return Target::kNeon;
  return Target::kScalar;
}

TEST(SimdDispatchTest, ScalarAlwaysReachable) {
  EXPECT_TRUE(host_supports(Target::kScalar));
  ASSERT_NE(table_for(Target::kScalar), nullptr);
  EXPECT_EQ(table_for(Target::kScalar)->target, Target::kScalar);
  const auto reachable = reachable_targets();
  ASSERT_FALSE(reachable.empty());
  EXPECT_EQ(reachable.front(), Target::kScalar);
}

TEST(SimdDispatchTest, DefaultResolutionMatchesCpuid) {
  // host_supports consults the same __builtin_cpu_supports CPUID probes the
  // dispatcher uses; with no environment overrides the resolved target must
  // be exactly the best one the CPU reports.
  EXPECT_EQ(resolve_target(nullptr, nullptr), best_supported());
#ifdef VMLP_NO_SIMD
  // Compiled-out build: nothing but scalar may ever be reachable.
  EXPECT_EQ(best_supported(), Target::kScalar);
  EXPECT_EQ(reachable_targets().size(), 1u);
#endif
}

TEST(SimdDispatchTest, ActiveTargetFollowsRealEnvironment) {
  // Whatever environment this test process was started with, the active
  // table must agree with the documented policy applied to it.
  const Target expected =
      resolve_target(std::getenv("VMLP_NO_SIMD"), std::getenv("VMLP_SIMD_TARGET"));
  EXPECT_EQ(active_target(), expected);
  EXPECT_EQ(kernels().target, expected);
  EXPECT_EQ(enabled(), expected != Target::kScalar);
}

TEST(SimdDispatchTest, NoSimdEnvForcesScalar) {
  EXPECT_EQ(resolve_target("1", nullptr), Target::kScalar);
  EXPECT_EQ(resolve_target("ON", nullptr), Target::kScalar);
  EXPECT_EQ(resolve_target("1", "avx2"), Target::kScalar);  // kill switch wins
  // Unset / empty / "0" do not force.
  EXPECT_EQ(resolve_target(nullptr, nullptr), best_supported());
  EXPECT_EQ(resolve_target("", nullptr), best_supported());
  EXPECT_EQ(resolve_target("0", nullptr), best_supported());
}

TEST(SimdDispatchTest, ExplicitTargetEnvSelectsOrFallsBackToScalar) {
  EXPECT_EQ(resolve_target(nullptr, "scalar"), Target::kScalar);
  for (const Target t : {Target::kSse2, Target::kAvx2, Target::kNeon}) {
    const Target got = resolve_target(nullptr, target_name(t));
    EXPECT_EQ(got, host_supports(t) ? t : Target::kScalar) << target_name(t);
  }
  // Unknown names never guess an intrinsic leg.
  EXPECT_EQ(resolve_target(nullptr, "avx512"), Target::kScalar);
}

TEST(SimdDispatchTest, TestOverrideRoundTrips) {
  const Target before = active_target();
  for (const Target t : reachable_targets()) {
    ScopedTarget scoped(t);
    EXPECT_EQ(active_target(), t);
    EXPECT_EQ(kernels().target, t);
  }
  EXPECT_EQ(active_target(), before);
}

// ---------------------------------------------------------------------------
// Kernel differential: every reachable leg vs the scalar reference, bitwise.
// ---------------------------------------------------------------------------

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

class SimdKernelTest : public ::testing::Test {
 protected:
  // Ledger-like values: mostly small non-negative levels, occasional spikes
  // near the bound so find-first kernels hit at varied positions.
  std::vector<double> random_plane(Rng& rng, std::size_t n) {
    std::vector<double> v(n);
    for (double& x : v) {
      x = rng.bernoulli(0.2) ? rng.uniform(90.0, 110.0) : rng.uniform(0.0, 60.0);
    }
    return v;
  }
};

TEST_F(SimdKernelTest, AllLegsMatchScalarBitwise) {
  const KernelTable* scalar = table_for(Target::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(0xC0FFEEu);
  // Sizes cover empty, sub-vector, every remainder class for 2- and 4-wide
  // lanes, one ledger block, and multi-chunk spans (kSpanChunk = 16).
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100, 257};
  const double add[3] = {10.0, 4.0, 1.0};
  const double bound[3] = {100.0 + 1e-6, 100.0 + 1e-6, 100.0 + 1e-6};
  for (const Target t : reachable_targets()) {
    if (t == Target::kScalar) continue;
    const KernelTable* leg = table_for(t);
    ASSERT_NE(leg, nullptr);
    for (const std::size_t n : sizes) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_plane(rng, n);
        const auto b = random_plane(rng, n);
        const auto c = random_plane(rng, n);

        double m_ref[3] = {1e9, 1e9, 1e9};
        double m_leg[3] = {1e9, 1e9, 1e9};
        scalar->reduce_min3(a.data(), b.data(), c.data(), n, m_ref);
        leg->reduce_min3(a.data(), b.data(), c.data(), n, m_leg);
        for (int d = 0; d < 3; ++d) {
          EXPECT_TRUE(bits_equal(m_ref[d], m_leg[d])) << target_name(t) << " min3 n=" << n;
        }

        double x_ref[3] = {-1e9, -1e9, -1e9};
        double x_leg[3] = {-1e9, -1e9, -1e9};
        scalar->reduce_max3(a.data(), b.data(), c.data(), n, x_ref);
        leg->reduce_max3(a.data(), b.data(), c.data(), n, x_leg);
        for (int d = 0; d < 3; ++d) {
          EXPECT_TRUE(bits_equal(x_ref[d], x_leg[d])) << target_name(t) << " max3 n=" << n;
        }

        double s_ref[3];
        double s_leg[3];
        const double inf = std::numeric_limits<double>::infinity();
        s_ref[0] = s_ref[1] = s_ref[2] = inf;
        s_leg[0] = s_leg[1] = s_leg[2] = inf;
        const bool fit_ref =
            scalar->span_fit3(a.data(), b.data(), c.data(), n, add, bound, s_ref);
        const bool fit_leg = leg->span_fit3(a.data(), b.data(), c.data(), n, add, bound, s_leg);
        EXPECT_EQ(fit_ref, fit_leg) << target_name(t) << " span_fit3 n=" << n;
        if (!fit_ref) {
          // Only the reject path pins m: it must then hold the full-range
          // min on every leg. (On accept, m is a checkpoint-dependent
          // partial fold — explicitly outside the cross-target contract.)
          for (int d = 0; d < 3; ++d) {
            EXPECT_TRUE(bits_equal(s_ref[d], s_leg[d])) << target_name(t) << " span m n=" << n;
          }
        }

        EXPECT_EQ(scalar->first_blocked3(a.data(), b.data(), c.data(), n, add, bound),
                  leg->first_blocked3(a.data(), b.data(), c.data(), n, add, bound))
            << target_name(t) << " first_blocked3 n=" << n;
        EXPECT_EQ(scalar->first_fit3(a.data(), b.data(), c.data(), n, add, bound),
                  leg->first_fit3(a.data(), b.data(), c.data(), n, add, bound))
            << target_name(t) << " first_fit3 n=" << n;
        EXPECT_TRUE(bits_equal(scalar->reduce_max1(a.data(), n), leg->reduce_max1(a.data(), n)))
            << target_name(t) << " reduce_max1 n=" << n;
        const double thresh = rng.uniform(0.0, 120.0);
        EXPECT_EQ(scalar->first_ge(a.data(), n, thresh), leg->first_ge(a.data(), n, thresh))
            << target_name(t) << " first_ge n=" << n;
      }
    }
  }
}

TEST_F(SimdKernelTest, FindFirstKernelsReportExactIndexOrder) {
  // A hit in lane 0 and lane 1 of the same vector must report lane 0 — on
  // every leg, at every alignment.
  const double add[3] = {0.0, 0.0, 0.0};
  const double bound[3] = {50.0, 50.0, 50.0};
  for (const Target t : reachable_targets()) {
    const KernelTable* leg = table_for(t);
    ASSERT_NE(leg, nullptr);
    for (std::size_t hit = 0; hit < 9; ++hit) {
      std::vector<double> a(12, 0.0);
      std::vector<double> quiet(12, 0.0);
      for (std::size_t i = hit; i < a.size(); ++i) a[i] = 99.0;  // run of hits
      EXPECT_EQ(leg->first_blocked3(a.data(), quiet.data(), quiet.data(), a.size(), add, bound),
                hit)
          << target_name(t);
      EXPECT_EQ(leg->first_ge(a.data(), a.size(), 99.0), hit) << target_name(t);
      // first_fit3: invert — blocked prefix, fitting from `hit` on.
      std::vector<double> blocked(12, 99.0);
      for (std::size_t i = hit; i < blocked.size(); ++i) blocked[i] = 0.0;
      EXPECT_EQ(
          leg->first_fit3(blocked.data(), quiet.data(), quiet.data(), blocked.size(), add, bound),
          hit)
          << target_name(t);
    }
  }
}

}  // namespace
}  // namespace vmlp::simd
