// ResourceVector arithmetic and the ReservationLedger — including a
// randomized property check against a brute-force timeline model.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "cluster/reservation.h"
#include "cluster/resources.h"
#include "common/error.h"
#include "common/rng.h"

namespace vmlp::cluster {
namespace {

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{1, 2, 3};
  ResourceVector b{10, 20, 30};
  EXPECT_EQ(a + b, (ResourceVector{11, 22, 33}));
  EXPECT_EQ(b - a, (ResourceVector{9, 18, 27}));
  EXPECT_EQ(a * 2.0, (ResourceVector{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(ResourceVector, MaxMinClamp) {
  ResourceVector a{5, 1, 9};
  ResourceVector b{3, 4, 9};
  EXPECT_EQ(a.max(b), (ResourceVector{5, 4, 9}));
  EXPECT_EQ(a.min(b), (ResourceVector{3, 1, 9}));
  EXPECT_EQ((ResourceVector{-1, 10, 5}).clamp_to({4, 4, 4}), (ResourceVector{0, 4, 4}));
}

TEST(ResourceVector, FitsWithin) {
  EXPECT_TRUE((ResourceVector{1, 1, 1}).fits_within({1, 1, 1}));
  EXPECT_TRUE((ResourceVector{1, 1, 1}).fits_within({2, 2, 2}));
  EXPECT_FALSE((ResourceVector{3, 1, 1}).fits_within({2, 2, 2}));
}

TEST(ResourceVector, EpsilonAbsorbsFloatDrift) {
  ResourceVector nearly{1.0 + 1e-9, 1.0, 1.0};
  EXPECT_TRUE(nearly.fits_within({1, 1, 1}));
  ResourceVector tiny{-1e-9, 0, 0};
  EXPECT_FALSE(tiny.any_negative());
  EXPECT_TRUE(tiny.near_zero());
}

TEST(ResourceVector, UtilizationSum) {
  ResourceVector cap{10, 10, 10};
  EXPECT_DOUBLE_EQ((ResourceVector{5, 10, 0}).utilization_sum(cap), 1.5);
  // Clamped at 1 per dimension.
  EXPECT_DOUBLE_EQ((ResourceVector{100, 0, 0}).utilization_sum(cap), 1.0);
}

TEST(ResourceVector, MaxRatioOver) {
  ResourceVector demand{4, 2, 1};
  ResourceVector alloc{2, 2, 1};
  EXPECT_DOUBLE_EQ(demand.max_ratio_over(alloc), 2.0);
  // Demanding a resource the allocation lacks entirely is infinite pressure.
  EXPECT_TRUE(std::isinf((ResourceVector{1, 0, 0}).max_ratio_over(ResourceVector{0, 1, 1})));
}

TEST(Ledger, StartsEmpty) {
  ReservationLedger ledger({10, 10, 10});
  EXPECT_EQ(ledger.usage_at(0), ResourceVector::zero());
  EXPECT_EQ(ledger.usage_at(1000000), ResourceVector::zero());
  EXPECT_TRUE(ledger.fits(0, 100, {10, 10, 10}));
  EXPECT_FALSE(ledger.fits(0, 100, {11, 10, 10}));
}

TEST(Ledger, ReserveWindowShape) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(100, 200, {4, 0, 0});
  EXPECT_EQ(ledger.usage_at(99).cpu, 0);
  EXPECT_EQ(ledger.usage_at(100).cpu, 4);
  EXPECT_EQ(ledger.usage_at(199).cpu, 4);
  EXPECT_EQ(ledger.usage_at(200).cpu, 0);
}

TEST(Ledger, OverlappingReservationsStack) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {4, 0, 0});
  ledger.reserve(50, 150, {4, 0, 0});
  EXPECT_EQ(ledger.usage_at(25).cpu, 4);
  EXPECT_EQ(ledger.usage_at(75).cpu, 8);
  EXPECT_EQ(ledger.usage_at(125).cpu, 4);
  EXPECT_EQ(ledger.max_usage(0, 150).cpu, 8);
  EXPECT_FALSE(ledger.fits(40, 60, {3, 0, 0}));
  EXPECT_TRUE(ledger.fits(40, 60, {2, 0, 0}));
}

TEST(Ledger, ReleaseRestores) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {4, 2, 1});
  ledger.release(0, 100, {4, 2, 1});
  EXPECT_EQ(ledger.usage_at(50), ResourceVector::zero());
  // Fully released profile coalesces back to one segment.
  EXPECT_EQ(ledger.segment_count(), 1u);
}

TEST(Ledger, PartialRelease) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {4, 0, 0});
  ledger.release(50, 100, {4, 0, 0});
  EXPECT_EQ(ledger.usage_at(25).cpu, 4);
  EXPECT_EQ(ledger.usage_at(75).cpu, 0);
}

TEST(Ledger, ReleaseBelowZeroThrows) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {4, 0, 0});
  EXPECT_THROW(ledger.release(0, 100, {5, 0, 0}), InvariantError);
}

TEST(Ledger, EmptyWindowThrows) {
  ReservationLedger ledger({10, 10, 10});
  EXPECT_THROW(ledger.reserve(100, 100, {1, 0, 0}), InvariantError);
  EXPECT_THROW((void)ledger.max_usage(50, 50), InvariantError);
}

TEST(Ledger, OverbookingIsLegalButVisible) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {8, 0, 0});
  ledger.reserve(0, 100, {8, 0, 0});  // 16 > 10: allowed
  EXPECT_EQ(ledger.usage_at(50).cpu, 16);
  EXPECT_FALSE(ledger.fits(0, 100, {1, 0, 0}));
  EXPECT_EQ(ledger.available(0, 100).cpu, 0.0);  // clamped, not negative
}

TEST(Ledger, EarliestFitImmediate) {
  ReservationLedger ledger({10, 10, 10});
  EXPECT_EQ(ledger.earliest_fit(5, 10, {10, 10, 10}, 1000), 5);
}

TEST(Ledger, EarliestFitAfterBusyWindow) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {8, 0, 0});
  EXPECT_EQ(ledger.earliest_fit(0, 10, {4, 0, 0}, 1000), 100);
}

TEST(Ledger, EarliestFitBetweenWindows) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {8, 0, 0});
  ledger.reserve(150, 250, {8, 0, 0});
  EXPECT_EQ(ledger.earliest_fit(0, 50, {4, 0, 0}, 1000), 100);
  // A 60-long window does not fit in the 50-wide gap.
  EXPECT_EQ(ledger.earliest_fit(0, 60, {4, 0, 0}, 1000), 250);
}

TEST(Ledger, EarliestFitHorizonExhausted) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 1000, {10, 0, 0});
  EXPECT_EQ(ledger.earliest_fit(0, 10, {1, 0, 0}, 500), kTimeInfinity);
}

TEST(Ledger, CompactPreservesLevelAtPoint) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(0, 100, {2, 0, 0});
  ledger.reserve(100, 200, {5, 0, 0});
  ledger.reserve(200, 300, {7, 0, 0});
  ledger.compact_before(150);
  EXPECT_EQ(ledger.usage_at(150).cpu, 5);
  EXPECT_EQ(ledger.usage_at(250).cpu, 7);
  EXPECT_EQ(ledger.usage_at(350).cpu, 0);
}

TEST(Ledger, QueryBeforeCompactionPointThrows) {
  ReservationLedger ledger({10, 10, 10});
  ledger.reserve(100, 200, {5, 0, 0});
  ledger.compact_before(150);
  EXPECT_THROW(ledger.usage_at(50), InvariantError);
}

// Property check: random reserve/release sequences must match a brute-force
// per-microsecond usage model.
TEST(LedgerProperty, MatchesBruteForceModel) {
  const SimTime kHorizon = 200;
  Rng rng(12345);
  for (int trial = 0; trial < 50; ++trial) {
    ReservationLedger ledger({100, 100, 100});
    std::vector<double> brute(kHorizon, 0.0);
    std::vector<std::tuple<SimTime, SimTime, double>> active;

    for (int op = 0; op < 40; ++op) {
      if (!active.empty() && rng.bernoulli(0.4)) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
        const auto [t0, t1, amount] = active[idx];
        ledger.release(t0, t1, {amount, 0, 0});
        for (SimTime t = t0; t < t1; ++t) brute[t] -= amount;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        const SimTime t0 = rng.uniform_int(0, kHorizon - 2);
        const SimTime t1 = rng.uniform_int(t0 + 1, kHorizon - 1);
        const double amount = static_cast<double>(rng.uniform_int(1, 10));
        ledger.reserve(t0, t1, {amount, 0, 0});
        for (SimTime t = t0; t < t1; ++t) brute[t] += amount;
        active.emplace_back(t0, t1, amount);
      }
    }
    for (SimTime t = 0; t < kHorizon; t += 7) {
      EXPECT_NEAR(ledger.usage_at(t).cpu, brute[t], 1e-6) << "trial " << trial << " t " << t;
    }
    // max_usage over random windows matches brute-force max.
    for (int probe = 0; probe < 10; ++probe) {
      const SimTime t0 = rng.uniform_int(0, kHorizon - 2);
      const SimTime t1 = rng.uniform_int(t0 + 1, kHorizon - 1);
      double expect = 0.0;
      for (SimTime t = t0; t < t1; ++t) expect = std::max(expect, brute[t]);
      EXPECT_NEAR(ledger.max_usage(t0, t1).cpu, expect, 1e-6);
    }
  }
}

}  // namespace
}  // namespace vmlp::cluster
