// Self-healing mechanics in isolation: late-node relocation, driver unplace
// semantics, delay-slot filling, capped fills and resource stretch.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "mlp/vmlp.h"
#include "sched/driver.h"
#include "workloads/suite.h"

namespace vmlp::mlp {
namespace {

std::unique_ptr<app::Application> make_chain_app() {
  auto application = std::make_unique<app::Application>("chain");
  const auto a = application->add_service("front", {1000, 256, 50}, 10 * kMsec,
                                          app::ServiceClass{2, 2, 2}, app::ResourceIntensity::kCpu);
  const auto b = application->add_service("back", {1500, 256, 50}, 20 * kMsec,
                                          app::ServiceClass{3, 3, 3}, app::ResourceIntensity::kCpu);
  auto builder = application->build_request("r");
  builder.node(a).node(b).chain({0, 1});
  builder.commit();
  return application;
}

sched::DriverParams small_params() {
  sched::DriverParams p;
  p.horizon = 5 * kSec;
  p.cluster.machine_count = 4;
  p.cluster.machine_capacity = {4000, 16384, 1000};
  p.machines_per_rack = 2;
  p.seed = 13;
  return p;
}

class NullScheduler : public sched::IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "null"; }
  void on_request_arrival(RequestId) override {}
  void on_node_unblocked(RequestId, std::size_t) override {}
  void on_tick() override {}
};

TEST(Unplace, RevertsPlacementAndReservation) {
  bool checked = false;
  // Place node 0 far in the future, then unplace before it starts — all from
  // inside the arrival callback, where the driver API is live.
  class PlacingScheduler : public NullScheduler {
   public:
    explicit PlacingScheduler(bool* flag) : flag_(flag) {}
    void on_request_arrival(RequestId id) override {
      auto& drv = *driver_;
      const auto& svc = drv.application().service(ServiceTypeId(0));
      drv.place(id, 0, MachineId(0), svc.demand, drv.now() + 2 * kSec, 50 * kMsec);
      sched::ActiveRequest* ar = drv.find_request(id);
      EXPECT_TRUE(ar->nodes[0].placed);
      EXPECT_FALSE(drv.cluster().machine(MachineId(0)).ledger().fits(
          drv.now() + 2 * kSec, drv.now() + 2 * kSec + 50 * kMsec, {3500, 0, 0}));

      drv.unplace(id, 0);
      EXPECT_FALSE(ar->nodes[0].placed);
      EXPECT_EQ(ar->runtime.node(0).state, app::NodeState::kReady);
      // Reservation gone.
      EXPECT_TRUE(drv.cluster().machine(MachineId(0)).ledger().fits(
          drv.now() + 2 * kSec, drv.now() + 2 * kSec + 50 * kMsec, {3500, 0, 0}));
      // Can be re-placed.
      drv.place(id, 0, MachineId(1), svc.demand, drv.now(), 50 * kMsec);
      EXPECT_TRUE(ar->nodes[0].placed);
      EXPECT_EQ(ar->nodes[0].machine, MachineId(1));
      *flag_ = true;
    }

   private:
    bool* flag_;
  };

  auto application = make_chain_app();
  PlacingScheduler placing(&checked);
  sched::SimulationDriver driver(*application, placing, small_params());
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  driver.run();
  EXPECT_TRUE(checked);
}

TEST(Unplace, RejectsRunningOrUnknownNodes) {
  auto application = make_chain_app();
  NullScheduler sched;
  sched::SimulationDriver driver(*application, sched, small_params());
  EXPECT_THROW(driver.unplace(RequestId(42), 0), InvariantError);
}

TEST(Relocation, StuckNodeMovesToFreeMachine) {
  // Machine 0 is saturated by a long-running blocker; v-MLP plans a request
  // chain; when the chain's stage cannot early-start on its planned machine
  // it must relocate rather than idle. We verify via the relocation counter
  // under a congested small cluster.
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler scheduler;
  sched::DriverParams params;
  params.horizon = 12 * kSec;
  params.cluster.machine_count = 4;  // tight: denials guaranteed
  params.machines_per_rack = 2;
  params.seed = 3;
  sched::SimulationDriver driver(*application, scheduler, params);

  std::vector<loadgen::Arrival> arrivals;
  const auto compose = *application->find_request("compose-post");
  const auto cheapest = *application->find_request("getCheapest");
  for (int i = 0; i < 150; ++i) {
    arrivals.push_back({kMsec + i * 50 * kMsec, i % 2 == 0 ? compose : cheapest});
  }
  driver.load_arrivals(arrivals);
  const auto result = driver.run();
  EXPECT_GT(static_cast<double>(result.completed), 0.9 * static_cast<double>(result.arrived));
  // Under this pressure some stages must have been relocated or healed.
  EXPECT_GT(scheduler.relocations() + scheduler.healer()->delay_slot_fills() +
                scheduler.healer()->stretches() + driver.counters().early_starts,
            0u);
}

TEST(Healing, LateEventsTriggerHealingPath) {
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler scheduler;
  sched::DriverParams params;
  params.horizon = 15 * kSec;
  params.cluster.machine_count = 6;
  params.machines_per_rack = 3;
  params.seed = 9;
  sched::SimulationDriver driver(*application, scheduler, params);

  std::vector<loadgen::Arrival> arrivals;
  const auto compose = *application->find_request("compose-post");
  for (int i = 0; i < 400; ++i) {
    arrivals.push_back({kMsec + i * 25 * kMsec, compose});
  }
  driver.load_arrivals(arrivals);
  const auto result = driver.run();
  EXPECT_GT(result.completed, 0u);
  // High-V_r chains at this density produce late invocations; the scheduler
  // must have reacted to them (any healing action or relocation counts).
  EXPECT_GT(driver.counters().late_events, 0u);
}

TEST(Healing, DisabledHealingTakesNoActions) {
  VmlpParams params;
  params.enable_delay_slot = false;
  params.enable_resource_stretch = false;
  auto application = workloads::make_benchmark_suite();
  VmlpScheduler scheduler(params);
  sched::DriverParams dp;
  dp.horizon = 8 * kSec;
  dp.cluster.machine_count = 6;
  dp.machines_per_rack = 3;
  dp.seed = 9;
  sched::SimulationDriver driver(*application, scheduler, dp);
  std::vector<loadgen::Arrival> arrivals;
  const auto compose = *application->find_request("compose-post");
  for (int i = 0; i < 100; ++i) arrivals.push_back({kMsec + i * 60 * kMsec, compose});
  driver.load_arrivals(arrivals);
  driver.run();
  EXPECT_EQ(scheduler.healer()->delay_slot_fills(), 0u);
  EXPECT_EQ(scheduler.healer()->request_fills(), 0u);
  EXPECT_EQ(scheduler.healer()->stretches(), 0u);
}

}  // namespace
}  // namespace vmlp::mlp
