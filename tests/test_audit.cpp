// Invariant auditor: every audit tier fires on deliberately corrupted state
// and stays silent when auditing is disabled. The corruptions go through the
// same public surfaces a buggy scheduler or healing policy would use.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "cluster/reservation.h"
#include "common/audit.h"
#include "common/error.h"
#include "mlp/self_organizing.h"
#include "sched/driver.h"
#include "sched/scheduler.h"
#include "sim/engine.h"

namespace vmlp {
namespace {

/// Forces a known audit state for the test body and restores "off" after —
/// set_enabled() overrides both the env var and the compile-time default, so
/// these tests behave identically in plain and VMLP_AUDIT builds.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override { audit::set_enabled(true); }
  void TearDown() override { audit::set_enabled(false); }
};

// ---- sim/engine -----------------------------------------------------------

TEST_F(AuditTest, EngineRejectsEventScheduledAtInfinity) {
  sim::Engine engine;
  EXPECT_THROW(engine.schedule_at(kTimeInfinity, [] {}), InvariantError);
}

TEST_F(AuditTest, EngineAcceptsFiniteSchedule) {
  sim::Engine engine;
  engine.schedule_at(5, [] {});
  EXPECT_NO_THROW(engine.run_until(10));
}

TEST(AuditDisabled, EngineInfinityScheduleIsNotChecked) {
  audit::set_enabled(false);
  sim::Engine engine;
  EXPECT_NO_THROW(engine.schedule_at(kTimeInfinity, [] {}));
}

// ---- cluster/reservation --------------------------------------------------

TEST_F(AuditTest, LedgerRejectsNegativeReservation) {
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  EXPECT_THROW(ledger.reserve(0, 10, {-1.0, 0.0, 0.0}), InvariantError);
}

TEST_F(AuditTest, LedgerRejectsNonFiniteReservation) {
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  const double nan = std::nan("");
  EXPECT_THROW(ledger.reserve(0, 10, {nan, 0.0, 0.0}), InvariantError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ledger.reserve(0, 10, {inf, 0.0, 0.0}), InvariantError);
}

TEST_F(AuditTest, LedgerCatchesOverRelease) {
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  ledger.reserve(0, 10, {100.0, 0.0, 0.0});
  // Releasing more than was booked would drive the profile negative. (This
  // one is a base-tier check, live even without auditing.)
  EXPECT_THROW(ledger.release(0, 10, {200.0, 0.0, 0.0}), InvariantError);
}

TEST_F(AuditTest, LedgerRejectsNegativeRelease) {
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  ledger.reserve(0, 10, {100.0, 0.0, 0.0});
  EXPECT_THROW(ledger.release(0, 10, {-50.0, 0.0, 0.0}), InvariantError);
}

TEST_F(AuditTest, LedgerAcceptsBalancedTraffic) {
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  ledger.reserve(0, 10, {100.0, 50.0, 5.0});
  ledger.reserve(5, 20, {30.0, 10.0, 1.0});
  ledger.release(5, 10, {100.0, 50.0, 5.0});
  EXPECT_NO_THROW(ledger.audit_invariants());
}

TEST(AuditDisabled, LedgerNegativeReleaseIsNotChecked) {
  audit::set_enabled(false);
  cluster::ReservationLedger ledger({4000.0, 16384.0, 1000.0});
  ledger.reserve(0, 10, {100.0, 0.0, 0.0});
  // A negative release inflates the profile, which only the audit tier
  // rejects; the base tier merely forbids negative levels.
  EXPECT_NO_THROW(ledger.release(0, 10, {-50.0, 0.0, 0.0}));
}

// ---- sched/driver capacity conservation -----------------------------------

std::unique_ptr<app::Application> make_chain_app() {
  auto application = std::make_unique<app::Application>("chain");
  const auto a = application->add_service("front", {1000, 256, 50}, 10 * kMsec,
                                          app::ServiceClass{1, 2, 1}, app::ResourceIntensity::kCpu);
  const auto b = application->add_service("back", {1000, 256, 50}, 20 * kMsec,
                                          app::ServiceClass{1, 2, 1}, app::ResourceIntensity::kCpu);
  auto builder = application->build_request("r");
  builder.node(a).node(b).chain({0, 1});
  builder.commit();
  return application;
}

sched::DriverParams small_params() {
  sched::DriverParams p;
  p.horizon = 5 * kSec;
  p.cluster.machine_count = 2;
  p.cluster.machine_capacity = {4000, 16384, 1000};
  p.machines_per_rack = 2;
  p.seed = 7;
  return p;
}

/// Places every node on machine 0; optionally corrupts the ledger with a
/// phantom reservation the driver never tracked, right before placing.
class CorruptingScheduler : public sched::IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "corrupting"; }

  void on_request_arrival(RequestId id) override {
    if (corrupt_ledger) {
      // A reservation with no owning DriverNode: conservation must now fail.
      driver_->cluster().machine(MachineId(0)).ledger().reserve(
          driver_->now(), driver_->now() + kSec, {500.0, 0.0, 0.0});
    }
    sched::ActiveRequest* ar = driver_->find_request(id);
    for (std::size_t n = 0; n < ar->nodes.size(); ++n) {
      const auto& req_node = ar->runtime.type().nodes()[n];
      const auto& svc = driver_->application().service(req_node.service);
      driver_->place(id, n, MachineId(0), svc.demand, driver_->now(), 50 * kMsec);
    }
  }
  void on_node_unblocked(RequestId, std::size_t) override {}
  void on_tick() override {}
  void on_late_invocation(RequestId, std::size_t) override {}
  void on_node_finished(RequestId, std::size_t) override {}
  void on_request_finished(RequestId) override {}

  bool corrupt_ledger = false;
};

TEST_F(AuditTest, DriverConservationCatchesPhantomReservation) {
  auto application = make_chain_app();
  CorruptingScheduler sched;
  sched.corrupt_ledger = true;
  sched::SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  EXPECT_THROW(driver.run(), InvariantError);
}

TEST_F(AuditTest, DriverConservationHoldsOnCleanRun) {
  auto application = make_chain_app();
  CorruptingScheduler sched;
  sched::SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  sched::RunResult result;
  EXPECT_NO_THROW(result = driver.run());
  EXPECT_EQ(result.completed, 1u);
}

TEST(AuditDisabled, DriverPhantomReservationIsNotChecked) {
  audit::set_enabled(false);
  auto application = make_chain_app();
  CorruptingScheduler sched;
  sched.corrupt_ledger = true;
  sched::SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  EXPECT_NO_THROW(driver.run());
}

// ---- mlp plan integrity ---------------------------------------------------

class PlanIntegrityTest : public AuditTest {
 protected:
  PlanIntegrityTest() : app_(make_chain_app()), ar_(app_->request(RequestTypeId(0)), RequestId(0), 0) {}

  static mlp::NodePlan plan_for(std::size_t node) {
    mlp::NodePlan p;
    p.node = node;
    p.machine = MachineId(0);
    p.start = 10;
    p.busy = 100;
    p.slack = 150;
    return p;
  }

  std::unique_ptr<app::Application> app_;
  sched::ActiveRequest ar_;
};

TEST_F(PlanIntegrityTest, AcceptsFullCover) {
  EXPECT_NO_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0), plan_for(1)}, true));
}

TEST_F(PlanIntegrityTest, RejectsOutOfRangeNode) {
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {plan_for(2)}, false), InvariantError);
}

TEST_F(PlanIntegrityTest, RejectsDoubleBookedNode) {
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0), plan_for(0)}, false), InvariantError);
}

TEST_F(PlanIntegrityTest, RejectsPlanForPlacedNode) {
  ar_.nodes[0].placed = true;
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0)}, false), InvariantError);
}

TEST_F(PlanIntegrityTest, RejectsDegenerateWindow) {
  mlp::NodePlan bad = plan_for(0);
  bad.busy = 0;
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {bad}, false), InvariantError);
  bad = plan_for(0);
  bad.slack = -1;
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {bad}, false), InvariantError);
}

TEST_F(PlanIntegrityTest, RejectsDroppedStage) {
  // Full cover demanded but node 1 missing: the coalesced chain lost a stage.
  EXPECT_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0)}, true), InvariantError);
}

TEST_F(PlanIntegrityTest, PartialCoverAllowedForSingleNodePlanning) {
  EXPECT_NO_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0)}, false));
}

TEST_F(PlanIntegrityTest, PlacedNodesNeedNoCover) {
  ar_.nodes[1].placed = true;
  EXPECT_NO_THROW(mlp::audit_plan_integrity(ar_, {plan_for(0)}, true));
}

// ---- toggle precedence ----------------------------------------------------

TEST(AuditToggle, SetEnabledWins) {
  audit::set_enabled(true);
  EXPECT_TRUE(audit::enabled());
  audit::set_enabled(false);
  EXPECT_FALSE(audit::enabled());
}

}  // namespace
}  // namespace vmlp
