// Failure injection: crash-schedule purity, orphan/retry healing through the
// driver, retry-budget abandonment, and graceful degradation of every scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/audit.h"
#include "loadgen/generator.h"
#include "mlp/vmlp.h"
#include "sched/cur_sched.h"
#include "sched/driver.h"
#include "sched/fair_sched.h"
#include "sched/failure.h"
#include "sched/full_profile.h"
#include "sched/part_profile.h"
#include "workloads/suite.h"

namespace vmlp::sched {
namespace {

FailureParams enabled_failure() {
  FailureParams f;
  f.enabled = true;
  f.crashes_per_second = 0.5;
  f.recovery_mean = 500 * kMsec;
  return f;
}

TEST(FailureSchedule, PureFunctionOfSeed) {
  const FailureParams f = enabled_failure();
  const auto a = build_failure_schedule(f, 2022, 60 * kSec, 20);
  const auto b = build_failure_schedule(f, 2022, 60 * kSec, 20);
  const auto c = build_failure_schedule(f, 7, 60 * kSec, 20);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].down_at, b[i].down_at);
    EXPECT_EQ(a[i].up_at, b[i].up_at);
  }
  // A different seed must actually move the windows.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !(a[i].machine == c[i].machine) || a[i].down_at != c[i].down_at;
  }
  EXPECT_TRUE(differs);
}

TEST(FailureSchedule, WindowsWellFormedAndNonOverlappingPerMachine) {
  FailureParams f = enabled_failure();
  f.crashes_per_second = 5.0;  // force collisions so the discard path runs
  f.recovery_mean = 2 * kSec;
  const std::size_t machines = 4;
  const SimTime horizon = 30 * kSec;
  const auto schedule = build_failure_schedule(f, 2022, horizon, machines);
  ASSERT_FALSE(schedule.empty());
  std::vector<SimTime> last_up(machines, 0);
  SimTime prev_down = 0;
  for (const auto& w : schedule) {
    ASSERT_LT(w.machine.value(), machines);
    EXPECT_GE(w.down_at, 0);
    EXPECT_LT(w.down_at, horizon);
    EXPECT_GT(w.up_at, w.down_at);
    EXPECT_GE(w.down_at, prev_down);  // sorted by crash time
    prev_down = w.down_at;
    // One machine's windows never overlap (the driver asserts up() flips).
    EXPECT_GE(w.down_at, last_up[w.machine.value()]);
    last_up[w.machine.value()] = w.up_at;
  }
}

TEST(FailureSchedule, DisabledOrDegenerateIsEmpty) {
  FailureParams off;
  EXPECT_TRUE(build_failure_schedule(off, 2022, 10 * kSec, 10).empty());
  FailureParams zero_rate = enabled_failure();
  zero_rate.crashes_per_second = 0.0;
  EXPECT_TRUE(build_failure_schedule(zero_rate, 2022, 10 * kSec, 10).empty());
  EXPECT_TRUE(build_failure_schedule(enabled_failure(), 2022, 10 * kSec, 0).empty());
}

// ---- driver integration ---------------------------------------------------

DriverParams failure_params() {
  DriverParams p;
  p.horizon = 10 * kSec;
  p.cluster.machine_count = 10;
  p.machines_per_rack = 5;
  p.seed = 2022;
  p.failure = enabled_failure();
  return p;
}

std::vector<loadgen::Arrival> small_stream(const app::Application& application, double qps,
                                           SimTime horizon) {
  loadgen::PatternParams pp;
  pp.horizon = horizon;
  pp.base_rate = qps;
  pp.max_rate = qps * 2;
  pp.peak_time = horizon / 2;
  const auto pattern = loadgen::WorkloadPattern::make(loadgen::PatternKind::kL1Pulse, pp, 3);
  Rng rng(3);
  return loadgen::generate_arrivals(pattern, loadgen::RequestMix::all(application), rng);
}

RunResult run_with_failures(IScheduler& sched, const DriverParams& p, double qps = 10.0) {
  auto application = workloads::make_benchmark_suite();
  SimulationDriver driver(*application, sched, p);
  driver.load_arrivals(small_stream(*application, qps, p.horizon));
  return driver.run();
}

/// Audit-on crash run: every conservation check in the purge path is live,
/// and the stream must still mostly complete (retries heal the lost work).
TEST(FailureDriver, CrashesOrphanAndRetriesHealUnderAudit) {
  const bool prev = audit::enabled();
  audit::set_enabled(true);
  FairSched sched;
  auto application = workloads::make_benchmark_suite();
  const DriverParams p = failure_params();
  SimulationDriver driver(*application, sched, p);
  driver.load_arrivals(small_stream(*application, 10.0, p.horizon));
  ASSERT_FALSE(driver.failure_schedule().empty());
  const RunResult r = driver.run();
  audit::set_enabled(prev);

  EXPECT_GT(r.machine_crashes, 0u);
  EXPECT_EQ(r.machine_crashes, driver.failure_schedule().size());
  EXPECT_GT(r.arrived, 50u);
  // Failures cost work but must not collapse the run.
  EXPECT_GT(static_cast<double>(r.completed), 0.8 * static_cast<double>(r.arrived));
  EXPECT_GT(r.goodput_rps, 0.0);
  // Crashed mid-flight work shows up either as orphaned executions or voided
  // placements, and each orphaned execution schedules a retry.
  const auto& c = driver.counters();
  EXPECT_GT(c.orphaned_running + c.orphaned_pending, 0u);
  EXPECT_EQ(c.retries_scheduled + c.retries_dropped, c.orphaned_running);
  EXPECT_EQ(c.machine_crashes, r.machine_crashes);
  EXPECT_LE(c.machine_recoveries, c.machine_crashes);
}

TEST(FailureDriver, DisabledFailureLeavesCountersZero) {
  FairSched sched;
  DriverParams p = failure_params();
  p.failure = FailureParams{};
  const RunResult r = run_with_failures(sched, p);
  EXPECT_EQ(r.machine_crashes, 0u);
  EXPECT_EQ(r.container_faults, 0u);
  EXPECT_EQ(r.invocation_timeouts, 0u);
  EXPECT_EQ(r.orphaned_nodes, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.abandoned_requests, 0u);
}

TEST(FailureDriver, ContainerFaultsRetryAndComplete) {
  FairSched sched;
  DriverParams p = failure_params();
  p.failure.crashes_per_second = 0.0;  // isolate the fault path
  p.failure.container_fault_prob = 0.2;
  const RunResult r = run_with_failures(sched, p);
  EXPECT_EQ(r.machine_crashes, 0u);
  EXPECT_GT(r.container_faults, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.orphaned_nodes, r.container_faults);
  EXPECT_GT(static_cast<double>(r.completed), 0.8 * static_cast<double>(r.arrived));
}

TEST(FailureDriver, InvocationTimeoutKillsLongRunners) {
  FairSched sched;
  DriverParams p = failure_params();
  p.failure.crashes_per_second = 0.0;
  p.failure.invocation_timeout = 10 * kMsec;  // media/compose stages run longer
  const RunResult r = run_with_failures(sched, p);
  EXPECT_GT(r.invocation_timeouts, 0u);
  EXPECT_GT(r.retries, 0u);
}

TEST(FailureDriver, RetryBudgetExhaustionAbandonsRequests) {
  FairSched sched;
  DriverParams p = failure_params();
  p.horizon = 5 * kSec;
  p.failure.crashes_per_second = 0.0;
  p.failure.container_fault_prob = 1.0;  // every execution dies mid-flight
  p.failure.max_retries = 1;
  const RunResult r = run_with_failures(sched, p, 4.0);
  EXPECT_GT(r.arrived, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_GT(r.abandoned_requests, 0u);
  EXPECT_DOUBLE_EQ(r.goodput_rps, 0.0);
  EXPECT_DOUBLE_EQ(r.qos_violation_rate, 1.0);
}

TEST(FailureDriver, DegradedCompletionsFeedOrphanLatency) {
  FairSched sched;
  DriverParams p = failure_params();
  p.failure.crashes_per_second = 0.0;
  p.failure.container_fault_prob = 0.3;
  const RunResult r = run_with_failures(sched, p);
  ASSERT_GT(r.container_faults, 0u);
  // Some faulted request completed after healing, so its (longer) latency
  // must be recorded.
  EXPECT_GT(r.orphaned_mean_latency_us, 0.0);
  EXPECT_GE(r.orphaned_p99_latency_us, r.orphaned_mean_latency_us);
}

/// Every scheme must degrade gracefully under the same crash schedule:
/// no crashes on down machines, no conservation violations, work completes.
TEST(FailureDriver, AllSchemesSurviveCrashesUnderAudit) {
  const bool prev = audit::enabled();
  audit::set_enabled(true);
  const DriverParams p = failure_params();

  std::vector<std::unique_ptr<IScheduler>> schemes;
  schemes.push_back(std::make_unique<FairSched>());
  schemes.push_back(std::make_unique<CurSched>());
  schemes.push_back(std::make_unique<PartProfile>());
  schemes.push_back(std::make_unique<FullProfile>());
  schemes.push_back(std::make_unique<mlp::VmlpScheduler>(mlp::VmlpParams{}, p.seed));

  for (auto& scheme : schemes) {
    SCOPED_TRACE(scheme->name());
    const RunResult r = run_with_failures(*scheme, p);
    EXPECT_GT(r.machine_crashes, 0u);
    EXPECT_GT(static_cast<double>(r.completed), 0.6 * static_cast<double>(r.arrived));
  }
  audit::set_enabled(prev);
}

/// v-MLP's orphan healing rides its relocation machinery, not blind retry.
TEST(FailureDriver, VmlpRoutesOrphansThroughRelocation) {
  const bool prev = audit::enabled();
  audit::set_enabled(true);
  DriverParams p = failure_params();
  p.failure.crashes_per_second = 1.0;
  mlp::VmlpScheduler vmlp(mlp::VmlpParams{}, p.seed);
  const RunResult r = run_with_failures(vmlp, p);
  audit::set_enabled(prev);
  EXPECT_GT(r.machine_crashes, 0u);
  EXPECT_GT(vmlp.orphan_relocations(), 0u);
}

}  // namespace
}  // namespace vmlp::sched
