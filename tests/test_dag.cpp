// Request DAGs: topological sorting, chain choices, reachability.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "app/dag.h"
#include "common/error.h"

namespace vmlp::app {
namespace {

bool respects_dependencies(const Dag& dag, const std::vector<std::size_t>& order) {
  std::vector<std::size_t> position(dag.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [from, to] : dag.edges()) {
    if (position[from] >= position[to]) return false;
  }
  return true;
}

Dag diamond() {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(Dag, SingleNode) {
  Dag d(1);
  EXPECT_TRUE(d.is_acyclic());
  EXPECT_EQ(d.topo_order(), std::vector<std::size_t>{0});
  EXPECT_EQ(d.roots(), std::vector<std::size_t>{0});
  EXPECT_EQ(d.sinks(), std::vector<std::size_t>{0});
  EXPECT_EQ(d.critical_path_length(), 1u);
}

TEST(Dag, ZeroNodesThrows) { EXPECT_THROW(Dag(0), InvariantError); }

TEST(Dag, EdgeValidation) {
  Dag d(3);
  EXPECT_THROW(d.add_edge(0, 3), InvariantError);
  EXPECT_THROW(d.add_edge(1, 1), InvariantError);
}

TEST(Dag, DiamondStructure) {
  const Dag d = diamond();
  EXPECT_TRUE(d.is_acyclic());
  EXPECT_EQ(d.roots(), std::vector<std::size_t>{0});
  EXPECT_EQ(d.sinks(), std::vector<std::size_t>{3});
  EXPECT_EQ(d.parents(3).size(), 2u);
  EXPECT_EQ(d.children(0).size(), 2u);
  EXPECT_EQ(d.critical_path_length(), 3u);
}

TEST(Dag, TopoOrderValid) {
  const Dag d = diamond();
  const auto order = d.topo_order();
  EXPECT_EQ(order.size(), 4u);
  EXPECT_TRUE(respects_dependencies(d, order));
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
}

TEST(Dag, TopoOrderCanonicalIsDeterministic) {
  const Dag d = diamond();
  EXPECT_EQ(d.topo_order(), d.topo_order());
  // Smallest-index tie-break: 1 before 2.
  EXPECT_EQ(d.topo_order(), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Dag, CycleDetected) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_THROW(d.topo_order(), InvariantError);
}

TEST(Dag, ChainChoicesAreDistinctValidLinearizations) {
  const Dag d = diamond();
  Rng rng(5);
  const auto chains = d.chain_choices(4, rng);
  ASSERT_GE(chains.size(), 1u);
  EXPECT_LE(chains.size(), 4u);
  std::set<std::vector<std::size_t>> unique(chains.begin(), chains.end());
  EXPECT_EQ(unique.size(), chains.size());
  for (const auto& chain : chains) {
    EXPECT_EQ(chain.size(), 4u);
    EXPECT_TRUE(respects_dependencies(d, chain));
  }
  // The diamond has exactly two linearizations; with 4 requested we should
  // find both.
  EXPECT_EQ(chains.size(), 2u);
}

TEST(Dag, ChainChoicesOfPureChainIsSingle) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  Rng rng(5);
  EXPECT_EQ(d.chain_choices(8, rng).size(), 1u);
}

TEST(Dag, ChainChoicesFirstIsCanonical) {
  const Dag d = diamond();
  Rng rng(9);
  EXPECT_EQ(d.chain_choices(3, rng).front(), d.topo_order());
}

TEST(Dag, Reaches) {
  const Dag d = diamond();
  EXPECT_TRUE(d.reaches(0, 3));
  EXPECT_TRUE(d.reaches(1, 3));
  EXPECT_TRUE(d.reaches(2, 2));  // self
  EXPECT_FALSE(d.reaches(3, 0));
  EXPECT_FALSE(d.reaches(1, 2));
}

TEST(Dag, DisconnectedComponents) {
  Dag d(4);
  d.add_edge(0, 1);
  // 2 and 3 isolated.
  EXPECT_EQ(d.roots().size(), 3u);
  EXPECT_EQ(d.sinks().size(), 3u);
  EXPECT_TRUE(respects_dependencies(d, d.topo_order()));
}

TEST(Dag, WideFanoutCriticalPath) {
  Dag d(6);
  for (std::size_t i = 1; i < 6; ++i) d.add_edge(0, i);
  EXPECT_EQ(d.critical_path_length(), 2u);
  Rng rng(3);
  // 5! = 120 linearizations exist; we should find several distinct ones.
  EXPECT_GE(d.chain_choices(6, rng).size(), 3u);
}

}  // namespace
}  // namespace vmlp::app
