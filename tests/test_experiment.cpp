// Experiment harness: factory, single runs, parallel grid determinism.
#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace vmlp::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.scheme = SchemeKind::kVmlp;
  c.pattern = loadgen::PatternKind::kL1Pulse;
  c.stream = StreamKind::kMixed;
  c.seed = 3;
  c.driver.horizon = 6 * kSec;
  c.driver.cluster.machine_count = 10;
  c.pattern_params.base_rate = 16.0;
  c.pattern_params.max_rate = 48.0;
  c.pattern_params.peak_time = 3 * kSec;
  return c;
}

TEST(Experiment, SchemeNamesAndFactory) {
  EXPECT_EQ(all_schemes().size(), 5u);
  for (SchemeKind s : all_schemes()) {
    auto sched = make_scheduler(s);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), scheme_name(s));
  }
}

TEST(Experiment, StreamNames) {
  EXPECT_STREQ(stream_name(StreamKind::kLowVr), "low-Vr");
  EXPECT_STREQ(stream_name(StreamKind::kHighRatio), "high-ratio");
}

TEST(Experiment, SingleRunProducesResults) {
  const ExperimentResult r = run_experiment(small_config());
  EXPECT_GT(r.run.arrived, 50u);
  EXPECT_GT(r.run.completed, 0u);
  EXPECT_GE(r.run.qos_violation_rate, 0.0);
  EXPECT_LE(r.run.qos_violation_rate, 1.0);
  EXPECT_FALSE(r.utilization_series.empty());
  for (double u : r.utilization_series) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

// The admission fast path (indexed flat ledger + probe pruning + memoized
// estimates) must be decision-invisible: the same cell run against the legacy
// map-backed ledger with the fast path off yields the same headline metrics.
// tools/determinism_check claim 5 byte-compares the full streams; this is the
// cheap tier-1 canary.
TEST(Experiment, FastPathMatchesReferenceLedger) {
  ExperimentConfig fast = small_config();
  ExperimentConfig reference = small_config();
  reference.driver.cluster.legacy_ledger = true;
  reference.vmlp.admission_fast_path = false;
  const auto rf = run_experiment(fast);
  const auto rr = run_experiment(reference);
  EXPECT_GT(rf.run.placements, 0u);
  EXPECT_EQ(rf.run.placements, rr.run.placements);
  EXPECT_EQ(rf.run.completed, rr.run.completed);
  EXPECT_EQ(rf.run.unfinished, rr.run.unfinished);
  EXPECT_EQ(rf.run.p99_latency_us, rr.run.p99_latency_us);
  EXPECT_EQ(rf.run.mean_utilization, rr.run.mean_utilization);
  EXPECT_EQ(rf.run.qos_violation_rate, rr.run.qos_violation_rate);
}

TEST(Experiment, SeedsChangeOutcome) {
  ExperimentConfig a = small_config();
  ExperimentConfig b = small_config();
  b.seed = 4;
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_NE(ra.run.arrived, rb.run.arrived);
}

TEST(Experiment, QpsScaleScalesArrivals) {
  ExperimentConfig half = small_config();
  half.qps_scale = 0.5;
  const auto full = run_experiment(small_config());
  const auto halved = run_experiment(half);
  EXPECT_NEAR(static_cast<double>(halved.run.arrived) / static_cast<double>(full.run.arrived),
              0.5, 0.12);
}

TEST(Experiment, StreamsSelectCategories) {
  ExperimentConfig c = small_config();
  c.stream = StreamKind::kHighVr;
  const auto r = run_experiment(c);
  EXPECT_GT(r.run.arrived, 10u);
  c.stream = StreamKind::kHighRatio;
  c.high_ratio = 0.9;
  const auto r2 = run_experiment(c);
  EXPECT_GT(r2.run.arrived, 10u);
}

TEST(Experiment, GridMatchesSerialRuns) {
  // Parallel sweeps must be bit-identical to serial execution (one isolated
  // world per run).
  std::vector<ExperimentConfig> grid;
  for (SchemeKind s : {SchemeKind::kFairSched, SchemeKind::kVmlp}) {
    ExperimentConfig c = small_config();
    c.scheme = s;
    grid.push_back(c);
  }
  const auto parallel = run_grid(grid, 2);
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto serial = run_experiment(grid[i]);
    EXPECT_EQ(parallel[i].run.completed, serial.run.completed) << i;
    EXPECT_DOUBLE_EQ(parallel[i].run.p99_latency_us, serial.run.p99_latency_us) << i;
    EXPECT_DOUBLE_EQ(parallel[i].run.mean_utilization, serial.run.mean_utilization) << i;
  }
}

TEST(Experiment, ResultConfigEchoed) {
  ExperimentConfig c = small_config();
  c.scheme = SchemeKind::kCurSched;
  const auto r = run_experiment(c);
  EXPECT_EQ(r.config.scheme, SchemeKind::kCurSched);
  EXPECT_EQ(r.config.seed, c.seed);
}

}  // namespace
}  // namespace vmlp::exp
