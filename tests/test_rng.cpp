// Deterministic RNG: reproducibility, substreams, and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace vmlp {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkByLabelIsDeterministic) {
  Rng parent(7);
  Rng a = parent.fork("comm");
  Rng b = Rng(7).fork("comm");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForksAreIndependentStreams) {
  Rng parent(7);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkByIndexDiffers) {
  Rng parent(9);
  Rng a = parent.fork(std::uint64_t{0});
  Rng b = parent.fork(std::uint64_t{1});
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformInvertedBoundsThrow) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(3.0, 1.0), InvariantError);
  EXPECT_THROW(rng.uniform_int(3, 1), InvariantError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMeanCvMatches) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_cv(100.0, 0.3);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 100.0, 1.5);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.3, 0.02);
}

TEST(Rng, LognormalZeroCvIsConstant) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(42.0, 0.0), 42.0);
}

TEST(Rng, LognormalRejectsBadParams) {
  Rng rng(17);
  EXPECT_THROW(rng.lognormal_mean_cv(-1.0, 0.2), InvariantError);
  EXPECT_THROW(rng.lognormal_mean_cv(1.0, -0.2), InvariantError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 3.0), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(31);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexNeverReturnsZeroWeightTail) {
  // Regression: the floating-point-residue fallback used to return the last
  // *bucket*, which a trailing zero weight could occupy. Zero-weight entries
  // must be unreachable from every path.
  Rng rng(41);
  const std::vector<double> tail_zero{0.3, 0.7, 0.0, 0.0};
  for (int i = 0; i < 200000; ++i) {
    const std::size_t idx = rng.weighted_index(tail_zero);
    ASSERT_LT(idx, 2u) << "zero-weight tail entry sampled at draw " << i;
  }
  // Mixed zeros: only the positive-weight entries may appear.
  const std::vector<double> sparse{0.0, 1e-12, 0.0, 1e-12, 0.0};
  for (int i = 0; i < 20000; ++i) {
    const std::size_t idx = rng.weighted_index(sparse);
    ASSERT_TRUE(idx == 1 || idx == 3) << "idx=" << idx;
  }
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(31);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), InvariantError);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), InvariantError);
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), InvariantError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, HashLabelStable) {
  EXPECT_EQ(hash_label("comm"), hash_label("comm"));
  EXPECT_NE(hash_label("comm"), hash_label("exec"));
}

}  // namespace
}  // namespace vmlp
