// System-wide invariants, parameterized over (scheme × workload pattern):
// conservation of requests, span causality within the horizon, bounded
// utilization, clean teardown. These hold for every scheduling policy.
#include <gtest/gtest.h>

#include <tuple>

#include "exp/experiment.h"
#include "loadgen/generator.h"
#include "sched/driver.h"
#include "workloads/suite.h"

namespace vmlp::exp {
namespace {

using PropertyParam = std::tuple<SchemeKind, loadgen::PatternKind>;

class SchedulingInvariants : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static ExperimentConfig config() {
    ExperimentConfig c;
    c.scheme = std::get<0>(GetParam());
    c.pattern = std::get<1>(GetParam());
    c.stream = StreamKind::kMixed;
    c.seed = 17;
    c.driver.horizon = 8 * kSec;
    c.driver.cluster.machine_count = 8;
    c.pattern_params.base_rate = 20.0;
    c.pattern_params.max_rate = 60.0;
    c.pattern_params.peak_time = 4 * kSec;
    return c;
  }
};

TEST_P(SchedulingInvariants, RequestConservationAndBounds) {
  auto application = workloads::make_benchmark_suite();
  auto scheduler = make_scheduler(std::get<0>(GetParam()), {}, 17);
  const ExperimentConfig c = config();
  sched::DriverParams dp = c.driver;
  dp.seed = c.seed;
  loadgen::PatternParams pp = c.pattern_params;
  pp.horizon = dp.horizon;
  const auto pattern = loadgen::WorkloadPattern::make(c.pattern, pp, 5);
  Rng rng(5);
  const auto arrivals =
      loadgen::generate_arrivals(pattern, loadgen::RequestMix::all(*application), rng);

  sched::SimulationDriver driver(*application, *scheduler, dp);
  driver.load_arrivals(arrivals);
  const sched::RunResult result = driver.run();

  // Conservation: every arrival either completed or is accounted unfinished.
  EXPECT_EQ(result.arrived, arrivals.size());
  EXPECT_EQ(result.arrived, result.completed + result.unfinished);

  // Latency quantile ordering.
  if (result.completed > 0) {
    EXPECT_LE(result.p50_latency_us, result.p90_latency_us);
    EXPECT_LE(result.p90_latency_us, result.p99_latency_us);
    EXPECT_GT(result.p50_latency_us, 0.0);
  }

  // Utilization bounded.
  EXPECT_GE(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0);

  // Spans: within horizon, positive durations, causality per request DAG.
  for (const auto& span : driver.tracer().spans()) {
    EXPECT_GE(span.start, 0);
    EXPECT_LE(span.end, dp.horizon);
    EXPECT_GE(span.duration(), 0);
    EXPECT_TRUE(span.machine.valid());
    EXPECT_LT(span.machine.value(), dp.cluster.machine_count);
  }
  for (const auto* rec : driver.tracer().requests()) {
    const auto& rt = application->request(rec->type);
    const auto spans = driver.tracer().spans_of(rec->id);
    EXPECT_LE(spans.size(), rt.size());
    if (rec->finished()) {
      EXPECT_EQ(spans.size(), rt.size());
      // End-to-end latency covers the last span.
      for (const auto* s : spans) {
        EXPECT_LE(s->end, *rec->completion);
        EXPECT_GE(s->start, rec->arrival);
      }
    }
  }

  // Teardown: no containers and no residual future reservations.
  for (const auto& m : driver.cluster().machines()) {
    if (result.unfinished == 0) {
      EXPECT_EQ(m.container_count(), 0u);
      EXPECT_EQ(m.ledger().usage_at(dp.horizon + 100 * kSec), cluster::ResourceVector::zero());
    }
  }

  // Monitor ran for the whole horizon.
  EXPECT_GE(driver.cluster_monitor().sample_count(), 70u);
}

TEST_P(SchedulingInvariants, CompletionRateReasonableAtModerateLoad) {
  const auto result = run_experiment(config());
  EXPECT_GT(static_cast<double>(result.run.completed),
            0.85 * static_cast<double>(result.run.arrived));
}

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string s = scheme_name(std::get<0>(info.param));
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s + "_" + loadgen::pattern_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllPatterns, SchedulingInvariants,
    ::testing::Combine(::testing::Values(SchemeKind::kFairSched, SchemeKind::kCurSched,
                                         SchemeKind::kPartProfile, SchemeKind::kFullProfile,
                                         SchemeKind::kVmlp),
                       ::testing::Values(loadgen::PatternKind::kL1Pulse,
                                         loadgen::PatternKind::kL2Fluctuating,
                                         loadgen::PatternKind::kL3Periodic)),
    param_name);

}  // namespace
}  // namespace vmlp::exp
