// Workload models: SocialNetwork, TrainTicket, the combined suite, and the
// synthetic Alibaba trace.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "workloads/alibaba_trace.h"
#include "workloads/suite.h"

namespace vmlp::workloads {
namespace {

TEST(SocialNetwork, TwelveServicesThreeRequests) {
  SocialNetworkIds ids;
  auto sn = make_social_network(&ids);
  EXPECT_EQ(sn->service_count(), 12u);
  EXPECT_EQ(sn->request_count(), 3u);
  EXPECT_TRUE(ids.compose_post.valid());
}

TEST(SocialNetwork, TableVBands) {
  SocialNetworkIds ids;
  auto sn = make_social_network(&ids);
  EXPECT_EQ(sn->band(ids.compose_post), app::VolatilityBand::kHigh);
  EXPECT_EQ(sn->band(ids.read_home_timeline), app::VolatilityBand::kLow);
  EXPECT_EQ(sn->band(ids.read_user_timeline), app::VolatilityBand::kLow);
}

TEST(SocialNetwork, ComposePostIsFanOutFanIn) {
  SocialNetworkIds ids;
  auto sn = make_social_network(&ids);
  const auto& rt = sn->request(ids.compose_post);
  EXPECT_EQ(rt.size(), 9u);
  EXPECT_TRUE(rt.dag().is_acyclic());
  EXPECT_EQ(rt.dag().roots().size(), 1u);   // nginx
  EXPECT_EQ(rt.dag().sinks().size(), 1u);   // post-storage
  EXPECT_GT(rt.dag().critical_path_length(), 3u);
}

TEST(SocialNetwork, ReadPathsAreShortChains) {
  SocialNetworkIds ids;
  auto sn = make_social_network(&ids);
  EXPECT_LE(sn->request(ids.read_home_timeline).size(), 4u);
  EXPECT_LE(sn->request(ids.read_user_timeline).size(), 3u);
}

TEST(SocialNetwork, SlosArePositiveAndOrdered) {
  SocialNetworkIds ids;
  auto sn = make_social_network(&ids);
  // The heavyweight write path gets a larger latency budget than reads.
  EXPECT_GT(sn->request(ids.compose_post).slo(), sn->request(ids.read_user_timeline).slo());
}

TEST(TrainTicket, TwelveServicesTwoRequests) {
  TrainTicketIds ids;
  auto tt = make_train_ticket(&ids);
  EXPECT_EQ(tt->service_count(), 12u);
  EXPECT_EQ(tt->request_count(), 2u);
}

TEST(TrainTicket, TableVBands) {
  TrainTicketIds ids;
  auto tt = make_train_ticket(&ids);
  EXPECT_EQ(tt->band(ids.get_cheapest), app::VolatilityBand::kHigh);
  EXPECT_EQ(tt->band(ids.basic_search), app::VolatilityBand::kMid);
}

TEST(TrainTicket, GetCheapestIsDeepChain) {
  TrainTicketIds ids;
  auto tt = make_train_ticket(&ids);
  const auto& rt = tt->request(ids.get_cheapest);
  EXPECT_EQ(rt.dag().critical_path_length(), rt.size());  // pure chain
}

TEST(TrainTicket, Fig2ServicesPresent) {
  auto tt = make_train_ticket();
  for (const char* name : {"order", "seat", "travel", "route", "price", "basic"}) {
    EXPECT_TRUE(tt->find_service(name).has_value()) << name;
  }
  // "order" is the paper's worst-case variability example.
  const auto& order = tt->service(*tt->find_service("order"));
  EXPECT_EQ(order.cls.inner_variability, 3);
}

TEST(Suite, CombinesBothBenchmarks) {
  SuiteIds ids;
  auto suite = make_benchmark_suite(&ids);
  EXPECT_EQ(suite->service_count(), 24u);
  EXPECT_EQ(suite->request_count(), 5u);
  // All five Table V requests resolvable by name.
  for (const char* name : {"compose-post", "read-home-timeline", "read-user-timeline",
                           "getCheapest", "basicSearch"}) {
    EXPECT_TRUE(suite->find_request(name).has_value()) << name;
  }
}

TEST(Suite, CategoriesMatchTableV) {
  SuiteIds ids;
  auto suite = make_benchmark_suite(&ids);
  int high = 0, mid = 0, low = 0;
  for (const auto& rt : suite->requests()) {
    switch (suite->band(rt.id())) {
      case app::VolatilityBand::kHigh: ++high; break;
      case app::VolatilityBand::kMid: ++mid; break;
      case app::VolatilityBand::kLow: ++low; break;
    }
  }
  EXPECT_EQ(high, 2);  // compose-post, getCheapest
  EXPECT_EQ(mid, 1);   // basicSearch
  EXPECT_EQ(low, 2);   // both timeline reads
}

TEST(Suite, Deterministic) {
  auto a = make_benchmark_suite();
  auto b = make_benchmark_suite();
  ASSERT_EQ(a->request_count(), b->request_count());
  for (std::size_t i = 0; i < a->request_count(); ++i) {
    const RequestTypeId id(static_cast<std::uint32_t>(i));
    EXPECT_EQ(a->request(id).slo(), b->request(id).slo());
    EXPECT_DOUBLE_EQ(a->volatility(id), b->volatility(id));
  }
}

TEST(AlibabaTrace, ShapeAndBounds) {
  AlibabaTraceParams params;
  const auto trace = generate_alibaba_trace(params, 42);
  // 8 days of 5-minute samples.
  EXPECT_EQ(trace.sample_count(), 8u * 24u * 12u);
  for (double u : trace.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_NEAR(trace.mean(), params.base_utilization, 0.08);
}

TEST(AlibabaTrace, HasFrequentSurges) {
  const auto trace = generate_alibaba_trace({}, 42);
  // Fig. 3(b): "significant fluctuations ... many peaks caused by frequent
  // traffic surges". Expect at least one surge peak per day on average.
  EXPECT_GE(trace.peaks_above(0.7), 8u);
  EXPECT_GT(trace.max(), 0.75);
}

TEST(AlibabaTrace, Deterministic) {
  const auto a = generate_alibaba_trace({}, 7);
  const auto b = generate_alibaba_trace({}, 7);
  EXPECT_EQ(a.utilization, b.utilization);
  const auto c = generate_alibaba_trace({}, 8);
  EXPECT_NE(a.utilization, c.utilization);
}

TEST(AlibabaTrace, ParamsRespected) {
  AlibabaTraceParams params;
  params.days = 2;
  params.sample_interval = 60 * kSec;
  const auto trace = generate_alibaba_trace(params, 1);
  EXPECT_EQ(trace.sample_count(), 2u * 24u * 60u);
  EXPECT_EQ(trace.sample_interval, 60 * kSec);
}

TEST(AlibabaTrace, BadParamsThrow) {
  AlibabaTraceParams params;
  params.days = 0;
  EXPECT_THROW(generate_alibaba_trace(params, 1), InvariantError);
  params = {};
  params.surge_len_hi = 0;
  EXPECT_THROW(generate_alibaba_trace(params, 1), InvariantError);
}

TEST(AlibabaTrace, DiurnalPatternVisible) {
  AlibabaTraceParams params;
  params.noise_sigma = 0.0;
  params.surge_prob = 0.0;
  const auto trace = generate_alibaba_trace(params, 1);
  // Without noise the curve must still move (the diurnal component).
  double lo = 1.0, hi = 0.0;
  for (double u : trace.utilization) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi - lo, params.diurnal_amplitude);
}

}  // namespace
}  // namespace vmlp::workloads
