// Result-table rendering and format helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "exp/report.h"

namespace vmlp::exp {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Column start positions align: "value" column begins at the same offset
  // in header and rows.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row1.find('1'));
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(Table, RowAritxValidation) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), InvariantError);
  EXPECT_THROW(Table({}), InvariantError);
}

TEST(Table, RowsCounted) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Format, Doubles) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.5), "50.0%");
  EXPECT_EQ(fmt_percent(0.123, 2), "12.30%");
}

TEST(Format, Milliseconds) {
  EXPECT_EQ(fmt_ms(1500.0), "1.50ms");
  EXPECT_EQ(fmt_ms(1000000.0, 0), "1000ms");
}

TEST(Normalize, RegularAndDegenerate) {
  EXPECT_DOUBLE_EQ(normalize(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(normalize(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(normalize(5.0, 0.0), 999.0);
}

TEST(AsciiSeries, ScalesToMax) {
  const std::string s = ascii_series({0.0, 0.5, 1.0}, 3);
  EXPECT_EQ(s.find("█"), s.size() - std::string("█").size());
}

TEST(AsciiSeries, EmptyAndDownsampling) {
  EXPECT_TRUE(ascii_series({}, 10).empty());
  const std::string s = ascii_series(std::vector<double>(100, 1.0), 10);
  // 10 glyphs of 3 bytes (UTF-8 blocks).
  EXPECT_EQ(s.size(), 30u);
}

TEST(AsciiSeries, AllZeros) {
  const std::string s = ascii_series({0.0, 0.0}, 2);
  EXPECT_EQ(s, "  ");
}

TEST(Section, PrintsTitle) {
  std::ostringstream os;
  print_section("Fig. 10", os);
  EXPECT_NE(os.str().find("=== Fig. 10 ==="), std::string::npos);
}

}  // namespace
}  // namespace vmlp::exp
