// Tracing (Zipkin analogue) and the historical profile store.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "trace/profile_store.h"
#include "trace/tracer.h"

namespace vmlp::trace {
namespace {

TEST(Tracer, RequestLifecycle) {
  Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 100);
  EXPECT_EQ(tracer.request_count(), 1u);
  EXPECT_EQ(tracer.completed_count(), 0u);
  const RequestRecord* rec = tracer.find_request(RequestId(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->finished());

  tracer.on_request_completion(RequestId(1), 600);
  EXPECT_EQ(tracer.completed_count(), 1u);
  EXPECT_TRUE(rec->finished());
  EXPECT_EQ(rec->latency(), 500);
}

TEST(Tracer, DuplicateArrivalThrows) {
  Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  EXPECT_THROW(tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 1), InvariantError);
}

TEST(Tracer, CompletionErrors) {
  Tracer tracer;
  EXPECT_THROW(tracer.on_request_completion(RequestId(5), 10), InvariantError);
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 100);
  EXPECT_THROW(tracer.on_request_completion(RequestId(1), 50), InvariantError);  // before arrival
  tracer.on_request_completion(RequestId(1), 200);
  EXPECT_THROW(tracer.on_request_completion(RequestId(1), 300), InvariantError);  // twice
}

TEST(Tracer, SpansByRequestSorted) {
  Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  tracer.record_span(Span{RequestId(1), RequestTypeId(0), ServiceTypeId(2), InstanceId(1),
                          MachineId(0), 50, 80});
  tracer.record_span(Span{RequestId(1), RequestTypeId(0), ServiceTypeId(1), InstanceId(0),
                          MachineId(0), 10, 40});
  const auto spans = tracer.spans_of(RequestId(1));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->service, ServiceTypeId(1));
  EXPECT_EQ(spans[1]->service, ServiceTypeId(2));
  EXPECT_EQ(spans[0]->duration(), 30);
  EXPECT_TRUE(tracer.spans_of(RequestId(9)).empty());
}

TEST(Tracer, BackwardsSpanThrows) {
  Tracer tracer;
  EXPECT_THROW(tracer.record_span(Span{RequestId(1), RequestTypeId(0), ServiceTypeId(0),
                                       InstanceId(0), MachineId(0), 100, 50}),
               InvariantError);
}

TEST(Tracer, RequestsInArrivalOrder) {
  Tracer tracer;
  tracer.on_request_arrival(RequestId(3), RequestTypeId(0), 0);
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 5);
  const auto reqs = tracer.requests();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0]->id, RequestId(3));
  EXPECT_EQ(reqs[1]->id, RequestId(1));
}

TEST(Tracer, ReleaseRecyclesSlotsAndDropsTheRequest) {
  Tracer tracer;
  tracer.reserve(4);
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  tracer.on_request_arrival(RequestId(2), RequestTypeId(0), 1);
  for (SimTime t : {10, 30}) {
    tracer.record_span(Span{RequestId(1), RequestTypeId(0), ServiceTypeId(0), InstanceId(0),
                            MachineId(0), t, t + 5});
  }
  tracer.record_span(Span{RequestId(2), RequestTypeId(0), ServiceTypeId(1), InstanceId(1),
                          MachineId(0), 20, 25});
  tracer.on_request_completion(RequestId(1), 40);

  tracer.release_request(RequestId(1));
  // The released request is gone from every per-request view...
  EXPECT_EQ(tracer.find_request(RequestId(1)), nullptr);
  EXPECT_TRUE(tracer.spans_of(RequestId(1)).empty());
  ASSERT_EQ(tracer.requests().size(), 1u);
  EXPECT_EQ(tracer.requests()[0]->id, RequestId(2));
  // ...arrival/completion tallies keep counting the whole stream...
  EXPECT_EQ(tracer.request_count(), 2u);
  EXPECT_EQ(tracer.completed_count(), 1u);
  // ...and the flat view is invalid now that slots recycle in place.
  EXPECT_THROW(tracer.spans(), InvariantError);

  // New spans reuse the freed slots; the survivor's chain stays intact.
  tracer.on_request_arrival(RequestId(3), RequestTypeId(0), 50);
  for (SimTime t : {60, 80, 90}) {
    tracer.record_span(Span{RequestId(3), RequestTypeId(0), ServiceTypeId(2), InstanceId(2),
                            MachineId(1), t, t + 5});
  }
  EXPECT_EQ(tracer.spans_of(RequestId(3)).size(), 3u);
  ASSERT_EQ(tracer.spans_of(RequestId(2)).size(), 1u);
  EXPECT_EQ(tracer.spans_of(RequestId(2))[0]->start, 20);
  // Releasing an unknown id is a no-op.
  tracer.release_request(RequestId(99));
}

class ProfileStoreTest : public ::testing::Test {
 protected:
  static ExecutionCase make_case(SimDuration exec) {
    return ExecutionCase{{100, 100, 10}, 0.2, exec};
  }
  ServiceTypeId svc_{1};
  RequestTypeId req_{2};
};

TEST_F(ProfileStoreTest, EmptyQueriesReturnNullopt) {
  ProfileStore store;
  EXPECT_FALSE(store.has_history(svc_, req_));
  EXPECT_FALSE(store.max_slack(svc_, req_).has_value());
  EXPECT_FALSE(store.mean_exec(svc_, req_).has_value());
  EXPECT_FALSE(store.quantile_of_recent(svc_, req_, 0.5, 50).has_value());
  EXPECT_FALSE(store.mean_usage(svc_, req_).has_value());
  EXPECT_TRUE(store.exec_times(svc_, req_).empty());
}

TEST_F(ProfileStoreTest, MeanAndMax) {
  ProfileStore store;
  for (SimDuration t : {10, 20, 30}) store.record(svc_, req_, make_case(t));
  EXPECT_EQ(store.case_count(svc_, req_), 3u);
  EXPECT_EQ(*store.mean_exec(svc_, req_), 20);
  EXPECT_EQ(*store.max_slack(svc_, req_), 30);
}

TEST_F(ProfileStoreTest, KeysAreIndependent) {
  ProfileStore store;
  store.record(svc_, req_, make_case(10));
  store.record(ServiceTypeId(9), req_, make_case(99));
  EXPECT_EQ(*store.max_slack(svc_, req_), 10);
  EXPECT_EQ(*store.max_slack(ServiceTypeId(9), req_), 99);
  EXPECT_FALSE(store.has_history(svc_, RequestTypeId(7)));
}

TEST_F(ProfileStoreTest, RingEvictionOldestFirst) {
  ProfileStore store(4);
  for (SimDuration t = 1; t <= 6; ++t) store.record(svc_, req_, make_case(t * 10));
  EXPECT_EQ(store.case_count(svc_, req_), 4u);
  // Oldest two (10, 20) evicted.
  const auto times = store.exec_times(svc_, req_);
  EXPECT_EQ(times, (std::vector<SimDuration>{30, 40, 50, 60}));
  EXPECT_EQ(*store.mean_exec(svc_, req_), 45);
}

TEST_F(ProfileStoreTest, MeanUsageAveragesVectors) {
  ProfileStore store;
  store.record(svc_, req_, ExecutionCase{{100, 0, 0}, 0.1, 10});
  store.record(svc_, req_, ExecutionCase{{300, 0, 0}, 0.1, 10});
  EXPECT_NEAR(store.mean_usage(svc_, req_)->cpu, 200.0, 1e-9);
}

TEST_F(ProfileStoreTest, QuantileOfRecentWindow) {
  ProfileStore store;
  // 100 cases: 1..100.
  for (SimDuration t = 1; t <= 100; ++t) store.record(svc_, req_, make_case(t));
  // Most recent 10%: 91..100 — median 95 or 96.
  const auto q50 = *store.quantile_of_recent(svc_, req_, 0.5, 10.0);
  EXPECT_NEAR(static_cast<double>(q50), 95.5, 1.0);
  // Whole history median ~50.5.
  const auto q50_all = *store.quantile_of_recent(svc_, req_, 0.5, 100.0);
  EXPECT_NEAR(static_cast<double>(q50_all), 50.5, 1.0);
  // p99 of everything ~99.
  const auto q99 = *store.quantile_of_recent(svc_, req_, 0.99, 100.0);
  EXPECT_GE(q99, 98);
}

TEST_F(ProfileStoreTest, QuantileTakesAtLeastOne) {
  ProfileStore store;
  store.record(svc_, req_, make_case(42));
  EXPECT_EQ(*store.quantile_of_recent(svc_, req_, 0.99, 1.0), 42);
}

TEST_F(ProfileStoreTest, QuantileParamValidation) {
  ProfileStore store;
  store.record(svc_, req_, make_case(1));
  EXPECT_THROW((void)store.quantile_of_recent(svc_, req_, 1.5, 50), InvariantError);
  EXPECT_THROW((void)store.quantile_of_recent(svc_, req_, 0.5, 0.0), InvariantError);
  EXPECT_THROW((void)store.quantile_of_recent(svc_, req_, 0.5, 101.0), InvariantError);
}

TEST_F(ProfileStoreTest, CachedQuantileRefreshesAfterStaleness) {
  ProfileStore store;
  for (int i = 0; i < 10; ++i) store.record(svc_, req_, make_case(10));
  EXPECT_EQ(*store.quantile_of_recent(svc_, req_, 0.5, 100.0), 10);
  // Flood with much larger values: after the staleness window the cached
  // quantile must reflect them.
  for (std::uint64_t i = 0; i < 2 * ProfileStore::kCacheStaleness; ++i) {
    store.record(svc_, req_, make_case(1000));
  }
  EXPECT_EQ(*store.quantile_of_recent(svc_, req_, 0.5, 100.0), 1000);
}

TEST_F(ProfileStoreTest, CachedMaxRefreshes) {
  ProfileStore store(512);
  store.record(svc_, req_, make_case(10));
  EXPECT_EQ(*store.max_slack(svc_, req_), 10);
  for (std::uint64_t i = 0; i < 2 * ProfileStore::kCacheStaleness; ++i) {
    store.record(svc_, req_, make_case(500));
  }
  EXPECT_EQ(*store.max_slack(svc_, req_), 500);
}

TEST_F(ProfileStoreTest, IncrementalMeanMatchesRecomputeUnderEviction) {
  ProfileStore store(8);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    store.record(svc_, req_, make_case(rng.uniform_int(1, 1000)));
    const auto times = store.exec_times(svc_, req_);
    double sum = 0.0;
    for (auto t : times) sum += static_cast<double>(t);
    EXPECT_EQ(*store.mean_exec(svc_, req_),
              static_cast<SimDuration>(std::llround(sum / static_cast<double>(times.size()))));
  }
}

TEST_F(ProfileStoreTest, ZeroCapacityThrows) { EXPECT_THROW(ProfileStore(0), InvariantError); }

TEST_F(ProfileStoreTest, NegativeExecTimeThrows) {
  ProfileStore store;
  EXPECT_THROW(store.record(svc_, req_, make_case(-1)), InvariantError);
}

}  // namespace
}  // namespace vmlp::trace
