// ThreadPool: results, exceptions, parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace vmlp {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not run"; });
  pool.parallel_for(7, 3, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForOffsetRange) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, SubmitAfterDestructionPatternSafe) {
  // Destroying a pool with completed work must not hang.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(2);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
  }
}

}  // namespace
}  // namespace vmlp
