// ThreadPool: results, exceptions, parallel_for coverage — plus the
// InlineFunction task storage the pool and engine share.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/inline_function.h"
#include "common/thread_pool.h"

namespace vmlp {
namespace {

using Fn = InlineFunction<int()>;

TEST(InlineFunction, SmallCaptureStaysInline) {
  // The driver's typical closure ([this, rid, node] = 24 bytes) must not
  // allocate; that is the whole point of the 48-byte buffer.
  int a = 1;
  int b = 2;
  long c = 3;
  Fn f = [a, b, c, p = &a] { return a + b + static_cast<int>(c) + (p != nullptr); };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, LargeCaptureFallsBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 5;
  Fn f = [big] { return static_cast<int>(big[0]); };
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 5);
}

TEST(InlineFunction, MoveTransfersTargetAndEmptiesSource) {
  Fn f = [] { return 9; };
  Fn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move): post-move state is the test
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 9);
  f = std::move(g);
  EXPECT_EQ(f(), 9);
}

TEST(InlineFunction, HoldsMoveOnlyTargets) {
  auto owned = std::make_unique<int>(42);
  Fn f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), 42);
  Fn g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, EmptyInvokeThrows) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_THROW(f(), InvariantError);
  Fn g = [] { return 1; };
  g = nullptr;
  EXPECT_THROW(g(), InvariantError);
}

TEST(InlineFunction, DestroysTargetExactlyOnce) {
  auto count = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    Probe(std::shared_ptr<int> c) : count(std::move(c)) {}
    Probe(Probe&& o) noexcept = default;
    ~Probe() {
      if (count) ++*count;
    }
    int operator()() const { return 1; }
  };
  {
    InlineFunction<int()> f{Probe{count}};
    InlineFunction<int()> g = std::move(f);
    EXPECT_EQ(g(), 1);
  }
  // Moved-from probes carry a null shared_ptr, so only the live target counts.
  EXPECT_EQ(*count, 1);
}

TEST(InlineFunction, HeapTargetSurvivesMove) {
  std::array<long, 32> payload{};
  payload[31] = 77;
  InlineFunction<long()> f = [payload] { return payload[31]; };
  EXPECT_FALSE(f.is_inline());
  InlineFunction<long()> g = std::move(f);
  EXPECT_FALSE(g.is_inline());
  EXPECT_EQ(g(), 77);
}

TEST(ThreadPoolTask, ParallelForChunkClosureIsInline) {
  // parallel_for's chunk closure ([&state, &body, lo, hi] = 32 bytes) must
  // fit the Task buffer; if this fails the pool allocates per chunk again.
  struct ChunkShape {
    void* state;
    void* body;
    std::size_t lo;
    std::size_t hi;
  };
  static_assert(sizeof(ChunkShape) <= ThreadPool::Task::kInlineCapacity,
                "parallel_for chunk closures must stay inline");
  ThreadPool::Task t = [] {};
  EXPECT_TRUE(t.is_inline());
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not run"; });
  pool.parallel_for(7, 3, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForOffsetRange) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForDynamicCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for_dynamic(
      0, hits.size(), [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForDynamicLaneIdsAreDenseAndStable) {
  // Lane ids index per-lane state (arenas in trial_runner): every id must be
  // < min(range, thread_count) and an index must see exactly one lane.
  ThreadPool pool(4);
  const std::size_t n = 300;
  std::vector<std::atomic<std::size_t>> lane_of(n);
  for (auto& l : lane_of) l.store(n);  // sentinel: no valid lane equals n
  pool.parallel_for_dynamic(0, n, [&](std::size_t lane, std::size_t i) {
    EXPECT_LT(lane, pool.thread_count());
    lane_of[i].store(lane);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_LT(lane_of[i].load(), pool.thread_count()) << i;
}

TEST(ThreadPool, ParallelForDynamicFewerItemsThanThreads) {
  // lanes = min(n, thread_count): with 2 items on an 8-thread pool only
  // lanes 0 and 1 may appear (per-lane slot vectors are sized by that rule).
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for_dynamic(0, 2, [&](std::size_t lane, std::size_t) {
    EXPECT_LT(lane, 2u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelForDynamicEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_dynamic(5, 5, [](std::size_t, std::size_t) { FAIL() << "must not run"; });
  pool.parallel_for_dynamic(7, 3, [](std::size_t, std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForDynamicOffsetRange) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for_dynamic(10, 20, [&](std::size_t, std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ThreadPool, ParallelForDynamicRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_dynamic(0, 100,
                                         [](std::size_t, std::size_t i) {
                                           if (i == 37) throw std::logic_error("bad index");
                                         }),
               std::logic_error);
  // The pool must stay usable after a throwing sweep.
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ShutdownUnderContentionDrainsEveryAcceptedTask) {
  // Destroy pools while producer threads are mid-submit: every task whose
  // submit() succeeded must run exactly once, none may be dropped on the
  // shutdown path. Run under the tsan preset this doubles as a race probe.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::atomic<int> submitted{0};
    {
      ThreadPool pool(4);
      std::vector<std::thread> producers;
      producers.reserve(4);
      for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&] {
          for (int i = 0; i < 50; ++i) {
            try {
              (void)pool.submit([&ran] { ran.fetch_add(1); });
              submitted.fetch_add(1);
            } catch (const std::runtime_error&) {
              return;  // pool is stopping; acceptable
            }
          }
        });
      }
      for (auto& t : producers) t.join();
    }  // destructor races with the workers draining the queue
    EXPECT_EQ(ran.load(), submitted.load()) << "round " << round;
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  // Reach into the shutdown path indirectly: a pool being destroyed flags
  // stopping_; a fresh pool must still accept work afterwards.
  { ThreadPool dying(1); }
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForThrowingBodyLeavesPoolUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [](std::size_t i) {
                                     if (i % 16 == 13) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
  }
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, SubmitAfterDestructionPatternSafe) {
  // Destroying a pool with completed work must not hang.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(2);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
  }
}

}  // namespace
}  // namespace vmlp
