// Cluster monitor: periodic sampling and series accumulation.
#include <gtest/gtest.h>

#include "common/error.h"
#include "monitor/monitor.h"

namespace vmlp::monitor {
namespace {

cluster::ClusterParams params() {
  cluster::ClusterParams p;
  p.machine_count = 2;
  p.machine_capacity = {1000, 1000, 1000};
  return p;
}

TEST(Monitor, ManualSampling) {
  cluster::Cluster clustr(params());
  ClusterMonitor monitor(clustr, 100 * kMsec, kSec, 10 * kSec);
  monitor.sample(0);
  EXPECT_EQ(monitor.sample_count(), 1u);
  EXPECT_DOUBLE_EQ(monitor.latest().overall, 0.0);

  clustr.machine(MachineId(0)).add_container(ContainerId(0), InstanceId(0), {500, 500, 500},
                                             {500, 500, 500});
  monitor.sample(kSec);
  // One of two machines at 50% on all three dims: U = 1.5 / 6 = 0.25.
  EXPECT_NEAR(monitor.latest().overall, 0.25, 1e-12);
  EXPECT_EQ(monitor.latest().time, kSec);
  EXPECT_NEAR(monitor.mean_overall(), 0.125, 1e-12);
}

TEST(Monitor, PerResourceSeries) {
  cluster::Cluster clustr(params());
  ClusterMonitor monitor(clustr, 100 * kMsec, kSec, 10 * kSec);
  clustr.machine(MachineId(0)).add_container(ContainerId(0), InstanceId(0), {1000, 0, 0},
                                             {1000, 0, 0});
  monitor.sample(500 * kMsec);
  EXPECT_NEAR(monitor.cpu_series().mean(0), 0.5, 1e-12);  // 1000 of 2000 total
  EXPECT_NEAR(monitor.mem_series().mean(0), 0.0, 1e-12);
}

TEST(Monitor, AttachSamplesPeriodically) {
  cluster::Cluster clustr(params());
  sim::Engine engine;
  ClusterMonitor monitor(clustr, 250 * kMsec, kSec, 10 * kSec);
  monitor.attach(engine);
  engine.run_until(2 * kSec);
  // Samples at 0, 250ms, ..., 2000ms inclusive.
  EXPECT_EQ(monitor.sample_count(), 9u);
}

TEST(Monitor, BadPeriodThrows) {
  cluster::Cluster clustr(params());
  EXPECT_THROW(ClusterMonitor(clustr, 0, kSec, kSec), InvariantError);
}

TEST(Monitor, SeriesBucketsAverageSamples) {
  cluster::Cluster clustr(params());
  ClusterMonitor monitor(clustr, 100 * kMsec, kSec, 5 * kSec);
  clustr.machine(MachineId(0)).add_container(ContainerId(0), InstanceId(0), {600, 600, 600},
                                             {600, 600, 600});
  monitor.sample(100 * kMsec);
  monitor.sample(200 * kMsec);
  const auto series = monitor.overall_series().mean_series();
  ASSERT_EQ(series.size(), 5u);
  EXPECT_NEAR(series[0], 0.3, 1e-12);  // 1.8 utilization-sum over 6 dims per sample
  EXPECT_DOUBLE_EQ(series[3], 0.0);
}

}  // namespace
}  // namespace vmlp::monitor
