// InterfaceLayer (Table III analogue) and the shared estimation helpers.
#include <gtest/gtest.h>

#include <memory>

#include "mlp/interface_layer.h"
#include "sched/common.h"
#include "sched/driver.h"
#include "workloads/suite.h"

namespace vmlp::mlp {
namespace {

class ProbeScheduler : public sched::IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "probe"; }
  void on_request_arrival(RequestId id) override {
    if (hook) hook(id);
  }
  void on_node_unblocked(RequestId, std::size_t) override {}
  void on_tick() override {}
  std::function<void(RequestId)> hook;
};

sched::DriverParams params() {
  sched::DriverParams p;
  p.horizon = 5 * kSec;
  p.cluster.machine_count = 4;
  p.machines_per_rack = 2;
  p.seed = 81;
  return p;
}

TEST(InterfaceLayer, ForwardsMonitorsAndMetadata) {
  auto application = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, params());
  InterfaceLayer iface(driver);

  EXPECT_EQ(iface.now(), 0);
  EXPECT_EQ(iface.cluster().machine_count(), 4u);
  EXPECT_DOUBLE_EQ(iface.machine_load(MachineId(0)), 0.0);
  EXPECT_EQ(&iface.application(), application.get());
  EXPECT_GT(iface.expected_ingress(), 0);
  EXPECT_LT(iface.expected_comm(MachineId(0), MachineId(0)),
            iface.expected_comm(MachineId(0), MachineId(3)));
  EXPECT_TRUE(iface.running_on(MachineId(0)).empty());
  EXPECT_TRUE(iface.active_requests().empty());

  const auto compose = *application->find_request("compose-post");
  EXPECT_NEAR(iface.volatility(compose), application->volatility(compose), 1e-12);
  // Warmup populated the profile store visible through the layer.
  EXPECT_TRUE(iface.profiles().has_history(
      application->request(compose).nodes()[0].service, compose));
}

TEST(InterfaceLayer, ControllersActuate) {
  auto application = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, params());
  InterfaceLayer iface(driver);

  bool checked = false;
  probe.hook = [&](RequestId id) {
    const auto& rt = driver.find_request(id)->runtime.type();
    const auto& svc = driver.application().service(rt.nodes()[0].service);
    iface.place(id, 0, MachineId(1), svc.demand, driver.now(), 20 * kMsec);
    EXPECT_TRUE(driver.find_request(id)->nodes[0].placed);
    iface.release_reservation(id, 0);
    EXPECT_FALSE(driver.find_request(id)->nodes[0].has_reservation);
    checked = true;
  };
  driver.load_arrivals({{kMsec, *application->find_request("read-user-timeline")}});
  driver.run();
  EXPECT_TRUE(checked);
}

TEST(Estimates, MeanExecUsesProfileThenFallsBack) {
  auto application = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  // With warmup disabled the estimate must fall back to nominal × scale.
  sched::DriverParams p = params();
  p.profile_warmup = 0;
  sched::SimulationDriver driver(*application, probe, p);

  const auto compose = *application->find_request("compose-post");
  const auto& rt = application->request(compose);
  const auto& svc0 = application->service(rt.nodes()[0].service);
  const SimDuration fallback = sched::estimate_mean_exec(driver, rt, 0);
  EXPECT_NEAR(static_cast<double>(fallback),
              static_cast<double>(svc0.nominal_time) * rt.nodes()[0].time_scale,
              static_cast<double>(svc0.nominal_time) * 0.01);

  // Feed a manual history; the estimate must switch to it.
  for (int i = 0; i < 8; ++i) {
    driver.profiles().record(rt.nodes()[0].service, compose, {{1, 1, 1}, 0.1, 99 * kMsec});
  }
  EXPECT_EQ(sched::estimate_mean_exec(driver, rt, 0), 99 * kMsec);
}

TEST(Estimates, WarmupMakesEstimatesFinite) {
  auto application = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, params());
  for (const auto& rt : application->requests()) {
    for (std::size_t n = 0; n < rt.size(); ++n) {
      const SimDuration est = sched::estimate_mean_exec(driver, rt, n);
      EXPECT_GT(est, 0);
      EXPECT_LT(est, kSec);
    }
  }
}

}  // namespace
}  // namespace vmlp::mlp
