// File-level IO paths: config files, arrival-trace files, export files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/config.h"
#include "common/error.h"
#include "loadgen/replay.h"
#include "trace/export.h"
#include "workloads/suite.h"

namespace vmlp {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/vmlp_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileIo, ConfigRoundTripThroughDisk) {
  TempFile file("config.ini");
  {
    std::ofstream out(file.path());
    out << "# comment\n[run]\nscheme = v-MLP\nqps_scale = 1.5\n[cluster]\nmachines = 42\n";
  }
  const Config cfg = Config::parse_file(file.path());
  EXPECT_EQ(cfg.get_string("run.scheme", ""), "v-MLP");
  EXPECT_DOUBLE_EQ(cfg.get_double("run.qps_scale", 0.0), 1.5);
  EXPECT_EQ(cfg.get_int("cluster.machines", 0), 42);
}

TEST(FileIo, ArrivalTraceRoundTripThroughDisk) {
  auto application = workloads::make_benchmark_suite();
  TempFile file("arrivals.csv");
  std::vector<loadgen::Arrival> arrivals;
  for (int i = 0; i < 50; ++i) {
    arrivals.push_back({i * 1000, RequestTypeId(static_cast<std::uint32_t>(i % 5))});
  }
  loadgen::save_arrivals_csv_file(arrivals, *application, file.path());
  const auto loaded = loadgen::load_arrivals_csv_file(*application, file.path());
  ASSERT_EQ(loaded.size(), arrivals.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].time, arrivals[i].time);
    EXPECT_EQ(loaded[i].type, arrivals[i].type);
  }
}

TEST(FileIo, SpanExportWritesValidFile) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  tracer.record_span({RequestId(1), RequestTypeId(0), ServiceTypeId(0), InstanceId(0),
                      MachineId(0), 10, 20});
  TempFile file("spans.json");
  trace::export_spans_json_file(tracer, *application, file.path());
  std::ifstream in(file.path());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"traceId\""), std::string::npos);
  // Balanced brackets at the shallow level.
  EXPECT_EQ(content.back(), '\n');
  EXPECT_EQ(content[content.size() - 2], ']');
}

TEST(FileIo, RequestCsvExportWritesHeader) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  TempFile file("reqs.csv");
  trace::export_requests_csv_file(tracer, *application, file.path());
  std::ifstream in(file.path());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "request_id,type,arrival_us,completion_us,latency_us");
}

}  // namespace
}  // namespace vmlp
