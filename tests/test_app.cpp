// Application model: volatility, builders, execution model, runtime state.
#include <gtest/gtest.h>

#include <cmath>

#include "app/application.h"
#include "app/exec_model.h"
#include "app/request_runtime.h"
#include "app/volatility.h"
#include "common/error.h"
#include "stats/summary.h"

namespace vmlp::app {
namespace {

TEST(Volatility, FormulaMatchesPaper) {
  // V_r = α Σ I·S·C / n, α = 1/27.
  std::vector<ServiceClass> all_max(4, ServiceClass{3, 3, 3});
  EXPECT_NEAR(request_volatility(all_max), 1.0, 1e-12);

  std::vector<ServiceClass> all_min(2, ServiceClass{1, 1, 1});
  EXPECT_NEAR(request_volatility(all_min), 1.0 / 27.0, 1e-12);

  std::vector<ServiceClass> mixed{{3, 3, 3}, {1, 1, 1}};
  EXPECT_NEAR(request_volatility(mixed), (27.0 + 1.0) / 2.0 / 27.0, 1e-12);
}

TEST(Volatility, Bands) {
  EXPECT_EQ(volatility_band(0.0), VolatilityBand::kLow);
  EXPECT_EQ(volatility_band(0.29), VolatilityBand::kLow);
  EXPECT_EQ(volatility_band(0.3), VolatilityBand::kMid);
  EXPECT_EQ(volatility_band(0.7), VolatilityBand::kMid);
  EXPECT_EQ(volatility_band(0.71), VolatilityBand::kHigh);
  EXPECT_EQ(volatility_band(1.0), VolatilityBand::kHigh);
}

TEST(Volatility, InvalidInputsThrow) {
  EXPECT_THROW(request_volatility({}), InvariantError);
  EXPECT_THROW(request_volatility({ServiceClass{0, 1, 1}}), InvariantError);
  EXPECT_THROW(request_volatility({ServiceClass{1, 4, 1}}), InvariantError);
  EXPECT_THROW(volatility_band(1.5), InvariantError);
}

TEST(Volatility, BandNames) {
  EXPECT_STREQ(band_name(VolatilityBand::kLow), "low");
  EXPECT_STREQ(band_name(VolatilityBand::kHigh), "high");
}

class ApplicationTest : public ::testing::Test {
 protected:
  Application app_{"test-app"};
  ServiceTypeId a_ = app_.add_service("a", {100, 100, 10}, 10 * kMsec, ServiceClass{1, 1, 1},
                                      ResourceIntensity::kCpu);
  ServiceTypeId b_ = app_.add_service("b", {200, 100, 10}, 20 * kMsec, ServiceClass{3, 3, 3},
                                      ResourceIntensity::kIo);
};

TEST_F(ApplicationTest, ServiceLookup) {
  EXPECT_EQ(app_.service_count(), 2u);
  EXPECT_EQ(app_.service(a_).name, "a");
  EXPECT_EQ(app_.find_service("b"), b_);
  EXPECT_FALSE(app_.find_service("zzz").has_value());
  EXPECT_THROW((void)app_.service(ServiceTypeId(9)), InvariantError);
}

TEST_F(ApplicationTest, DuplicateServiceNameThrows) {
  EXPECT_THROW(app_.add_service("a", {1, 1, 1}, 1, ServiceClass{1, 1, 1},
                                ResourceIntensity::kCpu),
               InvariantError);
}

TEST_F(ApplicationTest, InvalidServiceThrows) {
  EXPECT_THROW(app_.add_service("bad-class", {1, 1, 1}, 1, ServiceClass{0, 1, 1},
                                ResourceIntensity::kCpu),
               InvariantError);
  EXPECT_THROW(app_.add_service("bad-time", {1, 1, 1}, 0, ServiceClass{1, 1, 1},
                                ResourceIntensity::kCpu),
               InvariantError);
  EXPECT_THROW(app_.add_service("bad-demand", {0, 0, 0}, 1, ServiceClass{1, 1, 1},
                                ResourceIntensity::kCpu),
               InvariantError);
}

TEST_F(ApplicationTest, RequestBuilderChain) {
  auto builder = app_.build_request("r");
  builder.node(a_).node(b_).node(a_, 2.0).chain({0, 1, 2}).slo(500 * kMsec);
  const RequestTypeId id = builder.commit();
  const RequestType& rt = app_.request(id);
  EXPECT_EQ(rt.size(), 3u);
  EXPECT_EQ(rt.dag().edge_count(), 2u);
  EXPECT_EQ(rt.slo(), 500 * kMsec);
  EXPECT_DOUBLE_EQ(rt.nodes()[2].time_scale, 2.0);
  EXPECT_EQ(app_.find_request("r"), id);
}

TEST_F(ApplicationTest, DefaultSloDerivedFromCriticalPath) {
  app_.set_slo_factor(5.0);
  app_.set_slo_edge_comm(kMsec);
  auto builder = app_.build_request("r");
  builder.node(a_).node(b_).chain({0, 1});
  const RequestTypeId id = builder.commit();
  // nominal path = 10ms + 1ms comm + 20ms = 31ms; SLO = 5x.
  EXPECT_EQ(app_.request(id).slo(), 155 * kMsec);
}

TEST_F(ApplicationTest, NominalE2eUsesLongestPath) {
  auto builder = app_.build_request("fanout");
  builder.node(a_).node(a_).node(b_).edge(0, 1).edge(0, 2);
  const RequestTypeId id = builder.commit();
  // Longest path: a (10) + comm(2) + b (20) = 32ms.
  EXPECT_EQ(app_.nominal_e2e(id, 2 * kMsec), 32 * kMsec);
}

TEST_F(ApplicationTest, VolatilityOfRequest) {
  auto builder = app_.build_request("r");
  builder.node(a_).node(b_).chain({0, 1});
  const RequestTypeId id = builder.commit();
  EXPECT_NEAR(app_.volatility(id), (1.0 + 27.0) / 2.0 / 27.0, 1e-12);
  EXPECT_EQ(app_.band(id), VolatilityBand::kMid);
}

TEST_F(ApplicationTest, CyclicRequestThrows) {
  auto builder = app_.build_request("cyc");
  builder.node(a_).node(b_).edge(0, 1).edge(1, 0);
  EXPECT_THROW(builder.commit(), InvariantError);
}

TEST_F(ApplicationTest, DuplicateRequestNameThrows) {
  auto b1 = app_.build_request("dup");
  b1.node(a_);
  b1.commit();
  EXPECT_THROW(app_.build_request("dup"), InvariantError);
}

TEST(ExecModel, RateOneAtFullAllocation) {
  ExecModel model;
  MicroserviceType type{ServiceTypeId(0), "t", {1000, 500, 100}, 10 * kMsec,
                        ServiceClass{2, 2, 2}, ResourceIntensity::kCpu};
  EXPECT_DOUBLE_EQ(model.rate(type, type.demand), 1.0);
  EXPECT_DOUBLE_EQ(model.bottleneck(type, type.demand), 1.0);
  // Over-allocation does not speed beyond 1.
  EXPECT_DOUBLE_EQ(model.rate(type, type.demand * 2.0), 1.0);
}

TEST(ExecModel, RateDropsWithCapping) {
  ExecModel model;
  MicroserviceType type{ServiceTypeId(0), "t", {1000, 500, 100}, 10 * kMsec,
                        ServiceClass{2, 2, 2}, ResourceIntensity::kCpu};
  const double half = model.rate(type, {500, 500, 100});
  EXPECT_NEAR(half, 0.5, 1e-9);  // S=2: rate = f^-1
  const double quarter = model.rate(type, {250, 500, 100});
  EXPECT_NEAR(quarter, 0.25, 1e-9);
}

TEST(ExecModel, SensitivityClassesOrdering) {
  ExecModel model;
  const cluster::ResourceVector demand{1000, 500, 100};
  const cluster::ResourceVector half{500, 500, 100};
  MicroserviceType s1{ServiceTypeId(0), "s1", demand, 10 * kMsec, ServiceClass{1, 1, 1},
                      ResourceIntensity::kCpu};
  MicroserviceType s2{ServiceTypeId(1), "s2", demand, 10 * kMsec, ServiceClass{1, 2, 1},
                      ResourceIntensity::kCpu};
  MicroserviceType s3{ServiceTypeId(2), "s3", demand, 10 * kMsec, ServiceClass{1, 3, 1},
                      ResourceIntensity::kCpu};
  // Fig. 3(c): less sensitive services are barely affected; highly sensitive
  // ones are hit hardest.
  EXPECT_GT(model.rate(s1, half), model.rate(s2, half));
  EXPECT_GT(model.rate(s2, half), model.rate(s3, half));
  EXPECT_GT(model.rate(s1, half), 0.75);
}

TEST(ExecModel, InnerVariabilityClassesMatchFig2) {
  ExecModel model;
  Rng rng(3);
  const cluster::ResourceVector demand{1000, 500, 100};
  for (int cls = 1; cls <= 3; ++cls) {
    MicroserviceType type{ServiceTypeId(0), "t", demand, 10 * kMsec,
                          ServiceClass{cls, 1, 1}, ResourceIntensity::kCpu};
    stats::Summary s;
    for (int i = 0; i < 20000; ++i) {
      s.add(static_cast<double>(model.sample_work(type, 1.0, rng)));
    }
    EXPECT_NEAR(s.mean(), 10000.0, 200.0) << "I=" << cls;
    const double cv = s.cv();
    // Section II-A: low <15% worst-case variation, mid 15-45%, high >45%.
    if (cls == 1) { EXPECT_LT(cv, 0.06); }
    if (cls == 2) { EXPECT_NEAR(cv, 0.10, 0.02); }
    if (cls == 3) { EXPECT_GT(cv, 0.2); }
  }
}

TEST(ExecModel, RequestScaleMultiplies) {
  ExecModel model;
  Rng rng(5);
  MicroserviceType type{ServiceTypeId(0), "t", {1000, 500, 100}, 10 * kMsec,
                        ServiceClass{1, 1, 1}, ResourceIntensity::kCpu};
  stats::Summary s;
  for (int i = 0; i < 5000; ++i) {
    s.add(static_cast<double>(model.sample_work(type, 2.0, rng)));
  }
  EXPECT_NEAR(s.mean(), 20000.0, 500.0);
}

TEST(ExecModel, HighSensitivityContentionWidensDistribution) {
  ExecModel model;
  Rng rng1(7), rng2(7);
  MicroserviceType type{ServiceTypeId(0), "t", {1000, 500, 100}, 10 * kMsec,
                        ServiceClass{1, 3, 1}, ResourceIntensity::kCpu};
  stats::Summary full, capped;
  for (int i = 0; i < 20000; ++i) {
    full.add(static_cast<double>(model.sample_duration(type, 1.0, type.demand, rng1)));
    capped.add(static_cast<double>(model.sample_duration(type, 1.0, {500, 500, 100}, rng2)));
  }
  // Fig. 3(c) highly-variable class: capping raises mean AND variance.
  EXPECT_GT(capped.mean(), full.mean() * 1.8);
  EXPECT_GT(capped.stddev(), full.stddev() * 1.8);
}

TEST(ExecModel, SampleDurationPositive) {
  ExecModel model;
  Rng rng(9);
  MicroserviceType type{ServiceTypeId(0), "t", {10, 10, 10}, 1, ServiceClass{3, 3, 3},
                        ResourceIntensity::kCpu};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(model.sample_duration(type, 1.0, {1, 1, 1}, rng), 1);
  }
}

TEST(ExecModel, BadInputsThrow) {
  ExecModel model;
  Rng rng(1);
  MicroserviceType type{ServiceTypeId(0), "t", {10, 10, 10}, 10, ServiceClass{1, 1, 1},
                        ResourceIntensity::kCpu};
  EXPECT_THROW((void)model.sample_work(type, 0.0, rng), InvariantError);
  MicroserviceType no_time = type;
  no_time.nominal_time = 0;
  EXPECT_THROW((void)model.sample_work(no_time, 1.0, rng), InvariantError);
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    auto builder = app_.build_request("diamond");
    builder.node(s_).node(s_).node(s_).node(s_).edge(0, 1).edge(0, 2).edge(1, 3).edge(2, 3);
    type_ = builder.commit();
  }
  Application app_{"rt"};
  ServiceTypeId s_ = app_.add_service("s", {10, 10, 10}, 10, ServiceClass{1, 1, 1},
                                      ResourceIntensity::kCpu);
  RequestTypeId type_;
};

TEST_F(RuntimeTest, RootsStartReady) {
  RequestRuntime rt(app_.request(type_), RequestId(1), 100);
  EXPECT_EQ(rt.ready_nodes(), std::vector<std::size_t>{0});
  EXPECT_EQ(rt.node(0).ready_at, 100);
  EXPECT_FALSE(rt.finished());
}

TEST_F(RuntimeTest, LifecycleAndUnblocking) {
  RequestRuntime rt(app_.request(type_), RequestId(1), 0);
  rt.mark_placed(0, MachineId(0), InstanceId(0), 10);
  rt.mark_running(0, ContainerId(0), 12);
  auto unblocked = rt.mark_done(0, 20);
  EXPECT_EQ(unblocked.size(), 2u);  // 1 and 2

  for (std::size_t n : unblocked) rt.mark_ready(n, 21);
  rt.mark_placed(1, MachineId(1), InstanceId(1), 22);
  rt.mark_running(1, ContainerId(1), 23);
  EXPECT_TRUE(rt.mark_done(1, 30).empty());  // 3 still blocked by 2

  rt.mark_placed(2, MachineId(2), InstanceId(2), 22);
  rt.mark_running(2, ContainerId(2), 24);
  unblocked = rt.mark_done(2, 31);
  EXPECT_EQ(unblocked, std::vector<std::size_t>{3});

  rt.mark_ready(3, 32);
  rt.mark_placed(3, MachineId(0), InstanceId(3), 33);
  rt.mark_running(3, ContainerId(3), 34);
  rt.mark_done(3, 40);
  EXPECT_TRUE(rt.finished());
  EXPECT_EQ(rt.done_count(), 4u);
  EXPECT_EQ(rt.node(3).finished_at, 40);
}

TEST_F(RuntimeTest, IllegalTransitionsThrow) {
  RequestRuntime rt(app_.request(type_), RequestId(1), 0);
  EXPECT_THROW(rt.mark_running(0, ContainerId(0), 5), InvariantError);  // not placed
  EXPECT_THROW(rt.mark_done(0, 5), InvariantError);                     // not running
  EXPECT_THROW(rt.mark_ready(3, 5), InvariantError);  // dependencies unmet
  rt.mark_placed(0, MachineId(0), InstanceId(0), 1);
  EXPECT_THROW(rt.mark_placed(0, MachineId(0), InstanceId(0), 1), InvariantError);
}

TEST_F(RuntimeTest, IndependentOfActive) {
  RequestRuntime rt(app_.request(type_), RequestId(1), 0);
  // Root running: everything downstream depends on it.
  rt.mark_placed(0, MachineId(0), InstanceId(0), 1);
  rt.mark_running(0, ContainerId(0), 1);
  EXPECT_FALSE(rt.independent_of_active(1));
  EXPECT_FALSE(rt.independent_of_active(3));

  rt.mark_done(0, 5);
  // Now 1 and 2 are ready and independent of each other.
  rt.mark_ready(1, 5);
  rt.mark_ready(2, 5);
  EXPECT_TRUE(rt.independent_of_active(1));
  rt.mark_placed(1, MachineId(0), InstanceId(1), 6);
  // 2 is independent of 1 (no path), but 3 depends on placed node 1.
  EXPECT_TRUE(rt.independent_of_active(2));
  EXPECT_FALSE(rt.independent_of_active(3));
  // Active/done nodes are never candidates.
  EXPECT_FALSE(rt.independent_of_active(0));
  EXPECT_FALSE(rt.independent_of_active(1));
}

}  // namespace
}  // namespace vmlp::app
