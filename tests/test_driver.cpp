// SimulationDriver mechanism tests: placement, execution, communication,
// contention, reservations, limits, accounting.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "sched/driver.h"
#include "sched/scheduler.h"

namespace vmlp::sched {
namespace {

/// Scripted scheduler: places every node on machine 0 at full demand as soon
/// as the request arrives (chain pre-planning), or on unblock when
/// `plan_ahead` is false.
class ScriptedScheduler : public IScheduler {
 public:
  explicit ScriptedScheduler(bool plan_ahead = true) : plan_ahead_(plan_ahead) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }

  void on_request_arrival(RequestId id) override {
    ActiveRequest* ar = driver_->find_request(id);
    if (plan_ahead_) {
      for (std::size_t n = 0; n < ar->nodes.size(); ++n) place_node(id, n);
    } else {
      for (std::size_t n : ar->runtime.ready_nodes()) place_node(id, n);
    }
  }
  void on_node_unblocked(RequestId id, std::size_t node) override {
    if (!plan_ahead_) place_node(id, node);
  }
  void on_tick() override {}
  void on_late_invocation(RequestId id, std::size_t node) override {
    ++late_count;
    (void)id;
    (void)node;
  }
  void on_node_finished(RequestId, std::size_t) override { ++finished_nodes; }
  void on_request_finished(RequestId) override { ++finished_requests; }

  int late_count = 0;
  int finished_nodes = 0;
  int finished_requests = 0;
  MachineId target = MachineId(0);
  SimDuration reserve = 50 * kMsec;

 private:
  void place_node(RequestId id, std::size_t node) {
    ActiveRequest* ar = driver_->find_request(id);
    const auto& req_node = ar->runtime.type().nodes()[node];
    const auto& svc = driver_->application().service(req_node.service);
    driver_->place(id, node, target, svc.demand, driver_->now(), reserve);
  }
  bool plan_ahead_;
};

/// Two-stage chain application with deterministic-ish services.
std::unique_ptr<app::Application> make_chain_app() {
  auto application = std::make_unique<app::Application>("chain");
  const auto a = application->add_service("front", {1000, 256, 50}, 10 * kMsec,
                                          app::ServiceClass{1, 2, 1}, app::ResourceIntensity::kCpu);
  const auto b = application->add_service("back", {1000, 256, 50}, 20 * kMsec,
                                          app::ServiceClass{1, 2, 1}, app::ResourceIntensity::kCpu);
  auto builder = application->build_request("r");
  builder.node(a).node(b).chain({0, 1});
  builder.commit();
  return application;
}

DriverParams small_params() {
  DriverParams p;
  p.horizon = 5 * kSec;
  p.cluster.machine_count = 4;
  p.cluster.machine_capacity = {4000, 16384, 1000};
  p.machines_per_rack = 2;
  p.seed = 99;
  p.profile_warmup = 16;
  return p;
}

TEST(Driver, SingleRequestExecutesChain) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  const RunResult result = driver.run();

  EXPECT_EQ(result.arrived, 1u);
  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.unfinished, 0u);
  EXPECT_EQ(sched.finished_nodes, 2);
  EXPECT_EQ(sched.finished_requests, 1);
  // ~30ms of service + communication; far below the 5x SLO.
  EXPECT_DOUBLE_EQ(result.qos_violation_rate, 0.0);
  EXPECT_GT(result.p50_latency_us, 30000.0 * 0.8);
  EXPECT_LT(result.p50_latency_us, 30000.0 * 2.5);
}

TEST(Driver, SpanCausality) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  driver.run();

  const auto spans = driver.tracer().spans_of(RequestId(0));
  ASSERT_EQ(spans.size(), 2u);
  // Child cannot start before the parent ends plus >= 1us of communication.
  EXPECT_GT(spans[1]->start, spans[0]->end);
  EXPECT_GT(spans[0]->start, 10 * kMsec);  // after arrival + ingress
  EXPECT_GT(spans[0]->duration(), 0);
}

TEST(Driver, ProfileStoreFedByExecution) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  DriverParams params = small_params();
  params.profile_warmup = 0;
  SimulationDriver driver(*application, sched, params);
  EXPECT_FALSE(driver.profiles().has_history(ServiceTypeId(0), RequestTypeId(0)));
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  driver.run();
  EXPECT_EQ(driver.profiles().case_count(ServiceTypeId(0), RequestTypeId(0)), 1u);
  EXPECT_EQ(driver.profiles().case_count(ServiceTypeId(1), RequestTypeId(0)), 1u);
}

TEST(Driver, WarmupPopulatesProfiles) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  EXPECT_EQ(driver.profiles().case_count(ServiceTypeId(0), RequestTypeId(0)), 16u);
}

TEST(Driver, ContainersAndReservationsCleanedUp) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}, {20 * kMsec, RequestTypeId(0)}});
  driver.run();
  for (const auto& m : driver.cluster().machines()) {
    EXPECT_EQ(m.container_count(), 0u);
    // All reservations released: nothing left in the far future.
    EXPECT_EQ(m.ledger().usage_at(10 * kSec), cluster::ResourceVector::zero());
  }
}

TEST(Driver, OversubscriptionSlowsExecution) {
  // 8 concurrent requests pinned to one 4-core machine vs. one alone:
  // contention must stretch execution times.
  auto run_with = [](std::size_t n_requests) {
    auto application = make_chain_app();
    ScriptedScheduler sched(false);
    SimulationDriver driver(*application, sched, small_params());
    std::vector<loadgen::Arrival> arrivals;
    for (std::size_t i = 0; i < n_requests; ++i) {
      arrivals.push_back({10 * kMsec, RequestTypeId(0)});
    }
    driver.load_arrivals(arrivals);
    const RunResult r = driver.run();
    EXPECT_EQ(r.completed, n_requests);
    return r.mean_latency_us;
  };
  const double alone = run_with(1);
  const double crowded = run_with(8);
  EXPECT_GT(crowded, alone * 1.5);
}

TEST(Driver, LateInvocationDelivered) {
  // Plan the child to start immediately (planned_start=now at arrival), but
  // its parent takes ~10ms: the child is late and the hook must fire.
  auto application = make_chain_app();
  ScriptedScheduler sched(true);
  SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  driver.run();
  EXPECT_GE(sched.late_count, 1);
  EXPECT_GE(driver.counters().late_events, 1u);
}

TEST(Driver, AdjustLimitAccelerates) {
  // Start a node at a quarter of its demand, then raise the limit mid-run;
  // it must finish sooner than a run left capped.
  auto run_with = [](bool stretch) {
    auto application = std::make_unique<app::Application>("one");
    const auto svc = application->add_service("s", {2000, 256, 50}, 50 * kMsec,
                                              app::ServiceClass{1, 2, 1},
                                              app::ResourceIntensity::kCpu);
    auto builder = application->build_request("r");
    builder.node(svc);
    builder.commit();

    class CappedScheduler : public IScheduler {
     public:
      explicit CappedScheduler(bool stretch) : stretch_(stretch) {}
      [[nodiscard]] std::string name() const override { return "capped"; }
      void on_request_arrival(RequestId id) override {
        ActiveRequest* ar = driver_->find_request(id);
        const auto& svc = driver_->application().service(ar->runtime.type().nodes()[0].service);
        driver_->place(id, 0, MachineId(0), svc.demand * 0.25, driver_->now(), 300 * kMsec);
      }
      void on_node_unblocked(RequestId, std::size_t) override {}
      void on_node_started(RequestId id, std::size_t node) override {
        if (stretch_) {
          // The resource-stretch actuation path.
          const auto& svc =
              driver_->application().service(
                  driver_->find_request(id)->runtime.type().nodes()[node].service);
          driver_->adjust_limit(id, node, svc.demand);
        }
      }
      void on_tick() override {}

     private:
      bool stretch_;
    };

    CappedScheduler sched(stretch);
    DriverParams params;
    params.horizon = 3 * kSec;
    params.cluster.machine_count = 2;
    params.seed = 5;
    SimulationDriver driver(*application, sched, params);
    driver.load_arrivals({{kMsec, RequestTypeId(0)}});
    const RunResult r = driver.run();
    EXPECT_EQ(r.completed, 1u);
    return r.mean_latency_us;
  };
  const double capped = run_with(false);
  const double stretched = run_with(true);
  // S=2 at f=4 runs 4x slower; lifting the cap right at start restores ~1x.
  EXPECT_GT(capped, stretched * 2.0);
}

TEST(Driver, UnfinishedCountedAsViolations) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  DriverParams params = small_params();
  params.horizon = 12 * kMsec;  // too short for the ~30ms chain
  SimulationDriver driver(*application, sched, params);
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  const RunResult result = driver.run();
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.unfinished, 1u);
  EXPECT_DOUBLE_EQ(result.qos_violation_rate, 1.0);
}

TEST(Driver, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto application = make_chain_app();
    ScriptedScheduler sched;
    SimulationDriver driver(*application, sched, small_params());
    driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}, {15 * kMsec, RequestTypeId(0)}});
    return driver.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.p50_latency_us, b.p50_latency_us);
  EXPECT_DOUBLE_EQ(a.mean_utilization, b.mean_utilization);
}

TEST(Driver, PlacementValidation) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  EXPECT_THROW(driver.place(RequestId(99), 0, MachineId(0), {1, 1, 1}, 0, kMsec),
               InvariantError);
}

TEST(Driver, ArrivalOutsideHorizonThrows) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  EXPECT_THROW(driver.load_arrivals({{10 * kSec, RequestTypeId(0)}}), InvariantError);
}

TEST(Driver, RunTwiceThrows) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  driver.run();
  EXPECT_THROW(driver.run(), InvariantError);
}

TEST(Driver, ExpectedCommMatchesDistanceOrdering) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  const SimDuration same = driver.expected_comm(MachineId(0), MachineId(0));
  const SimDuration rack = driver.expected_comm(MachineId(0), MachineId(1));
  const SimDuration cross = driver.expected_comm(MachineId(0), MachineId(3));
  EXPECT_LT(same, rack);
  EXPECT_LT(rack, cross);
  EXPECT_GT(driver.expected_ingress(), 0);
}

TEST(Driver, MonitorSampledDuringRun) {
  auto application = make_chain_app();
  ScriptedScheduler sched;
  SimulationDriver driver(*application, sched, small_params());
  driver.load_arrivals({{10 * kMsec, RequestTypeId(0)}});
  driver.run();
  // 5s horizon, 100ms period -> ~50 samples.
  EXPECT_GE(driver.cluster_monitor().sample_count(), 45u);
  EXPECT_GE(driver.cluster_monitor().mean_overall(), 0.0);
  EXPECT_LE(driver.cluster_monitor().mean_overall(), 1.0);
}

}  // namespace
}  // namespace vmlp::sched
