// Discrete-event engine: ordering, cancellation, periodics, horizons.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/engine.h"

namespace vmlp::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(10, [] {});
  e.run_all();
  EXPECT_THROW(e.schedule_at(5, [] {}), InvariantError);
  EXPECT_THROW(e.schedule_after(-1, [] {}), InvariantError);
}

TEST(Engine, NullCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1, nullptr), InvariantError);
}

TEST(Engine, ScheduleAfterUsesNow) {
  Engine e;
  SimTime fired_at = -1;
  e.schedule_at(10, [&] {
    e.schedule_after(5, [&] { fired_at = e.now(); });
  });
  e.run_all();
  EXPECT_EQ(fired_at, 15);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto h = e.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(e.pending(h));
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.pending(h));
  e.run_all();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  auto h = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));
}

TEST(Engine, CancelInvalidHandle) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventHandle{}));
  EXPECT_FALSE(e.cancel(EventHandle{999}));
}

TEST(Engine, CancelAfterFiringReturnsFalse) {
  Engine e;
  auto h = e.schedule_at(10, [] {});
  e.run_all();
  EXPECT_FALSE(e.cancel(h));
}

TEST(Engine, EventsScheduledDuringExecution) {
  Engine e;
  std::vector<SimTime> times;
  e.schedule_at(10, [&] {
    times.push_back(e.now());
    e.schedule_at(20, [&] { times.push_back(e.now()); });
  });
  e.run_all();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  e.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 50);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 200);
}

TEST(Engine, RunUntilWithEmptyQueueAdvancesTime) {
  Engine e;
  e.run_until(42);
  EXPECT_EQ(e.now(), 42);
}

TEST(Engine, RunUntilBackwardsThrows) {
  Engine e;
  e.run_until(10);
  EXPECT_THROW(e.run_until(5), InvariantError);
}

TEST(Engine, EventAtHorizonBoundaryFires) {
  Engine e;
  bool ran = false;
  e.schedule_at(50, [&] { ran = true; });
  e.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] { ++fired; });
  e.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  std::vector<SimTime> times;
  e.schedule_periodic(10, 10, [&] { times.push_back(e.now()); });
  e.run_until(45);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Engine, PeriodicCancelStopsSeries) {
  Engine e;
  int fired = 0;
  auto h = e.schedule_periodic(10, 10, [&] { ++fired; });
  e.run_until(25);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(e.cancel(h));
  e.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int fired = 0;
  EventHandle h;
  h = e.schedule_periodic(10, 10, [&] {
    ++fired;
    if (fired == 3) e.cancel(h);
  });
  e.run_until(1000);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, PeriodicBadParamsThrow) {
  Engine e;
  EXPECT_THROW(e.schedule_periodic(0, 0, [] {}), InvariantError);
  EXPECT_THROW(e.schedule_periodic(0, 10, nullptr), InvariantError);
}

TEST(Engine, ExecutedEventCount) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run_all();
  EXPECT_EQ(e.executed_events(), 5u);
}

TEST(Engine, RescheduleMovesEventLater) {
  Engine e;
  std::vector<SimTime> fired;
  auto h = e.schedule_at(10, [&] { fired.push_back(e.now()); });
  e.schedule_at(20, [&] { fired.push_back(e.now()); });
  EXPECT_TRUE(e.reschedule(h, 30));
  e.run_all();
  EXPECT_EQ(fired, (std::vector<SimTime>{20, 30}));
}

TEST(Engine, RescheduleMovesEventEarlier) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(15, [&] { order.push_back(1); });
  auto h = e.schedule_at(40, [&] { order.push_back(2); });
  EXPECT_TRUE(e.reschedule(h, 5));
  e.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(e.now(), 15);
}

TEST(Engine, RescheduleToEqualTimeFiresAfterAlreadyQueued) {
  // A reschedule takes a fresh sequence number, so landing on an occupied
  // timestamp queues *behind* the events already there — byte-compatible
  // with the cancel+schedule_at idiom it replaces.
  Engine e;
  std::vector<int> order;
  auto h = e.schedule_at(5, [&] { order.push_back(0); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(10, [&] { order.push_back(2); });
  EXPECT_TRUE(e.reschedule(h, 10));
  e.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Engine, RescheduleAfterUsesNow) {
  Engine e;
  SimTime fired_at = -1;
  EventHandle h;
  h = e.schedule_at(100, [&] { fired_at = e.now(); });
  e.schedule_at(10, [&] { EXPECT_TRUE(e.reschedule_after(h, 7)); });
  e.run_all();
  EXPECT_EQ(fired_at, 17);
}

TEST(Engine, RescheduleDeadHandlesReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.reschedule(EventHandle{}, 5));
  EXPECT_FALSE(e.reschedule(EventHandle{999}, 5));
  auto cancelled = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(cancelled));
  EXPECT_FALSE(e.reschedule(cancelled, 20));
  auto fired = e.schedule_at(10, [] {});
  e.run_all();
  EXPECT_FALSE(e.reschedule(fired, 20));
}

TEST(Engine, RescheduleStaleHandleAfterSlotReuseReturnsFalse) {
  // Cancelling frees the slot; a new event may reuse it. The old handle's
  // generation no longer matches, so it must not move the new occupant.
  Engine e;
  auto old = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(old));
  bool ran = false;
  e.schedule_at(20, [&] { ran = true; });  // reuses the freed slot
  EXPECT_FALSE(e.reschedule(old, 500));
  e.run_until(30);
  EXPECT_TRUE(ran);
}

TEST(Engine, ReschedulePeriodicSeriesReturnsFalse) {
  Engine e;
  auto h = e.schedule_periodic(10, 10, [] {});
  EXPECT_FALSE(e.reschedule(h, 50));
  EXPECT_TRUE(e.cancel(h));
}

TEST(Engine, RescheduleIntoPastThrows) {
  Engine e;
  auto h = e.schedule_at(50, [] {});
  e.schedule_at(10, [&] { EXPECT_THROW(e.reschedule(h, 5), InvariantError); });
  e.run_all();
  EXPECT_THROW(e.reschedule_after(e.schedule_after(1, [] {}), -1), InvariantError);
}

TEST(Engine, RescheduleMatchesCancelAndRescheduleIdiom) {
  // Randomized equivalence: engine A uses reschedule, engine B the
  // cancel+schedule_at idiom it replaces. Identical op streams must produce
  // identical firing orders.
  Engine a;
  Engine b;
  std::vector<int> fired_a;
  std::vector<int> fired_b;
  std::vector<EventHandle> ha;
  std::vector<EventHandle> hb;
  for (int i = 0; i < 200; ++i) {
    const SimTime t = (i * 7919) % 500;
    ha.push_back(a.schedule_at(t, [&fired_a, i] { fired_a.push_back(i); }));
    hb.push_back(b.schedule_at(t, [&fired_b, i] { fired_b.push_back(i); }));
  }
  std::uint64_t x = 2022;
  for (int round = 0; round < 400; ++round) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG: test-local, not sim state
    const auto idx = static_cast<std::size_t>((x >> 33) % 200);
    const SimTime t = static_cast<SimTime>((x >> 20) % 500);
    const bool moved = a.reschedule(ha[idx], t);
    if (b.cancel(hb[idx])) {
      ASSERT_TRUE(moved);
      hb[idx] = b.schedule_at(t, [&fired_b, i = static_cast<int>(idx)] { fired_b.push_back(i); });
    } else {
      ASSERT_FALSE(moved);
    }
  }
  a.run_all();
  b.run_all();
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(a.executed_events(), b.executed_events());
}

TEST(Engine, SlotsAreRecycled) {
  // The event pool must reuse freed slots instead of growing without bound.
  Engine e;
  for (int round = 0; round < 1000; ++round) {
    e.schedule_after(1, [] {});
    e.step();
  }
  EXPECT_EQ(e.executed_events(), 1000u);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    e.schedule_at((i * 7919) % 1000, [&] {
      if (e.now() < last) monotone = false;
      last = e.now();
    });
  }
  e.run_all();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executed_events(), 10000u);
}

}  // namespace
}  // namespace vmlp::sim
