// Latency-decomposition analysis over traced runs.
#include <gtest/gtest.h>

#include <memory>

#include "exp/analysis.h"
#include "mlp/vmlp.h"
#include "sched/driver.h"
#include "workloads/suite.h"

namespace vmlp::exp {
namespace {

TEST(Analysis, HandMadeTraceDecomposes) {
  auto application = workloads::make_benchmark_suite();
  const auto type = *application->find_request("read-user-timeline");  // 3-chain
  const auto& rt = application->request(type);
  ASSERT_EQ(rt.size(), 3u);

  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(1), type, 1000);
  // ingress 500, spans 2000/3000/1000 with handoffs 400 and 600.
  tracer.record_span({RequestId(1), type, rt.nodes()[0].service, InstanceId(0), MachineId(0),
                      1500, 3500});
  tracer.record_span({RequestId(1), type, rt.nodes()[1].service, InstanceId(1), MachineId(1),
                      3900, 6900});
  tracer.record_span({RequestId(1), type, rt.nodes()[2].service, InstanceId(2), MachineId(2),
                      7500, 8500});
  tracer.on_request_completion(RequestId(1), 8500);

  const auto breakdown = analyze_request(tracer, *application, RequestId(1));
  ASSERT_TRUE(breakdown.has_value());
  EXPECT_EQ(breakdown->total, 7500);
  EXPECT_EQ(breakdown->ingress, 500);
  EXPECT_EQ(breakdown->execution, 2000 + 3000 + 1000);
  EXPECT_EQ(breakdown->handoff, 400 + 600);
  EXPECT_EQ(breakdown->dominant_stage, 1u);  // 3000us span
  // Components account for the whole latency on a pure chain.
  EXPECT_EQ(breakdown->ingress + breakdown->execution + breakdown->handoff, breakdown->total);
}

TEST(Analysis, UnfinishedRequestIsSkipped) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  EXPECT_FALSE(analyze_request(tracer, *application, RequestId(1)).has_value());
  EXPECT_FALSE(analyze_request(tracer, *application, RequestId(9)).has_value());
}

TEST(Analysis, EndToEndRunDecomposesEverything) {
  auto application = workloads::make_benchmark_suite();
  mlp::VmlpScheduler scheduler;
  sched::DriverParams params;
  params.horizon = 10 * kSec;
  params.cluster.machine_count = 10;
  params.machines_per_rack = 5;
  params.seed = 71;
  sched::SimulationDriver driver(*application, scheduler, params);
  std::vector<loadgen::Arrival> arrivals;
  for (int i = 0; i < 60; ++i) {
    arrivals.push_back({kMsec + i * 100 * kMsec,
                        RequestTypeId(static_cast<std::uint32_t>(i % application->request_count()))});
  }
  driver.load_arrivals(arrivals);
  const auto result = driver.run();

  const auto breakdowns = analyze_all(driver.tracer(), *application);
  ASSERT_FALSE(breakdowns.empty());
  std::size_t analyzed = 0;
  for (const auto& b : breakdowns) {
    analyzed += b.requests;
    EXPECT_GT(b.total.mean(), 0.0);
    EXPECT_GT(b.execution.mean(), 0.0);
    EXPECT_GE(b.handoff.mean(), 0.0);
    EXPECT_GE(b.ingress.mean(), 0.0);
    // Critical-path components cannot exceed total.
    EXPECT_LE(b.execution.mean() + b.handoff.mean() + b.ingress.mean(),
              b.total.mean() * 1.0 + 1.0);
    EXPECT_GE(b.handoff_share(), 0.0);
    EXPECT_LT(b.handoff_share(), 1.0);
    EXPECT_NE(b.dominant_service(*application), "-");
  }
  EXPECT_EQ(analyzed, result.completed);
}

TEST(Analysis, DominantServiceMatchesHeaviestStage) {
  auto application = workloads::make_benchmark_suite();
  mlp::VmlpScheduler scheduler;
  sched::DriverParams params;
  params.horizon = 8 * kSec;
  params.cluster.machine_count = 10;
  params.machines_per_rack = 5;
  params.seed = 72;
  sched::SimulationDriver driver(*application, scheduler, params);
  std::vector<loadgen::Arrival> arrivals;
  const auto cheapest = *application->find_request("getCheapest");
  for (int i = 0; i < 30; ++i) arrivals.push_back({kMsec + i * 150 * kMsec, cheapest});
  driver.load_arrivals(arrivals);
  driver.run();

  const auto breakdowns = analyze_all(driver.tracer(), *application);
  ASSERT_EQ(breakdowns.size(), 1u);
  // getCheapest's heaviest stages are travel (~30ms scaled) and order (25ms):
  // the dominant service must be one of the two heavyweights.
  const std::string dominant = breakdowns[0].dominant_service(*application);
  EXPECT_TRUE(dominant == "travel" || dominant == "order") << dominant;
}

}  // namespace
}  // namespace vmlp::exp
