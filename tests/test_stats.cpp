// Statistics substrate: Welford summaries, quantiles, histograms, series, QoS.
#include <gtest/gtest.h>

#include <cmath>

#include "common/audit.h"
#include "common/error.h"
#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/p2_quantile.h"
#include "stats/percentile.h"
#include "stats/qos.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace vmlp::stats {
namespace {

TEST(Summary, EmptyIsNan) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Summary, SampleVarianceUsesNMinusOne) {
  Summary s;
  s.add(1.0);
  EXPECT_TRUE(std::isnan(s.sample_variance()));
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Summary, CvOfConstantIsZero) {
  Summary s;
  s.add(4.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SampleSet, QuantileInterpolation) {
  SampleSet s;
  s.add_all({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(SampleSet, EmptyQuantileThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), InvariantError);
  EXPECT_THROW(s.mean(), InvariantError);
}

TEST(SampleSet, OutOfRangeQuantileThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), InvariantError);
  EXPECT_THROW(s.quantile(1.1), InvariantError);
}

TEST(SampleSet, QuantilesMonotone) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(std::cos(i) * 100.0);
  double prev = s.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SampleSet, AddAfterQuantileInvalidatesSortCache) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(SampleSet, FractionAboveAndCdf) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.fraction_above(3.0), 0.4);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(3.0), 0.6);
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(99.0), 1.0);
}

TEST(SampleSet, CdfPointsShape) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  const auto pts = s.cdf_points(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 100.0);
}

TEST(SampleSet, MergeCombines) {
  SampleSet a, b;
  a.add_all({1.0, 2.0});
  b.add_all({3.0, 4.0});
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);   // clamps to bin 0
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(10.0);   // clamps to bin 4
  h.add(100.0);  // clamps to bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, BadConstructionThrows) {
  EXPECT_THROW(Histogram(5.0, 1.0, 3), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

TEST(Histogram2D, RowFractions) {
  Histogram2D h(2, 0.0, 10.0, 5);
  h.add(0, 1.0);
  h.add(0, 1.5);
  h.add(0, 9.0);
  h.add(1, 5.0);
  EXPECT_DOUBLE_EQ(h.row_total(0), 3.0);
  EXPECT_DOUBLE_EQ(h.row_fraction(0, 0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.row_fraction(0, 4), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.row_fraction(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(h.row_fraction(1, 0), 0.0);
}

TEST(Histogram2D, OutOfRangeRowThrows) {
  Histogram2D h(2, 0.0, 1.0, 2);
  EXPECT_THROW(h.add(2, 0.5), InvariantError);
  EXPECT_THROW(h.count(0, 5), InvariantError);
}

TEST(TimeSeries, BucketMeans) {
  TimeSeries ts(kSec, 10 * kSec);
  ts.add(500 * kMsec, 2.0);
  ts.add(600 * kMsec, 4.0);
  ts.add(5 * kSec, 10.0);
  EXPECT_EQ(ts.bucket_count(), 10u);
  EXPECT_DOUBLE_EQ(ts.mean(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean(5), 10.0);
  EXPECT_DOUBLE_EQ(ts.mean(9), 0.0);
  EXPECT_EQ(ts.samples(0), 2u);
}

TEST(TimeSeries, DropsOutOfRangeSamples) {
  const bool prev = audit::enabled();
  audit::set_enabled(false);
  TimeSeries ts(kSec, 2 * kSec);
  ts.add(-5, 1.0);         // before the window
  ts.add(2 * kSec, 2.0);   // t == horizon: first time outside the last bucket
  ts.add(100 * kSec, 3.0); // far past
  ts.increment(-1);
  EXPECT_EQ(ts.samples(0), 0u);
  EXPECT_EQ(ts.samples(1), 0u);
  EXPECT_DOUBLE_EQ(ts.sum(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.sum(1), 0.0);
  EXPECT_EQ(ts.dropped(), 4u);
  ts.add(2 * kSec - 1, 5.0);  // last representable instant still lands
  EXPECT_EQ(ts.samples(1), 1u);
  EXPECT_EQ(ts.dropped(), 4u);
  audit::set_enabled(prev);
}

TEST(TimeSeries, OutOfRangeThrowsUnderAudit) {
  const bool prev = audit::enabled();
  audit::set_enabled(true);
  TimeSeries ts(kSec, 2 * kSec);
  EXPECT_THROW(ts.add(2 * kSec, 1.0), InvariantError);
  EXPECT_THROW(ts.add(-1, 1.0), InvariantError);
  EXPECT_THROW(ts.increment(3 * kSec), InvariantError);
  EXPECT_NO_THROW(ts.add(0, 1.0));
  EXPECT_NO_THROW(ts.add(2 * kSec - 1, 1.0));
  audit::set_enabled(prev);
}

TEST(TimeSeries, IncrementCountsSum) {
  TimeSeries ts(kSec, 3 * kSec);
  ts.increment(100);
  ts.increment(200, 2.0);
  EXPECT_DOUBLE_EQ(ts.sum(0), 3.0);
  const auto sums = ts.sum_series();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);
}

TEST(TimeSeries, BucketStarts) {
  TimeSeries ts(250 * kMsec, kSec);
  EXPECT_EQ(ts.bucket_count(), 4u);
  EXPECT_EQ(ts.bucket_start(2), 500 * kMsec);
}

// P² streaming estimates vs exact order statistics (satellite coverage): the
// estimator must stay within a few percent of SampleSet::quantile on light-
// and heavy-tailed streams at the quantiles the monitors actually track.
void check_p2_against_exact(const char* label, const std::vector<double>& xs, double q,
                            double rel_tol) {
  P2Quantile p2(q);
  SampleSet exact;
  for (double x : xs) {
    p2.add(x);
    exact.add(x);
  }
  const double want = exact.quantile(q);
  const double got = p2.value();
  ASSERT_GT(want, 0.0) << label;
  EXPECT_NEAR(got, want, rel_tol * want) << label << " q=" << q;
}

TEST(P2Quantile, TracksExactOnUniformStream) {
  Rng rng(2022);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.uniform(10.0, 110.0);
  for (double q : {0.5, 0.9, 0.99}) check_p2_against_exact("uniform", xs, q, 0.02);
}

TEST(P2Quantile, TracksExactOnLognormalStream) {
  Rng rng(2022);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.lognormal(1.0, 0.75);
  for (double q : {0.5, 0.9, 0.99}) check_p2_against_exact("lognormal", xs, q, 0.05);
}

TEST(P2Quantile, TracksExactOnParetoStream) {
  Rng rng(2022);
  std::vector<double> xs(20000);
  // alpha = 2.5: heavy tail but finite variance, the regime P² is rated for.
  for (double& x : xs) x = rng.pareto(1.0, 2.5);
  check_p2_against_exact("pareto", xs, 0.5, 0.05);
  check_p2_against_exact("pareto", xs, 0.9, 0.10);
  check_p2_against_exact("pareto", xs, 0.99, 0.25);
}

TEST(P2Quantile, FewerThanFiveSamplesIsExact) {
  // The pre-initialization path must agree with SampleSet's interpolation
  // bit-for-bit: both use pos = q * (n - 1) with linear interpolation.
  const std::vector<double> xs = {42.0, 7.0, 19.0, 88.0};
  for (std::size_t n = 1; n <= xs.size(); ++n) {
    for (double q : {0.5, 0.9, 0.99}) {
      P2Quantile p2(q);
      SampleSet exact;
      for (std::size_t i = 0; i < n; ++i) {
        p2.add(xs[i]);
        exact.add(xs[i]);
      }
      EXPECT_EQ(p2.count(), n);
      EXPECT_DOUBLE_EQ(p2.value(), exact.quantile(q)) << "n=" << n << " q=" << q;
    }
  }
}

TEST(P2Quantile, EmptyIsNanAndBadQThrows) {
  P2Quantile p2(0.5);
  EXPECT_TRUE(std::isnan(p2.value()));
  EXPECT_THROW(P2Quantile(0.0), InvariantError);
  EXPECT_THROW(P2Quantile(1.0), InvariantError);
}

TEST(Qos, ViolationAccounting) {
  QosTracker qos;
  const RequestTypeId t(0);
  qos.set_slo(t, 100 * kMsec);
  qos.record_completion(t, 50 * kMsec);   // ok
  qos.record_completion(t, 150 * kMsec);  // violation
  qos.record_unfinished(t);               // violation
  EXPECT_EQ(qos.completed(), 2u);
  EXPECT_EQ(qos.unfinished(), 1u);
  EXPECT_EQ(qos.violations(), 2u);
  EXPECT_EQ(qos.total(), 3u);
  EXPECT_NEAR(qos.violation_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Qos, ExactlyAtSloIsNotViolation) {
  QosTracker qos;
  const RequestTypeId t(1);
  qos.set_slo(t, 100);
  qos.record_completion(t, 100);
  EXPECT_EQ(qos.violations(), 0u);
}

TEST(Qos, UnknownTypeThrows) {
  QosTracker qos;
  EXPECT_THROW(qos.record_completion(RequestTypeId(9), 1), InvariantError);
  EXPECT_THROW(qos.slo(RequestTypeId(9)), InvariantError);
}

TEST(Qos, EmptyRateIsZero) {
  QosTracker qos;
  EXPECT_DOUBLE_EQ(qos.violation_rate(), 0.0);
}

TEST(Qos, LatenciesRecorded) {
  QosTracker qos;
  const RequestTypeId t(0);
  qos.set_slo(t, 1000);
  qos.record_completion(t, 10);
  qos.record_completion(t, 20);
  EXPECT_EQ(qos.latencies().count(), 2u);
  EXPECT_DOUBLE_EQ(qos.latencies().mean(), 15.0);
}

}  // namespace
}  // namespace vmlp::stats
