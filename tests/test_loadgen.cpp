// Workload patterns (Fig. 9) and arrival generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.h"
#include "loadgen/generator.h"
#include "loadgen/patterns.h"
#include "workloads/suite.h"

namespace vmlp::loadgen {
namespace {

PatternParams default_params() { return PatternParams{}; }

class PatternsTest : public ::testing::TestWithParam<PatternKind> {};

TEST_P(PatternsTest, RateBoundedByMax) {
  const auto pattern = WorkloadPattern::make(GetParam(), default_params(), 123);
  for (SimTime t = 0; t < pattern.params().horizon; t += 100 * kMsec) {
    const double r = pattern.rate_at(t);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, pattern.params().max_rate + 1e-9);
  }
}

TEST_P(PatternsTest, ZeroOutsideHorizon) {
  const auto pattern = WorkloadPattern::make(GetParam(), default_params(), 123);
  EXPECT_DOUBLE_EQ(pattern.rate_at(-1), 0.0);
  EXPECT_DOUBLE_EQ(pattern.rate_at(pattern.params().horizon), 0.0);
}

TEST_P(PatternsTest, PeakNearPeakTime) {
  // All patterns stress the cluster around t = 40 s (Fig. 11's peak instant).
  const auto pattern = WorkloadPattern::make(GetParam(), default_params(), 123);
  const double at_peak = pattern.rate_at(default_params().peak_time);
  EXPECT_GT(at_peak, 0.85 * default_params().max_rate);
}

TEST_P(PatternsTest, ExpectedArrivalsPositiveAndBounded) {
  const auto pattern = WorkloadPattern::make(GetParam(), default_params(), 123);
  const double expected = pattern.expected_arrivals();
  EXPECT_GT(expected, 0.0);
  // Can't exceed max_rate * horizon_seconds.
  EXPECT_LT(expected, default_params().max_rate * 100.0);
}

TEST_P(PatternsTest, RateSeriesLength) {
  const auto pattern = WorkloadPattern::make(GetParam(), default_params(), 123);
  EXPECT_EQ(pattern.rate_series(kSec).size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternsTest,
                         ::testing::Values(PatternKind::kL1Pulse, PatternKind::kL2Fluctuating,
                                           PatternKind::kL3Periodic),
                         [](const auto& pinfo) { return pattern_name(pinfo.param); });

TEST(Patterns, L1IsFlatOutsidePulse) {
  const auto p = WorkloadPattern::make(PatternKind::kL1Pulse, default_params(), 1);
  EXPECT_DOUBLE_EQ(p.rate_at(10 * kSec), default_params().base_rate);
  EXPECT_DOUBLE_EQ(p.rate_at(80 * kSec), default_params().base_rate);
}

TEST(Patterns, L2FluctuatesAndIsSeeded) {
  const auto a = WorkloadPattern::make(PatternKind::kL2Fluctuating, default_params(), 1);
  const auto b = WorkloadPattern::make(PatternKind::kL2Fluctuating, default_params(), 1);
  const auto c = WorkloadPattern::make(PatternKind::kL2Fluctuating, default_params(), 2);
  int diffs_ab = 0, diffs_ac = 0;
  double lo = 1e18, hi = 0.0;
  for (SimTime t = 0; t < 100 * kSec; t += kSec) {
    diffs_ab += a.rate_at(t) != b.rate_at(t) ? 1 : 0;
    diffs_ac += a.rate_at(t) != c.rate_at(t) ? 1 : 0;
    lo = std::min(lo, a.rate_at(t));
    hi = std::max(hi, a.rate_at(t));
  }
  EXPECT_EQ(diffs_ab, 0);
  EXPECT_GT(diffs_ac, 10);
  EXPECT_GT(hi - lo, 300.0);  // genuinely fluctuating
}

TEST(Patterns, L3IsPeriodic) {
  const auto p = WorkloadPattern::make(PatternKind::kL3Periodic, default_params(), 1);
  const SimDuration period = default_params().period;
  // Plateau levels recur one period apart.
  const double v1 = p.rate_at(40 * kSec);
  const double v2 = p.rate_at(40 * kSec - period);
  EXPECT_NEAR(v1, v2, 1e-9);
  // Wide peaks: a plateau wider than half the pattern's plateau parameter.
  int high = 0;
  for (SimTime t = 0; t < 100 * kSec; t += 500 * kMsec) {
    if (p.rate_at(t) > 0.9 * default_params().max_rate) ++high;
  }
  EXPECT_GE(high, 40);  // >= 20 s total plateau across the horizon
}

TEST(Patterns, Names) {
  EXPECT_STREQ(pattern_name(PatternKind::kL1Pulse), "L1");
  EXPECT_STREQ(pattern_name(PatternKind::kL3Periodic), "L3");
}

TEST(Patterns, BadParamsThrow) {
  PatternParams p;
  p.peak_time = p.horizon + kSec;
  EXPECT_THROW(WorkloadPattern::make(PatternKind::kL1Pulse, p, 1), InvariantError);
  p = {};
  p.base_rate = p.max_rate + 1;
  EXPECT_THROW(WorkloadPattern::make(PatternKind::kL1Pulse, p, 1), InvariantError);
}

class MixTest : public ::testing::Test {
 protected:
  MixTest() { suite_ = workloads::make_benchmark_suite(&ids_); }
  std::unique_ptr<app::Application> suite_;
  workloads::SuiteIds ids_;
};

TEST_F(MixTest, CategoryMixesUseEqualShares) {
  const auto high = RequestMix::category(*suite_, app::VolatilityBand::kHigh);
  ASSERT_EQ(high.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(high.entries()[0].weight, high.entries()[1].weight);

  const auto mid = RequestMix::category(*suite_, app::VolatilityBand::kMid);
  EXPECT_EQ(mid.entries().size(), 1u);
}

TEST_F(MixTest, AllMixCoversEveryType) {
  const auto mix = RequestMix::all(*suite_);
  EXPECT_EQ(mix.entries().size(), 5u);
}

TEST_F(MixTest, HighRatioShares) {
  const auto mix = RequestMix::with_high_ratio(*suite_, 0.8);
  double high_weight = 0.0, rest_weight = 0.0;
  for (const auto& e : mix.entries()) {
    if (suite_->band(e.type) == app::VolatilityBand::kHigh) {
      high_weight += e.weight;
    } else {
      rest_weight += e.weight;
    }
  }
  EXPECT_NEAR(high_weight, 0.8, 1e-12);
  EXPECT_NEAR(rest_weight, 0.2, 1e-12);
}

TEST_F(MixTest, HighRatioValidation) {
  EXPECT_THROW(RequestMix::with_high_ratio(*suite_, 1.5), InvariantError);
}

TEST_F(MixTest, SampleFollowsWeights) {
  RequestMix mix;
  mix.add(RequestTypeId(0), 0.9);
  mix.add(RequestTypeId(1), 0.1);
  Rng rng(5);
  int zero = 0;
  for (int i = 0; i < 10000; ++i) {
    if (mix.sample(rng) == RequestTypeId(0)) ++zero;
  }
  EXPECT_NEAR(zero / 10000.0, 0.9, 0.02);
}

TEST_F(MixTest, EmptyMixThrows) {
  RequestMix mix;
  Rng rng(1);
  EXPECT_THROW((void)mix.sample(rng), InvariantError);
}

TEST_F(MixTest, ArrivalsSortedWithinHorizon) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL1Pulse, default_params(), 9);
  Rng rng(5);
  const auto arrivals = generate_arrivals(pattern, RequestMix::all(*suite_), rng, 0.2);
  ASSERT_GT(arrivals.size(), 100u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end(),
                             [](const Arrival& a, const Arrival& b) { return a.time < b.time; }));
  for (const auto& a : arrivals) {
    EXPECT_GE(a.time, 0);
    EXPECT_LT(a.time, default_params().horizon);
    EXPECT_TRUE(a.type.valid());
  }
}

TEST_F(MixTest, ArrivalCountTracksExpectation) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL1Pulse, default_params(), 9);
  Rng rng(5);
  const auto arrivals = generate_arrivals(pattern, RequestMix::all(*suite_), rng, 0.5);
  const double expected = pattern.expected_arrivals() * 0.5;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected, expected * 0.1);
}

TEST_F(MixTest, QpsScaleScalesCount) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL1Pulse, default_params(), 9);
  Rng rng1(5), rng2(5);
  const auto a = generate_arrivals(pattern, RequestMix::all(*suite_), rng1, 0.2);
  const auto b = generate_arrivals(pattern, RequestMix::all(*suite_), rng2, 0.4);
  EXPECT_NEAR(static_cast<double>(b.size()) / static_cast<double>(a.size()), 2.0, 0.2);
}

TEST_F(MixTest, ArrivalsConcentrateAtPeak) {
  PatternParams pp = default_params();
  const auto pattern = WorkloadPattern::make(PatternKind::kL1Pulse, pp, 9);
  Rng rng(5);
  const auto arrivals = generate_arrivals(pattern, RequestMix::all(*suite_), rng, 1.0);
  // Arrival density in the pulse second vs. a quiet second.
  std::size_t peak = 0, quiet = 0;
  for (const auto& a : arrivals) {
    if (a.time >= 39500 * kMsec && a.time < 40500 * kMsec) ++peak;
    if (a.time >= 9500 * kMsec && a.time < 10500 * kMsec) ++quiet;
  }
  EXPECT_GT(peak, quiet * 2);
}

TEST(QuantizeArrival, RejectsRoundingAcrossTheHorizon) {
  const SimTime horizon = 1 * kSec;  // 1e6 ticks
  // llround rounds half away from zero: a candidate 0.4 ticks under the
  // horizon lands ON it and must be rejected (regression: it used to be
  // emitted at t == horizon, an arrival the QoS window never sees).
  EXPECT_EQ(quantize_arrival((1e6 - 0.4) / 1e6, horizon), -1);
  // 0.6 ticks under rounds down to the last representable tick.
  EXPECT_EQ(quantize_arrival((1e6 - 0.6) / 1e6, horizon), horizon - 1);
  // At or past the horizon is always rejected.
  EXPECT_EQ(quantize_arrival(1.0, horizon), -1);
  EXPECT_EQ(quantize_arrival(1.5, horizon), -1);
  // Negative candidates never map to tick 0.
  EXPECT_EQ(quantize_arrival(-0.25, horizon), -1);
  // Normal interior points quantize to the nearest tick.
  EXPECT_EQ(quantize_arrival(0.5, horizon), 500 * kMsec);
  EXPECT_EQ(quantize_arrival(0.0, horizon), 0);
}

TEST_F(MixTest, HighRatioEndpointsNeverSampleZeroWeightTypes) {
  // At ratio 0.0 every high-V_r type has weight 0; at 1.0 every non-high
  // type does. weighted_index must never emit a zero-weight entry, even on
  // the floating-point-residue fallback path.
  for (const double ratio : {0.0, 1.0}) {
    const auto mix = RequestMix::with_high_ratio(*suite_, ratio);
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
      const RequestTypeId drawn = mix.sample(rng);
      const bool is_high = suite_->band(drawn) == app::VolatilityBand::kHigh;
      EXPECT_EQ(is_high, ratio == 1.0) << "ratio=" << ratio << " draw=" << i;
    }
  }
}

TEST_F(MixTest, GeneratorDeterministic) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL2Fluctuating, default_params(), 9);
  Rng rng1(5), rng2(5);
  const auto a = generate_arrivals(pattern, RequestMix::all(*suite_), rng1, 0.3);
  const auto b = generate_arrivals(pattern, RequestMix::all(*suite_), rng2, 0.3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST_F(MixTest, StreamDrainMatchesBulkGeneration) {
  // The streamed iterator is the bulk generator's thinning loop verbatim:
  // draining it must reproduce generate_arrivals element-for-element, and the
  // stream's final rng state must equal the state the bulk path writes back.
  const auto pattern = WorkloadPattern::make(PatternKind::kL2Fluctuating, default_params(), 9);
  Rng bulk_rng(5);
  const auto bulk = generate_arrivals(pattern, RequestMix::all(*suite_), bulk_rng, 0.3);

  ArrivalStream stream(pattern, RequestMix::all(*suite_), Rng(5), 0.3);
  std::vector<Arrival> drained;
  while (auto a = stream.next()) drained.push_back(*a);

  ASSERT_EQ(drained.size(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(drained[i].time, bulk[i].time);
    EXPECT_EQ(drained[i].type, bulk[i].type);
  }
  EXPECT_EQ(stream.emitted(), bulk.size());
  // The write-back contract: both paths leave the rng in the same state.
  Rng stream_rng = stream.rng();
  EXPECT_EQ(stream_rng.next_u64(), bulk_rng.next_u64());
}

TEST_F(MixTest, StreamIsTerminalAfterHorizon) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL1Pulse, default_params(), 9);
  ArrivalStream stream(pattern, RequestMix::all(*suite_), Rng(5), 0.1);
  while (stream.next().has_value()) {
  }
  // Exhausted streams stay exhausted — no rng draws, no resurrection.
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_GT(stream.emitted(), 0u);
}

TEST_F(MixTest, StreamArrivalsSortedWithinHorizon) {
  const auto pattern = WorkloadPattern::make(PatternKind::kL3Periodic, default_params(), 9);
  ArrivalStream stream(pattern, RequestMix::all(*suite_), Rng(7), 0.2);
  SimTime prev = -1;
  std::size_t n = 0;
  while (auto a = stream.next()) {
    EXPECT_GE(a->time, prev);  // non-decreasing: the candidate walk only moves forward
    EXPECT_GE(a->time, 0);
    EXPECT_LT(a->time, default_params().horizon);
    EXPECT_TRUE(a->type.valid());
    prev = a->time;
    ++n;
  }
  EXPECT_GT(n, 100u);
}

}  // namespace
}  // namespace vmlp::loadgen
