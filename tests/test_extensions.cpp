// Extension subsystems: P² streaming quantiles, trace export, arrival-trace
// replay, and background-interference injection.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "loadgen/replay.h"
#include "mlp/vmlp.h"
#include "sched/driver.h"
#include "stats/p2_quantile.h"
#include "stats/percentile.h"
#include "trace/export.h"
#include "workloads/suite.h"

namespace vmlp {
namespace {

// ---- P² quantile ------------------------------------------------------

TEST(P2Quantile, EmptyIsNan) {
  stats::P2Quantile p2(0.5);
  EXPECT_TRUE(std::isnan(p2.value()));
}

TEST(P2Quantile, ExactForFewSamples) {
  stats::P2Quantile p2(0.5);
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
  p2.add(1.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);  // median of {1,3}
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, RejectsDegenerateQ) {
  EXPECT_THROW(stats::P2Quantile(0.0), InvariantError);
  EXPECT_THROW(stats::P2Quantile(1.0), InvariantError);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksUniformDistribution) {
  const double q = GetParam();
  stats::P2Quantile p2(q);
  stats::SampleSet exact;
  Rng rng(101);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    p2.add(x);
    exact.add(x);
  }
  EXPECT_NEAR(p2.value(), exact.quantile(q), 1.5) << "q=" << q;
}

TEST_P(P2Accuracy, TracksLognormalDistribution) {
  const double q = GetParam();
  stats::P2Quantile p2(q);
  stats::SampleSet exact;
  Rng rng(102);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal_mean_cv(50.0, 0.5);
    p2.add(x);
    exact.add(x);
  }
  // Heavy-tailed: allow 5% relative error.
  EXPECT_NEAR(p2.value(), exact.quantile(q), exact.quantile(q) * 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy, ::testing::Values(0.1, 0.5, 0.9, 0.99),
                         [](const auto& pinfo) {
                           return "q" + std::to_string(static_cast<int>(pinfo.param * 100));
                         });

TEST(P2Quantile, MonotoneUnderSortedInput) {
  stats::P2Quantile p2(0.9);
  for (int i = 1; i <= 1000; ++i) p2.add(static_cast<double>(i));
  EXPECT_NEAR(p2.value(), 900.0, 20.0);
}

// ---- trace export ------------------------------------------------------

TEST(Export, JsonEscaping) {
  EXPECT_EQ(trace::json_escape("plain"), "plain");
  EXPECT_EQ(trace::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(trace::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(trace::json_escape(std::string("z\x01")), "z\\u0001");
}

TEST(Export, SpansJsonShape) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(7), RequestTypeId(0), 100);
  tracer.record_span(trace::Span{RequestId(7), RequestTypeId(0), ServiceTypeId(0), InstanceId(1),
                                 MachineId(3), 1000, 5000});
  std::ostringstream os;
  trace::export_spans_json(tracer, *application, os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"traceId\":\"7\""), std::string::npos);
  EXPECT_NE(out.find("\"timestamp\":1000"), std::string::npos);
  EXPECT_NE(out.find("\"duration\":4000"), std::string::npos);
  EXPECT_NE(out.find("\"serviceName\":\"nginx\""), std::string::npos);
  EXPECT_NE(out.find("\"requestType\":\"compose-post\""), std::string::npos);
}

TEST(Export, EmptyTracerGivesEmptyArray) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  std::ostringstream os;
  trace::export_spans_json(tracer, *application, os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(Export, RequestsCsv) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 100);
  tracer.on_request_arrival(RequestId(2), RequestTypeId(1), 200);
  tracer.on_request_completion(RequestId(1), 600);
  std::ostringstream os;
  trace::export_requests_csv(tracer, *application, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("request_id,type,arrival_us,completion_us,latency_us"), std::string::npos);
  EXPECT_NE(out.find("1,compose-post,100,600,500"), std::string::npos);
  EXPECT_NE(out.find("2,read-home-timeline,200,,"), std::string::npos);  // unfinished
}

TEST(Export, FileErrorsThrow) {
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  EXPECT_THROW(trace::export_spans_json_file(tracer, *application, "/nonexistent/dir/x.json"),
               ConfigError);
}

// ---- arrival replay ----------------------------------------------------

TEST(Replay, RoundTrip) {
  auto application = workloads::make_benchmark_suite();
  std::vector<loadgen::Arrival> arrivals{
      {100, RequestTypeId(0)}, {500, RequestTypeId(3)}, {200, RequestTypeId(1)}};
  std::ostringstream os;
  loadgen::save_arrivals_csv(arrivals, *application, os);
  std::istringstream is(os.str());
  const auto loaded = loadgen::load_arrivals_csv(*application, is);
  ASSERT_EQ(loaded.size(), 3u);
  // Sorted on load.
  EXPECT_EQ(loaded[0].time, 100);
  EXPECT_EQ(loaded[1].time, 200);
  EXPECT_EQ(loaded[2].time, 500);
  EXPECT_EQ(loaded[0].type, RequestTypeId(0));
  EXPECT_EQ(loaded[1].type, RequestTypeId(1));
  EXPECT_EQ(loaded[2].type, RequestTypeId(3));
}

TEST(Replay, RejectsMalformedRows) {
  auto application = workloads::make_benchmark_suite();
  {
    std::istringstream is("time_us,request_type\nnocomma\n");
    EXPECT_THROW(loadgen::load_arrivals_csv(*application, is), ConfigError);
  }
  {
    std::istringstream is("time_us,request_type\nabc,compose-post\n");
    EXPECT_THROW(loadgen::load_arrivals_csv(*application, is), ConfigError);
  }
  {
    std::istringstream is("time_us,request_type\n100,not-a-request\n");
    EXPECT_THROW(loadgen::load_arrivals_csv(*application, is), ConfigError);
  }
  {
    std::istringstream is("time_us,request_type\n-5,compose-post\n");
    EXPECT_THROW(loadgen::load_arrivals_csv(*application, is), ConfigError);
  }
}

TEST(Replay, MissingFileThrows) {
  auto application = workloads::make_benchmark_suite();
  EXPECT_THROW(loadgen::load_arrivals_csv_file(*application, "/nonexistent/trace.csv"),
               ConfigError);
}

// ---- interference injection ---------------------------------------------

TEST(Interference, BurstsInjectedAndCleaned) {
  auto application = workloads::make_benchmark_suite();
  mlp::VmlpScheduler scheduler;
  sched::DriverParams params;
  params.horizon = 10 * kSec;
  params.cluster.machine_count = 8;
  params.machines_per_rack = 4;
  params.seed = 44;
  params.interference.enabled = true;
  params.interference.events_per_second = 5.0;
  sched::SimulationDriver driver(*application, scheduler, params);
  const auto result = driver.run();  // no requests: pure interference churn
  (void)result;
  EXPECT_GT(driver.counters().interference_bursts, 20u);
  // All bursts expire eventually... those still alive at the horizon remain,
  // but none should exceed one per machine by a large factor.
  std::size_t residual = 0;
  for (const auto& m : driver.cluster().machines()) residual += m.container_count();
  EXPECT_LE(residual, driver.counters().interference_bursts);
}

TEST(Interference, DisturbsLatency) {
  auto run_with = [](bool interference) {
    auto application = workloads::make_benchmark_suite();
    mlp::VmlpScheduler scheduler;
    sched::DriverParams params;
    params.horizon = 10 * kSec;
    params.cluster.machine_count = 6;
    params.machines_per_rack = 3;
    params.seed = 45;
    params.interference.enabled = interference;
    params.interference.events_per_second = 10.0;
    params.interference.magnitude = 0.7;
    params.interference.duration_mean = kSec;
    sched::SimulationDriver driver(*application, scheduler, params);
    std::vector<loadgen::Arrival> arrivals;
    const auto compose = *application->find_request("compose-post");
    for (int i = 0; i < 200; ++i) arrivals.push_back({kMsec + i * 40 * kMsec, compose});
    driver.load_arrivals(arrivals);
    return driver.run();
  };
  const auto calm = run_with(false);
  const auto noisy = run_with(true);
  EXPECT_GT(noisy.p99_latency_us, calm.p99_latency_us);
}

TEST(Interference, DeterministicPerSeed) {
  auto run_once = [] {
    auto application = workloads::make_benchmark_suite();
    mlp::VmlpScheduler scheduler;
    sched::DriverParams params;
    params.horizon = 5 * kSec;
    params.cluster.machine_count = 4;
    params.machines_per_rack = 2;
    params.seed = 46;
    params.interference.enabled = true;
    sched::SimulationDriver driver(*application, scheduler, params);
    driver.run();
    return driver.counters().interference_bursts;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace vmlp
