// Observability layer: metrics registry, decision-event ring, collector
// families, exporter roundtrips (Prometheus, Perfetto, Zipkin), and the
// zero-perturbation guarantee (claim 6's unit-level form).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/trial_runner.h"
#include "obs/collector.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "trace/export.h"
#include "trace/tracer.h"
#include "workloads/suite.h"

namespace vmlp {
namespace {

// ---- a minimal JSON parser for export->parse roundtrip checks ----------
//
// Just enough of RFC 8259 to validate what our exporters emit; throws
// std::runtime_error on anything malformed so a bad export fails the test.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::string& get_str(const std::string& key) const {
    const JsonValue* v = get(key);
    if (v == nullptr || v->type != Type::kString) {
      throw std::runtime_error("missing string field: " + key);
    }
    return v->str;
  }
  [[nodiscard]] double get_num(const std::string& key) const {
    const JsonValue* v = get(key);
    if (v == nullptr || v->type != Type::kNumber) {
      throw std::runtime_error("missing number field: " + key);
    }
    return v->number;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (i_ != s_.size()) throw std::runtime_error("trailing bytes after JSON value");
    return v;
  }

 private:
  void ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() {
    if (i_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++i_;
  }
  bool eat(const std::string& word) {
    if (s_.compare(i_, word.size(), word) != 0) return false;
    i_ += word.size();
    return true;
  }

  JsonValue value() {
    ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++i_;
      ws();
      if (peek() == '}') {
        ++i_;
        return v;
      }
      while (true) {
        ws();
        std::string key = string_body();
        ws();
        expect(':');
        v.fields.emplace_back(std::move(key), value());
        ws();
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++i_;
      ws();
      if (peek() == ']') {
        ++i_;
        return v;
      }
      while (true) {
        v.items.push_back(value());
        ws();
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.str = string_body();
      return v;
    }
    if (eat("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (eat("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (eat("null")) return v;
    // Number.
    std::size_t start = i_;
    while (i_ < s_.size() && (std::string("+-.eE0123456789").find(s_[i_]) != std::string::npos)) {
      ++i_;
    }
    if (i_ == start) throw std::runtime_error("unexpected character in JSON");
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(s_.substr(start, i_ - start));
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) throw std::runtime_error("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) throw std::runtime_error("dangling escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) throw std::runtime_error("short \\u escape");
          const unsigned cp = static_cast<unsigned>(std::stoul(s_.substr(i_, 4), nullptr, 16));
          i_ += 4;
          // Our exporters only \u-escape codepoints below 0x20.
          if (cp >= 0x80) throw std::runtime_error("unexpected non-ASCII \\u escape");
          out += static_cast<char>(cp);
          break;
        }
        default: throw std::runtime_error("bad escape character");
      }
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// ---- registry ----------------------------------------------------------

TEST(ObsRegistry, CounterGaugeHistogramOps) {
  obs::Registry reg;
  const auto c = reg.add_counter("test.ops_total", "ops");
  const auto g = reg.add_gauge("test.depth_peak", "depth");
  const auto h = reg.add_histogram("test.wait_us", "waits", {10.0, 100.0});
  reg.count(c);
  reg.count(c, 4);
  reg.set_gauge(g, 2.0);
  reg.gauge_max(g, 7.0);
  reg.gauge_max(g, 3.0);  // below the peak: must not lower it
  reg.observe(h, 5.0);
  reg.observe(h, 10.0);   // boundary lands in its own bucket (le semantics)
  reg.observe(h, 50.0);
  reg.observe(h, 1000.0);  // overflow bucket
  EXPECT_EQ(reg.counter_value(c), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 7.0);
  EXPECT_EQ(reg.metric_count(), 3u);

  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* hist = snap.find("test.wait_us");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->hist.buckets.size(), 3u);
  EXPECT_EQ(hist->hist.buckets[0], 2u);
  EXPECT_EQ(hist->hist.buckets[1], 1u);
  EXPECT_EQ(hist->hist.buckets[2], 1u);
  EXPECT_EQ(hist->hist.count, 4u);
  EXPECT_DOUBLE_EQ(hist->hist.sum, 1065.0);
  EXPECT_EQ(snap.nonzero_count(), 3u);
}

TEST(ObsRegistry, RejectsOffStyleAndDuplicateNames) {
  obs::Registry reg;
  reg.add_counter("sub.noun_verb", "ok");
  // Style: >= 2 lowercase dot-separated components, [a-z][a-z0-9_]*.
  EXPECT_THROW(reg.add_counter("nodots", ""), InvariantError);
  EXPECT_THROW(reg.add_counter("Upper.case", ""), InvariantError);
  EXPECT_THROW(reg.add_counter("sub.", ""), InvariantError);
  EXPECT_THROW(reg.add_counter(".noun", ""), InvariantError);
  EXPECT_THROW(reg.add_counter("sub.noun-verb", ""), InvariantError);
  EXPECT_THROW(reg.add_counter("sub.1noun", ""), InvariantError);
  EXPECT_THROW(reg.add_counter("", ""), InvariantError);
  // Single registration site per name, regardless of kind.
  EXPECT_THROW(reg.add_counter("sub.noun_verb", ""), InvariantError);
  EXPECT_THROW(reg.add_gauge("sub.noun_verb", ""), InvariantError);
}

TEST(ObsRegistry, RejectsDegenerateHistogramBounds) {
  obs::Registry reg;
  EXPECT_THROW(reg.add_histogram("test.empty_bounds", "", {}), InvariantError);
  EXPECT_THROW(reg.add_histogram("test.unsorted_bounds", "", {10.0, 5.0}), InvariantError);
}

TEST(ObsRegistry, SnapshotMergeSemantics) {
  // Counters sum, gauges keep the peak, histogram buckets/count/sum add —
  // the fold the trial runner applies shard by shard.
  auto make = [](std::uint64_t n, double peak, double sample) {
    obs::Registry reg;
    const auto c = reg.add_counter("m.count_total", "");
    const auto g = reg.add_gauge("m.peak", "");
    const auto h = reg.add_histogram("m.lat_us", "", {10.0});
    reg.count(c, n);
    reg.set_gauge(g, peak);
    reg.observe(h, sample);
    return reg.snapshot();
  };
  obs::Snapshot a = make(3, 5.0, 4.0);
  a.merge_from(make(4, 2.0, 40.0));
  EXPECT_EQ(a.find("m.count_total")->counter, 7u);
  EXPECT_DOUBLE_EQ(a.find("m.peak")->gauge, 5.0);
  EXPECT_EQ(a.find("m.lat_us")->hist.buckets[0], 1u);
  EXPECT_EQ(a.find("m.lat_us")->hist.buckets[1], 1u);
  EXPECT_EQ(a.find("m.lat_us")->hist.count, 2u);
  EXPECT_DOUBLE_EQ(a.find("m.lat_us")->hist.sum, 44.0);
}

TEST(ObsRegistry, MergeRejectsLayoutMismatch) {
  obs::Registry a;
  a.add_counter("a.count_total", "");
  obs::Registry b;
  b.add_counter("b.count_total", "");
  obs::Snapshot sa = a.snapshot();
  EXPECT_THROW(sa.merge_from(b.snapshot()), InvariantError);
  obs::Registry two;
  two.add_counter("a.count_total", "");
  two.add_counter("a.other_total", "");
  EXPECT_THROW(sa.merge_from(two.snapshot()), InvariantError);
}

// ---- event ring --------------------------------------------------------

TEST(ObsEventRing, OverwritesOldestAndCountsDrops) {
  obs::EventRing ring(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ring.push(obs::DecisionEvent{obs::DecisionKind::kCoalesce, static_cast<SimTime>(i),
                                 obs::DecisionEvent::kNoRequest, i,
                                 obs::DecisionEvent::kNoIndex, 0});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto got = ring.ordered();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, i + 2) << "ring must keep the newest records, oldest first";
  }
}

TEST(ObsEventRing, ZeroCapacityOnlyCounts) {
  obs::EventRing ring(0);
  ring.push(obs::DecisionEvent{});
  ring.push(obs::DecisionEvent{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.ordered().empty());
  EXPECT_EQ(ring.total_recorded(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

// ---- collector ---------------------------------------------------------

TEST(ObsCollector, RegistersAllFamiliesOnce) {
  obs::Params params;
  params.enabled = true;
  obs::Collector collector(params);
  // The acceptance bar for one instrumented run is >= 25 distinct metrics;
  // registration alone must already provide the namespace for them across
  // every subsystem family.
  EXPECT_GE(collector.registry().metric_count(), 25u);
  const obs::Snapshot snap = collector.snapshot();
  for (const char* name :
       {"engine.events_executed", "driver.requests_arrived", "driver.latency_us",
        "failure.nodes_orphaned", "ledger.probes_walked", "mlp.stages_coalesced"}) {
    EXPECT_NE(snap.find(name), nullptr) << name;
  }
  // Attribution families: every band x (phase share + path stats).
  for (const char* band : {"low", "mid", "high"}) {
    for (const char* suffix : {"network_share", "queue_share", "exec_share",
                               "lost_exec_share", "backoff_share", "heal_share", "path_len",
                               "off_path_slack_us"}) {
      const std::string name = std::string("attribution.") + band + "." + suffix;
      EXPECT_NE(snap.find(name), nullptr) << name;
    }
  }
  collector.count(collector.mlp().probes_spent, 9);
  EXPECT_EQ(collector.counter_value(collector.mlp().probes_spent), 9u);
}

TEST(ObsCollector, PolicySlicesRespectCap) {
  obs::Params params;
  params.enabled = true;
  params.max_policy_slices = 2;
  obs::Collector collector(params);
  for (int i = 0; i < 5; ++i) {
    collector.policy_slice(obs::PolicyCallback::kArrival, i * 10, 3);
  }
  EXPECT_EQ(collector.policy_slices().size(), 2u);
  EXPECT_EQ(collector.policy_slices_dropped(), 3u);
}

// ---- json escaping (shared by all exporters) ---------------------------

TEST(ObsJson, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny\rz\tw"), "x\\ny\\rz\\tw");
  EXPECT_EQ(json_escape(std::string("a\bb")), "a\\u0008b");
  EXPECT_EQ(json_escape(std::string("a\x1f") + "b"), "a\\u001fb");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
}

TEST(ObsJson, PassesUtf8Through) {
  // Multi-byte sequences are valid JSON string content as-is.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x9c\x93";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(ObsJson, EscapedOutputSurvivesParserRoundtrip) {
  const std::string nasty = "q\"b\\s\nl\tt\x01 end";
  const std::string doc = "{\"k\":\"" + json_escape(nasty) + "\"}";
  const JsonValue v = JsonParser(doc).parse();
  EXPECT_EQ(v.get_str("k"), nasty);
}

// ---- Prometheus export -------------------------------------------------

TEST(ObsPrometheus, TextExpositionRoundtrip) {
  obs::Registry reg;
  reg.count(reg.add_counter("engine.events_executed", "events"), 42);
  reg.set_gauge(reg.add_gauge("engine.pending_peak", "peak"), 12.5);
  const auto h = reg.add_histogram("driver.latency_us", "latency", {10.0, 100.0});
  reg.observe(h, 5.0);
  reg.observe(h, 50.0);
  reg.observe(h, 60.0);
  reg.observe(h, 500.0);

  const std::string text = obs::prometheus_text(reg.snapshot());
  // Parse the exposition back line by line.
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  auto has = [&](const std::string& want) {
    for (const auto& l : lines) {
      if (l == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("# TYPE vmlp_engine_events_executed counter"));
  EXPECT_TRUE(has("vmlp_engine_events_executed 42"));
  EXPECT_TRUE(has("# TYPE vmlp_engine_pending_peak gauge"));
  EXPECT_TRUE(has("vmlp_engine_pending_peak 12.5"));
  // Histogram buckets are cumulative and the +Inf bucket equals _count.
  EXPECT_TRUE(has("vmlp_driver_latency_us_bucket{le=\"10\"} 1"));
  EXPECT_TRUE(has("vmlp_driver_latency_us_bucket{le=\"100\"} 3"));
  EXPECT_TRUE(has("vmlp_driver_latency_us_bucket{le=\"+Inf\"} 4"));
  EXPECT_TRUE(has("vmlp_driver_latency_us_sum 615"));
  EXPECT_TRUE(has("vmlp_driver_latency_us_count 4"));
  // Every sample line's name carries the vmlp_ prefix; HELP precedes TYPE.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("# TYPE ", 0) == 0) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(lines[i - 1].rfind("# HELP ", 0), 0u);
    } else if (lines[i].rfind("#", 0) != 0) {
      EXPECT_EQ(lines[i].rfind("vmlp_", 0), 0u) << lines[i];
    }
  }
}

// ---- Perfetto export ---------------------------------------------------

TEST(ObsPerfetto, TraceRoundtripKeepsClockDomainsOnSeparatePids) {
  exp::ObsCapture capture;
  capture.enabled = true;
  trace::Span span{RequestId(7), RequestTypeId(0), ServiceTypeId(2), InstanceId(11),
                   MachineId(3), 1000, 5000};
  span.node = 1;
  capture.spans.push_back(span);
  capture.decisions.push_back(obs::DecisionEvent{obs::DecisionKind::kCoalesce, 1500, 7, 0,
                                                 obs::DecisionEvent::kNoIndex, 4});
  capture.decisions.push_back(obs::DecisionEvent{obs::DecisionKind::kCrash, 2000,
                                                 obs::DecisionEvent::kNoRequest,
                                                 obs::DecisionEvent::kNoIndex, 3, 0});
  capture.policy_slices.push_back(obs::PolicySlice{obs::PolicyCallback::kArrival, 4000, 2500});

  std::ostringstream os;
  exp::write_perfetto_trace(capture, os);
  const JsonValue root = JsonParser(os.str()).parse();
  EXPECT_EQ(root.get_str("displayTimeUnit"), "ms");
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);

  std::size_t metadata = 0;
  const JsonValue* exec = nullptr;
  const JsonValue* coalesce = nullptr;
  const JsonValue* crash = nullptr;
  const JsonValue* policy = nullptr;
  for (const JsonValue& e : events->items) {
    const std::string& ph = e.get_str("ph");
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const std::string& name = e.get_str("name");
    if (name == "svc2") exec = &e;
    if (name == "coalesce") coalesce = &e;
    if (name == "crash") crash = &e;
    if (ph == "X" && e.get_num("pid") == 3.0) policy = &e;
  }
  EXPECT_EQ(metadata, 3u) << "one process_name record per clock-domain lane";

  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->get_str("ph"), "X");
  EXPECT_EQ(exec->get_num("pid"), 1.0);
  EXPECT_EQ(exec->get_num("tid"), 4.0);  // machine 3 -> lane 4
  EXPECT_EQ(exec->get_num("ts"), 1000.0);
  EXPECT_EQ(exec->get_num("dur"), 4000.0);
  EXPECT_EQ(exec->get("args")->get_str("request"), "7");
  EXPECT_EQ(exec->get("args")->get_str("node"), "1");

  ASSERT_NE(coalesce, nullptr);
  EXPECT_EQ(coalesce->get_str("ph"), "i");
  EXPECT_EQ(coalesce->get_str("s"), "t");
  EXPECT_EQ(coalesce->get_num("pid"), 2.0);
  EXPECT_EQ(coalesce->get_num("tid"), 0.0);  // machine-less decisions: lane 0
  EXPECT_EQ(coalesce->get_num("ts"), 1500.0);
  EXPECT_EQ(coalesce->get("args")->get_str("detail"), "4");

  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->get_num("pid"), 2.0);
  EXPECT_EQ(crash->get_num("tid"), 4.0);

  // Host-clock slice: nanoseconds emitted as trace microseconds, own pid.
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->get_str("name"), "on_request_arrival");
  EXPECT_EQ(policy->get_num("ts"), 4.0);
  EXPECT_EQ(policy->get_num("dur"), 2.5);
}

TEST(ObsPerfetto, DisabledCaptureWritesEmptyValidTrace) {
  exp::ObsCapture capture;  // enabled defaults to false
  std::ostringstream os;
  exp::write_perfetto_trace(capture, os);
  const JsonValue root = JsonParser(os.str()).parse();
  ASSERT_NE(root.get("traceEvents"), nullptr);
  EXPECT_TRUE(root.get("traceEvents")->items.empty());
}

// ---- Zipkin export -----------------------------------------------------

TEST(ObsZipkin, SpansRoundtripWithParentIdAndRack) {
  auto application = workloads::make_benchmark_suite();
  const auto& dag = application->request(RequestTypeId(0)).dag();
  const auto& children = dag.children(0);
  ASSERT_FALSE(children.empty()) << "benchmark root must fan out";
  const auto child_node = static_cast<std::uint32_t>(children.front());

  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(7), RequestTypeId(0), 100);
  // Two executions of the root node (a retry) plus one child: the child's
  // Zipkin parent must be the *latest-finishing* root instance.
  trace::Span root_early{RequestId(7), RequestTypeId(0), ServiceTypeId(0), InstanceId(1),
                         MachineId(3), 1000, 4000};
  root_early.node = 0;
  trace::Span root_late{RequestId(7), RequestTypeId(0), ServiceTypeId(0), InstanceId(2),
                        MachineId(41), 1500, 5000};
  root_late.node = 0;
  trace::Span child{RequestId(7), RequestTypeId(0), ServiceTypeId(1), InstanceId(3),
                    MachineId(5), 5200, 6000};
  child.node = child_node;
  tracer.record_span(root_early);
  tracer.record_span(root_late);
  tracer.record_span(child);

  std::ostringstream os;
  trace::SpanExportOptions options;
  options.machines_per_rack = 20;
  trace::export_spans_json(tracer, *application, os, options);
  const JsonValue spans = JsonParser(os.str()).parse();
  ASSERT_EQ(spans.type, JsonValue::Type::kArray);
  ASSERT_EQ(spans.items.size(), 3u);

  auto find_span = [&](const std::string& id) -> const JsonValue& {
    for (const JsonValue& s : spans.items) {
      if (s.get_str("id") == id) return s;
    }
    throw std::runtime_error("span not found: " + id);
  };
  // Roots carry no parentId.
  EXPECT_EQ(find_span("1").get("parentId"), nullptr);
  EXPECT_EQ(find_span("2").get("parentId"), nullptr);
  const JsonValue& child_out = find_span("3");
  EXPECT_EQ(child_out.get_str("parentId"), "2");
  EXPECT_EQ(child_out.get_str("traceId"), "7");
  EXPECT_EQ(child_out.get_num("timestamp"), 5200.0);
  EXPECT_EQ(child_out.get_num("duration"), 800.0);
  // localEndpoint + rack tags (machine / machines_per_rack).
  EXPECT_FALSE(child_out.get("localEndpoint")->get_str("serviceName").empty());
  EXPECT_EQ(find_span("2").get("localEndpoint")->get_str("ipv4"), "10.0.0.41");
  EXPECT_EQ(find_span("2").get("tags")->get_str("rack"), "2");
  EXPECT_EQ(child_out.get("tags")->get_str("rack"), "0");
}

TEST(ObsZipkin, NodelessSpansStayParentless) {
  // Spans recorded without a DAG node (the legacy shape) must export exactly
  // as before — no parentId, still parseable.
  auto application = workloads::make_benchmark_suite();
  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(1), RequestTypeId(0), 0);
  tracer.record_span(trace::Span{RequestId(1), RequestTypeId(0), ServiceTypeId(0),
                                 InstanceId(1), MachineId(0), 10, 20});
  std::ostringstream os;
  trace::export_spans_json(tracer, *application, os);
  const JsonValue spans = JsonParser(os.str()).parse();
  ASSERT_EQ(spans.items.size(), 1u);
  EXPECT_EQ(spans.items[0].get("parentId"), nullptr);
  EXPECT_EQ(spans.items[0].get("tags")->get("rack"), nullptr);
}

TEST(ObsZipkin, ControlCharacterNamesRoundtripWithCriticalTags) {
  // Hostile microservice/request names — quotes, backslashes, newlines, raw
  // control bytes — must pass through json_escape on every dynamic tag value
  // and parse back verbatim; the critical-path tag rides along.
  const std::string svc_a = "front\"end\\ \n\x01svc";
  const std::string svc_b = "media\tworker \x1f\"q\"";
  const std::string req_name = "compose\rpost\x02";
  app::Application application("nasty");
  const auto a = application.add_service(svc_a, {100, 100, 10}, 10 * kMsec,
                                         app::ServiceClass{1, 1, 1},
                                         app::ResourceIntensity::kCpu);
  const auto b = application.add_service(svc_b, {100, 100, 10}, 10 * kMsec,
                                         app::ServiceClass{1, 1, 1},
                                         app::ResourceIntensity::kCpu);
  auto builder = application.build_request(req_name);
  builder.node(a).node(b).node(b);
  builder.edge(0, 1).edge(0, 2);
  const RequestTypeId rt = builder.commit();

  trace::Tracer tracer;
  tracer.on_request_arrival(RequestId(7), rt, 0);
  auto record = [&](std::uint32_t node, ServiceTypeId svc, SimTime start, SimTime end,
                    SimTime startable, std::uint32_t blocking) {
    trace::Span s{RequestId(7), rt, svc, InstanceId(node), MachineId(node), start, end};
    s.node = node;
    s.startable_at = startable;
    s.blocking_parent = blocking;
    tracer.record_span(s);
  };
  record(0, a, 10, 100, 5, trace::Span::kNoNode);
  record(1, b, 120, 400, 110, 0);  // slow arm: on the critical path
  record(2, b, 115, 200, 108, 0);  // fast arm: off-path
  tracer.on_request_completion(RequestId(7), 400);

  std::ostringstream os;
  trace::SpanExportOptions options;
  options.mark_critical = true;
  trace::export_spans_json(tracer, application, os, options);
  const JsonValue spans = JsonParser(os.str()).parse();
  ASSERT_EQ(spans.items.size(), 3u);
  for (const JsonValue& s : spans.items) {
    const std::string name = s.get_str("name");
    EXPECT_TRUE(name == svc_a || name == svc_b) << "escaped name must parse back verbatim";
    EXPECT_EQ(s.get("localEndpoint")->get_str("serviceName"), name);
    EXPECT_EQ(s.get("tags")->get_str("requestType"), req_name);
    const JsonValue* critical = s.get("tags")->get("critical");
    if (s.get_str("id") == "2") {
      EXPECT_EQ(critical, nullptr) << "off-path span must not be marked";
    } else {
      ASSERT_NE(critical, nullptr) << "blocking-chain span " << s.get_str("id");
      EXPECT_EQ(s.get("tags")->get_str("critical"), "true");
    }
  }
}

// ---- zero-perturbation (claim 6, unit-level) ---------------------------

exp::ExperimentConfig tiny_config() {
  exp::ExperimentConfig c;
  c.scheme = exp::SchemeKind::kVmlp;
  c.pattern = loadgen::PatternKind::kL1Pulse;
  c.stream = exp::StreamKind::kMixed;
  c.driver.horizon = 3 * kSec;
  c.driver.cluster.machine_count = 6;
  c.pattern_params.horizon = c.driver.horizon;
  c.pattern_params.base_rate = 12.0;
  c.pattern_params.max_rate = 24.0;
  c.pattern_params.peak_time = 1 * kSec;
  return c;
}

TEST(ObsPerturbation, CollectionDoesNotChangeResults) {
  exp::TrialSpec off;
  off.base = tiny_config();
  off.trials = 2;
  off.base_seed = 2022;
  exp::TrialSpec on = off;
  on.base.driver.obs.enabled = true;
  const std::string base = format_trial_set(run_trials(off, 1));
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(format_trial_set(run_trials(on, 1)), base)
      << "telemetry collection perturbed the run";
}

TEST(ObsPerturbation, InstrumentedRunPopulatesFamilies) {
  exp::ExperimentConfig config = tiny_config();
  config.driver.obs.enabled = true;
  config.seed = 2022;
  const exp::ExperimentResult r = exp::run_experiment(config);
  ASSERT_TRUE(r.obs.enabled);
  EXPECT_GE(r.obs.snapshot.nonzero_count(), 15u)
      << "an instrumented run should light up metrics across subsystems";
  for (const char* name : {"engine.events_executed", "driver.requests_arrived",
                           "ledger.fits_queried", "mlp.organize_calls"}) {
    const obs::MetricSnapshot* m = r.obs.snapshot.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_GT(m->counter, 0u) << name;
  }
  EXPECT_FALSE(r.obs.decisions.empty());
  EXPECT_FALSE(r.obs.spans.empty());
}

TEST(ObsPerturbation, MergedSnapshotStableAcrossThreadCounts) {
  exp::TrialSpec spec;
  spec.base = tiny_config();
  spec.base.driver.obs.enabled = true;
  spec.trials = 4;
  spec.base_seed = 2022;
  const exp::TrialSetResult serial = run_trials(spec, 1);
  ASSERT_TRUE(serial.obs_enabled);
  const std::string text = obs::prometheus_text(serial.obs);
  for (const std::size_t threads : {2u, 4u}) {
    const exp::TrialSetResult r = run_trials(spec, threads);
    EXPECT_EQ(obs::prometheus_text(r.obs), text)
        << "merged metrics diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace vmlp
