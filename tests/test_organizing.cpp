// Self-organizing module unit behaviour: atomic chain commitment, overlay
// self-collision avoidance, deferral on saturation, dependency-aware planned
// starts, and R-ordering effects.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "mlp/interface_layer.h"
#include "mlp/self_organizing.h"
#include "mlp/vmlp.h"
#include "sched/driver.h"
#include "workloads/suite.h"

namespace vmlp::mlp {
namespace {

/// Scheduler that exposes the organizer for direct driving from tests.
class ProbeScheduler : public sched::IScheduler {
 public:
  explicit ProbeScheduler(VmlpParams params = {}) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "probe"; }
  void attach(sched::SimulationDriver& driver) override {
    sched::IScheduler::attach(driver);
    iface = std::make_unique<InterfaceLayer>(driver);
    organizer = std::make_unique<SelfOrganizing>(*iface, params_, Rng(1));
  }
  void on_request_arrival(RequestId id) override {
    if (hook) hook(id);
  }
  void on_node_unblocked(RequestId, std::size_t) override {}
  void on_tick() override {}

  VmlpParams params_;
  std::unique_ptr<InterfaceLayer> iface;
  std::unique_ptr<SelfOrganizing> organizer;
  std::function<void(RequestId)> hook;
};

/// Parallel two-branch app where each branch saturates a whole machine:
/// root -> {heavy_a, heavy_b} -> sink. The overlay must not co-plan both
/// heavy branches at the same time on the same machine.
std::unique_ptr<app::Application> make_parallel_app() {
  auto application = std::make_unique<app::Application>("parallel");
  const auto root = application->add_service("root", {500, 128, 50}, 5 * kMsec,
                                             app::ServiceClass{1, 1, 1},
                                             app::ResourceIntensity::kCpu);
  const auto heavy_a = application->add_service("heavy-a", {3000, 256, 100}, 20 * kMsec,
                                                app::ServiceClass{2, 2, 2},
                                                app::ResourceIntensity::kCpu);
  const auto heavy_b = application->add_service("heavy-b", {3000, 256, 100}, 20 * kMsec,
                                                app::ServiceClass{2, 2, 2},
                                                app::ResourceIntensity::kCpu);
  const auto sink = application->add_service("sink", {500, 128, 50}, 5 * kMsec,
                                             app::ServiceClass{1, 1, 1},
                                             app::ResourceIntensity::kCpu);
  auto builder = application->build_request("fan");
  builder.node(root).node(heavy_a).node(heavy_b).node(sink);
  builder.edge(0, 1).edge(0, 2).edge(1, 3).edge(2, 3);
  builder.commit();
  return application;
}

sched::DriverParams tiny_cluster(std::size_t machines) {
  sched::DriverParams p;
  p.horizon = 5 * kSec;
  p.cluster.machine_count = machines;
  p.cluster.machine_capacity = {4000, 16384, 1000};
  p.machines_per_rack = 2;
  p.seed = 60;
  return p;
}

TEST(SelfOrganizing, CommitsWholeChainAtomically) {
  auto application = make_parallel_app();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, tiny_cluster(2));
  probe.hook = [&](RequestId id) {
    EXPECT_TRUE(probe.organizer->organize(id));
    sched::ActiveRequest* ar = driver.find_request(id);
    for (std::size_t n = 0; n < 4; ++n) EXPECT_TRUE(ar->nodes[n].placed) << n;
    EXPECT_EQ(probe.organizer->plans_committed(), 1u);
  };
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  const auto result = driver.run();
  EXPECT_EQ(result.completed, 1u);
}

TEST(SelfOrganizing, OverlayAvoidsSelfCollision) {
  // With 2 machines of 4000 mC and two parallel 3000 mC branches, the plan
  // must put the concurrent branches on different machines (or sequence them)
  // — the overlay forbids co-booking 6000 mC on one machine.
  auto application = make_parallel_app();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, tiny_cluster(2));
  probe.hook = [&](RequestId id) {
    ASSERT_TRUE(probe.organizer->organize(id));
    sched::ActiveRequest* ar = driver.find_request(id);
    const auto& a = ar->nodes[1];
    const auto& b = ar->nodes[2];
    const bool same_machine = a.machine == b.machine;
    const bool overlapping = a.planned_start < b.reserved_end && b.planned_start < a.reserved_end;
    EXPECT_FALSE(same_machine && overlapping)
        << "both heavy branches booked concurrently on machine " << a.machine.value();
  };
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  driver.run();
}

TEST(SelfOrganizing, PlannedStartsRespectDependencies) {
  auto application = make_parallel_app();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*application, probe, tiny_cluster(4));
  probe.hook = [&](RequestId id) {
    ASSERT_TRUE(probe.organizer->organize(id));
    sched::ActiveRequest* ar = driver.find_request(id);
    // Children planned after parents' planned start (+ their slack windows).
    EXPECT_GT(ar->nodes[1].planned_start, ar->nodes[0].planned_start);
    EXPECT_GT(ar->nodes[3].planned_start, ar->nodes[1].planned_start);
    EXPECT_GT(ar->nodes[3].planned_start, ar->nodes[2].planned_start);
  };
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  driver.run();
}

TEST(SelfOrganizing, DefersWhenClusterSaturated) {
  auto application = make_parallel_app();
  VmlpParams params;
  params.plan_search_window = 5 * kMsec;  // tiny slip window: fail fast
  params.plan_search_steps = 2;
  ProbeScheduler probe(params);
  sched::SimulationDriver driver(*application, probe, tiny_cluster(1));
  probe.hook = [&](RequestId id) {
    // Saturate the single machine's ledger far beyond the slip window first.
    driver.cluster().machine(MachineId(0)).ledger().reserve(driver.now(),
                                                            driver.now() + 2 * kSec,
                                                            {3900, 0, 0});
    EXPECT_FALSE(probe.organizer->organize(id));
    EXPECT_EQ(probe.organizer->plans_deferred(), 1u);
    EXPECT_GE(probe.organizer->last_defer_at(), 0);
    sched::ActiveRequest* ar = driver.find_request(id);
    for (std::size_t n = 0; n < 4; ++n) EXPECT_FALSE(ar->nodes[n].placed) << n;
    // Clean up so the run can end: release the artificial load.
    driver.cluster().machine(MachineId(0)).ledger().release(driver.now(),
                                                            driver.now() + 2 * kSec,
                                                            {3900, 0, 0});
  };
  driver.load_arrivals({{kMsec, RequestTypeId(0)}});
  driver.run();
}

TEST(SelfOrganizing, ReorderRatioPrefersUrgentVolatile) {
  auto suite = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*suite, probe, tiny_cluster(4));
  std::vector<double> ratios;
  probe.hook = [&](RequestId id) { ratios.push_back(probe.organizer->reorder_ratio_of(id)); };
  // compose-post (high V_r) vs read-user-timeline (low V_r), same arrival.
  driver.load_arrivals({{kMsec, *suite->find_request("compose-post")},
                        {kMsec, *suite->find_request("read-user-timeline")}});
  driver.run();
  ASSERT_EQ(ratios.size(), 2u);
  for (double r : ratios) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(SelfOrganizing, SlackOfGrowsWithBandConservatism) {
  auto suite = workloads::make_benchmark_suite();
  ProbeScheduler probe;
  sched::SimulationDriver driver(*suite, probe, tiny_cluster(4));
  probe.hook = [&](RequestId id) {
    sched::ActiveRequest* ar = driver.find_request(id);
    const auto& type = ar->runtime.type();
    for (std::size_t n = 0; n < type.size(); ++n) {
      const SimDuration slack = probe.organizer->slack_of(id, n);
      EXPECT_GT(slack, 0);
      // High-V_r request: the p99-of-history slack must sit above the plain
      // mean estimate.
      const auto mean = driver.profiles().mean_exec(type.nodes()[n].service, type.id());
      ASSERT_TRUE(mean.has_value());
      EXPECT_GE(slack, *mean);
    }
  };
  driver.load_arrivals({{kMsec, *suite->find_request("compose-post")}});
  driver.run();
}

}  // namespace
}  // namespace vmlp::mlp
