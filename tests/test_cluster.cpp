// Machines, containers, cluster aggregation.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.h"
#include "common/error.h"

namespace vmlp::cluster {
namespace {

ClusterParams small_params() {
  ClusterParams p;
  p.machine_count = 4;
  p.machine_capacity = {1000, 2000, 100};
  return p;
}

TEST(Container, EffectiveUsageFollowsState) {
  Container c(ContainerId(1), InstanceId(2), MachineId(0), {800, 100, 10}, {400, 100, 10});
  // Running: min(limit, demand).
  EXPECT_EQ(c.effective_usage(), (ResourceVector{400, 100, 10}));
  c.suspend();
  EXPECT_EQ(c.state(), ContainerState::kSuspended);
  const auto suspended = c.effective_usage();
  EXPECT_NEAR(suspended.cpu, std::max(Container::kSuspendedCpuFloor,
                                      400 * Container::kSuspendedCpuFraction), 1e-9);
  EXPECT_NEAR(suspended.mem, std::max(Container::kSuspendedMemFloor,
                                      100 * Container::kSuspendedMemFraction), 1e-9);
  EXPECT_NEAR(suspended.io, std::max(Container::kSuspendedIoFloor,
                                     10 * Container::kSuspendedIoFraction), 1e-9);
  c.resume();
  EXPECT_EQ(c.state(), ContainerState::kRunning);
}

TEST(Container, SetLimitReturnsOld) {
  Container c(ContainerId(1), InstanceId(2), MachineId(0), {800, 100, 10}, {400, 100, 10});
  const auto old = c.set_limit({600, 100, 10});
  EXPECT_EQ(old, (ResourceVector{400, 100, 10}));
  EXPECT_EQ(c.limit(), (ResourceVector{600, 100, 10}));
  EXPECT_THROW(c.set_limit({-1, 0, 0}), InvariantError);
}

TEST(Machine, AddRemoveContainers) {
  Machine m(MachineId(0), {1000, 2000, 100});
  m.add_container(ContainerId(1), InstanceId(10), {400, 100, 10}, {400, 100, 10});
  m.add_container(ContainerId(2), InstanceId(11), {300, 100, 10}, {300, 100, 10});
  EXPECT_EQ(m.container_count(), 2u);
  EXPECT_NE(m.find_container(ContainerId(1)), nullptr);
  m.remove_container(ContainerId(1));
  EXPECT_EQ(m.container_count(), 1u);
  EXPECT_EQ(m.find_container(ContainerId(1)), nullptr);
}

TEST(Machine, DuplicateContainerThrows) {
  Machine m(MachineId(0), {1000, 2000, 100});
  m.add_container(ContainerId(1), InstanceId(10), {1, 1, 1}, {1, 1, 1});
  EXPECT_THROW(m.add_container(ContainerId(1), InstanceId(11), {1, 1, 1}, {1, 1, 1}),
               InvariantError);
}

TEST(Machine, RemoveMissingThrows) {
  Machine m(MachineId(0), {1000, 2000, 100});
  EXPECT_THROW(m.remove_container(ContainerId(9)), InvariantError);
}

TEST(Machine, UsageAndOversubscription) {
  Machine m(MachineId(0), {1000, 2000, 100});
  m.add_container(ContainerId(1), InstanceId(1), {600, 500, 40}, {600, 500, 40});
  EXPECT_FALSE(m.oversubscribed());
  EXPECT_DOUBLE_EQ(m.contention_factor(), 1.0);
  m.add_container(ContainerId(2), InstanceId(2), {600, 500, 40}, {600, 500, 40});
  EXPECT_TRUE(m.oversubscribed());
  EXPECT_DOUBLE_EQ(m.contention_factor(), 1.2);  // 1200/1000 cpu
  // Physical usage clamps to capacity even when limits exceed it.
  EXPECT_EQ(m.current_usage().cpu, 1000);
  EXPECT_EQ(m.allocated().cpu, 1200);
  EXPECT_EQ(m.demanded().cpu, 1200);
}

TEST(Machine, UtilizationSum) {
  Machine m(MachineId(0), {1000, 2000, 100});
  EXPECT_DOUBLE_EQ(m.utilization_sum(), 0.0);
  m.add_container(ContainerId(1), InstanceId(1), {500, 1000, 50}, {500, 1000, 50});
  EXPECT_DOUBLE_EQ(m.utilization_sum(), 1.5);  // 0.5 + 0.5 + 0.5
}

TEST(Machine, ContainerIdsSorted) {
  Machine m(MachineId(0), {1000, 2000, 100});
  m.add_container(ContainerId(5), InstanceId(1), {1, 1, 1}, {1, 1, 1});
  m.add_container(ContainerId(2), InstanceId(2), {1, 1, 1}, {1, 1, 1});
  m.add_container(ContainerId(9), InstanceId(3), {1, 1, 1}, {1, 1, 1});
  const auto ids = m.container_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ContainerId(2));
  EXPECT_EQ(ids[2], ContainerId(9));
}

TEST(Cluster, Construction) {
  Cluster c(small_params());
  EXPECT_EQ(c.machine_count(), 4u);
  EXPECT_EQ(c.machine(MachineId(3)).id(), MachineId(3));
  EXPECT_THROW(c.machine(MachineId(4)), InvariantError);
}

TEST(Cluster, TotalCapacity) {
  Cluster c(small_params());
  EXPECT_EQ(c.total_capacity(), (ResourceVector{4000, 8000, 400}));
}

TEST(Cluster, OverallUtilization) {
  Cluster c(small_params());
  EXPECT_DOUBLE_EQ(c.overall_utilization(), 0.0);
  // Fill one machine's CPU halfway: U = 0.5 / (3 * 4).
  c.machine(MachineId(0)).add_container(ContainerId(1), InstanceId(1), {500, 0, 0}, {500, 0, 0});
  EXPECT_NEAR(c.overall_utilization(), 0.5 / 12.0, 1e-12);
}

TEST(Cluster, UtilizationBounded) {
  Cluster c(small_params());
  for (std::uint32_t m = 0; m < 4; ++m) {
    c.machine(MachineId(m)).add_container(ContainerId(m), InstanceId(m), {9999, 9999, 9999},
                                          {9999, 9999, 9999});
  }
  EXPECT_LE(c.overall_utilization(), 1.0);
  EXPECT_GT(c.overall_utilization(), 0.99);
}

TEST(Cluster, LedgerPerMachine) {
  Cluster c(small_params());
  c.machine(MachineId(0)).ledger().reserve(0, 100, {500, 0, 0});
  EXPECT_FALSE(c.machine(MachineId(0)).ledger().fits(0, 100, {600, 0, 0}));
  EXPECT_TRUE(c.machine(MachineId(1)).ledger().fits(0, 100, {600, 0, 0}));
}

TEST(Cluster, BadParamsThrow) {
  ClusterParams p;
  p.machine_count = 0;
  EXPECT_THROW(Cluster{p}, InvariantError);
}

}  // namespace
}  // namespace vmlp::cluster
