// Network substrate: topology distances, communication-delay model, Table II
// C-term classification.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/comm_model.h"
#include "net/topology.h"
#include "stats/summary.h"

namespace vmlp::net {
namespace {

TEST(Topology, RackAssignment) {
  Topology t(100, 20);
  EXPECT_EQ(t.rack_count(), 5u);
  EXPECT_EQ(t.rack_of(MachineId(0)), 0u);
  EXPECT_EQ(t.rack_of(MachineId(19)), 0u);
  EXPECT_EQ(t.rack_of(MachineId(20)), 1u);
  EXPECT_EQ(t.rack_of(MachineId(99)), 4u);
}

TEST(Topology, PartialLastRack) {
  Topology t(25, 10);
  EXPECT_EQ(t.rack_count(), 3u);
  EXPECT_EQ(t.rack_of(MachineId(24)), 2u);
}

TEST(Topology, Distances) {
  Topology t(40, 10);
  EXPECT_EQ(t.distance(MachineId(3), MachineId(3)), Distance::kSameMachine);
  EXPECT_EQ(t.distance(MachineId(3), MachineId(7)), Distance::kSameRack);
  EXPECT_EQ(t.distance(MachineId(3), MachineId(17)), Distance::kCrossRack);
}

TEST(Topology, OutOfRangeThrows) {
  Topology t(10, 5);
  EXPECT_THROW(t.rack_of(MachineId(10)), InvariantError);
  EXPECT_THROW(t.rack_of(MachineId()), InvariantError);
}

TEST(Topology, DistanceNames) {
  EXPECT_STREQ(distance_name(Distance::kSameMachine), "same-machine");
  EXPECT_STREQ(distance_name(Distance::kCrossRack), "cross-rack");
}

class CommModelTest : public ::testing::Test {
 protected:
  Topology topology_{40, 10};
  CommModelParams params_{};
};

TEST_F(CommModelTest, MeansOrderedByDistance) {
  CommModel model(topology_, params_, Rng(1));
  stats::Summary same, rack, cross;
  for (int i = 0; i < 20000; ++i) {
    same.add(static_cast<double>(model.sample_delay(Distance::kSameMachine)));
    rack.add(static_cast<double>(model.sample_delay(Distance::kSameRack)));
    cross.add(static_cast<double>(model.sample_delay(Distance::kCrossRack)));
  }
  EXPECT_LT(same.mean(), rack.mean());
  EXPECT_LT(rack.mean(), cross.mean());
  // Fig. 4: intra-machine delays are also more stable.
  EXPECT_LT(same.stddev(), cross.stddev());
}

TEST_F(CommModelTest, SampleByMachinePairUsesDistance) {
  CommModel model(topology_, params_, Rng(2));
  stats::Summary same, cross;
  for (int i = 0; i < 5000; ++i) {
    same.add(static_cast<double>(model.sample_delay(MachineId(1), MachineId(1))));
    cross.add(static_cast<double>(model.sample_delay(MachineId(1), MachineId(35))));
  }
  EXPECT_LT(same.mean() * 2.0, cross.mean());
}

TEST_F(CommModelTest, DelaysArePositive) {
  CommModel model(topology_, params_, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.sample_delay(Distance::kSameMachine), 1);
  }
}

TEST_F(CommModelTest, CongestionCreatesHeavyTail) {
  CommModelParams no_congestion = params_;
  no_congestion.congestion_prob = 0.0;
  CommModelParams heavy = params_;
  heavy.congestion_prob = 0.2;

  CommModel clean(topology_, no_congestion, Rng(4));
  CommModel congested(topology_, heavy, Rng(4));
  stats::Summary clean_s, congested_s;
  for (int i = 0; i < 20000; ++i) {
    clean_s.add(static_cast<double>(clean.sample_delay(Distance::kCrossRack)));
    congested_s.add(static_cast<double>(congested.sample_delay(Distance::kCrossRack)));
  }
  EXPECT_GT(congested_s.max(), clean_s.max());
  EXPECT_GT(congested_s.mean(), clean_s.mean());
}

TEST_F(CommModelTest, Deterministic) {
  CommModel a(topology_, params_, Rng(7));
  CommModel b(topology_, params_, Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.sample_delay(Distance::kSameRack), b.sample_delay(Distance::kSameRack));
  }
}

TEST_F(CommModelTest, BadParamsThrow) {
  CommModelParams bad = params_;
  bad.congestion_prob = 1.5;
  EXPECT_THROW(CommModel(topology_, bad, Rng(1)), InvariantError);
  bad = params_;
  bad.same_machine_mean_us = -1.0;
  EXPECT_THROW(CommModel(topology_, bad, Rng(1)), InvariantError);
  bad = params_;
  bad.congestion_mult_hi = bad.congestion_mult_lo - 1.0;
  EXPECT_THROW(CommModel(topology_, bad, Rng(1)), InvariantError);
}

TEST(CommClass, TableIIThresholds) {
  EXPECT_EQ(comm_class_from_variance(0.0), 1);
  EXPECT_EQ(comm_class_from_variance(99.9), 1);
  EXPECT_EQ(comm_class_from_variance(100.0), 2);
  EXPECT_EQ(comm_class_from_variance(399.9), 2);
  EXPECT_EQ(comm_class_from_variance(400.0), 3);
  EXPECT_EQ(comm_class_from_variance(10000.0), 3);
}

TEST_F(CommModelTest, EstimatedClassGrowsWithDistance) {
  CommModel model(topology_, params_, Rng(11));
  const int same = model.estimate_comm_class(Distance::kSameMachine, 200, 99);
  const int cross = model.estimate_comm_class(Distance::kCrossRack, 200, 99);
  EXPECT_LE(same, cross);
  EXPECT_GE(same, 1);
  EXPECT_LE(cross, 3);
}

TEST_F(CommModelTest, EstimateNeedsTwoProbes) {
  CommModel model(topology_, params_, Rng(11));
  EXPECT_THROW(model.estimate_comm_class(Distance::kSameRack, 1, 5), InvariantError);
}

}  // namespace
}  // namespace vmlp::net
