#!/usr/bin/env python3
"""Golden test for tools/vmlp_analyze.py.

Runs the analyzer over the fixture TUs under tests/analyze_fixtures/src/
(each exercises one rule; clean.cpp holds the near-misses) against an empty
baseline and compares path:line:rule of every reported finding with
expected.txt.

Exit: 0 findings match the golden file, 1 mismatch or analyzer failure,
77 --require-libclang and libclang unavailable (ctest SKIP_RETURN_CODE).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
FINDING = re.compile(r"^(\S+?):(\d+): \[([\w-]+)\]")


def load_expected() -> set[str]:
    expected = set()
    for line in (HERE / "expected.txt").read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            expected.add(line)
    return expected


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frontend", default="internal",
                        choices=("internal", "libclang", "auto"))
    parser.add_argument("--require-libclang", action="store_true",
                        help="skip (exit 77) instead of falling back when "
                             "libclang is missing")
    parser.add_argument("--print-actual", action="store_true",
                        help="print the actual findings in expected.txt form "
                             "(for regenerating the golden file)")
    args = parser.parse_args(argv)

    fixtures = sorted((HERE / "src").rglob("*.cpp"))
    if not fixtures:
        print("run_fixtures: no fixture TUs found", file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile("w", suffix=".txt") as empty_baseline:
        cmd = [sys.executable, str(ROOT / "tools" / "vmlp_analyze.py"),
               "--root", str(ROOT), "--baseline", empty_baseline.name,
               "--frontend", args.frontend]
        if args.require_libclang:
            cmd.append("--require-libclang")
        cmd += [str(f) for f in fixtures]
        proc = subprocess.run(cmd, capture_output=True, text=True)

    if proc.returncode == 77:
        print("run_fixtures: libclang unavailable; skipping")
        return 77
    if proc.returncode not in (0, 1):
        print(f"run_fixtures: analyzer failed (exit {proc.returncode})",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return 1

    actual = set()
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if m:
            actual.add(f"{m.group(1)}:{m.group(2)}: {m.group(3)}")

    if args.print_actual:
        for entry in sorted(actual):
            print(entry)
        return 0

    expected = load_expected()
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for entry in missing:
        print(f"run_fixtures: MISSING (expected, not reported): {entry}")
    for entry in unexpected:
        print(f"run_fixtures: UNEXPECTED (reported, not expected): {entry}")
    if missing or unexpected:
        print(f"run_fixtures: FAIL ({len(missing)} missing, "
              f"{len(unexpected)} unexpected) [frontend={args.frontend}]",
              file=sys.stderr)
        return 1
    print(f"run_fixtures: OK — {len(actual)} findings match expected.txt "
          f"across {len(fixtures)} fixture TUs [frontend={args.frontend}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
