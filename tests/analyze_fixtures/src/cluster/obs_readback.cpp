// [obs-readback] fixture: a collector state read from core code (violation)
// next to the write path and a same-named method on a non-collector type,
// both of which must stay silent.

namespace vmlp::obs {
class Collector {
 public:
  unsigned long long counter_value(int id) const;
  void record_event(int kind, unsigned long long value);
};
}  // namespace vmlp::obs

namespace vmlp::cluster {

unsigned long long admitted_total(const obs::Collector* obs) {
  return obs->counter_value(3);  // VIOLATION: core code reads telemetry back
}

void note_admit(obs::Collector* obs) {
  if (obs != nullptr) obs->record_event(1, 1);  // write path: fine
}

struct Snapshotter {
  unsigned long long counter_value(int id) const { return id > 0 ? 1u : 0u; }
};

unsigned long long near_miss(const Snapshotter& snap) {
  return snap.counter_value(3);  // not a collector: fine
}

}  // namespace vmlp::cluster
