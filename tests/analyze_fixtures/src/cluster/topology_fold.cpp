// [unordered-escape] fixture: the topology summary-index fold shape —
// unordered iteration accumulating into an *element of a float vector*
// (block_free_max_[b] style) leaks insertion order exactly like a scalar
// accumulator. Element accumulation into an integer vector, and the same
// fold driven by an ordered container, must stay silent.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vmlp::cluster {

class TopologyFold {
 public:
  void fold_block_loads() {
    for (const auto& entry : machine_load_) {  // VIOLATION: element accumulation
      block_load_[entry.first % block_load_.size()] += entry.second;
    }
  }

  void count_block_members() {
    for (const auto& entry : machine_load_) {  // int elements: order-safe
      block_members_[entry.first % block_members_.size()] += 1;
    }
  }

  void fold_ordered_cells() {
    for (const double load : cell_load_) {  // ordered source: fine
      block_load_[0] += load;
    }
  }

 private:
  std::unordered_map<std::size_t, double> machine_load_;
  std::vector<double> block_load_;
  std::vector<double> cell_load_;
  std::vector<std::uint64_t> block_members_;
};

}  // namespace vmlp::cluster
