// [unordered-escape] fixture: unordered iteration whose order escapes into
// float accumulation, event scheduling, and an export sink (one violation
// each); a loop whose result is order-independent must stay silent.
#include <ostream>
#include <unordered_map>

namespace vmlp::mlp {

struct FakeEngine {
  void schedule_at(long long when, int what);
};

class PlacementStats {
 public:
  double weighted_total() const {
    double total = 0.0;
    for (const auto& entry : weights_) {  // VIOLATION: float accumulation
      total += entry.second;
    }
    return total;
  }

  void reschedule_all(FakeEngine& engine) {
    for (const auto& entry : deadlines_) {  // VIOLATION: event scheduling
      engine.schedule_at(entry.second, entry.first);
    }
  }

  void dump(std::ostream& os) const {
    for (const auto& entry : weights_) {  // VIOLATION: export sink
      os << entry.first;
    }
  }

  int cardinality() const {
    int n = 0;
    for (const auto& entry : weights_) {  // order stays local: fine
      n += 1;
    }
    return n;
  }

 private:
  std::unordered_map<int, double> weights_;
  std::unordered_map<int, long long> deadlines_;
};

}  // namespace vmlp::mlp
