// Clean fixture: every construct here skirts a rule without violating it.
// The analyzer must report nothing for this TU.
#include <chrono>
#include <map>
#include <unordered_map>

namespace vmlp {

class Rng {
 public:
  explicit Rng(unsigned long long seed);
  double uniform();
};

namespace sim {

// Whitelisted host-clock scope.
class PolicyScope {
 public:
  void begin() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Accumulator {
 public:
  double ordered_total() const {
    double total = 0.0;
    for (const auto& entry : ordered_) total += entry.second;  // std::map: stable
    return total;
  }

  int unordered_count() const {
    int n = 0;
    for (const auto& entry : histogram_) n += entry.second;  // order never escapes
    return n;
  }

 private:
  std::map<int, double> ordered_;
  std::unordered_map<int, int> histogram_;
};

double spend(Rng&& sink) { return sink.uniform(); }  // sink signature: fine
double peek(const Rng& observer);                    // observer signature: fine

long long runtime_limit(long long timeout) { return timeout; }  // 'time' substring

}  // namespace sim
}  // namespace vmlp
