// [host-clock] fixture: one violating wall-clock read, one whitelisted
// (inside PolicyScope), one waived by comment. Self-contained so both the
// internal frontend and libclang can process it without project includes.
#include <chrono>

namespace vmlp::sim {

// Whitelisted host-profiling scope: clock reads here feed obs policy slices,
// never a simulation decision.
class PolicyScope {
 public:
  void begin() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

long long stamp_decision() {
  auto now = std::chrono::steady_clock::now();  // VIOLATION: host-clock
  return now.time_since_epoch().count();
}

long long waived_epoch() {
  // analyze: allow(host-clock): fixture demonstrating the waiver syntax.
  auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace vmlp::sim
