// [engine-lock] fixture (sim variant): any lock acquisition inside src/sim/
// is a violation — the engine is single-threaded by design.

namespace vmlp {

class Mutex {
 public:
  void lock();
  void unlock();
};

namespace sim {

class Dispatcher {
 public:
  void dispatch() {
    queue_mu_.lock();  // VIOLATION: lock on the engine hot path
    pending_ += 1;
    queue_mu_.unlock();
  }

 private:
  Mutex queue_mu_;
  int pending_ = 0;
};

}  // namespace sim
}  // namespace vmlp
