// [shard-shared-state] fixture: mutation of shared state from inside a
// shard-worker lambda (a callable handed to ThreadPool::parallel_for /
// parallel_for_dynamic). Two violations — a by-reference accumulation and an
// unguarded container mutation — plus the full set of sanctioned near-misses:
// a slot write indexed by a lambda parameter, body-local state, a
// VMLP_GUARDED_BY member, and lane-owned ShardArena memory. Self-contained so
// both frontends can process it without project includes.
#include <cstddef>
#include <vector>

#define VMLP_GUARDED_BY(mu)

namespace vmlp::exp {

struct ShardArena {
  void reset() {}
};

struct ThreadPool {
  template <typename F>
  void parallel_for_dynamic(std::size_t, std::size_t, F&&) {}
  template <typename F>
  void parallel_for(std::size_t, std::size_t, F&&) {}
};

struct Row {
  double wall = 0.0;
};

class Runner {
 public:
  void run(std::size_t trials) {
    ThreadPool pool;
    std::vector<Row> results(trials);
    std::vector<std::size_t> order;
    std::vector<ShardArena> arenas(8);
    double total_wall = 0.0;
    pool.parallel_for_dynamic(0, trials, [&](std::size_t lane, std::size_t i) {
      ShardArena& arena = arenas[lane];
      arena.reset();  // near-miss: ShardArena is lane-owned memory
      Row row;        // near-miss: body-local state
      row.wall = static_cast<double>(i);
      total_wall += row.wall;     // VIOLATION: shard-shared-state
      order.push_back(i);         // VIOLATION: shard-shared-state
      results[i] = row;           // near-miss: slot indexed by lambda param
      done_ += 1;                 // near-miss: VMLP_GUARDED_BY member
    });
  }

 private:
  std::size_t done_ VMLP_GUARDED_BY(mu_) = 0;
  int mu_ = 0;
};

// A lambda not handed to the pool mutates captures freely: the rule is scoped
// to shard workers, not to lambdas in general.
inline double sequential_sum(const std::vector<Row>& rows) {
  double total = 0.0;
  auto add = [&](const Row& r) { total += r.wall; };
  for (const Row& r : rows) add(r);
  return total;
}

}  // namespace vmlp::exp
