// [rng-by-value] fixture: by-value parameter, copy-initialization from a
// live Rng, and a by-copy lambda capture — each silently duplicates the
// substream. Rng&& sinks, const Rng& observers, and by-reference captures
// are the sanctioned forms and must stay silent.

namespace vmlp {

class Rng {
 public:
  explicit Rng(unsigned long long seed);
  double uniform();
  Rng fork(const char* label);
};

namespace sched {

double draw_jitter(Rng rng) {  // VIOLATION: by-value parameter
  return rng.uniform();
}

double seeded_walk(Rng&& sink) {  // sink form: fine
  return sink.uniform();
}

double inspect(const Rng& observer);  // observer form: fine

double duplicate_streams() {
  Rng base(42);
  Rng dup = base;  // VIOLATION: copy-init duplicates 'base'
  return dup.uniform() + base.uniform();
}

double capture_by_copy() {
  Rng base(7);
  auto draw = [base]() mutable { return 0.0; };  // VIOLATION: by-copy capture
  return draw();
}

double capture_by_reference() {
  Rng base(9);
  auto draw = [&base] { return base.uniform(); };  // fine
  return draw();
}

}  // namespace sched
}  // namespace vmlp
