// [engine-lock] fixture (callback variant): outside src/sim/ a lock is only
// a violation inside a lambda handed to an engine schedule_* call — those
// callbacks run on the single simulation thread. The same lock in an
// ordinary lambda is trial-level code and must stay silent.

namespace vmlp {

class Mutex {
 public:
  void lock();
  void unlock();
};

namespace sim {
class Engine {
 public:
  template <typename F>
  void schedule_at(long long when, F&& fn);
};
}  // namespace sim

namespace sched {

class Rebalancer {
 public:
  void arm(sim::Engine& engine) {
    engine.schedule_at(100, [this] {
      shared_mu_.lock();  // VIOLATION: lock inside an engine callback
      epochs_ += 1;
      shared_mu_.unlock();
    });
  }

  void merge_results() {
    auto fold = [this] {
      shared_mu_.lock();  // plain lambda, never scheduled: fine
      epochs_ += 1;
      shared_mu_.unlock();
    };
    fold();
  }

 private:
  Mutex shared_mu_;
  int epochs_ = 0;
};

}  // namespace sched
}  // namespace vmlp
