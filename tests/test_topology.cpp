// CellTopology: partition math, router ranking, live counters, the headroom
// summary index, and the scale-out determinism claims — a single-cell
// topology run is byte-identical to the flat cluster (determinism_check
// claim 7 pins the full export; these tests keep the core guarantee inside
// ctest), and multi-cell routing is deterministic and actually routes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/cell_topology.h"
#include "cluster/cluster.h"
#include "common/audit.h"
#include "common/error.h"
#include "exp/experiment.h"

namespace vmlp::cluster {
namespace {

CellTopology make_topology(std::size_t machines, std::size_t cells) {
  CellTopologyParams p;
  p.cells = cells;
  return CellTopology(machines, p);
}

TEST(CellTopology, PartitionIsContiguousAndBalanced) {
  const auto topo = make_topology(10, 3);  // 4 + 3 + 3
  EXPECT_EQ(topo.cell_count(), 3u);
  EXPECT_EQ(topo.machine_count(), 10u);
  EXPECT_EQ(topo.cell_begin(0), 0u);
  EXPECT_EQ(topo.cell_size(0), 4u);
  EXPECT_EQ(topo.cell_begin(1), 4u);
  EXPECT_EQ(topo.cell_size(1), 3u);
  EXPECT_EQ(topo.cell_begin(2), 7u);
  EXPECT_EQ(topo.cell_size(2), 3u);
  std::size_t covered = 0;
  for (std::size_t c = 0; c < topo.cell_count(); ++c) {
    for (std::size_t i = topo.cell_begin(c); i < topo.cell_begin(c) + topo.cell_size(c); ++i) {
      EXPECT_EQ(topo.cell_of(MachineId(static_cast<std::uint32_t>(i))), c);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 10u);
}

TEST(CellTopology, DegenerateSingleCellSingleMachine) {
  const auto topo = make_topology(1, 1);
  EXPECT_EQ(topo.cell_count(), 1u);
  EXPECT_EQ(topo.cell_begin(0), 0u);
  EXPECT_EQ(topo.cell_size(0), 1u);
  EXPECT_EQ(topo.cell_of(MachineId(0)), 0u);
}

TEST(CellTopology, AutoSizeAndClamp) {
  // cells == 0 auto-sizes to ceil(n / 256).
  EXPECT_EQ(make_topology(100, 0).cell_count(), 1u);
  EXPECT_EQ(make_topology(1000, 0).cell_count(), 4u);
  EXPECT_EQ(make_topology(10000, 0).cell_count(), 40u);
  // More cells than machines clamps (no empty cells).
  EXPECT_EQ(make_topology(3, 8).cell_count(), 3u);
  // Zero machines is invalid.
  EXPECT_THROW(make_topology(0, 1), InvariantError);
}

TEST(CellTopology, RankingIsLoadDensityWithIdTieBreak) {
  auto topo = make_topology(9, 3);  // three equal cells of 3
  std::vector<std::size_t> ranked;
  topo.ranked_cells(ranked);
  // All empty: ascending id (the deterministic tie-break).
  EXPECT_EQ(ranked, (std::vector<std::size_t>{0, 1, 2}));

  // Load cell 0 with 2 placements and cell 1 with 1.
  topo.add_placement(MachineId(0));
  topo.add_placement(MachineId(1));
  topo.add_placement(MachineId(3));
  topo.ranked_cells(ranked);
  EXPECT_EQ(ranked, (std::vector<std::size_t>{2, 1, 0}));

  // Equal live counts on cells 0 and 1 again: lower id first.
  topo.add_placement(MachineId(4));
  topo.ranked_cells(ranked);
  EXPECT_EQ(ranked, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(CellTopology, RankingComparesDensityAcrossUnequalCellSizes) {
  auto topo = make_topology(10, 3);  // sizes 4, 3, 3
  // 1 placement in the size-4 cell (density 1/4) vs 1 in a size-3 cell
  // (density 1/3): the bigger cell is less dense and ranks first.
  topo.add_placement(MachineId(0));
  topo.add_placement(MachineId(4));
  std::vector<std::size_t> ranked;
  topo.ranked_cells(ranked);
  EXPECT_EQ(ranked, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(CellTopology, LiveCountersTrackPeaksAndUnderflowThrows) {
  auto topo = make_topology(6, 2);
  topo.add_placement(MachineId(0));
  topo.add_placement(MachineId(1));
  topo.add_placement(MachineId(3));
  EXPECT_EQ(topo.live_placements(0), 2u);
  EXPECT_EQ(topo.live_placements(1), 1u);
  EXPECT_EQ(topo.live_total(), 3u);
  topo.remove_placement(MachineId(0));
  topo.remove_placement(MachineId(1));
  EXPECT_EQ(topo.live_placements(0), 0u);
  EXPECT_EQ(topo.live_total(), 1u);
  // Peaks are high-water marks, not current values.
  EXPECT_EQ(topo.cell_live_peak(0), 2u);
  EXPECT_EQ(topo.cell_live_peak(1), 1u);
  EXPECT_EQ(topo.live_peak(), 3u);
  EXPECT_THROW(topo.remove_placement(MachineId(0)), InvariantError);
}

class HeadroomIndexTest : public ::testing::Test {
 protected:
  HeadroomIndexTest() {
    ClusterParams p;
    p.machine_count = 8;
    p.topology.cells = 2;  // cells of 4
    cluster_ = std::make_unique<Cluster>(p);
  }

  /// Reserve `frac` of machine i's capacity over a long window, following
  /// the driver's discipline: every ledger mutation notifies the headroom
  /// index, which is push-maintained and trusts the notifications.
  void occupy(std::size_t i, double frac) {
    Machine& m = cluster_->machine(MachineId(static_cast<std::uint32_t>(i)));
    m.ledger().reserve(0, 1000 * kSec, m.capacity() * frac);
    cluster_->cells().note_mutation(MachineId(static_cast<std::uint32_t>(i)), m);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(HeadroomIndexTest, CandidateAdmitsDemandAndRespectsCellBounds) {
  // Cell 0 machines at 90% occupancy except machine 2 at 10%.
  for (std::size_t i : {0u, 1u, 3u}) occupy(i, 0.9);
  occupy(2, 0.1);
  const auto& topo = cluster_->cells();
  const std::size_t cand = topo.first_fit_candidate(*cluster_, 0, 0, 0.5);
  ASSERT_NE(cand, CellTopology::kNoMachine);
  EXPECT_EQ(cand, 2u);
  // The candidate provably fits: guaranteed free fraction admits the demand.
  const auto& led = cluster_->machine(MachineId(static_cast<std::uint32_t>(cand))).ledger();
  EXPECT_GE(led.free_fraction(), 0.5);
}

TEST_F(HeadroomIndexTest, FullCellReturnsNoMachineOtherCellStillFits) {
  for (std::size_t i = 0; i < 4; ++i) occupy(i, 0.95);  // cell 0 exactly full for 0.5
  const auto& topo = cluster_->cells();
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), CellTopology::kNoMachine);
  const std::size_t cand = topo.first_fit_candidate(*cluster_, 1, 0, 0.5);
  ASSERT_NE(cand, CellTopology::kNoMachine);
  EXPECT_GE(cand, 4u);  // cell 1's id range
  EXPECT_LT(cand, 8u);
}

TEST_F(HeadroomIndexTest, CacheInvalidatesOnLedgerMutation) {
  const auto& topo = cluster_->cells();
  // Everything free: machine 0 is the first candidate.
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 0u);
  // Saturate machine 0 *after* the index cached it; occupy() notifies the
  // index (the driver's discipline) and the re-query must not return the
  // stale entry.
  occupy(0, 0.95);
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 1u);
  // Brute-force agreement: the candidate is the first admissible machine in
  // block order, and every machine before it in the cell is inadmissible.
  for (std::size_t i = 0; i < 1; ++i) {
    EXPECT_LT(cluster_->machine(MachineId(static_cast<std::uint32_t>(i))).ledger().free_fraction(),
              0.5);
  }
}

TEST_F(HeadroomIndexTest, RefreshIsGatedOnMutationNotification) {
  const bool audits_were_on = vmlp::audit::enabled();
  vmlp::audit::set_enabled(false);  // the audit tier would (rightly) throw below
  auto& topo = cluster_->cells();
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 0u);
  // A ledger mutated without note_mutation is NOT re-folded: the index is
  // push-maintained and serves the cached summary (advisory-only staleness —
  // admission re-validates candidates against the exact ledger, and the
  // audit tier flags the missed notification). Every real mutation path
  // goes through the driver, which always notifies.
  Machine& m0 = cluster_->machine(MachineId(0));
  m0.ledger().reserve(0, 1000 * kSec, m0.capacity() * 0.95);
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 0u);
  // The notification restores exactness.
  topo.note_mutation(MachineId(0), m0);
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 1u);
  vmlp::audit::set_enabled(audits_were_on);
}

TEST_F(HeadroomIndexTest, AuditCatchesMissedNotification) {
  const bool audits_were_on = vmlp::audit::enabled();
  auto& topo = cluster_->cells();
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 0u);  // folds block 0
  Machine& m0 = cluster_->machine(MachineId(0));
  m0.ledger().reserve(0, 1000 * kSec, m0.capacity() * 0.95);  // no notification
  vmlp::audit::set_enabled(true);
  EXPECT_THROW(static_cast<void>(topo.first_fit_candidate(*cluster_, 0, 0, 0.5)),
               InvariantError);
  vmlp::audit::set_enabled(audits_were_on);
}

TEST_F(HeadroomIndexTest, DownMachinesAreSkipped) {
  cluster_->machine(MachineId(0)).set_up(false);
  const auto& topo = cluster_->cells();
  EXPECT_EQ(topo.first_fit_candidate(*cluster_, 0, 0, 0.5), 1u);
}

TEST(ClusterTopology, MachineCountOverflowGuard) {
  // The uint32 MachineId narrowing guard fires before any allocation.
  ClusterParams p;
  p.machine_count = static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(Cluster{p}, InvariantError);
}

}  // namespace
}  // namespace vmlp::cluster

namespace vmlp::exp {
namespace {

ExperimentConfig scale_config(std::size_t machines, std::size_t cells, std::uint64_t seed) {
  ExperimentConfig c;
  c.scheme = SchemeKind::kVmlp;
  c.pattern = loadgen::PatternKind::kL1Pulse;
  c.stream = StreamKind::kMixed;
  c.seed = seed;
  c.driver.horizon = 3 * kSec;
  c.driver.cluster.machine_count = machines;
  c.driver.cluster.topology.cells = cells;
  c.pattern_params.horizon = c.driver.horizon;
  c.pattern_params.base_rate = 16.0;
  c.pattern_params.max_rate = 48.0;
  c.pattern_params.peak_time = c.driver.horizon / 2;
  return c;
}

void expect_identical(const sched::RunResult& a, const sched::RunResult& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.unfinished, b.unfinished);
  EXPECT_EQ(a.placements, b.placements);
  // Bit-exact: any drift means the router path perturbed a decision.
  EXPECT_EQ(a.qos_violation_rate, b.qos_violation_rate);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.p50_latency_us, b.p50_latency_us);
  EXPECT_EQ(a.p90_latency_us, b.p90_latency_us);
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
}

TEST(TopologyDeterminism, SingleCellRouterIsByteIdenticalToFlatScan) {
  // The claim-7 hinge: cell_router on a 1-cell topology must reproduce the
  // pre-topology flat scan bit-for-bit (cursor trajectories coincide).
  auto with_router = scale_config(8, 1, 11);
  with_router.vmlp.cell_router = true;
  auto flat = scale_config(8, 1, 11);
  flat.vmlp.cell_router = false;
  const auto a = run_experiment(with_router);
  const auto b = run_experiment(flat);
  expect_identical(a.run, b.run);
  EXPECT_EQ(a.utilization_series, b.utilization_series);
}

TEST(TopologyDeterminism, MultiCellRunIsDeterministicAndCompletes) {
  auto c = scale_config(8, 2, 11);
  c.driver.obs.enabled = true;
  const auto a = run_experiment(c);
  const auto b = run_experiment(c);
  expect_identical(a.run, b.run);
  EXPECT_GT(a.run.completed, 0u);
  // Vacuity guard: the router actually routed (stages went through ranked
  // cells), so the byte-identity test above is not comparing two flat scans.
  const obs::MetricSnapshot* routed = a.obs.snapshot.find("topology.stages_routed");
  ASSERT_NE(routed, nullptr);
  EXPECT_GT(routed->counter, 0u);
  const obs::MetricSnapshot* cells = a.obs.snapshot.find("topology.cells_configured");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->gauge, 2.0);
}

TEST(TopologyDeterminism, MultiCellDiffersFromFlatOrMatchesHarmlessly) {
  // Not a byte claim — a 2-cell router probes in a different order, so the
  // run is *expected* to diverge from flat. Assert both runs are healthy;
  // the placements-per-cell gauges prove both cells were used.
  auto c = scale_config(8, 2, 11);
  c.driver.obs.enabled = true;
  const auto r = run_experiment(c);
  EXPECT_GT(r.run.completed, 0u);
  const obs::MetricSnapshot* c0 = r.obs.snapshot.find("topology.cell0.live_peak");
  const obs::MetricSnapshot* c1 = r.obs.snapshot.find("topology.cell1.live_peak");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_GT(c0->gauge, 0.0);
  EXPECT_GT(c1->gauge, 0.0);
}

TEST(TopologyHealing, CrashedCellReplacesAcrossCells) {
  // Orphaned-node healing when the crashed machine's cell is saturated:
  // machines crash under failure injection on a 2-cell cluster and the
  // self-healing module must be able to re-place across cells. The run must
  // stay healthy (no stuck orphans beyond the retry budget accounting).
  auto c = scale_config(6, 2, 13);
  c.driver.horizon = 4 * kSec;
  c.pattern_params.horizon = c.driver.horizon;
  c.pattern_params.peak_time = c.driver.horizon / 2;
  c.driver.failure.enabled = true;
  c.driver.failure.crashes_per_second = 0.5;
  c.driver.failure.recovery_mean = 800 * kMsec;
  c.driver.obs.enabled = true;
  const auto r = run_experiment(c);
  EXPECT_GT(r.run.machine_crashes, 0u);
  EXPECT_GT(r.run.completed, 0u);
  // Both cells saw placements: cross-cell placement is live.
  const obs::MetricSnapshot* c0 = r.obs.snapshot.find("topology.cell0.live_peak");
  const obs::MetricSnapshot* c1 = r.obs.snapshot.find("topology.cell1.live_peak");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_GT(c0->gauge, 0.0);
  EXPECT_GT(c1->gauge, 0.0);
  // Determinism under failures + multi-cell routing.
  const auto again = run_experiment(c);
  expect_identical(r.run, again.run);
}

TEST(TopologyStreamed, StreamedArrivalsMatchBulkCount) {
  // Streamed mode is its own determinism domain (event interleaving differs
  // from bulk) but must admit exactly the same arrivals.
  auto bulk = scale_config(6, 2, 17);
  auto streamed = bulk;
  streamed.stream_arrivals = true;
  const auto a = run_experiment(bulk);
  const auto b = run_experiment(streamed);
  EXPECT_EQ(a.run.arrived, b.run.arrived);
  EXPECT_GT(b.run.completed, 0u);
  // Streamed self-determinism.
  const auto b2 = run_experiment(streamed);
  expect_identical(b.run, b2.run);
}

}  // namespace
}  // namespace vmlp::exp
