// Reproducibility: same seed => identical summary metrics, regardless of how
// many pool threads execute the sweep; different seeds => different streams.
// (The standalone tools/determinism_check harness byte-diffs full exported
// event streams; these tests keep the core guarantee inside ctest.)
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exp/experiment.h"
#include "trace/export.h"

namespace vmlp::exp {
namespace {

std::vector<ExperimentConfig> small_grid() {
  std::vector<ExperimentConfig> grid;
  for (const auto scheme : {SchemeKind::kVmlp, SchemeKind::kFairSched}) {
    for (const std::uint64_t seed : {11ULL, 12ULL}) {
      ExperimentConfig c;
      c.scheme = scheme;
      c.pattern = loadgen::PatternKind::kL1Pulse;
      c.stream = StreamKind::kMixed;
      c.seed = seed;
      c.driver.horizon = 3 * kSec;
      c.driver.cluster.machine_count = 6;
      c.driver.interference.enabled = true;
      c.pattern_params.horizon = c.driver.horizon;
      c.pattern_params.base_rate = 16.0;
      c.pattern_params.max_rate = 48.0;
      c.pattern_params.peak_time = c.driver.horizon / 2;
      grid.push_back(c);
    }
  }
  return grid;
}

void expect_identical(const sched::RunResult& a, const sched::RunResult& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.unfinished, b.unfinished);
  // Bit-exact, not approximately equal: any drift means hidden shared state.
  EXPECT_EQ(a.qos_violation_rate, b.qos_violation_rate);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.p50_latency_us, b.p50_latency_us);
  EXPECT_EQ(a.p90_latency_us, b.p90_latency_us);
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
}

TEST(Determinism, GridIdenticalAcrossThreadCounts) {
  const auto grid = small_grid();
  const auto serial = run_grid(grid, 1);
  const auto two = run_grid(grid, 2);
  const auto wide = run_grid(grid, 8);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(two.size(), grid.size());
  ASSERT_EQ(wide.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i].run, two[i].run);
    expect_identical(serial[i].run, wide[i].run);
    EXPECT_EQ(serial[i].utilization_series, two[i].utilization_series);
    EXPECT_EQ(serial[i].utilization_series, wide[i].utilization_series);
  }
}

TEST(Determinism, RepeatedRunIsBitIdentical) {
  ExperimentConfig c = small_grid().front();
  const auto a = run_experiment(c);
  const auto b = run_experiment(c);
  expect_identical(a.run, b.run);
  EXPECT_EQ(a.utilization_series, b.utilization_series);
}

TEST(Determinism, SeedChangesTheStream) {
  ExperimentConfig c = small_grid().front();
  const auto a = run_experiment(c);
  c.seed += 1;
  const auto b = run_experiment(c);
  EXPECT_NE(a.run.arrived, b.run.arrived);
}

}  // namespace
}  // namespace vmlp::exp
