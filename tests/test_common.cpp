// Common utilities: SimTime formatting, strong ids, Config, logging,
// annotated synchronization primitives.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "common/log.h"
#include "common/mutex.h"
#include "common/types.h"

namespace vmlp {
namespace {

TEST(Types, FormatTime) {
  EXPECT_EQ(format_time(500), "500us");
  EXPECT_EQ(format_time(1500), "1.500ms");
  EXPECT_EQ(format_time(2 * kSec + 500 * kMsec), "2.500s");
  EXPECT_EQ(format_time(kTimeInfinity), "+inf");
  EXPECT_EQ(format_time(-1500), "-1.500ms");
}

TEST(Types, TimeConstants) {
  EXPECT_EQ(kMsec, 1000);
  EXPECT_EQ(kSec, 1000000);
}

TEST(StrongId, DefaultIsInvalid) {
  MachineId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, MachineId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  MachineId id(5);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 5u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(MachineId(1), MachineId(2));
  EXPECT_NE(MachineId(1), MachineId(2));
  EXPECT_EQ(MachineId(3), MachineId(3));
}

TEST(StrongId, DistinctIdSpacesAreDistinctTypes) {
  static_assert(!std::is_same_v<MachineId, ServiceTypeId>);
  static_assert(!std::is_same_v<RequestId, InstanceId>);
}

TEST(StrongId, Hashable) {
  std::hash<MachineId> h;
  EXPECT_EQ(h(MachineId(4)), h(MachineId(4)));
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    VMLP_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) { VMLP_CHECK(1 + 1 == 2); }

TEST(Config, ParseBasic) {
  const auto cfg = Config::parse("a = 1\nb = hello\n# comment\n; also comment\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_EQ(cfg.size(), 2u);
}

TEST(Config, SectionsFlattenToDottedKeys) {
  const auto cfg = Config::parse("[cluster]\nmachines = 100\n[sim]\nseed = 7\n");
  EXPECT_EQ(cfg.get_int("cluster.machines", 0), 100);
  EXPECT_EQ(cfg.get_int("sim.seed", 0), 7);
}

TEST(Config, TypedGettersWithDefaults) {
  const auto cfg = Config::parse("x = 2.5\nflag = true\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
  EXPECT_EQ(cfg.get_string("missing", "d"), "d");
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::parse("a=true\nb=1\nc=yes\nd=on\ne=false\nf=0\ng=no\nh=off\n");
  for (const char* k : {"a", "b", "c", "d"}) EXPECT_TRUE(cfg.get_bool(k, false)) << k;
  for (const char* k : {"e", "f", "g", "h"}) EXPECT_FALSE(cfg.get_bool(k, true)) << k;
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("novalue\n"), ConfigError);
  EXPECT_THROW(Config::parse("[unterminated\n"), ConfigError);
  EXPECT_THROW(Config::parse("[]\nx=1\n"), ConfigError);
  EXPECT_THROW(Config::parse("= value\n"), ConfigError);
}

TEST(Config, BadTypedValuesThrow) {
  const auto cfg = Config::parse("x = notanumber\n");
  EXPECT_THROW(cfg.get_int("x", 0), ConfigError);
  EXPECT_THROW(cfg.get_double("x", 0.0), ConfigError);
  EXPECT_THROW(cfg.get_bool("x", false), ConfigError);
}

TEST(Config, RequireThrowsWhenAbsent) {
  const Config cfg;
  EXPECT_THROW(cfg.require_string("k"), ConfigError);
  EXPECT_THROW(cfg.require_int("k"), ConfigError);
  EXPECT_THROW(cfg.require_double("k"), ConfigError);
}

TEST(Config, SettersRoundTrip) {
  Config cfg;
  cfg.set_int("i", -5);
  cfg.set_double("d", 1.25);
  cfg.set_bool("b", true);
  cfg.set("s", "str");
  EXPECT_EQ(cfg.require_int("i"), -5);
  EXPECT_DOUBLE_EQ(cfg.require_double("d"), 1.25);
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_EQ(cfg.require_string("s"), "str");
}

TEST(Config, MergePrefersOther) {
  Config a = Config::parse("x = 1\ny = 2\n");
  const Config b = Config::parse("y = 3\nz = 4\n");
  a.merge(b);
  EXPECT_EQ(a.get_int("x", 0), 1);
  EXPECT_EQ(a.get_int("y", 0), 3);
  EXPECT_EQ(a.get_int("z", 0), 4);
}

TEST(Config, KeysSorted) {
  const auto cfg = Config::parse("b=1\na=2\n");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(Config, ParseFileMissingThrows) {
  EXPECT_THROW(Config::parse_file("/nonexistent/path/cfg.ini"), ConfigError);
}

TEST(Log, SinkCapturesMessages) {
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kInfo);
  VMLP_INFO("hello " << 1);
  VMLP_DEBUG("suppressed");
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);
  const std::string out = sink.str();
  EXPECT_NE(out.find("hello 1"), std::string::npos);
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Mutex, GuardedCounterIsRaceFree) {
  Mutex mu;
  int counter VMLP_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Mutex, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A second owner must be refused while held (probe from another thread:
  // try_lock on the owning thread is UB for std::mutex).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
}

TEST(CondVar, WakesWaiterWhenConditionHolds) {
  Mutex mu;
  CondVar cv;
  bool ready VMLP_GUARDED_BY(mu) = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace vmlp
