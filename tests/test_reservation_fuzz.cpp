// Differential fuzz for the dual-backend ReservationLedger: random
// interleavings of reserve/release/fits/max_usage/min_usage/compact_before
// are checked three ways —
//
//   * against a brute-force dense timeline (one slot per time unit), the
//     ground truth for every aggregate query;
//   * flat vs legacy-map backend, bit-exact: the two representations mirror
//     each other's arithmetic order, so every query must agree to the last
//     ulp (this is what makes the admission fast path decision-invisible);
//   * flat-scalar vs flat-SIMD, bit-exact on every host-reachable dispatch
//     target: the vectorized SoA query twins must reproduce the scalar walk
//     verbatim (the "byte-identical to scalar" half of the SIMD contract —
//     the legacy comparison above pins the scalar walk itself);
//   * under the audit layer's structural invariants (canonical form, cached
//     headroom freshness, SoA mirror prefixes) on every mutation when
//     auditing is enabled.
//
// Runs under the asan-ubsan preset like every other test binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "cluster/reservation.h"
#include "cluster/resources.h"
#include "common/rng.h"
#include "common/simd.h"

namespace vmlp::cluster {
namespace {

constexpr SimTime kHorizon = 512;
const ResourceVector kCapacity{100.0, 400.0, 50.0};

struct ActiveWindow {
  SimTime t0;
  SimTime t1;
  ResourceVector res;
};

/// Dense ground-truth timeline: usage per unit-time slot.
struct DenseModel {
  std::vector<ResourceVector> slots{static_cast<std::size_t>(kHorizon)};

  void apply(SimTime t0, SimTime t1, const ResourceVector& res, double sign) {
    for (SimTime t = t0; t < t1; ++t) {
      auto& s = slots[static_cast<std::size_t>(t)];
      s = sign > 0 ? s + res : s - res;
    }
  }
  [[nodiscard]] ResourceVector max_over(SimTime t0, SimTime t1) const {
    ResourceVector m = slots[static_cast<std::size_t>(t0)];
    for (SimTime t = t0; t < t1; ++t) m = m.max(slots[static_cast<std::size_t>(t)]);
    return m;
  }
  [[nodiscard]] ResourceVector min_over(SimTime t0, SimTime t1) const {
    ResourceVector m = slots[static_cast<std::size_t>(t0)];
    for (SimTime t = t0; t < t1; ++t) m = m.min(slots[static_cast<std::size_t>(t)]);
    return m;
  }
};

ResourceVector random_res(Rng& rng) {
  // Quarter-unit granularity stresses float accumulation without drifting so
  // far that the brute-force comparison needs a loose tolerance.
  return ResourceVector{static_cast<double>(rng.uniform_int(1, 160)) * 0.25,
                        static_cast<double>(rng.uniform_int(0, 256)),
                        static_cast<double>(rng.uniform_int(0, 80)) * 0.25};
}

void expect_bitwise_equal(const ResourceVector& a, const ResourceVector& b, const char* what,
                          int trial, int op) {
  EXPECT_EQ(a.cpu, b.cpu) << what << " cpu diverged (trial " << trial << " op " << op << ")";
  EXPECT_EQ(a.mem, b.mem) << what << " mem diverged (trial " << trial << " op " << op << ")";
  EXPECT_EQ(a.io, b.io) << what << " io diverged (trial " << trial << " op " << op << ")";
}

/// Forces a dispatch target for one scope (single-threaded test process).
class ScopedTarget {
 public:
  explicit ScopedTarget(simd::Target t) : prev_(simd::active_target()) {
    simd::set_target_for_testing(t);
  }
  ~ScopedTarget() { simd::set_target_for_testing(prev_); }
  ScopedTarget(const ScopedTarget&) = delete;
  ScopedTarget& operator=(const ScopedTarget&) = delete;

 private:
  simd::Target prev_;
};

/// One ledger's answers to the full read-side query surface for a window.
struct QueryShot {
  ResourceVector max_usage;
  ResourceVector min_usage;
  ResourceVector at;
  ResourceVector avail;
  bool fit = false;
  bool span = false;
  SimTime refit = 0;
  SimTime earliest = 0;
};

QueryShot shoot(const ReservationLedger& led, SimTime t0, SimTime t1,
                const ResourceVector& demand, SimDuration dur) {
  QueryShot s;
  s.max_usage = led.max_usage(t0, t1);
  s.min_usage = led.min_usage(t0, t1);
  s.at = led.usage_at(t0);
  s.avail = led.available(t0, t1);
  s.refit = std::numeric_limits<SimTime>::min();
  s.fit = led.fits(t0, t1, demand, nullptr, &s.refit);
  s.span = led.span_could_fit(t0, t1, demand);
  s.earliest = led.earliest_fit(t0, dur, demand, kHorizon);
  return s;
}

TEST(LedgerFuzz, BackendsMatchEachOtherAndBruteForce) {
  Rng rng(987654321);
  for (int trial = 0; trial < 30; ++trial) {
    ReservationLedger flat(kCapacity, ReservationLedger::Backend::kFlat);
    ReservationLedger legacy(kCapacity, ReservationLedger::Backend::kLegacyMap);
    DenseModel model;
    std::vector<ActiveWindow> active;
    SimTime origin = 0;  // times below this are compacted away
    // Covering-index hint carried across queries AND mutations — stale hints
    // must be validated away, never change a verdict.
    std::size_t hint = kNoCoverHint;

    for (int op = 0; op < 120; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.40 || active.empty()) {
        // reserve
        const SimTime t0 = rng.uniform_int(origin, kHorizon - 2);
        const SimTime t1 = rng.uniform_int(t0 + 1, kHorizon - 1);
        const ResourceVector res = random_res(rng);
        flat.reserve(t0, t1, res);
        legacy.reserve(t0, t1, res);
        model.apply(t0, t1, res, +1.0);
        active.push_back(ActiveWindow{t0, t1, res});
      } else if (dice < 0.60) {
        // release a random active window
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
        const ActiveWindow w = active[idx];
        flat.release(w.t0, w.t1, w.res);
        legacy.release(w.t0, w.t1, w.res);
        model.apply(w.t0, w.t1, w.res, -1.0);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
      } else if (dice < 0.68) {
        // compact: the anchor must not strand a pending release, so it may
        // advance at most to the earliest still-active window start.
        SimTime limit = kHorizon - 2;
        for (const ActiveWindow& w : active) limit = std::min(limit, w.t0);
        if (limit > origin) {
          const SimTime cp = rng.uniform_int(origin, limit);
          flat.compact_before(cp);
          legacy.compact_before(cp);
          origin = std::max(origin, cp);
        }
      } else {
        // queries: brute-force truth + bit-exact backend agreement
        const SimTime t0 = rng.uniform_int(origin, kHorizon - 2);
        const SimTime t1 = rng.uniform_int(t0 + 1, kHorizon - 1);

        const ResourceVector fmax = flat.max_usage(t0, t1);
        expect_bitwise_equal(fmax, legacy.max_usage(t0, t1), "max_usage", trial, op);
        const ResourceVector truth_max = model.max_over(t0, t1);
        EXPECT_NEAR(fmax.cpu, truth_max.cpu, 1e-6) << "trial " << trial << " op " << op;
        EXPECT_NEAR(fmax.mem, truth_max.mem, 1e-6) << "trial " << trial << " op " << op;
        EXPECT_NEAR(fmax.io, truth_max.io, 1e-6) << "trial " << trial << " op " << op;

        const ResourceVector fmin = flat.min_usage(t0, t1);
        expect_bitwise_equal(fmin, legacy.min_usage(t0, t1), "min_usage", trial, op);
        const ResourceVector truth_min = model.min_over(t0, t1);
        EXPECT_NEAR(fmin.cpu, truth_min.cpu, 1e-6) << "trial " << trial << " op " << op;

        expect_bitwise_equal(flat.usage_at(t0), legacy.usage_at(t0), "usage_at", trial, op);
        expect_bitwise_equal(flat.available(t0, t1), legacy.available(t0, t1), "available",
                             trial, op);

        const ResourceVector demand = random_res(rng);
        EXPECT_EQ(flat.fits(t0, t1, demand), legacy.fits(t0, t1, demand))
            << "fits diverged (trial " << trial << " op " << op << ")";
        // fits truth: per-component, the window max is achieved bit-exactly
        // by some segment, so the per-segment test is equivalent to testing
        // the max itself.
        EXPECT_EQ(flat.fits(t0, t1, demand), (fmax + demand).fits_within(kCapacity))
            << "fits contradicts the window max (trial " << trial << " op " << op << ")";

        // span_could_fit is defined as the min-usage verdict, both backends.
        const bool span_flat = flat.span_could_fit(t0, t1, demand);
        EXPECT_EQ(span_flat, legacy.span_could_fit(t0, t1, demand))
            << "span_could_fit diverged (trial " << trial << " op " << op << ")";
        EXPECT_EQ(span_flat, (fmin + demand).fits_within(kCapacity))
            << "span_could_fit contradicts the window min (trial " << trial << " op " << op
            << ")";

        // Hinted queries agree with hint-free ones regardless of how stale
        // the carried hint is.
        const bool fits_plain = flat.fits(t0, t1, demand);
        EXPECT_EQ(fits_plain, flat.fits(t0, t1, demand, &hint))
            << "cover hint changed a fits verdict (trial " << trial << " op " << op << ")";
        EXPECT_EQ(span_flat, flat.span_could_fit(t0, t1, demand, &hint))
            << "cover hint changed a span verdict (trial " << trial << " op " << op << ")";

        // Refit bound soundness: when fits fails, every same-duration window
        // starting at or after t0 but before the bound must also fail.
        if (!fits_plain) {
          SimTime bound = std::numeric_limits<SimTime>::min();
          std::size_t fresh = kNoCoverHint;
          EXPECT_FALSE(flat.fits(t0, t1, demand, &fresh, &bound));
          EXPECT_GT(bound, t0) << "trial " << trial << " op " << op;
          const SimDuration wdur = t1 - t0;
          const SimTime cap = std::min(bound, kHorizon - 1);
          const SimTime stride = std::max<SimTime>(1, (cap - t0) / 7);
          for (SimTime s = t0; s < cap; s += stride) {
            EXPECT_FALSE(flat.fits(s, s + wdur, demand))
                << "refit bound pruned a fitting window (trial " << trial << " op " << op
                << " start " << s << ")";
            EXPECT_FALSE(legacy.fits(s, s + wdur, demand))
                << "refit bound disagrees with the reference (trial " << trial << " op " << op
                << " start " << s << ")";
          }
        }

        const SimDuration dur = rng.uniform_int(1, 64);
        std::size_t flat_probes = 0;
        std::size_t legacy_probes = 0;
        const SimTime ef_flat = flat.earliest_fit(t0, dur, demand, kHorizon, &flat_probes);
        const SimTime ef_legacy = legacy.earliest_fit(t0, dur, demand, kHorizon, &legacy_probes);
        EXPECT_EQ(ef_flat, ef_legacy)
            << "earliest_fit diverged (trial " << trial << " op " << op << ")";
        EXPECT_LE(flat_probes, legacy_probes)
            << "flat earliest_fit probed more than the reference (trial " << trial << " op "
            << op << ")";

        // Third way: the flat backend re-answers the full query surface under
        // every host-reachable dispatch target, and each answer must match
        // the forced-scalar one bit for bit (verdicts, aggregates, AND the
        // refit bound a failed fits reports). Switching targets mid-process
        // also exercises the SoA mirror staleness watermarks: a mutation
        // applied while scalar was active must be visible to the next
        // vectorized query.
        const QueryShot ref = [&] {
          ScopedTarget forced(simd::Target::kScalar);
          return shoot(flat, t0, t1, demand, dur);
        }();
        for (const simd::Target target : simd::reachable_targets()) {
          if (target == simd::Target::kScalar) continue;
          ScopedTarget forced(target);
          const QueryShot got = shoot(flat, t0, t1, demand, dur);
          const char* leg = simd::target_name(target);
          expect_bitwise_equal(got.max_usage, ref.max_usage, leg, trial, op);
          expect_bitwise_equal(got.min_usage, ref.min_usage, leg, trial, op);
          expect_bitwise_equal(got.at, ref.at, leg, trial, op);
          expect_bitwise_equal(got.avail, ref.avail, leg, trial, op);
          EXPECT_EQ(got.fit, ref.fit)
              << leg << " fits diverged from scalar (trial " << trial << " op " << op << ")";
          EXPECT_EQ(got.refit, ref.refit)
              << leg << " refit bound diverged from scalar (trial " << trial << " op " << op
              << ")";
          EXPECT_EQ(got.span, ref.span)
              << leg << " span_could_fit diverged from scalar (trial " << trial << " op " << op
              << ")";
          EXPECT_EQ(got.earliest, ref.earliest)
              << leg << " earliest_fit diverged from scalar (trial " << trial << " op " << op
              << ")";
        }
      }
    }
  }
}

/// Run-skipping regression (the earliest_fit fast path): a long consecutive
/// run of blocking segments must be jumped in one probe, not walked
/// boundary-by-boundary like the legacy reference.
TEST(LedgerFuzz, EarliestFitSkipsBlockingRunInOneProbe) {
  ReservationLedger flat({4, 4, 4}, ReservationLedger::Backend::kFlat);
  ReservationLedger legacy({4, 4, 4}, ReservationLedger::Backend::kLegacyMap);
  // 40 adjacent blocking segments at distinct levels (no coalescing).
  for (int i = 0; i < 40; ++i) {
    const ResourceVector res{3.5 + 0.01 * static_cast<double>(i), 0, 0};
    flat.reserve(i * 10, (i + 1) * 10, res);
    legacy.reserve(i * 10, (i + 1) * 10, res);
  }
  const ResourceVector demand{1, 0, 0};
  std::size_t flat_probes = 0;
  std::size_t legacy_probes = 0;
  EXPECT_EQ(flat.earliest_fit(0, 20, demand, 10000, &flat_probes), 400);
  EXPECT_EQ(legacy.earliest_fit(0, 20, demand, 10000, &legacy_probes), 400);
  // One probe finds the run, the second lands past it; the reference steps
  // through every one of the 40 boundaries first.
  EXPECT_LE(flat_probes, 3u);
  EXPECT_GE(legacy_probes, 40u);
}

/// The refit bound a failed fits() reports is the end of the *maximal*
/// blocking run, so one failure prunes every later probe that still overlaps
/// the run.
TEST(LedgerFuzz, FitsRefitBoundCoversTheWholeBlockingRun) {
  ReservationLedger flat({4, 4, 4}, ReservationLedger::Backend::kFlat);
  for (int i = 0; i < 40; ++i) {
    flat.reserve(100 + i * 10, 100 + (i + 1) * 10, {3.5 + 0.01 * static_cast<double>(i), 0, 0});
  }
  const ResourceVector demand{1, 0, 0};
  SimTime bound = std::numeric_limits<SimTime>::min();
  // Window [90, 110) clips the first blocking segment; the bound must jump
  // past all 40, not just the one that failed the walk.
  EXPECT_FALSE(flat.fits(90, 110, demand, nullptr, &bound));
  EXPECT_EQ(bound, 500);
  // Success leaves the bound untouched.
  bound = -1;
  EXPECT_TRUE(flat.fits(0, 50, demand, nullptr, &bound));
  EXPECT_EQ(bound, -1);
  // A run followed by a quiet tail reports the exact run end.
  ReservationLedger tail({4, 4, 4}, ReservationLedger::Backend::kFlat);
  tail.reserve(0, 100, {4, 0, 0});
  tail.release(50, 100, {4, 0, 0});
  // Profile: [0,50) level 4 (blocks), [50,inf) level 0. Window over the
  // blocking prefix reports the run end exactly.
  bound = std::numeric_limits<SimTime>::min();
  EXPECT_FALSE(tail.fits(10, 30, demand, nullptr, &bound));
  EXPECT_EQ(bound, 50);
}

/// An infinite blocking tail (overbooked forever from some point on) must
/// terminate, not scan to the horizon boundary-by-boundary.
TEST(LedgerFuzz, EarliestFitInfiniteTailTerminates) {
  for (const auto backend :
       {ReservationLedger::Backend::kFlat, ReservationLedger::Backend::kLegacyMap}) {
    ReservationLedger ledger({4, 4, 4}, backend);
    ledger.reserve(0, 100, {4, 0, 0});
    // Release never happens; beyond t=100 the ledger is empty, so a fit at
    // t=100 exists — but cap the horizon below it.
    std::size_t probes = 0;
    EXPECT_EQ(ledger.earliest_fit(0, 10, {1, 0, 0}, 50, &probes), kTimeInfinity);
    EXPECT_LE(probes, 2u);
  }
}

}  // namespace
}  // namespace vmlp::cluster
