// Baseline scheduler policies (Table VI): each runs a small stream to
// completion; policy-specific behaviours are asserted where observable.
#include <gtest/gtest.h>

#include <memory>

#include "loadgen/generator.h"
#include "sched/common.h"
#include "sched/cur_sched.h"
#include "sched/driver.h"
#include "sched/fair_sched.h"
#include "sched/full_profile.h"
#include "sched/part_profile.h"
#include "workloads/suite.h"

namespace vmlp::sched {
namespace {

DriverParams test_params() {
  DriverParams p;
  p.horizon = 10 * kSec;
  p.cluster.machine_count = 10;
  p.machines_per_rack = 5;
  p.seed = 77;
  return p;
}

std::vector<loadgen::Arrival> small_stream(const app::Application& application, double qps,
                                           SimTime horizon) {
  loadgen::PatternParams pp;
  pp.horizon = horizon;
  pp.base_rate = qps;
  pp.max_rate = qps * 4;
  pp.peak_time = horizon / 2;
  const auto pattern = loadgen::WorkloadPattern::make(loadgen::PatternKind::kL1Pulse, pp, 3);
  Rng rng(3);
  return loadgen::generate_arrivals(pattern, loadgen::RequestMix::all(application), rng);
}

template <typename Scheduler>
RunResult run_baseline(Scheduler& sched) {
  auto application = workloads::make_benchmark_suite();
  SimulationDriver driver(*application, sched, test_params());
  driver.load_arrivals(small_stream(*application, 12.0, test_params().horizon));
  return driver.run();
}

TEST(FairSched, CompletesStream) {
  FairSched sched;
  const RunResult r = run_baseline(sched);
  EXPECT_GT(r.arrived, 100u);
  EXPECT_GT(static_cast<double>(r.completed), 0.95 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.name(), "FairSched");
}

TEST(CurSched, CompletesStream) {
  CurSched sched;
  const RunResult r = run_baseline(sched);
  EXPECT_GT(static_cast<double>(r.completed), 0.95 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.name(), "CurSched");
}

TEST(PartProfile, CompletesStream) {
  PartProfile sched;
  const RunResult r = run_baseline(sched);
  EXPECT_GT(static_cast<double>(r.completed), 0.95 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.name(), "PartProfile");
}

TEST(FullProfile, CompletesStream) {
  FullProfile sched;
  const RunResult r = run_baseline(sched);
  EXPECT_GT(static_cast<double>(r.completed), 0.9 * static_cast<double>(r.arrived));
  EXPECT_EQ(sched.name(), "FullProfile");
}

TEST(SchedCommon, MachineFewestContainers) {
  cluster::ClusterParams cp;
  cp.machine_count = 3;
  cluster::Cluster clustr(cp);
  clustr.machine(MachineId(0)).add_container(ContainerId(0), InstanceId(0), {1, 1, 1}, {1, 1, 1});
  clustr.machine(MachineId(1)).add_container(ContainerId(1), InstanceId(1), {1, 1, 1}, {1, 1, 1});
  EXPECT_EQ(machine_fewest_containers(clustr), MachineId(2));
}

TEST(SchedCommon, MachineLowestUtilization) {
  cluster::ClusterParams cp;
  cp.machine_count = 2;
  cp.machine_capacity = {1000, 1000, 1000};
  cluster::Cluster clustr(cp);
  clustr.machine(MachineId(0)).add_container(ContainerId(0), InstanceId(0), {500, 0, 0},
                                             {500, 0, 0});
  EXPECT_EQ(machine_lowest_utilization(clustr), MachineId(1));
}

TEST(SchedCommon, FirstFitSkipsBusyMachines) {
  cluster::ClusterParams cp;
  cp.machine_count = 3;
  cp.machine_capacity = {1000, 1000, 1000};
  cluster::Cluster clustr(cp);
  clustr.machine(MachineId(0)).ledger().reserve(0, 1000, {900, 0, 0});
  clustr.machine(MachineId(1)).ledger().reserve(0, 1000, {900, 0, 0});
  EXPECT_EQ(machine_first_fit(clustr, 0, 500, {200, 0, 0}), MachineId(2));
  EXPECT_FALSE(machine_first_fit(clustr, 0, 500, {2000, 0, 0}).valid());
}

TEST(SchedCommon, BestFitPrefersSpareCapacity) {
  cluster::ClusterParams cp;
  cp.machine_count = 2;
  cp.machine_capacity = {1000, 1000, 1000};
  cluster::Cluster clustr(cp);
  clustr.machine(MachineId(0)).ledger().reserve(0, 1000, {600, 0, 0});
  EXPECT_EQ(machine_best_fit(clustr, 0, 500, {100, 0, 0}), MachineId(1));
}

TEST(Baselines, FairSchedDegradesUnderLoadMoreThanPartProfile) {
  // Crank the load: contention-blind fair sharing must violate more than
  // profile-based admission (the Fig. 10 ordering between scheme families).
  auto run_scheme = [](IScheduler& sched) {
    auto application = workloads::make_benchmark_suite();
    DriverParams p = test_params();
    p.cluster.machine_count = 6;
    SimulationDriver driver(*application, sched, p);
    driver.load_arrivals(small_stream(*application, 50.0, p.horizon));
    return driver.run();
  };
  FairSched fair;
  PartProfile part;
  const RunResult fair_result = run_scheme(fair);
  const RunResult part_result = run_scheme(part);
  EXPECT_GT(fair_result.p99_latency_us, part_result.p99_latency_us);
}

}  // namespace
}  // namespace vmlp::sched
