// Policy-specific behavioural details of the baseline schedulers, observed
// through scripted single-request runs.
#include <gtest/gtest.h>

#include <memory>

#include "sched/cur_sched.h"
#include "sched/driver.h"
#include "sched/fair_sched.h"
#include "sched/full_profile.h"
#include "sched/part_profile.h"
#include "workloads/suite.h"

namespace vmlp::sched {
namespace {

DriverParams params() {
  DriverParams p;
  p.horizon = 8 * kSec;
  p.cluster.machine_count = 4;
  p.machines_per_rack = 2;
  p.seed = 91;
  return p;
}

TEST(FairSchedPolicy, GrantsFairShareSlices) {
  auto application = workloads::make_benchmark_suite();
  FairSched scheduler;
  SimulationDriver driver(*application, scheduler, params());
  driver.load_arrivals({{kMsec, *application->find_request("read-user-timeline")}});
  driver.run();
  // With an otherwise empty cluster, the single placed node got half a
  // machine (occupants = container_count 0 + 1 -> denominator min(1, 16)=1
  // ... capacity / 1); verify it ran unconstrained: latency near nominal.
  const auto* rec = driver.tracer().requests().front();
  ASSERT_TRUE(rec->finished());
  const auto nominal = application->nominal_e2e(rec->type, 2 * kMsec);
  EXPECT_LT(rec->latency(), nominal * 3);
}

TEST(FairSchedPolicy, SpreadsByContainerCount) {
  auto application = workloads::make_benchmark_suite();
  FairSched scheduler;
  SimulationDriver driver(*application, scheduler, params());
  // Ten concurrent single-chain requests: placements must not all pile on
  // machine 0.
  std::vector<loadgen::Arrival> arrivals;
  for (int i = 0; i < 10; ++i) {
    arrivals.push_back({kMsec, *application->find_request("read-user-timeline")});
  }
  driver.load_arrivals(arrivals);
  driver.run();
  std::set<std::uint32_t> machines_used;
  for (const auto& span : driver.tracer().spans()) machines_used.insert(span.machine.value());
  EXPECT_GE(machines_used.size(), 3u);
}

TEST(CurSchedPolicy, PicksLeastUtilizedMachine) {
  auto application = workloads::make_benchmark_suite();
  CurSched scheduler;
  SimulationDriver driver(*application, scheduler, params());
  // Pre-load machines 0..2 with synthetic utilization before the arrival.
  for (std::uint32_t m = 0; m < 3; ++m) {
    driver.cluster().machine(MachineId(m)).add_container(
        ContainerId(1000 + m), InstanceId(1000 + m), {3000, 1000, 100}, {3000, 1000, 100});
  }
  driver.load_arrivals({{kMsec, *application->find_request("read-user-timeline")}});
  driver.run();
  // Every span of the request must have landed on the idle machine 3.
  for (const auto& span : driver.tracer().spans()) {
    EXPECT_EQ(span.machine, MachineId(3));
  }
}

TEST(PartProfilePolicy, DefersWhenNothingFits) {
  auto application = workloads::make_benchmark_suite();
  PartProfile scheduler;
  DriverParams p = params();
  p.horizon = 3 * kSec;
  SimulationDriver driver(*application, scheduler, p);
  // Saturate every ledger for the first 2 seconds.
  for (auto& m : driver.cluster().machines()) {
    m.ledger().reserve(0, 2 * kSec, m.capacity());
  }
  driver.load_arrivals({{kMsec, *application->find_request("read-user-timeline")}});
  driver.run();
  const auto spans = driver.tracer().spans_of(RequestId(0));
  ASSERT_FALSE(spans.empty());
  // The first stage could not be admitted before the ledgers cleared.
  EXPECT_GE(spans.front()->start, 2 * kSec);
}

TEST(FullProfilePolicy, AllocatesRealDemandButAdmitsByAverage) {
  auto application = workloads::make_benchmark_suite();
  FullProfile scheduler;
  SimulationDriver driver(*application, scheduler, params());
  driver.load_arrivals({{kMsec, *application->find_request("getCheapest")}});
  const auto result = driver.run();
  EXPECT_EQ(result.completed, 1u);
  // All six chain stages executed (real-demand allocation is enough to run
  // at full speed on an empty cluster).
  EXPECT_EQ(driver.tracer().spans_of(RequestId(0)).size(), 6u);
}

TEST(AllPolicies, SingleRequestLatencyWithinSlo) {
  auto application = workloads::make_benchmark_suite();
  for (int which = 0; which < 4; ++which) {
    std::unique_ptr<IScheduler> scheduler;
    switch (which) {
      case 0: scheduler = std::make_unique<FairSched>(); break;
      case 1: scheduler = std::make_unique<CurSched>(); break;
      case 2: scheduler = std::make_unique<PartProfile>(); break;
      default: scheduler = std::make_unique<FullProfile>(); break;
    }
    SimulationDriver driver(*application, *scheduler, params());
    driver.load_arrivals({{kMsec, *application->find_request("compose-post")}});
    const auto result = driver.run();
    EXPECT_EQ(result.completed, 1u) << scheduler->name();
    EXPECT_DOUBLE_EQ(result.qos_violation_rate, 0.0) << scheduler->name();
  }
}

}  // namespace
}  // namespace vmlp::sched
