# Sanitizer wiring for every target in the build.
#
# VMLP_SANITIZE is a semicolon list of sanitizers to enable globally:
#   -DVMLP_SANITIZE=address;undefined   (ASan + UBSan, the asan-ubsan preset)
#   -DVMLP_SANITIZE=thread              (TSan, the tsan preset)
# Thread cannot be combined with address/leak — CMake errors out early rather
# than letting the link fail with an inscrutable message.
#
# Flags are applied with add_compile_options/add_link_options so third-party
# subdirectories (none today) and every vmlp target inherit them; sanitizers
# only work when every TU in the process is instrumented consistently.

set(VMLP_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address;undefined;leak;thread")

if(NOT VMLP_SANITIZE)
  return()
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(WARNING "VMLP_SANITIZE requested but compiler ${CMAKE_CXX_COMPILER_ID} "
                  "is not GCC/Clang; ignoring")
  return()
endif()

set(_vmlp_san_known address undefined leak thread)
foreach(_san IN LISTS VMLP_SANITIZE)
  if(NOT _san IN_LIST _vmlp_san_known)
    message(FATAL_ERROR "Unknown sanitizer '${_san}' in VMLP_SANITIZE "
                        "(known: ${_vmlp_san_known})")
  endif()
endforeach()

if("thread" IN_LIST VMLP_SANITIZE AND
   ("address" IN_LIST VMLP_SANITIZE OR "leak" IN_LIST VMLP_SANITIZE))
  message(FATAL_ERROR "thread sanitizer cannot be combined with address/leak")
endif()

string(REPLACE ";" "," _vmlp_san_csv "${VMLP_SANITIZE}")
message(STATUS "vmlp: sanitizers enabled: ${_vmlp_san_csv}")

add_compile_options(-fsanitize=${_vmlp_san_csv} -fno-omit-frame-pointer -g)
add_link_options(-fsanitize=${_vmlp_san_csv})

if("undefined" IN_LIST VMLP_SANITIZE)
  # Trap-on-error would lose the diagnostic; keep runtime messages but make
  # every report fatal so ctest fails loudly.
  add_compile_options(-fno-sanitize-recover=all)
endif()
