// Extension bench — robustness to background interference.
//
// Section II-B observes that over-subscription causes unpredictable
// performance interference; the paper's self-healing module exists to absorb
// such disturbances. This bench injects random co-tenant bursts (invisible
// to every scheduler's ledger) at increasing intensity and compares how each
// scheme's QoS and tail degrade.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vmlp;
  exp::print_section("Interference robustness — mixed stream, L2, 100 machines, 40 s");

  struct Level {
    const char* name;
    double events_per_second;
    double magnitude;
  };
  const Level levels[] = {
      {"none", 0.0, 0.0},
      {"mild (2/s, 30%)", 2.0, 0.3},
      {"heavy (6/s, 50%)", 6.0, 0.5},
  };

  for (const auto& level : levels) {
    exp::print_section(std::string("interference: ") + level.name);
    exp::Table table({"scheme", "QoS viol.", "p50", "p99", "util"});
    for (auto scheme : exp::all_schemes()) {
      auto config = bench::eval_config(scheme, loadgen::PatternKind::kL2Fluctuating,
                                       exp::StreamKind::kMixed);
      config.driver.interference.enabled = level.events_per_second > 0.0;
      config.driver.interference.events_per_second = level.events_per_second;
      config.driver.interference.magnitude = level.magnitude;
      config.driver.interference.duration_mean = 800 * kMsec;
      const auto result = bench::run_with_progress(config, level.name);
      table.row({exp::scheme_name(scheme), exp::fmt_percent(result.run.qos_violation_rate, 2),
                 exp::fmt_ms(result.run.p50_latency_us), exp::fmt_ms(result.run.p99_latency_us),
                 exp::fmt_percent(result.run.mean_utilization)});
    }
    table.print();
  }

  std::cout << "\nReading: interference widens every scheme's tail; schemes that react\n"
               "to late invocations (v-MLP's relocation + delay slot) degrade the\n"
               "least — the disturbance is exactly Fig. 5's mispredicted-start story.\n";
  return 0;
}
