// Ablation — which of v-MLP's design choices carries how much?
//
//   full          — the complete scheduler;
//   no-delay-slot — self-healing without vacancy back-filling;
//   no-stretch    — self-healing without resource stretch;
//   no-healing    — self-organizing only;
//   vol-blind     — volatility-unaware Δt (mean for every band): the paper's
//                   core claim is that the V_r-dependent estimates matter.
#include <iostream>

#include "bench_common.h"
#include "mlp/metrics.h"

int main() {
  using namespace vmlp;
  exp::print_section("Ablation — v-MLP design choices (mixed stream, L2, 100 machines)");

  struct Variant {
    const char* name;
    mlp::VmlpParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  {
    mlp::VmlpParams p;
    p.enable_delay_slot = false;
    variants.push_back({"no-delay-slot", p});
  }
  {
    mlp::VmlpParams p;
    p.enable_resource_stretch = false;
    variants.push_back({"no-stretch", p});
  }
  {
    mlp::VmlpParams p;
    p.enable_delay_slot = false;
    p.enable_resource_stretch = false;
    variants.push_back({"no-healing", p});
  }
  {
    mlp::VmlpParams p;
    p.volatility_aware = false;
    variants.push_back({"vol-blind", p});
  }

  for (double qps : {1.25}) {
    exp::print_section("workload level " + exp::fmt_percent(qps, 0) + " of max");
    exp::Table table({"variant", "QoS viol.", "p50", "p99", "util", "thr (req/s)"});
    for (const auto& variant : variants) {
      auto config = bench::eval_config(exp::SchemeKind::kVmlp,
                                       loadgen::PatternKind::kL2Fluctuating,
                                       exp::StreamKind::kMixed, 30 * kSec);
      config.vmlp = variant.params;
      config.qps_scale = qps;
      std::fprintf(stderr, "  running v-MLP[%s] ...\n", variant.name);
      const auto result = exp::run_experiment(config);
      table.row({variant.name, exp::fmt_percent(result.run.qos_violation_rate, 2),
                 exp::fmt_ms(result.run.p50_latency_us), exp::fmt_ms(result.run.p99_latency_us),
                 exp::fmt_percent(result.run.mean_utilization),
                 exp::fmt_double(result.run.throughput_rps, 1)});
    }
    table.print();
  }

  std::cout << "\nReading: healing mechanisms matter mostly at the higher load level;\n"
               "volatility-aware Δt shapes the alignment of the volatile chains.\n";
  return 0;
}
