// Fig. 11 — Efficiency: overall cluster utilization U around the workload
// peak. Mixed stream, pulse pattern, 100 machines, full 100 s horizon with
// the peak arriving at the 40th second; one U(t) curve per scheme.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 11 — cluster utilization U(t), peak at t = 40 s");

  exp::Table table({"scheme", "U@30s", "U@40s", "U@45s", "U@55s", "U@70s", "mean U",
                    "post-peak recovery"});
  std::vector<std::pair<std::string, std::vector<double>>> curves;

  for (auto scheme : exp::all_schemes()) {
    auto config = bench::eval_config(scheme, loadgen::PatternKind::kL1Pulse,
                                     exp::StreamKind::kMixed, 100 * kSec);
    // A sustained surge (15 s) at 1.5× the nominal rate curve (the Fig. 12
    // methodology scales QPS proportionally) so the post-peak backlog-drain
    // behaviour the figure is about actually materializes.
    config.pattern_params.pulse_width = 15 * kSec;
    config.qps_scale = 1.5;
    const auto result = bench::run_with_progress(config, "mixed");
    const auto& u = result.utilization_series;  // 1 s buckets

    auto at = [&](std::size_t sec) { return sec < u.size() ? u[sec] : 0.0; };
    // Post-peak recovery: mean U over 50..70 s relative to the pre-peak level
    // (20..38 s) — how well the scheme restores its pipeline after the surge.
    double pre = 0.0, post = 0.0;
    for (std::size_t t = 20; t < 38; ++t) pre += at(t);
    pre /= 18.0;
    for (std::size_t t = 50; t < 70; ++t) post += at(t);
    post /= 20.0;

    table.row({exp::scheme_name(scheme), exp::fmt_percent(at(30)), exp::fmt_percent(at(40)),
               exp::fmt_percent(at(45)), exp::fmt_percent(at(55)), exp::fmt_percent(at(70)),
               exp::fmt_percent(result.run.mean_utilization),
               exp::fmt_double(pre > 0 ? post / pre : 0.0, 2)});
    curves.emplace_back(exp::scheme_name(scheme), u);
  }
  table.print();

  std::cout << "\nU(t) curves (100 s, one column per second):\n";
  for (const auto& [name, curve] : curves) {
    std::cout << "  " << name << std::string(12 - std::min<std::size_t>(12, name.size()), ' ')
              << exp::ascii_series(curve, 100) << '\n';
  }

  std::cout << "\nPaper shape: every scheme spikes when the peak arrives; simple\n"
               "schedulers then slump (contention mismatch), advanced profiles recover\n"
               "partially, and v-MLP restores its pre-peak utilization fastest because\n"
               "the self-organizing module replans around the dependency structure.\n";
  return 0;
}
