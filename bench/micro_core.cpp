// Microbenchmarks (google-benchmark): hot-path substrate costs — the event
// engine, the reservation ledger, the SIMD admission kernels, RNG, quantiles,
// chain-choice sampling, and a full v-MLP planning round.
#include <benchmark/benchmark.h>

#include <limits>
#include <vector>

#include "app/dag.h"
#include "cluster/reservation.h"
#include "common/rng.h"
#include "common/simd.h"
#include "sim/engine.h"
#include "stats/percentile.h"
#include "trace/profile_store.h"

namespace {

using namespace vmlp;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<SimTime>((i * 2654435761u) % 1000000), [] {});
    }
    engine.run_all();
    benchmark::DoNotOptimize(engine.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) handles.push_back(engine.schedule_at(i, [] {}));
    for (auto& h : handles) engine.cancel(h);
    engine.run_all();
    benchmark::DoNotOptimize(engine.pending_events());
  }
}
BENCHMARK(BM_EngineCancel);

// Ledger benchmarks run once per backend: Arg(0) = the indexed flat vector
// (the production fast path), Arg(1) = the legacy map-backed reference.
cluster::ReservationLedger::Backend ledger_backend(const benchmark::State& state) {
  return state.range(0) == 0 ? cluster::ReservationLedger::Backend::kFlat
                             : cluster::ReservationLedger::Backend::kLegacyMap;
}

void BM_LedgerReserveRelease(benchmark::State& state) {
  cluster::ReservationLedger ledger({4000, 16384, 1000}, ledger_backend(state));
  Rng rng(1);
  SimTime t = 0;
  for (auto _ : state) {
    const SimTime t0 = t + rng.uniform_int(0, 10000);
    const SimTime t1 = t0 + rng.uniform_int(1000, 30000);
    const cluster::ResourceVector r{static_cast<double>(rng.uniform_int(100, 2000)), 256, 50};
    ledger.reserve(t0, t1, r);
    ledger.release(t0, t1, r);
    t += 10;
    if (t > 1000000) {
      ledger.compact_before(t - 1000);
    }
  }
}
BENCHMARK(BM_LedgerReserveRelease)->Arg(0)->Arg(1);

void BM_LedgerFits(benchmark::State& state) {
  cluster::ReservationLedger ledger({4000, 16384, 1000}, ledger_backend(state));
  Rng rng(2);
  // Pre-populate a realistic profile: ~64 overlapping reservations.
  for (int i = 0; i < 64; ++i) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    ledger.reserve(t0, t0 + rng.uniform_int(1000, 30000), {500, 256, 50});
  }
  for (auto _ : state) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    benchmark::DoNotOptimize(ledger.fits(t0, t0 + 10000, {1500, 512, 100}));
  }
}
BENCHMARK(BM_LedgerFits)->Arg(0)->Arg(1);

void BM_LedgerFitsContended(benchmark::State& state) {
  // A saturated profile (~512 overlapping reservations) where most probes
  // fail — the admission-storm regime the block index exists for.
  cluster::ReservationLedger ledger({4000, 16384, 1000}, ledger_backend(state));
  Rng rng(7);
  for (int i = 0; i < 512; ++i) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    ledger.reserve(t0, t0 + rng.uniform_int(1000, 30000), {600, 256, 50});
  }
  for (auto _ : state) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    benchmark::DoNotOptimize(ledger.fits(t0, t0 + 10000, {1500, 512, 100}));
  }
}
BENCHMARK(BM_LedgerFitsContended)->Arg(0)->Arg(1);

void BM_LedgerChurn(benchmark::State& state) {
  // Admission-like interleaving: one reserve + one release, then a burst of
  // queries — the regime where the lazy index (and, on a SIMD target, SoA
  // mirror) rebuild cost actually shows. Queries-only benchmarks above hide
  // it: their profiles go quiescent after warm-up.
  cluster::ReservationLedger ledger({4000, 16384, 1000}, ledger_backend(state));
  Rng rng(11);
  struct Win {
    SimTime t0, t1;
    cluster::ResourceVector r;
  };
  std::vector<Win> active;
  SimTime t = 0;
  for (int i = 0; i < 256; ++i) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    const Win w{t0, t0 + rng.uniform_int(1000, 30000), {500, 256, 50}};
    ledger.reserve(w.t0, w.t1, w.r);
    active.push_back(w);
  }
  std::size_t next = 0;
  for (auto _ : state) {
    Win& w = active[next];
    ledger.release(w.t0, w.t1, w.r);
    w.t0 = t + rng.uniform_int(0, 100000);
    w.t1 = w.t0 + rng.uniform_int(1000, 30000);
    ledger.reserve(w.t0, w.t1, w.r);
    next = (next + 1) % active.size();
    for (int q = 0; q < 8; ++q) {
      const SimTime q0 = t + rng.uniform_int(0, 100000);
      benchmark::DoNotOptimize(ledger.fits(q0, q0 + 10000, {1500, 512, 100}));
    }
    const SimTime s0 = t + rng.uniform_int(0, 100000);
    benchmark::DoNotOptimize(ledger.span_could_fit(s0, s0 + 20000, {1500, 512, 100}));
    ++t;
  }
}
BENCHMARK(BM_LedgerChurn)->Arg(0)->Arg(1);

void BM_LedgerEarliestFit(benchmark::State& state) {
  cluster::ReservationLedger ledger({4000, 16384, 1000}, ledger_backend(state));
  Rng rng(8);
  for (int i = 0; i < 256; ++i) {
    const SimTime t0 = rng.uniform_int(0, 100000);
    ledger.reserve(t0, t0 + rng.uniform_int(1000, 30000), {700, 256, 50});
  }
  for (auto _ : state) {
    const SimTime from = rng.uniform_int(0, 100000);
    benchmark::DoNotOptimize(
        ledger.earliest_fit(from, 5000, {2000, 512, 100}, /*horizon=*/200000));
  }
}
BENCHMARK(BM_LedgerEarliestFit)->Arg(0)->Arg(1);

// SIMD kernel legs run once per dispatch target: Arg = Target enum value
// (0 scalar, 1 sse2, 2 avx2, 3 neon). Targets the host cannot run (or that a
// -DVMLP_NO_SIMD build compiled out) are skipped, not failed, so one binary
// reports whatever its runner can measure. The kernels are called through the
// table directly — they are pure functions, so no dispatch override is needed
// and the scalar leg is always a same-binary baseline.

/// Ledger-like plane: levels such that level + add always exceeds the bound —
/// the saturated admission-storm case where span-fit folds the full range
/// (no early accept) and find-first scans to the end.
std::vector<double> saturated_plane(std::size_t n) {
  std::vector<double> v(n);
  Rng rng(9);
  for (double& x : v) x = rng.uniform(55.0, 95.0);
  return v;
}

void BM_SimdSpanFit(benchmark::State& state) {
  const auto target = static_cast<simd::Target>(state.range(0));
  const simd::KernelTable* k = simd::table_for(target);
  if (k == nullptr) {
    state.SkipWithError("dispatch target not reachable on this host/build");
    return;
  }
  constexpr std::size_t kN = 4096;
  const auto a = saturated_plane(kN);
  const auto b = saturated_plane(kN);
  const auto c = saturated_plane(kN);
  const double add[3] = {50.0, 50.0, 50.0};
  const double bound[3] = {100.0, 100.0, 100.0};
  for (auto _ : state) {
    double m[3];
    m[0] = m[1] = m[2] = std::numeric_limits<double>::infinity();
    benchmark::DoNotOptimize(k->span_fit3(a.data(), b.data(), c.data(), kN, add, bound, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}
BENCHMARK(BM_SimdSpanFit)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SimdBlockRefresh(benchmark::State& state) {
  // The cell-topology refold: reduce_max1 over one 32-machine block of
  // cached free fractions (note_mutation's hot loop body).
  const auto target = static_cast<simd::Target>(state.range(0));
  const simd::KernelTable* k = simd::table_for(target);
  if (k == nullptr) {
    state.SkipWithError("dispatch target not reachable on this host/build");
    return;
  }
  const auto fractions = saturated_plane(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->reduce_max1(fractions.data(), fractions.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SimdBlockRefresh)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_mean_cv(10000.0, 0.3));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_QuantileOfRecent(benchmark::State& state) {
  trace::ProfileStore store;
  Rng rng(4);
  for (int i = 0; i < 512; ++i) {
    store.record(ServiceTypeId(0), RequestTypeId(0),
                 {{100, 100, 10}, 0.2, rng.uniform_int(1000, 50000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.quantile_of_recent(ServiceTypeId(0), RequestTypeId(0), 0.99, 50.0));
  }
}
BENCHMARK(BM_QuantileOfRecent);

void BM_SampleSetQuantile(benchmark::State& state) {
  stats::SampleSet samples;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) samples.add(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(samples.quantile(0.99));  // sorted-cache hit path
  }
}
BENCHMARK(BM_SampleSetQuantile);

void BM_ChainChoices(benchmark::State& state) {
  // compose-post-like DAG: fan-out of 4 with a text sub-fan and a join.
  app::Dag dag(9);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(0, 3);
  dag.add_edge(0, 4);
  dag.add_edge(1, 5);
  dag.add_edge(1, 6);
  dag.add_edge(2, 7);
  dag.add_edge(3, 7);
  dag.add_edge(4, 7);
  dag.add_edge(5, 7);
  dag.add_edge(6, 7);
  dag.add_edge(7, 8);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.chain_choices(4, rng));
  }
}
BENCHMARK(BM_ChainChoices);

}  // namespace
