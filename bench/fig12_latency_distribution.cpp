// Fig. 12 — Performance: latency distribution of the mixed request stream at
// increasing workload levels (QPS scaling), per scheme: p50 / p90 / p99.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 12 — latency distribution vs. workload level (mixed stream)");

  const double levels[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  for (double level : levels) {
    exp::print_section("workload level " + exp::fmt_percent(level, 0) + " of max (1000 req/s peak)");
    exp::Table table({"scheme", "p50", "p90", "p99", "mean", "QoS viol."});
    for (auto scheme : exp::all_schemes()) {
      auto config = bench::eval_config(scheme, loadgen::PatternKind::kL2Fluctuating,
                                       exp::StreamKind::kMixed);
      config.qps_scale = level;
      const auto result = bench::run_with_progress(config, "mixed");
      table.row({exp::scheme_name(scheme), exp::fmt_ms(result.run.p50_latency_us),
                 exp::fmt_ms(result.run.p90_latency_us), exp::fmt_ms(result.run.p99_latency_us),
                 exp::fmt_ms(result.run.mean_latency_us),
                 exp::fmt_percent(result.run.qos_violation_rate, 2)});
    }
    table.print();
  }

  std::cout << "\nPaper shape: v-MLP leads at every percentile, and its advantage grows\n"
               "at the higher workload levels where the self-healing module absorbs the\n"
               "uncertain situations.\n";
  return 0;
}
