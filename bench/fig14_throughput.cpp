// Fig. 14 — Performance: normalized throughput (v-MLP = 1.00) while sweeping
// the fraction of high-V_r requests in the stream under the fluctuating (L2)
// pattern at 1.4× the nominal peak — throughput only differentiates when the
// cluster is pressed past saturation.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "workloads/suite.h"

namespace {

// Mean nominal busy time (µs) per request for a mix with the given high-V_r
// ratio. Used to keep the *offered work* constant across ratio cells — a raw
// fixed QPS would saturate only the expensive high-ratio mixes and flatten
// the low-ratio columns.
double mix_cost(const vmlp::app::Application& application, double ratio) {
  using namespace vmlp;
  double high = 0.0, rest = 0.0;
  int n_high = 0, n_rest = 0;
  for (const auto& rt : application.requests()) {
    double work = 0.0;
    for (const auto& node : rt.nodes()) {
      work += static_cast<double>(application.service(node.service).nominal_time) *
              node.time_scale;
    }
    if (application.band(rt.id()) == app::VolatilityBand::kHigh) {
      high += work;
      ++n_high;
    } else {
      rest += work;
      ++n_rest;
    }
  }
  return ratio * high / n_high + (1.0 - ratio) * rest / n_rest;
}

}  // namespace

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 14 — normalized throughput vs. ratio of high-V_r requests "
                     "(v-MLP = 1.00)");

  const double ratios[] = {0.1, 0.5, 0.9};
  const loadgen::PatternKind patterns[] = {loadgen::PatternKind::kL2Fluctuating};
  auto suite = workloads::make_benchmark_suite();
  const double reference_cost = mix_cost(*suite, 0.9);
  (void)reference_cost;

  for (auto pattern : patterns) {
    exp::print_section(std::string("pattern: ") + loadgen::pattern_name(pattern));
    exp::Table table({"scheme", "10% high", "50% high", "90% high"});

    std::map<std::pair<int, int>, double> thr;
    const auto schemes = exp::all_schemes();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      for (std::size_t r = 0; r < 3; ++r) {
        auto config = bench::eval_config(schemes[s], pattern, exp::StreamKind::kHighRatio,
                                         15 * kSec);
        config.high_ratio = ratios[r];
        // Past-saturation pressure: throughput only differentiates when the
        // offered load exceeds what the weakest scheme can serve.
        config.qps_scale = 1.4;
        const auto result = bench::run_with_progress(config, "high-ratio");
        thr[{static_cast<int>(s), static_cast<int>(r)}] = result.run.throughput_rps;
      }
    }
    const int vmlp_idx = static_cast<int>(schemes.size()) - 1;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::vector<std::string> row{exp::scheme_name(schemes[s])};
      for (std::size_t r = 0; r < 3; ++r) {
        row.push_back(exp::fmt_double(
            exp::normalize(thr[{static_cast<int>(s), static_cast<int>(r)}],
                           thr[{vmlp_idx, static_cast<int>(r)}]),
            2));
      }
      table.row(row);
    }
    table.print();
  }

  std::cout << "\nPaper shape: v-MLP's throughput lead grows with the ratio of high-V_r\n"
               "requests (tailored management of volatile chains) and is larger under\n"
               "the fluctuating pattern (self-healing keeps the pipeline aligned).\n";
  return 0;
}
