// perf_harness — the repo's performance-regression probe.
//
// Times the three layers the perf architecture is built on and emits
// machine-readable BENCH_core.json for CI trend tracking (see
// tools/bench_compare.py and the `bench` CI job):
//
//   1. engine.*    — event-engine microbenchmark: a self-sustaining event
//                    cascade with driver-like reschedule/cancel churn;
//                    reports events/sec (the regression-gated metric).
//   2. scenario.*  — representative cells of fig10/fig13/fig14 at a
//                    harness-sized horizon; reports wall-ms per scenario.
//   3. trials.*    — parallel trial sharding of a fig13-style cell at
//                    1/4/8 pool threads; reports trials/sec and the 4-/8-
//                    thread speedups, and byte-verifies that the merged
//                    output is identical across thread counts. Steady-state
//                    discipline: a short warmup sweep per thread count, then
//                    median-of-kTrialReps with the coefficient of variation
//                    emitted as trials.tN.cov — the CI scaling gate
//                    (tools/bench_compare.py --floor) refuses to enforce
//                    speedup floors against a noisy run.
//   4. sched.*     — admission throughput on a contended 100-machine fig13
//                    cell: placements/sec with the indexed-ledger fast path
//                    (the regression-gated metric) and with the legacy
//                    map-backed reference (legacy ledger, fast path off),
//                    cross-checked to be decision-identical.
//   5. obs.*       — telemetry-collection overhead: engine cascade and a
//                    fig13 scenario with the collector on vs off, reported
//                    as on/off throughput ratios, plus the same scenario
//                    with latency attribution on vs obs-only
//                    (obs.attribution_wall_ratio — span ledger, critical-
//                    path extraction, per-band histograms). bench_compare.py
//                    enforces an absolute >= 0.95 floor on all three ratios
//                    (collection may cost at most 5%); a -DVMLP_NO_OBS build
//                    compiles the recording methods away entirely (ratio
//                    ~1.0). Each pair also cross-checks that results are
//                    identical instrumented or not (claims 6 and 8 in their
//                    perf-harness form).
//   6. scale.*     — multi-cell scale-out probe (OPT-IN: never part of the
//                    default family set — the legs take minutes). A
//                    1k-machine auto-partitioned cluster absorbs a >= 1e6-
//                    request stream through the streamed loadgen (no arrival
//                    vector) with spans off; the harness asserts the arrival
//                    floor and an absolute RSS ceiling in-process, and
//                    reports placements/sec plus the selection-cost ratio
//                    against the same shape on the paper's flat 100-machine
//                    cell (the cell router + headroom index must keep
//                    per-placement cost flat as machines grow 10x —
//                    bench_compare's CI floor holds the ratio >= 0.8).
//                    A traced rerun of the 1k leg (spans + attribution, with
//                    completed requests released back into the span arena)
//                    is held to the SAME RSS ceiling: tracing a >= 1e6-
//                    request stream must not change the run's memory class.
//                    `scale10k` is the 10k-machine/40-cell leg, gated to the
//                    nightly/labelled CI run.
//   7. ledger.*    — SIMD admission-kernel probe: the dispatched span-fit
//                    fold vs the same-binary scalar reference over a
//                    saturated synthetic profile (full-range folds, the
//                    admission-storm worst case). Reports the scalar
//                    throughput (regression-gated: the forced-scalar path
//                    must never pay for the SIMD work) and, when a vector
//                    target is active, ledger.simd_speedup (CI floors it at
//                    1.15x on AVX2 runners). Verdict and fold bits are
//                    cross-checked scalar-vs-active before timing.
//
//                    The sched and scale families emit the same pair one
//                    level up: a forced-scalar rerun of the whole simulation
//                    (sched.scalar_placements_per_sec / sched.simd_speedup,
//                    scale.scalar_placements_per_sec / scale.simd_speedup),
//                    placement-count cross-checked against the dispatched
//                    run — the end-to-end form of the byte-identical claim.
//
// Usage: perf_harness [output.json] [--family name[,name...]]
//   output.json  destination (default: BENCH_core.json)
//   --family     run only the named families: engine, scenarios, trials,
//                sched, obs, ledger, scale, scale10k (default: all except
//                the opt-in scale legs). The CI scaling job runs
//                `--family trials` so the thread-scaling gate doesn't pay
//                for the whole suite.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iomanip>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/simd.h"
#include "exp/trial_runner.h"
#include "obs/collector.h"
#include "sim/engine.h"

namespace {

using namespace vmlp;
using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---- 1. event-engine microbenchmark ---------------------------------------

/// Self-sustaining cascade: every fired event schedules a successor, and a
/// sliding window of live handles receives the reschedule/cancel churn the
/// driver's re-rating produces (≈1 reschedule per firing, occasional cancel).
class EngineCascade {
 public:
  explicit EngineCascade(std::uint64_t budget, obs::Collector* obs = nullptr)
      : budget_(budget) {
    engine_.set_observer(obs);
    live_.resize(64);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      live_[i] = engine_.schedule_at(static_cast<SimTime>(rng_.uniform_int(0, 1000)),
                                     [this] { fire(); });
    }
  }

  std::uint64_t run() {
    engine_.run_all();
    return engine_.executed_events();
  }

 private:
  void fire() {
    if (engine_.executed_events() >= budget_) return;
    const auto slot = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(live_.size()) - 1));
    // Successor keeps the cascade alive; it replaces a window slot.
    live_[slot] = engine_.schedule_after(1 + rng_.uniform_int(0, 1000), [this] { fire(); });
    // Driver-like churn: move one pending event, rarely cancel-and-replace.
    const auto victim = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(live_.size()) - 1));
    if (rng_.uniform() < 0.125) {
      if (engine_.cancel(live_[victim])) {
        live_[victim] =
            engine_.schedule_after(1 + rng_.uniform_int(0, 1000), [this] { fire(); });
      }
    } else {
      engine_.reschedule_after(live_[victim], 1 + rng_.uniform_int(0, 1000));
    }
  }

  sim::Engine engine_;
  Rng rng_{2022};
  std::uint64_t budget_;
  std::vector<sim::EventHandle> live_;
};

double bench_engine_events_per_sec(std::uint64_t budget, obs::Collector* obs = nullptr) {
  EngineCascade cascade(budget, obs);
  const auto start = Clock::now();
  const std::uint64_t executed = cascade.run();
  const double sec = elapsed_sec(start);
  return static_cast<double>(executed) / sec;
}

// ---- 3. trial sharding ----------------------------------------------------

exp::TrialSpec trial_spec() {
  // A fig13-style cell heavy enough (~50-100 ms/trial) that sharding
  // overhead is negligible against per-trial work. Arrival rates scale with
  // the reduced cluster (the eval_config defaults target 100 machines).
  // 24 trials: enough work per sweep that an 8-lane pool still gets three
  // trials per lane, so dynamic assignment (not end-of-range straggling)
  // determines the measured speedup.
  exp::TrialSpec spec;
  spec.base = bench::eval_config(exp::SchemeKind::kVmlp, loadgen::PatternKind::kL2Fluctuating,
                                 exp::StreamKind::kHighVr, 10 * kSec);
  spec.base.driver.cluster.machine_count = 10;
  spec.base.qps_scale = 0.1;
  spec.trials = 24;
  spec.base_seed = 2022;
  return spec;
}

/// Measured repetitions per thread count in the trials family.
constexpr int kTrialReps = 3;

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// ---- 6. multi-cell scale-out ----------------------------------------------

/// Peak resident set (VmHWM) of this process in MB; 0.0 when unavailable
/// (non-Linux). Process-wide, so the scale family's ceiling assert is honest
/// only when the family runs alone (`--family scale`) — which is how CI
/// invokes it.
double vm_hwm_mb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return std::stod(line.substr(6)) / 1024.0;
  }
#endif
  return 0.0;
}

/// One scale-leg configuration: `machines` auto-partitioned machines (256 per
/// cell, so 1k -> 4 cells and 10k -> 40) absorbing an L1-pulse mixed stream
/// whose rates scale with machines/100 — constant per-machine load density,
/// the paper's 100-machine evaluation cell as the unit. Arrivals are streamed
/// (the tentpole's O(1)-arrival-state path) and spans are off (~100 B per
/// execution would dominate RSS at 1e6 requests).
exp::ExperimentConfig scale_config(std::size_t machines, SimTime horizon) {
  exp::ExperimentConfig c =
      bench::eval_config(exp::SchemeKind::kVmlp, loadgen::PatternKind::kL1Pulse,
                         exp::StreamKind::kMixed, horizon);
  const double mult = static_cast<double>(machines) / 100.0;
  c.driver.cluster.machine_count = machines;
  c.driver.cluster.topology.cells = 0;  // auto-partition
  c.stream_arrivals = true;
  c.driver.trace_spans = false;
  c.pattern_params.base_rate *= mult;
  c.pattern_params.max_rate *= mult;
  return c;
}

struct ScaleRun {
  double placements_per_sec = 0.0;
  double wall_ms = 0.0;
  std::size_t arrived = 0;
  std::size_t completed = 0;
  std::size_t placements = 0;
};

ScaleRun run_scale(const exp::ExperimentConfig& config) {
  const auto start = Clock::now();
  const auto result = vmlp::exp::run_experiment(config);
  ScaleRun r;
  r.wall_ms = elapsed_sec(start) * 1000.0;
  r.arrived = result.run.arrived;
  r.completed = result.run.completed;
  r.placements = result.run.placements;
  if (result.run.policy_seconds > 0) {
    r.placements_per_sec =
        static_cast<double>(result.run.placements) / result.run.policy_seconds;
  }
  return r;
}

// ---- 7. SIMD kernel probe + forced-scalar reruns ---------------------------

/// Forces the scalar dispatch table for one scope (the harness is
/// single-threaded outside the trials family's pools, which never run while
/// a ScopedScalar is live).
class ScopedScalar {
 public:
  ScopedScalar() : prev_(simd::active_target()) {
    simd::set_target_for_testing(simd::Target::kScalar);
  }
  ~ScopedScalar() { simd::set_target_for_testing(prev_); }
  ScopedScalar(const ScopedScalar&) = delete;
  ScopedScalar& operator=(const ScopedScalar&) = delete;

 private:
  simd::Target prev_;
};

/// Times one kernel table's span-fit fold over a saturated profile (every
/// level + demand exceeds the bound, so each call folds the full range — no
/// early accept). Returns million segment-lanes folded per second.
double spanfit_mops(const simd::KernelTable& k, const std::vector<double>& a,
                    const std::vector<double>& b, const std::vector<double>& c) {
  const double add[3] = {50.0, 50.0, 50.0};
  const double bound[3] = {100.0, 100.0, 100.0};
  const std::size_t n = a.size();
  // Calibrated batches: fold until ~0.25 s has elapsed (the kernel is an
  // indirect call through the table, so the loop cannot be folded away).
  std::size_t calls = 0;
  const auto start = Clock::now();
  double sec = 0.0;
  do {
    for (int batch = 0; batch < 256; ++batch) {
      double m[3];
      m[0] = m[1] = m[2] = std::numeric_limits<double>::infinity();
      if (k.span_fit3(a.data(), b.data(), c.data(), n, add, bound, m)) {
        std::cerr << "FAIL: saturated span-fit probe reported a fit\n";
        std::exit(1);
      }
    }
    calls += 256;
    sec = elapsed_sec(start);
  } while (sec < 0.25);
  return static_cast<double>(calls) * static_cast<double>(n) / sec / 1e6;
}

/// Coefficient of variation (stddev / mean) of the repetitions — the run's
/// noise estimate that bench_compare's floor gate reads.
double cov_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size() - 1);
  return std::sqrt(var) / mean;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::set<std::string> families;  // empty = all
  static const std::set<std::string> kKnownFamilies = {
      "engine", "scenarios", "trials", "sched", "obs", "ledger", "scale", "scale10k"};
  // Opt-in families: minutes-long, only run when named explicitly.
  static const std::set<std::string> kOptInFamilies = {"scale", "scale10k"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --family needs a value\n";
        return 2;
      }
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string name = list.substr(pos, comma - pos);
        if (!name.empty()) {
          if (kKnownFamilies.count(name) == 0) {
            std::cerr << "FAIL: unknown family '" << name << "' (expected one of";
            for (const auto& f : kKnownFamilies) std::cerr << ' ' << f;
            std::cerr << ")\n";
            return 2;
          }
          families.insert(name);
        }
        pos = comma + 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "FAIL: unknown option " << arg << "\n";
      return 2;
    } else {
      out_path = arg;
    }
  }
  const auto family_on = [&families](const char* name) {
    if (!families.empty()) return families.count(name) > 0;
    return kOptInFamilies.count(name) == 0;
  };

  std::vector<std::pair<std::string, double>> metrics;

  // 1. Engine microbenchmark: warm-up pass, then the measured pass.
  if (family_on("engine")) {
    std::fprintf(stderr, "engine microbenchmark...\n");
    (void)bench_engine_events_per_sec(50000);
    const double events_per_sec = bench_engine_events_per_sec(400000);
    metrics.emplace_back("engine.events_per_sec", events_per_sec);
    std::fprintf(stderr, "  %.0f events/sec\n", events_per_sec);
  }

  // 2. Representative fig scenarios (one cell each, harness-sized horizon).
  struct Scenario {
    const char* name;
    vmlp::exp::ExperimentConfig config;
  };
  const Scenario scenarios[] = {
      {"fig10_qos",
       vmlp::bench::perf_scenario_config(vmlp::exp::SchemeKind::kVmlp,
                                         vmlp::loadgen::PatternKind::kL1Pulse,
                                         vmlp::exp::StreamKind::kMixed)},
      {"fig13_tail",
       vmlp::bench::perf_scenario_config(vmlp::exp::SchemeKind::kVmlp,
                                         vmlp::loadgen::PatternKind::kL2Fluctuating,
                                         vmlp::exp::StreamKind::kHighVr)},
      {"fig14_throughput",
       vmlp::bench::perf_scenario_config(vmlp::exp::SchemeKind::kFairSched,
                                         vmlp::loadgen::PatternKind::kL3Periodic,
                                         vmlp::exp::StreamKind::kMixed)},
  };
  if (family_on("scenarios")) {
    for (const Scenario& s : scenarios) {
      std::fprintf(stderr, "scenario %s...\n", s.name);
      const auto start = Clock::now();
      const auto result = vmlp::exp::run_experiment(s.config);
      const double wall_ms = elapsed_sec(start) * 1000.0;
      metrics.emplace_back(std::string("scenario.") + s.name + ".wall_ms", wall_ms);
      metrics.emplace_back(std::string("scenario.") + s.name + ".completed",
                           static_cast<double>(result.run.completed));
      std::fprintf(stderr, "  %.1f ms (%zu completed)\n", wall_ms, result.run.completed);
    }
  }

  // 3. Trial sharding at 1/4/8 threads, with a cross-thread-count byte check
  // on every sweep (warmup included). Steady-state discipline: a short
  // warmup sweep settles CPU frequency / page cache / pool threads, then the
  // reported trials_per_sec is the median of kTrialReps full sweeps and
  // trials.tN.cov their coefficient of variation — bench_compare refuses to
  // enforce a speedup floor when cov exceeds its --max-cov threshold.
  if (family_on("trials")) {
    const vmlp::exp::TrialSpec spec = trial_spec();
    vmlp::exp::TrialSpec warmup_spec = spec;
    warmup_spec.trials = std::min<std::size_t>(spec.trials, 8);
    std::string merged_at_one;
    double median_at_one = 0.0;
    for (const std::size_t threads : {1u, 4u, 8u}) {
      std::fprintf(stderr, "trial sharding at %zu thread(s)...\n", threads);
      (void)vmlp::exp::run_trials(warmup_spec, threads);
      std::vector<double> reps;
      for (int rep = 0; rep < kTrialReps; ++rep) {
        const auto start = Clock::now();
        const auto result = vmlp::exp::run_trials(spec, threads);
        const double sec = elapsed_sec(start);
        reps.push_back(static_cast<double>(spec.trials) / sec);

        const std::string merged = vmlp::exp::format_trial_set(result);
        if (threads == 1 && rep == 0) {
          merged_at_one = merged;
        } else if (merged != merged_at_one) {
          std::cerr << "FAIL: merged trial output at " << threads
                    << " threads (rep " << rep << ") differs from the 1-thread run\n";
          return 1;
        }
      }
      const double med = median_of(reps);
      const double cov = cov_of(reps);
      const std::string key = "trials.t" + std::to_string(threads);
      metrics.emplace_back(key + ".trials_per_sec", med);
      metrics.emplace_back(key + ".cov", cov);
      std::fprintf(stderr, "  %.2f trials/sec (median of %d, cov %.3f)\n", med, kTrialReps,
                   cov);
      if (threads == 1) {
        median_at_one = med;
      } else {
        metrics.emplace_back(key + ".speedup_vs_t1", med / median_at_one);
        std::fprintf(stderr, "  %.2fx vs t1\n", med / median_at_one);
      }
    }
  }

  // 4. Admission fast path vs the legacy reference on a contended cell.
  // Same simulation both ways — the modes are byte-identical in decisions
  // (determinism_check claim 5), so placements cancel out. The denominator
  // is RunResult::policy_seconds — host time spent inside scheduler
  // callbacks (admission, planning, ledger bookings) — not the whole-run
  // wall clock: the execution model / event engine / tracing form a fixed
  // floor identical in both modes that would otherwise drown the admission
  // machinery this metric exists to track.
  if (family_on("sched")) {
  std::fprintf(stderr, "sched placement benchmark (fast path)...\n");
  vmlp::exp::ExperimentConfig sched_config = vmlp::bench::perf_scenario_config(
      vmlp::exp::SchemeKind::kVmlp, vmlp::loadgen::PatternKind::kL2Fluctuating,
      vmlp::exp::StreamKind::kHighVr);
  // Scale the offered load so the cell is actually contended (util ~0.46,
  // first probes mostly fail). At the stock rate admission trivially accepts
  // on the first probe in both modes and the ratio measures nothing; much
  // beyond ~1.5x the planner degenerates into an organize-retry storm that
  // makes the benchmark unusably slow.
  constexpr double kContentionMult = 1.25;
  sched_config.pattern_params.max_rate *= kContentionMult;
  sched_config.pattern_params.base_rate *= kContentionMult;
  sched_config.pattern_params.l2_min_rate *= kContentionMult;
  sched_config.pattern_params.l2_max_step *= kContentionMult;
  vmlp::exp::ExperimentConfig sched_reference = sched_config;
  sched_reference.driver.cluster.legacy_ledger = true;
  sched_reference.vmlp.admission_fast_path = false;

  const auto fast_result = vmlp::exp::run_experiment(sched_config);
  const double fast_sec = fast_result.run.policy_seconds;
  std::fprintf(stderr, "sched placement benchmark (reference ledger)...\n");
  const auto ref_result = vmlp::exp::run_experiment(sched_reference);
  const double ref_sec = ref_result.run.policy_seconds;

  if (fast_result.run.placements != ref_result.run.placements ||
      fast_result.run.completed != ref_result.run.completed) {
    std::cerr << "FAIL: fast-path and reference runs diverged (placements "
              << fast_result.run.placements << " vs " << ref_result.run.placements
              << ", completed " << fast_result.run.completed << " vs "
              << ref_result.run.completed << ") — the sched.* ratio would be meaningless\n";
    return 1;
  }
  if (fast_sec <= 0 || ref_sec <= 0) {
    std::cerr << "FAIL: zero policy time recorded — the sched.* metrics would be vacuous\n";
    return 1;
  }
  const double placements = static_cast<double>(fast_result.run.placements);
  metrics.emplace_back("sched.placements_per_sec", placements / fast_sec);
  metrics.emplace_back("sched.reference_placements_per_sec", placements / ref_sec);
  metrics.emplace_back("sched.fast_path_speedup", ref_sec / fast_sec);
  std::fprintf(stderr, "  %.0f placements/sec fast, %.0f reference (%.2fx)\n",
               placements / fast_sec, placements / ref_sec, ref_sec / fast_sec);

  // Forced-scalar rerun of the fast-path config: same flat ledger, SIMD
  // kernels swapped for the scalar reference. Placements must match exactly
  // (the byte-identical dispatch contract, end to end); the throughput pair
  // is what CI gates — the scalar figure against its own baseline (the
  // scalar path must never pay for the SIMD machinery) and, when a vector
  // target is active, the speedup floor.
  if (simd::enabled()) {
    std::fprintf(stderr, "sched placement benchmark (forced scalar)...\n");
    ScopedScalar forced;
    const auto scalar_result = vmlp::exp::run_experiment(sched_config);
    const double scalar_sec = scalar_result.run.policy_seconds;
    if (scalar_result.run.placements != fast_result.run.placements ||
        scalar_result.run.completed != fast_result.run.completed) {
      std::cerr << "FAIL: forced-scalar run diverged from the SIMD run (placements "
                << scalar_result.run.placements << " vs " << fast_result.run.placements
                << ", completed " << scalar_result.run.completed << " vs "
                << fast_result.run.completed << ") — the SIMD kernels changed a decision\n";
      return 1;
    }
    if (scalar_sec <= 0) {
      std::cerr << "FAIL: zero policy time in the forced-scalar sched run\n";
      return 1;
    }
    metrics.emplace_back("sched.scalar_placements_per_sec", placements / scalar_sec);
    metrics.emplace_back("sched.simd_speedup", scalar_sec / fast_sec);
    std::fprintf(stderr, "  %.0f placements/sec scalar (simd %.2fx)\n",
                 placements / scalar_sec, scalar_sec / fast_sec);
  }
  }

  // 5. Telemetry-collection overhead (obs_overhead family). Each leg reports
  // the instrumented/uninstrumented throughput ratio, best-of-3 to shave
  // scheduler noise; bench_compare.py holds both ratios to an absolute
  // >= 0.95 floor (collection may cost at most 5%). A -DVMLP_NO_OBS build
  // empties every recording body, so there the ratio sits at ~1.0.
  if (family_on("obs")) {
  std::fprintf(stderr, "telemetry overhead (engine cascade)...\n");
  vmlp::obs::Params obs_params;
  obs_params.enabled = true;
  double engine_off = 0.0;
  double engine_on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    engine_off = std::max(engine_off, bench_engine_events_per_sec(400000));
    vmlp::obs::Collector obs_collector(obs_params);
    engine_on = std::max(engine_on, bench_engine_events_per_sec(400000, &obs_collector));
  }
  const double engine_ratio = engine_on / engine_off;
  metrics.emplace_back("obs.engine_events_per_sec_ratio", engine_ratio);
  std::fprintf(stderr, "  %.0f off, %.0f on (%.3fx)\n", engine_off, engine_on, engine_ratio);

  std::fprintf(stderr, "telemetry overhead (fig13 scenario)...\n");
  vmlp::exp::ExperimentConfig obs_off_config = vmlp::bench::perf_scenario_config(
      vmlp::exp::SchemeKind::kVmlp, vmlp::loadgen::PatternKind::kL2Fluctuating,
      vmlp::exp::StreamKind::kHighVr);
  vmlp::exp::ExperimentConfig obs_on_config = obs_off_config;
  obs_on_config.driver.obs.enabled = true;
  double scenario_off_sec = 1e300;
  double scenario_on_sec = 1e300;
  std::size_t completed_off = 0;
  std::size_t completed_on = 0;
  std::size_t placements_off = 0;
  std::size_t placements_on = 0;
  for (int rep = 0; rep < 2; ++rep) {
    auto start = Clock::now();
    const auto off = vmlp::exp::run_experiment(obs_off_config);
    scenario_off_sec = std::min(scenario_off_sec, elapsed_sec(start));
    completed_off = off.run.completed;
    placements_off = off.run.placements;
    start = Clock::now();
    const auto on = vmlp::exp::run_experiment(obs_on_config);
    scenario_on_sec = std::min(scenario_on_sec, elapsed_sec(start));
    completed_on = on.run.completed;
    placements_on = on.run.placements;
  }
  // The zero-perturbation guarantee, checked where it is cheapest: the same
  // cell must produce identical results with collection on or off.
  if (completed_on != completed_off || placements_on != placements_off) {
    std::cerr << "FAIL: telemetry collection perturbed the run (completed "
              << completed_off << " vs " << completed_on << ", placements "
              << placements_off << " vs " << placements_on << ")\n";
    return 1;
  }
  const double scenario_ratio = scenario_off_sec / scenario_on_sec;
  metrics.emplace_back("obs.scenario_wall_ratio", scenario_ratio);
  std::fprintf(stderr, "  %.1f ms off, %.1f ms on (%.3fx)\n", scenario_off_sec * 1000.0,
               scenario_on_sec * 1000.0, scenario_ratio);

  // Latency attribution on top of plain collection: span ledger fill,
  // per-completion critical-path extraction, and the per-band histogram
  // observes. Same 0.95 floor as the other obs ratios — attribution may cost
  // at most 5% over an obs-on run — and the same zero-perturbation
  // cross-check (determinism_check claim 8's perf-harness form).
  std::fprintf(stderr, "telemetry overhead (attribution)...\n");
  vmlp::exp::ExperimentConfig attr_config = obs_on_config;
  attr_config.driver.attribution = true;
  double attribution_sec = 1e300;
  std::size_t completed_attr = 0;
  std::size_t placements_attr = 0;
  for (int rep = 0; rep < 2; ++rep) {
    const auto start = Clock::now();
    const auto attr = vmlp::exp::run_experiment(attr_config);
    attribution_sec = std::min(attribution_sec, elapsed_sec(start));
    completed_attr = attr.run.completed;
    placements_attr = attr.run.placements;
  }
  if (completed_attr != completed_on || placements_attr != placements_on) {
    std::cerr << "FAIL: latency attribution perturbed the run (completed "
              << completed_on << " vs " << completed_attr << ", placements "
              << placements_on << " vs " << placements_attr << ")\n";
    return 1;
  }
  const double attribution_ratio = scenario_on_sec / attribution_sec;
  metrics.emplace_back("obs.attribution_wall_ratio", attribution_ratio);
  std::fprintf(stderr, "  %.1f ms obs-on, %.1f ms with attribution (%.3fx)\n",
               scenario_on_sec * 1000.0, attribution_sec * 1000.0, attribution_ratio);
  }

  // 7. SIMD kernel probe: the dispatched span-fit fold vs the same-binary
  // scalar reference on an identical saturated profile. Bit-equality of the
  // verdict and the reject-path fold is asserted before any timing — a
  // mismatch here means the dispatch contract is broken and every ledger
  // number below would be garbage.
  if (family_on("ledger")) {
    std::fprintf(stderr, "ledger kernel probe (%s active)...\n",
                 simd::target_name(simd::active_target()));
    const simd::KernelTable* scalar_table = simd::table_for(simd::Target::kScalar);
    const simd::KernelTable& active_table = simd::kernels();
    constexpr std::size_t kPlaneLen = 4096;
    vmlp::Rng rng(2024);
    std::vector<double> pa(kPlaneLen);
    std::vector<double> pb(kPlaneLen);
    std::vector<double> pc(kPlaneLen);
    for (std::size_t i = 0; i < kPlaneLen; ++i) {
      pa[i] = rng.uniform(55.0, 95.0);
      pb[i] = rng.uniform(55.0, 95.0);
      pc[i] = rng.uniform(55.0, 95.0);
    }
    {
      const double add[3] = {50.0, 50.0, 50.0};
      const double bound[3] = {100.0, 100.0, 100.0};
      double m_scalar[3];
      double m_active[3];
      m_scalar[0] = m_scalar[1] = m_scalar[2] = std::numeric_limits<double>::infinity();
      m_active[0] = m_active[1] = m_active[2] = std::numeric_limits<double>::infinity();
      const bool fit_scalar = scalar_table->span_fit3(pa.data(), pb.data(), pc.data(),
                                                      kPlaneLen, add, bound, m_scalar);
      const bool fit_active = active_table.span_fit3(pa.data(), pb.data(), pc.data(),
                                                     kPlaneLen, add, bound, m_active);
      if (fit_scalar != fit_active || m_scalar[0] != m_active[0] ||
          m_scalar[1] != m_active[1] || m_scalar[2] != m_active[2]) {
        std::cerr << "FAIL: scalar and " << simd::target_name(active_table.target)
                  << " span-fit disagree on the probe profile — dispatch contract broken\n";
        return 1;
      }
    }
    (void)spanfit_mops(*scalar_table, pa, pb, pc);  // warm-up
    const double scalar_mops = spanfit_mops(*scalar_table, pa, pb, pc);
    metrics.emplace_back("ledger.scalar_spanfit_mops", scalar_mops);
    std::fprintf(stderr, "  scalar: %.0f Mlanes/sec\n", scalar_mops);
    if (simd::enabled()) {
      const double active_mops = spanfit_mops(active_table, pa, pb, pc);
      metrics.emplace_back("ledger.spanfit_mops", active_mops);
      metrics.emplace_back("ledger.simd_speedup", active_mops / scalar_mops);
      std::fprintf(stderr, "  %s: %.0f Mlanes/sec (%.2fx)\n",
                   simd::target_name(active_table.target), active_mops,
                   active_mops / scalar_mops);
    }
  }

  // 6. Multi-cell scale-out (opt-in). Both legs assert the >= 1e6-request
  // floor (vacuity: a short run trivially meets any ceiling) and the absolute
  // RSS ceiling in-process — the ceiling is the streamed-loadgen promise made
  // enforceable: no arrival vector, no span retention, bounded live state.
  constexpr std::size_t kScaleArrivalFloor = 1000000;
  struct ScaleLeg {
    const char* family;    // --family name and metric prefix
    std::size_t machines;
    vmlp::SimTime horizon; // sized so base_rate * mult * horizon >= the floor
    double rss_ceiling_mb;
  };
  const ScaleLeg scale_legs[] = {
      {"scale", 1000, 400 * vmlp::kSec, 1024.0},
      {"scale10k", 10000, 40 * vmlp::kSec, 2048.0},
  };
  for (const ScaleLeg& leg : scale_legs) {
    if (!family_on(leg.family)) continue;
    std::fprintf(stderr, "%s: %zu-machine leg...\n", leg.family, leg.machines);
    const ScaleRun run = run_scale(scale_config(leg.machines, leg.horizon));
    std::fprintf(stderr, "  %zu arrived, %zu completed in %.0f ms (%.0f placements/sec)\n",
                 run.arrived, run.completed, run.wall_ms, run.placements_per_sec);
    if (run.arrived < kScaleArrivalFloor) {
      std::cerr << "FAIL: " << leg.family << " leg offered only " << run.arrived
                << " requests (< " << kScaleArrivalFloor << ") — the scale claim is vacuous\n";
      return 1;
    }
    if (run.completed == 0 || run.placements_per_sec <= 0) {
      std::cerr << "FAIL: " << leg.family << " leg completed nothing — misconfigured\n";
      return 1;
    }
    const double rss_mb = vm_hwm_mb();
    if (rss_mb > leg.rss_ceiling_mb) {
      std::cerr << "FAIL: " << leg.family << " peak RSS " << rss_mb << " MB exceeds the "
                << leg.rss_ceiling_mb << " MB ceiling — per-request state is leaking "
                << "(arrival vector? spans? unreaped requests?)\n";
      return 1;
    }
    std::fprintf(stderr, "  peak RSS %.0f MB (ceiling %.0f MB)\n", rss_mb, leg.rss_ceiling_mb);
    const std::string prefix(leg.family);
    metrics.emplace_back(prefix + ".placements_per_sec", run.placements_per_sec);
    metrics.emplace_back(prefix + ".wall_ms", run.wall_ms);
    metrics.emplace_back(prefix + ".arrived", static_cast<double>(run.arrived));
    metrics.emplace_back(prefix + ".completed", static_cast<double>(run.completed));
    metrics.emplace_back(prefix + ".rss_peak_mb", rss_mb);
    if (std::string(leg.family) == "scale") {
      // Selection-cost ratio vs the flat 100-machine reference (same shape,
      // same per-machine load density, 1/10th the stream). The router +
      // headroom index must keep per-placement admission cost flat as the
      // cluster grows 10x; CI floors this at 0.7 (the flat reference leg
      // alone swings ~20% run to run on a 1-thread runner).
      std::fprintf(stderr, "scale: 100-machine flat reference...\n");
      const ScaleRun ref = run_scale(scale_config(100, leg.horizon));
      if (ref.placements_per_sec <= 0) {
        std::cerr << "FAIL: flat reference leg recorded no policy time\n";
        return 1;
      }
      const double ratio = run.placements_per_sec / ref.placements_per_sec;
      metrics.emplace_back("scale.selection_ratio_1k_vs_100", ratio);
      std::fprintf(stderr, "  %.0f vs %.0f placements/sec (ratio %.2f)\n",
                   run.placements_per_sec, ref.placements_per_sec, ratio);

      // Forced-scalar rerun of the 1k leg: the multi-cell admission path
      // (router density ranking, headroom-index jumps, ledger folds) with
      // the scalar kernel table. Placement-count equality is the dispatch
      // contract at 1k-machine scale; the throughput pair feeds the same
      // CI gates as the sched family's.
      if (simd::enabled()) {
        std::fprintf(stderr, "scale: forced-scalar 1k leg...\n");
        ScopedScalar forced;
        const ScaleRun scalar_run = run_scale(scale_config(leg.machines, leg.horizon));
        if (scalar_run.placements != run.placements ||
            scalar_run.completed != run.completed) {
          std::cerr << "FAIL: forced-scalar scale leg diverged from the SIMD leg "
                    << "(placements " << scalar_run.placements << " vs " << run.placements
                    << ", completed " << scalar_run.completed << " vs " << run.completed
                    << ") — the SIMD kernels changed a decision\n";
          return 1;
        }
        if (scalar_run.placements_per_sec <= 0) {
          std::cerr << "FAIL: forced-scalar scale leg recorded no policy time\n";
          return 1;
        }
        metrics.emplace_back("scale.scalar_placements_per_sec",
                             scalar_run.placements_per_sec);
        metrics.emplace_back("scale.simd_speedup",
                             run.placements_per_sec / scalar_run.placements_per_sec);
        std::fprintf(stderr, "  %.0f placements/sec scalar (simd %.2fx)\n",
                     scalar_run.placements_per_sec,
                     run.placements_per_sec / scalar_run.placements_per_sec);
      }

      // Traced rerun of the 1k leg: spans + latency attribution on, with
      // completed requests released back into the span arena
      // (trace_release_completed) so live trace state stays bounded across
      // the >= 1e6-request stream. Held to the SAME RSS ceiling as the
      // untraced leg — tracing at scale must not change the run's memory
      // class — and to result equality (attribution is write-only).
      std::fprintf(stderr, "scale: traced 1k leg (spans + attribution)...\n");
      vmlp::exp::ExperimentConfig traced = scale_config(leg.machines, leg.horizon);
      traced.driver.trace_spans = true;
      traced.driver.trace_release_completed = true;
      traced.driver.attribution = true;
      traced.driver.obs.enabled = true;
      const ScaleRun traced_run = run_scale(traced);
      if (traced_run.placements != run.placements ||
          traced_run.completed != run.completed) {
        std::cerr << "FAIL: traced scale leg diverged from the untraced leg (placements "
                  << traced_run.placements << " vs " << run.placements << ", completed "
                  << traced_run.completed << " vs " << run.completed
                  << ") — tracing/attribution perturbed the simulation\n";
        return 1;
      }
      const double traced_rss = vm_hwm_mb();
      if (traced_rss > leg.rss_ceiling_mb) {
        std::cerr << "FAIL: traced scale leg peak RSS " << traced_rss
                  << " MB exceeds the " << leg.rss_ceiling_mb
                  << " MB ceiling — span slots are not being recycled\n";
        return 1;
      }
      metrics.emplace_back("scale.traced_placements_per_sec",
                           traced_run.placements_per_sec);
      metrics.emplace_back("scale.trace_rss_mb", traced_rss);
      std::fprintf(stderr,
                   "  %.0f placements/sec traced, peak RSS %.0f MB (ceiling %.0f MB)\n",
                   traced_run.placements_per_sec, traced_rss, leg.rss_ceiling_mb);
    }
  }

  // Emit BENCH_core.json (key order fixed; bench_compare.py consumes it).
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << std::setprecision(12);
  out << "{\n  \"schema\": \"vmlp-bench-core/v1\",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "    \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.close();
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
