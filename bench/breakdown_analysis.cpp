// Extension bench — latency decomposition per scheme.
//
// For the mixed stream at the full workload level, decompose every completed
// request's end-to-end time into execution / handoff (communication +
// scheduling wait + misalignment) / ingress along its critical path. MLP's
// thesis is that aligned chains shrink the handoff share — this makes the
// mechanism visible directly instead of only through tail latencies.
#include <iostream>

#include "bench_common.h"
#include "exp/analysis.h"
#include "loadgen/generator.h"
#include "workloads/suite.h"

int main() {
  using namespace vmlp;
  exp::print_section("Latency decomposition — mixed stream, L2, full load, 100 machines");

  exp::Table table({"scheme", "request", "n", "mean total", "exec", "handoff", "ingress",
                    "handoff share", "dominant stage"});

  for (auto scheme : exp::all_schemes()) {
    auto config = bench::eval_config(scheme, loadgen::PatternKind::kL2Fluctuating,
                                     exp::StreamKind::kMixed);
    // Re-run manually to keep the tracer (run_experiment discards the driver).
    auto application = workloads::make_benchmark_suite();
    auto scheduler = exp::make_scheduler(scheme, config.vmlp, config.seed);
    sched::DriverParams dp = config.driver;
    dp.seed = config.seed;
    loadgen::PatternParams pp = config.pattern_params;
    pp.horizon = dp.horizon;
    const auto pattern = loadgen::WorkloadPattern::make(config.pattern, pp,
                                                        Rng(config.seed).fork("pattern").seed());
    Rng arrival_rng = Rng(config.seed).fork("arrivals");
    const auto arrivals = loadgen::generate_arrivals(
        pattern, loadgen::RequestMix::all(*application), arrival_rng, 1.0);
    std::fprintf(stderr, "  running %s ...\n", exp::scheme_name(scheme));
    sched::SimulationDriver driver(*application, *scheduler, dp);
    driver.load_arrivals(arrivals);
    driver.run();

    for (const auto& breakdown : exp::analyze_all(driver.tracer(), *application)) {
      table.row({exp::scheme_name(scheme), breakdown.name, std::to_string(breakdown.requests),
                 exp::fmt_ms(breakdown.total.mean()), exp::fmt_ms(breakdown.execution.mean()),
                 exp::fmt_ms(breakdown.handoff.mean()), exp::fmt_ms(breakdown.ingress.mean()),
                 exp::fmt_percent(breakdown.handoff_share()),
                 breakdown.dominant_service(*application)});
    }
  }
  table.print();

  std::cout << "\nReading: execution time is scheduler-independent to first order; the\n"
               "schedulers differ in the handoff share — the misalignment waste MLP\n"
               "coalescing removes.\n";
  return 0;
}
