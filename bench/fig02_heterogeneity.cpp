// Fig. 2 — Impact of application heterogeneity on microservice execution time.
//
// Reproduces the paper's characterization: six representative TrainTicket
// microservices, invoked 100 times with abundant resources under each request
// type that includes them; prints the execution-time CDF (quantiles) and the
// worst-case variation, classifying each service into the low/mid/high
// inner-variation classes of Section II-A.
#include <iostream>

#include "app/exec_model.h"
#include "common/rng.h"
#include "exp/report.h"
#include "stats/percentile.h"
#include "workloads/train_ticket.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 2 — execution-time CDFs under different request types (TrainTicket)");

  workloads::TrainTicketIds ids;
  auto tt = workloads::make_train_ticket(&ids);
  const app::ExecModel model;
  Rng rng(2022);

  const char* services[] = {"order", "seat", "travel", "route", "price", "basic"};
  exp::Table table({"service", "request", "p10", "p50", "p90", "p99", "max",
                    "worst-case var", "class"});

  for (const char* name : services) {
    const ServiceTypeId svc = *tt->find_service(name);
    const auto& type = tt->service(svc);
    for (const auto& rt : tt->requests()) {
      // Locate this service's node (and its request-specific logic scale).
      double scale = -1.0;
      for (const auto& node : rt.nodes()) {
        if (node.service == svc) scale = node.time_scale;
      }
      if (scale < 0.0) continue;  // not invoked by this request type

      stats::SampleSet samples;
      for (int i = 0; i < 100; ++i) {
        // Abundant resources: allocation == demand.
        samples.add(static_cast<double>(model.sample_duration(type, scale, type.demand, rng)));
      }
      const double median = samples.median();
      const double variation = (samples.max() - median) / median;
      const char* cls = variation < 0.15 ? "low-variation"
                        : variation < 0.45 ? "mid-variation"
                                           : "high-variation";
      table.row({name, rt.name(), exp::fmt_ms(samples.quantile(0.10)),
                 exp::fmt_ms(median), exp::fmt_ms(samples.quantile(0.90)),
                 exp::fmt_ms(samples.p99()), exp::fmt_ms(samples.max()),
                 exp::fmt_percent(variation), cls});
    }
  }
  table.print();

  std::cout << "\nPaper shape: execution time distributions vary widely per service;\n"
               "'order' roughly doubles in the worst case (high-variation class).\n";
  return 0;
}
