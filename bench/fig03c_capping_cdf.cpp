// Fig. 3(c) — Sensitivity of execution time to resource capping.
//
// For one SocialNetwork service of each sensitivity class, sample execution
// times at 100% / 75% / 50% resource budget and report the CDF quantiles plus
// the mean/stddev shifts, reproducing the highly / moderately / less variable
// classification of Section II-B Observation 3.
#include <iostream>

#include "app/exec_model.h"
#include "common/rng.h"
#include "exp/report.h"
#include "stats/summary.h"
#include "stats/percentile.h"
#include "workloads/social_network.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 3(c) — execution-time CDFs under resource capping (SocialNetwork)");

  auto sn = workloads::make_social_network();
  const app::ExecModel model;
  Rng rng(33);

  // One representative per sensitivity class.
  struct Pick {
    const char* service;
    const char* cls;
  };
  const Pick picks[] = {
      {"media", "highly variable (S=3)"},
      {"post-storage", "moderately variable (S=2)"},
      {"social-graph", "less variable (S=1)"},
  };

  exp::Table table({"service", "class", "budget", "p50", "p90", "p99", "mean", "stddev"});
  for (const auto& pick : picks) {
    const auto& svc = sn->service(*sn->find_service(pick.service));
    for (double budget : {1.0, 0.75, 0.5}) {
      const cluster::ResourceVector alloc = svc.demand * budget;
      stats::SampleSet samples;
      stats::Summary moments;
      for (int i = 0; i < 2000; ++i) {
        const auto d = model.sample_duration(svc, 1.0, alloc, rng);
        samples.add(static_cast<double>(d));
        moments.add(static_cast<double>(d));
      }
      table.row({pick.service, pick.cls, exp::fmt_percent(budget, 0),
                 exp::fmt_ms(samples.median()), exp::fmt_ms(samples.quantile(0.90)),
                 exp::fmt_ms(samples.p99()), exp::fmt_ms(moments.mean()),
                 exp::fmt_ms(moments.stddev())});
    }
  }
  table.print();

  std::cout << "\nPaper shape: capping a highly variable service raises both mean and\n"
               "variance; a moderately variable one shifts only the mean; a less\n"
               "variable one barely moves.\n";
  return 0;
}
