// Fig. 3(b) — Server utilization of a production container over an 8-day
// trace (synthetic Alibaba-style substitute): heavy fluctuation with frequent
// surge peaks under resource over-subscription.
#include <iostream>

#include "exp/report.h"
#include "stats/percentile.h"
#include "workloads/alibaba_trace.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 3(b) — container utilization, 8-day synthetic production trace");

  const workloads::AlibabaTraceParams params;
  const auto trace = workloads::generate_alibaba_trace(params, 2022);

  stats::SampleSet s;
  for (double u : trace.utilization) s.add(u);

  exp::Table table({"metric", "value"});
  table.row({"samples (5-min)", std::to_string(trace.sample_count())});
  table.row({"mean utilization", exp::fmt_percent(trace.mean())});
  table.row({"p50", exp::fmt_percent(s.median())});
  table.row({"p90", exp::fmt_percent(s.quantile(0.90))});
  table.row({"p99", exp::fmt_percent(s.p99())});
  table.row({"max", exp::fmt_percent(trace.max())});
  table.row({"surge peaks > 70%", std::to_string(trace.peaks_above(0.7))});
  table.row({"peak-to-mean ratio", exp::fmt_double(trace.max() / trace.mean(), 2)});
  table.print();

  std::cout << "\nDaily utilization curves (one line per day):\n";
  const std::size_t per_day = trace.sample_count() / 8;
  for (int day = 0; day < 8; ++day) {
    std::vector<double> day_series(trace.utilization.begin() + day * per_day,
                                   trace.utilization.begin() + (day + 1) * per_day);
    std::cout << "  day " << day << "  " << exp::ascii_series(day_series, 72) << '\n';
  }

  std::cout << "\nPaper shape: significant workload fluctuation with many peaks from\n"
               "frequent traffic surges; over-subscribed resources cannot always meet\n"
               "demand peaks.\n";
  return 0;
}
