// Fig. 3(a) — Ratio of resource demand in execution state to suspension
// state for the 12 SocialNetwork microservices, per resource type, plus each
// service's intensity class (CPU / IO / CPU&IO).
#include <iostream>

#include "cluster/container.h"
#include "exp/report.h"
#include "workloads/social_network.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 3(a) — execution/suspension resource-demand ratio (SocialNetwork)");

  auto sn = workloads::make_social_network();
  exp::Table table({"service", "intensity", "cpu demand (mC)", "io demand (MB/s)",
                    "cpu ratio", "mem ratio", "io ratio"});

  for (const auto& svc : sn->services()) {
    cluster::Container c(ContainerId(0), InstanceId(0), MachineId(0), svc.demand, svc.demand);
    const auto running = c.effective_usage();
    c.suspend();
    const auto suspended = c.effective_usage();
    table.row({svc.name, app::intensity_name(svc.intensity), exp::fmt_double(svc.demand.cpu, 0),
               exp::fmt_double(svc.demand.io, 0),
               exp::fmt_double(running.cpu / suspended.cpu, 1),
               exp::fmt_double(running.mem / suspended.mem, 1),
               exp::fmt_double(running.io / suspended.io, 1)});
  }
  table.print();

  std::cout << "\nPaper shape: microservices face fewer resource bottlenecks than\n"
               "monoliths — memory capacity is not a bottleneck (low mem ratio);\n"
               "services are CPU-, IO-, or CPU&IO-intensive.\n";
  return 0;
}
