// Extension bench — robustness to machine crashes and container faults.
//
// The paper's self-healing module heals *delay*; this bench stresses the
// harder axis: machines die mid-chain and recover later, orphaning in-flight
// microservices. Every scheme heals through the driver's bounded-retry layer;
// v-MLP additionally routes orphans through its relocation machinery, so its
// QoS under failures should dominate the reservation-less baselines
// (FairSched/CurSched) in every cell — the bench exits nonzero otherwise.
//
// Runs with VMLP_AUDIT forced on: every crash purge re-verifies ledger
// capacity conservation, so a single leaked or double-released reservation
// aborts the bench. The grid sweeps crash rate x recovery time.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "bench_common.h"
#include "common/audit.h"

int main() {
  using namespace vmlp;
  // Every run below re-checks capacity conservation on each crash/fault.
  audit::set_enabled(true);

  // Audit makes conservation scans O(live reservations) per mutation, so the
  // grid uses a smaller cluster than the fig benches; failure pressure comes
  // from the crash rate, not the fleet size.
  constexpr std::size_t kMachines = 24;
  constexpr SimTime kHorizon = 12 * kSec;

  exp::print_section("Failure robustness — high-V_r stream, L2, 24 machines, 12 s, audit ON");

  struct Axis {
    const char* name;
    double value;
  };
  const Axis crash_rates[] = {{"0.2/s", 0.2}, {"0.5/s", 0.5}, {"1.0/s", 1.0}};
  const Axis recoveries[] = {{"200ms", 200.0}, {"500ms", 500.0}, {"1500ms", 1500.0}};

  int dominance_failures = 0;
  for (const auto& rate : crash_rates) {
    for (const auto& rec : recoveries) {
      const std::string cell = std::string("crash ") + rate.name + ", recovery " + rec.name;
      exp::print_section(cell);
      auto header = exp::failure_table_header();
      header.insert(header.begin(), {"scheme", "QoS viol.", "p99"});
      exp::Table table(header);

      std::map<exp::SchemeKind, double> qos;
      for (auto scheme : exp::all_schemes()) {
        // High-V_r stream under L2: the regime where placement quality drives
        // QoS (Fig. 10's widest gaps) — exactly where crash healing must not
        // erase v-MLP's advantage.
        auto config = bench::eval_config(scheme, loadgen::PatternKind::kL2Fluctuating,
                                         exp::StreamKind::kHighVr, kHorizon);
        config.driver.cluster.machine_count = kMachines;
        // Load scaled to the 24-machine fleet at fig-bench density and beyond
        // (the fig benches peak 100 machines at 10 req/s/machine): hot enough
        // that blind-retry queueing after a crash costs tail latency, small
        // enough that the audited grid fits in CI time.
        config.pattern_params.base_rate = 150.0;
        config.pattern_params.max_rate = 400.0;
        config.pattern_params.l2_min_rate = 100.0;
        config.pattern_params.l2_max_step = 150.0;
        config.driver.failure.enabled = true;
        config.driver.failure.crashes_per_second = rate.value;
        config.driver.failure.recovery_mean =
            static_cast<SimDuration>(rec.value) * kMsec;
        config.driver.failure.container_fault_prob = 0.05;
        const auto result = bench::run_with_progress(config, cell.c_str());
        qos[scheme] = result.run.qos_violation_rate;

        auto cells = exp::failure_cells(result.run);
        cells.insert(cells.begin(),
                     {std::string(exp::scheme_name(scheme)),
                      exp::fmt_percent(result.run.qos_violation_rate, 2),
                      exp::fmt_ms(result.run.p99_latency_us)});
        table.row(cells);
      }
      table.print();

      // The paper's ordering must hold under failures too: v-MLP's planned
      // reservations + orphan relocation beat the reservation-less baselines.
      for (auto baseline : {exp::SchemeKind::kFairSched, exp::SchemeKind::kCurSched}) {
        if (qos[exp::SchemeKind::kVmlp] >= qos[baseline]) {
          std::fprintf(stderr, "FAIL: v-MLP QoS violation %.4f >= %s %.4f in cell [%s]\n",
                       qos[exp::SchemeKind::kVmlp], exp::scheme_name(baseline), qos[baseline],
                       cell.c_str());
          ++dominance_failures;
        }
      }
    }
  }

  if (dominance_failures > 0) {
    std::cerr << "\nfailure_robustness: " << dominance_failures
              << " dominance violation(s) — v-MLP did not beat the baselines everywhere\n";
    return 1;
  }
  std::cout << "\nReading: crashes orphan mid-chain work everywhere, but schemes that\n"
               "re-plan orphans onto reserved future windows (v-MLP) keep QoS ahead of\n"
               "blind-retry baselines in every crash-rate x recovery-time cell; the\n"
               "audit layer verified ledger conservation through every crash purge.\n";
  return 0;
}
