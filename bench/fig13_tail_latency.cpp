// Fig. 13 — Performance: normalized tail latency (p99), FairSched = 1.00,
// per V_r stream and workload pattern. The paper's headline: v-MLP cuts tail
// latency by up to 50%, most strongly for mid/high-V_r streams.
#include <iostream>
#include <map>

#include "bench_common.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 13 — normalized p99 tail latency (FairSched = 1.00)");

  const exp::StreamKind streams[] = {exp::StreamKind::kLowVr, exp::StreamKind::kMidVr,
                                     exp::StreamKind::kHighVr};
  const loadgen::PatternKind patterns[] = {loadgen::PatternKind::kL1Pulse,
                                           loadgen::PatternKind::kL2Fluctuating,
                                           loadgen::PatternKind::kL3Periodic};

  double best_reduction = 0.0;
  for (auto stream : streams) {
    exp::print_section(std::string("stream: ") + exp::stream_name(stream));
    exp::Table table({"scheme", "L1", "L2", "L3"});
    std::map<std::pair<int, int>, double> p99;
    const auto schemes = exp::all_schemes();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      for (std::size_t p = 0; p < 3; ++p) {
        const auto result = bench::run_with_progress(
            bench::eval_config(schemes[s], patterns[p], stream), exp::stream_name(stream));
        p99[{static_cast<int>(s), static_cast<int>(p)}] = result.run.p99_latency_us;
      }
    }
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::vector<std::string> row{exp::scheme_name(schemes[s])};
      for (std::size_t p = 0; p < 3; ++p) {
        const double norm = exp::normalize(p99[{static_cast<int>(s), static_cast<int>(p)}],
                                           p99[{0, static_cast<int>(p)}]);
        row.push_back(exp::fmt_double(norm, 2));
        if (s == schemes.size() - 1) {  // v-MLP
          best_reduction = std::max(best_reduction, 1.0 - norm);
        }
      }
      table.row(row);
    }
    table.print();
  }

  std::cout << "\nBest v-MLP tail-latency reduction vs FairSched across cells: "
            << exp::fmt_percent(best_reduction, 0) << "\n";
  std::cout << "Paper shape: simple schedulers cluster near 1.0, advanced schedulers\n"
               "below them, v-MLP lowest — with up to ~50% reduction concentrated in\n"
               "the mid/high-V_r streams; low-V_r gaps stay small.\n";
  return 0;
}
