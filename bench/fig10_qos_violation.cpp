// Fig. 10 — Effectiveness: normalized QoS-violation rate.
//
// Five schemes × three V_r request streams × three workload patterns at the
// full 1000 req/s peak; violation rates are normalized to v-MLP (= 1.00), as
// the paper plots them.
#include <iostream>
#include <map>

#include "bench_common.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 10 — normalized QoS violation rate (v-MLP = 1.00)");

  const exp::StreamKind streams[] = {exp::StreamKind::kLowVr, exp::StreamKind::kMidVr,
                                     exp::StreamKind::kHighVr};
  const loadgen::PatternKind patterns[] = {loadgen::PatternKind::kL1Pulse,
                                           loadgen::PatternKind::kL2Fluctuating,
                                           loadgen::PatternKind::kL3Periodic};

  for (auto stream : streams) {
    exp::print_section(std::string("stream: ") + exp::stream_name(stream));
    exp::Table table({"scheme", "L1 (norm)", "L2 (norm)", "L3 (norm)", "L1 raw", "L2 raw",
                      "L3 raw"});

    std::map<std::pair<int, int>, double> raw;  // (scheme idx, pattern idx) -> rate
    const auto schemes = exp::all_schemes();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      for (std::size_t p = 0; p < 3; ++p) {
        const auto result = bench::run_with_progress(
            bench::eval_config(schemes[s], patterns[p], stream), exp::stream_name(stream));
        raw[{static_cast<int>(s), static_cast<int>(p)}] = result.run.qos_violation_rate;
      }
    }
    const std::size_t vmlp_idx = schemes.size() - 1;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::vector<std::string> row{exp::scheme_name(schemes[s])};
      for (std::size_t p = 0; p < 3; ++p) {
        row.push_back(exp::fmt_double(
            exp::normalize(raw[{static_cast<int>(s), static_cast<int>(p)}],
                           raw[{static_cast<int>(vmlp_idx), static_cast<int>(p)}]),
            2));
      }
      for (std::size_t p = 0; p < 3; ++p) {
        row.push_back(exp::fmt_percent(raw[{static_cast<int>(s), static_cast<int>(p)}], 2));
      }
      table.row(row);
    }
    table.print();
  }

  std::cout << "\nPaper shape: v-MLP lowest (1.00); PartProfile closest; simple\n"
               "schedulers and FullProfile clearly higher, with the gap widest for\n"
               "high-V_r streams and the fluctuating patterns L2/L3.\n";
  return 0;
}
