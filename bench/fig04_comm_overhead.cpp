// Fig. 4 — Highly uncertain communication overheads.
//
// Reproduces the paper's two deployments: (a) all services on a single
// machine (docker-compose) and (b) the callee on a separate machine
// (docker swarm). For 10 callee services × 100 requests each, records the
// caller→callee communication time into a frequency heat map (rows = callees,
// columns = latency ranges), with the rare congestion cells visible in the
// high-latency columns. Also prints the Table II C-term classification.
#include <iostream>

#include "common/rng.h"
#include "exp/report.h"
#include "net/comm_model.h"
#include "stats/histogram.h"
#include "workloads/social_network.h"

namespace {

void print_heatmap(const vmlp::net::CommModel& model, vmlp::net::Distance distance,
                   const vmlp::app::Application& sn, const char* title, double max_us) {
  using namespace vmlp;
  std::cout << "\n" << title << " (cell = % of the callee's 100 requests)\n";

  // Columns: latency ranges up to max_us; everything above clamps into the
  // last column (congestion / rerouting events).
  const std::size_t kCallees = 10;
  const std::size_t kCols = 8;
  stats::Histogram2D heat(kCallees, 0.0, max_us, kCols);

  // Deterministic per-callee probe streams.
  net::CommModel probe = model;  // copy: independent sampling
  for (std::size_t callee = 0; callee < kCallees; ++callee) {
    for (int i = 0; i < 100; ++i) {
      heat.add(callee, static_cast<double>(probe.sample_delay(distance)));
    }
  }

  std::vector<std::string> header{"callee"};
  for (std::size_t c = 0; c < kCols; ++c) {
    header.push_back(exp::fmt_double(heat.col_lo(c) / 1000.0, 1) + "-" +
                     exp::fmt_double(heat.col_hi(c) / 1000.0, 1) + "ms");
  }
  exp::Table table(header);
  for (std::size_t callee = 0; callee < kCallees; ++callee) {
    std::vector<std::string> row{sn.services()[callee + 1].name};  // skip nginx (the caller)
    for (std::size_t c = 0; c < kCols; ++c) {
      const double frac = heat.row_fraction(callee, c);
      row.push_back(frac == 0.0 ? "." : exp::fmt_double(frac * 100.0, 0));
    }
    table.row(row);
  }
  table.print();
}

}  // namespace

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 4 — caller→callee communication-time distribution");

  auto sn = workloads::make_social_network();
  net::Topology topology(40, 20);
  net::CommModelParams params;
  net::CommModel model(topology, params, Rng(4));

  print_heatmap(model, net::Distance::kSameMachine, *sn,
                "(a) single machine (docker-compose deployment)", 1600.0);
  print_heatmap(model, net::Distance::kCrossRack, *sn,
                "(b) across machines (docker swarm deployment)", 8000.0);

  std::cout << "\nTable II C-term classification from Var(RTT):\n";
  exp::Table cls({"deployment", "C level"});
  cls.row({"same machine",
           std::to_string(model.estimate_comm_class(net::Distance::kSameMachine, 200, 11))});
  cls.row({"same rack",
           std::to_string(model.estimate_comm_class(net::Distance::kSameRack, 200, 12))});
  cls.row({"cross rack",
           std::to_string(model.estimate_comm_class(net::Distance::kCrossRack, 200, 13))});
  cls.print();

  std::cout << "\nPaper shape: single-machine communication is faster and more stable;\n"
               "cross-machine links are slower with occasional large spikes (the\n"
               "sparse high-latency cells) from congestion or changed routing.\n";
  return 0;
}
