// Shared configuration for the evaluation benches (Figs. 10-14): the paper's
// simulated cluster (100 machines, Section V-B) driven by the Table V request
// streams. Grid benches use a 40 s horizon (the full 100 s only where the
// figure's story needs it) to keep single-core wall time reasonable; the
// peak-time scales with the horizon so every pattern still stresses the
// cluster mid-run.
#pragma once

#include <cstdio>
#include <iostream>

#include "exp/experiment.h"
#include "exp/report.h"

namespace vmlp::bench {

inline exp::ExperimentConfig eval_config(exp::SchemeKind scheme, loadgen::PatternKind pattern,
                                         exp::StreamKind stream, SimTime horizon = 40 * kSec) {
  exp::ExperimentConfig c;
  c.scheme = scheme;
  c.pattern = pattern;
  c.stream = stream;
  c.seed = 2022;
  c.driver.horizon = horizon;
  c.driver.cluster.machine_count = 100;
  c.pattern_params.horizon = horizon;
  c.pattern_params.peak_time = horizon * 2 / 5;  // the "40th second" scaled
  return c;
}

/// Run and echo one-line progress to stderr (benches can take minutes on a
/// single core; silence reads as a hang).
inline exp::ExperimentResult run_with_progress(const exp::ExperimentConfig& config,
                                               const char* label) {
  std::fprintf(stderr, "  running %-12s %s/%s ...\n", exp::scheme_name(config.scheme),
               loadgen::pattern_name(config.pattern), label);
  return exp::run_experiment(config);
}

/// Representative single cell of a fig benchmark at a perf-harness-sized
/// horizon: same cluster/streams as the figure, short enough that a timing
/// run fits in a CI job. Used by perf_harness for wall-clock tracking.
inline exp::ExperimentConfig perf_scenario_config(exp::SchemeKind scheme,
                                                  loadgen::PatternKind pattern,
                                                  exp::StreamKind stream) {
  return eval_config(scheme, pattern, stream, 10 * kSec);
}

}  // namespace vmlp::bench
