// Fig. 9 — Workload patterns in realistic datacenters: L1 (pulse-like peak),
// L2 (fluctuating), L3 (periodic with wide peaks); max rate 1000 req/s over a
// 100 s horizon, main peak at t = 40 s.
#include <iostream>

#include "exp/report.h"
#include "loadgen/patterns.h"

int main() {
  using namespace vmlp;
  exp::print_section("Fig. 9 — workload patterns (req/s over 100 s)");

  const loadgen::PatternParams params;
  for (auto kind : {loadgen::PatternKind::kL1Pulse, loadgen::PatternKind::kL2Fluctuating,
                    loadgen::PatternKind::kL3Periodic}) {
    const auto pattern = loadgen::WorkloadPattern::make(kind, params, 9);
    const auto series = pattern.rate_series(kSec);

    double peak = 0.0, mean = 0.0;
    for (double r : series) {
      peak = std::max(peak, r);
      mean += r;
    }
    mean /= static_cast<double>(series.size());

    std::cout << "\n" << loadgen::pattern_name(kind) << "  mean=" << exp::fmt_double(mean, 0)
              << " req/s  peak=" << exp::fmt_double(peak, 0)
              << " req/s  rate@40s=" << exp::fmt_double(pattern.rate_at(40 * kSec), 0)
              << "  expected arrivals=" << exp::fmt_double(pattern.expected_arrivals(), 0) << "\n  "
              << exp::ascii_series(series, 100) << '\n';
  }

  std::cout << "\nPaper shape: L1 one sharp pulse; L2 keeps fluctuating; L3 repeats wide\n"
               "plateaus; all reach ~1000 req/s with a peak at the 40th second.\n";
  return 0;
}
