#include "workloads/social_network.h"

#include "common/error.h"

namespace vmlp::workloads {

namespace {
// Global time scale: calibrates the benchmark suite so the paper's 1000 req/s
// peak meaningfully loads the 100-machine cluster (Section V-B).
constexpr double kServiceTimeScale = 1.6;
SimDuration scaled_ms(double ms) {
  return static_cast<SimDuration>(ms * kServiceTimeScale * kMsec);
}
}  // namespace

using app::ResourceIntensity;
using app::ServiceClass;
using cluster::ResourceVector;

std::unique_ptr<app::Application> make_social_network(SocialNetworkIds* ids) {
  auto application = std::make_unique<app::Application>("SocialNetwork");
  add_social_network(*application, ids);
  return application;
}

void add_social_network(app::Application& sn, SocialNetworkIds* ids) {

  // 12 microservices — demand {cpu mC, mem MB, io MB/s}, nominal time, {I,S,C}.
  // Write-path services are volatile (media processing, fan-out); read-path
  // services are cache-backed and stable.
  const auto nginx = sn.add_service("nginx", {1200, 256, 120}, scaled_ms(4),
                                    ServiceClass{2, 2, 2}, ResourceIntensity::kCpuIo);
  const auto unique_id = sn.add_service("unique-id", {600, 128, 20}, scaled_ms(3),
                                        ServiceClass{3, 2, 3}, ResourceIntensity::kCpu);
  const auto url_shorten = sn.add_service("url-shorten", {900, 192, 40}, scaled_ms(6),
                                          ServiceClass{3, 3, 2}, ResourceIntensity::kCpu);
  const auto user_mention = sn.add_service("user-mention", {1100, 256, 60}, scaled_ms(8),
                                           ServiceClass{3, 3, 3}, ResourceIntensity::kCpu);
  const auto text = sn.add_service("text", {1800, 384, 50}, scaled_ms(14),
                                   ServiceClass{3, 3, 3}, ResourceIntensity::kCpu);
  const auto media = sn.add_service("media", {2600, 768, 420}, scaled_ms(30),
                                    ServiceClass{3, 3, 3}, ResourceIntensity::kCpuIo);
  const auto user = sn.add_service("user", {900, 256, 80}, scaled_ms(6),
                                   ServiceClass{3, 2, 3}, ResourceIntensity::kCpu);
  const auto compose = sn.add_service("compose-post", {2200, 512, 160}, scaled_ms(22),
                                      ServiceClass{3, 3, 3}, ResourceIntensity::kCpuIo);
  const auto post_storage = sn.add_service("post-storage", {700, 640, 360}, scaled_ms(9),
                                           ServiceClass{2, 2, 2}, ResourceIntensity::kIo);
  const auto home_timeline = sn.add_service("home-timeline", {800, 512, 300}, scaled_ms(8),
                                            ServiceClass{1, 2, 2}, ResourceIntensity::kIo);
  const auto user_timeline = sn.add_service("user-timeline", {800, 512, 280}, scaled_ms(7),
                                            ServiceClass{1, 2, 2}, ResourceIntensity::kIo);
  // social-graph is the rare "less variable" service (Fig. 3(c)): cached
  // adjacency lookups barely notice resource capping.
  const auto social_graph = sn.add_service("social-graph", {600, 448, 240}, scaled_ms(5),
                                           ServiceClass{1, 1, 2}, ResourceIntensity::kIo);

  // compose-post: nginx fans out to the ingestion services; text spawns
  // url-shorten and user-mention; everything joins at compose-post, which
  // persists via post-storage (timeline fan-out is asynchronous in the real
  // benchmark and off the request's critical DAG).
  SocialNetworkIds out{};
  {
    auto b = sn.build_request("compose-post");
    b.node(nginx)               // 0
        .node(text, 1.2)        // 1
        .node(media, 1.0)       // 2
        .node(unique_id)        // 3
        .node(user)             // 4
        .node(url_shorten)      // 5
        .node(user_mention)     // 6
        .node(compose, 1.1)     // 7
        .node(post_storage, 1.4)  // 8: write path does more work than reads
        .edge(0, 1)
        .edge(0, 2)
        .edge(0, 3)
        .edge(0, 4)
        .edge(1, 5)
        .edge(1, 6)
        .edge(2, 7)
        .edge(3, 7)
        .edge(4, 7)
        .edge(5, 7)
        .edge(6, 7)
        .edge(7, 8);
    out.compose_post = b.commit();
  }
  // read-home-timeline: nginx -> home-timeline -> {social-graph, post-storage}.
  {
    auto b = sn.build_request("read-home-timeline");
    b.node(nginx, 0.8)            // 0
        .node(home_timeline)      // 1
        .node(social_graph)       // 2
        .node(post_storage, 0.7)  // 3
        .edge(0, 1)
        .edge(1, 2)
        .edge(1, 3);
    out.read_home_timeline = b.commit();
  }
  // read-user-timeline: nginx -> user-timeline -> post-storage.
  {
    auto b = sn.build_request("read-user-timeline");
    b.node(nginx, 0.8)            // 0
        .node(user_timeline)      // 1
        .node(post_storage, 0.7)  // 2
        .edge(0, 1)
        .edge(1, 2);
    out.read_user_timeline = b.commit();
  }

  // Table V sanity: the computed volatilities must land in the paper's bands.
  VMLP_CHECK_MSG(sn.band(out.compose_post) == app::VolatilityBand::kHigh,
                 "compose-post V_r=" << sn.volatility(out.compose_post) << " not high");
  VMLP_CHECK_MSG(sn.band(out.read_home_timeline) == app::VolatilityBand::kLow,
                 "read-home-timeline V_r=" << sn.volatility(out.read_home_timeline) << " not low");
  VMLP_CHECK_MSG(sn.band(out.read_user_timeline) == app::VolatilityBand::kLow,
                 "read-user-timeline V_r=" << sn.volatility(out.read_user_timeline) << " not low");

  if (ids != nullptr) *ids = out;
}

}  // namespace vmlp::workloads
