// Combined benchmark suite: SocialNetwork + TrainTicket in one application
// model — the paper's evaluation mixes request types across both benchmarks
// within each V_r category (Table V).
#pragma once

#include <memory>

#include "workloads/social_network.h"
#include "workloads/train_ticket.h"

namespace vmlp::workloads {

struct SuiteIds {
  SocialNetworkIds sn;
  TrainTicketIds tt;
};

/// Build the combined application (12 SN + 12 TT microservices, the five
/// request types of Table V).
std::unique_ptr<app::Application> make_benchmark_suite(SuiteIds* ids = nullptr);

}  // namespace vmlp::workloads
