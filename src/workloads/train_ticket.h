// TrainTicket — the industrial open-source benchmark of [46], modelled as 12
// microservices and the two request types the paper evaluates (Table V):
//
//   getCheapest  (advanced search / Advanced Ticketing) — high V_r
//   basicSearch  (Basic Search)                         — mid V_r
//
// The six "representative microservices" of Fig. 2 (order, seat, travel,
// route, price, basic) appear across these DAGs with request-type-specific
// time scales, reproducing the execution-logic heterogeneity the paper
// characterizes.
#pragma once

#include <memory>

#include "app/application.h"

namespace vmlp::workloads {

struct TrainTicketIds {
  RequestTypeId get_cheapest;
  RequestTypeId basic_search;
};

/// Register the TrainTicket services and request types into an existing
/// application (used to compose the combined benchmark suite).
void add_train_ticket(app::Application& application, TrainTicketIds* ids = nullptr);

/// Build the TrainTicket application model.
std::unique_ptr<app::Application> make_train_ticket(TrainTicketIds* ids = nullptr);

}  // namespace vmlp::workloads
