#include "workloads/suite.h"

namespace vmlp::workloads {

std::unique_ptr<app::Application> make_benchmark_suite(SuiteIds* ids) {
  auto application = std::make_unique<app::Application>("SN+TT");
  SuiteIds out{};
  add_social_network(*application, &out.sn);
  add_train_ticket(*application, &out.tt);
  if (ids != nullptr) *ids = out;
  return application;
}

}  // namespace vmlp::workloads
