// SocialNetwork — the academic open-source benchmark of [13] (DeathStarBench),
// modelled as 12 microservices (the Fig. 3(a) set) and three request types:
//
//   compose-post        — high V_r  (Table V)
//   read-home-timeline  — low V_r
//   read-user-timeline  — low V_r
//
// I/S/C classes are tuned so the computed V_r lands in the paper's bands
// while remaining consistent properties of each service across request types.
#pragma once

#include <memory>

#include "app/application.h"

namespace vmlp::workloads {

struct SocialNetworkIds {
  RequestTypeId compose_post;
  RequestTypeId read_home_timeline;
  RequestTypeId read_user_timeline;
};

/// Register the SocialNetwork services and request types into an existing
/// application (used to compose the combined benchmark suite).
void add_social_network(app::Application& application, SocialNetworkIds* ids = nullptr);

/// Build the SocialNetwork application model. `ids` (optional) receives the
/// request-type handles.
std::unique_ptr<app::Application> make_social_network(SocialNetworkIds* ids = nullptr);

}  // namespace vmlp::workloads
