#include "workloads/train_ticket.h"

#include "common/error.h"

namespace vmlp::workloads {

namespace {
// Global time scale: calibrates the benchmark suite so the paper's 1000 req/s
// peak meaningfully loads the 100-machine cluster (Section V-B).
constexpr double kServiceTimeScale = 1.6;
SimDuration scaled_ms(double ms) {
  return static_cast<SimDuration>(ms * kServiceTimeScale * kMsec);
}
}  // namespace

using app::ResourceIntensity;
using app::ServiceClass;

std::unique_ptr<app::Application> make_train_ticket(TrainTicketIds* ids) {
  auto application = std::make_unique<app::Application>("TrainTicket");
  add_train_ticket(*application, ids);
  return application;
}

void add_train_ticket(app::Application& tt, TrainTicketIds* ids) {

  const auto ui = tt.add_service("ui-dashboard", {1000, 256, 100}, scaled_ms(5),
                                 ServiceClass{2, 2, 2}, ResourceIntensity::kCpuIo);
  const auto travel = tt.add_service("travel", {2000, 512, 80}, scaled_ms(20),
                                     ServiceClass{3, 2, 3}, ResourceIntensity::kCpu);
  const auto ticketinfo = tt.add_service("ticketinfo", {700, 384, 260}, scaled_ms(7),
                                         ServiceClass{2, 2, 2}, ResourceIntensity::kIo);
  const auto basic = tt.add_service("basic", {1400, 384, 60}, scaled_ms(10),
                                    ServiceClass{2, 3, 2}, ResourceIntensity::kCpu);
  const auto station = tt.add_service("station", {500, 256, 200}, scaled_ms(4),
                                      ServiceClass{1, 2, 2}, ResourceIntensity::kIo);
  const auto train = tt.add_service("train", {600, 320, 240}, scaled_ms(6),
                                    ServiceClass{2, 2, 2}, ResourceIntensity::kIo);
  const auto route = tt.add_service("route", {1800, 448, 70}, scaled_ms(12),
                                    ServiceClass{3, 3, 2}, ResourceIntensity::kCpu);
  const auto price = tt.add_service("price", {1200, 320, 50}, scaled_ms(8),
                                    ServiceClass{2, 3, 3}, ResourceIntensity::kCpu);
  const auto order = tt.add_service("order", {2400, 768, 380}, scaled_ms(25),
                                    ServiceClass{3, 3, 3}, ResourceIntensity::kCpuIo);
  const auto seat = tt.add_service("seat", {2000, 512, 90}, scaled_ms(15),
                                   ServiceClass{3, 3, 3}, ResourceIntensity::kCpu);
  const auto config = tt.add_service("config", {400, 192, 160}, scaled_ms(3),
                                     ServiceClass{1, 2, 2}, ResourceIntensity::kIo);
  const auto food = tt.add_service("food", {600, 256, 220}, scaled_ms(6),
                                   ServiceClass{2, 2, 2}, ResourceIntensity::kIo);
  (void)config;
  (void)food;

  TrainTicketIds out{};
  // getCheapest — the advanced-search chain: a deep pipeline through the
  // volatile booking services (travel plan → route → seat availability →
  // order history → pricing).
  {
    auto b = tt.build_request("getCheapest");
    b.node(ui)                 // 0
        .node(travel, 1.5)     // 1: advanced plan enumeration
        .node(route, 1.3)      // 2
        .node(seat, 1.2)       // 3
        .node(order, 1.0)      // 4: the Fig. 2 "order" worst case
        .node(price, 1.4)      // 5
        .chain({0, 1, 2, 3, 4, 5});
    out.get_cheapest = b.commit();
  }
  // basicSearch — wider but shallower: ticket info fans out to the stable
  // lookup services, then price joins.
  {
    auto b = tt.build_request("basicSearch");
    b.node(ui)                  // 0
        .node(travel, 0.7)      // 1: basic plan lookup
        .node(ticketinfo)       // 2
        .node(basic)            // 3
        .node(station)          // 4
        .node(train)            // 5
        .node(route, 0.8)       // 6
        .node(price, 0.9)       // 7
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .edge(3, 4)
        .edge(3, 5)
        .edge(3, 6)
        .edge(4, 7)
        .edge(5, 7)
        .edge(6, 7);
    out.basic_search = b.commit();
  }

  VMLP_CHECK_MSG(tt.band(out.get_cheapest) == app::VolatilityBand::kHigh,
                 "getCheapest V_r=" << tt.volatility(out.get_cheapest) << " not high");
  VMLP_CHECK_MSG(tt.band(out.basic_search) == app::VolatilityBand::kMid,
                 "basicSearch V_r=" << tt.volatility(out.basic_search) << " not mid");

  if (ids != nullptr) *ids = out;
}

}  // namespace vmlp::workloads
