// Synthetic Alibaba-style container-utilization trace (Fig. 3(b) substitute).
//
// The paper reads an eight-day production container trace [3] solely to show
// that microservice traffic fluctuates heavily with frequent surges. We
// synthesize a trace with the same structure: a diurnal base load, short-term
// noise, and random traffic surges, at a configurable sampling interval.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace vmlp::workloads {

struct AlibabaTraceParams {
  int days = 8;
  SimDuration sample_interval = 5 * 60 * kSec;  ///< 5-minute samples
  double base_utilization = 0.35;   ///< daily mean CPU utilization
  double diurnal_amplitude = 0.15;  ///< day/night swing
  double noise_sigma = 0.05;        ///< short-term jitter
  double surge_prob = 0.012;        ///< per-sample probability a surge starts
  double surge_peak = 0.92;         ///< utilization a surge jumps to
  int surge_len_lo = 2;             ///< surge duration in samples
  int surge_len_hi = 8;
};

struct AlibabaTrace {
  SimDuration sample_interval = 0;
  std::vector<double> utilization;  ///< one entry per interval, in [0, 1]

  [[nodiscard]] std::size_t sample_count() const { return utilization.size(); }
  /// Number of local peaks above `threshold`.
  [[nodiscard]] std::size_t peaks_above(double threshold) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
};

/// Deterministically generate a trace from the given seed.
AlibabaTrace generate_alibaba_trace(const AlibabaTraceParams& params, std::uint64_t seed);

}  // namespace vmlp::workloads
