#include "workloads/alibaba_trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace vmlp::workloads {

std::size_t AlibabaTrace::peaks_above(double threshold) const {
  std::size_t peaks = 0;
  for (std::size_t i = 1; i + 1 < utilization.size(); ++i) {
    if (utilization[i] > threshold && utilization[i] >= utilization[i - 1] &&
        utilization[i] >= utilization[i + 1]) {
      ++peaks;
    }
  }
  return peaks;
}

double AlibabaTrace::mean() const {
  if (utilization.empty()) return 0.0;
  double s = 0.0;
  for (double u : utilization) s += u;
  return s / static_cast<double>(utilization.size());
}

double AlibabaTrace::max() const {
  return utilization.empty() ? 0.0 : *std::max_element(utilization.begin(), utilization.end());
}

AlibabaTrace generate_alibaba_trace(const AlibabaTraceParams& params, std::uint64_t seed) {
  VMLP_CHECK_MSG(params.days > 0, "trace needs at least one day");
  VMLP_CHECK_MSG(params.sample_interval > 0, "positive sample interval required");
  VMLP_CHECK(params.surge_len_lo >= 1 && params.surge_len_hi >= params.surge_len_lo);

  Rng rng(seed);
  const auto samples_per_day =
      static_cast<std::size_t>((24LL * 3600 * kSec) / params.sample_interval);
  const std::size_t n = samples_per_day * static_cast<std::size_t>(params.days);

  AlibabaTrace trace;
  trace.sample_interval = params.sample_interval;
  trace.utilization.reserve(n);

  int surge_remaining = 0;
  double surge_level = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double day_phase =
        static_cast<double>(i % samples_per_day) / static_cast<double>(samples_per_day);
    // Diurnal curve peaking in the (synthetic) evening.
    const double diurnal =
        params.base_utilization +
        params.diurnal_amplitude * std::sin(2.0 * std::numbers::pi * (day_phase - 0.25));
    double u = diurnal + rng.normal(0.0, params.noise_sigma);

    if (surge_remaining > 0) {
      --surge_remaining;
      u = std::max(u, surge_level + rng.normal(0.0, params.noise_sigma * 0.5));
    } else if (rng.bernoulli(params.surge_prob)) {
      surge_remaining =
          static_cast<int>(rng.uniform_int(params.surge_len_lo, params.surge_len_hi));
      surge_level = params.surge_peak * rng.uniform(0.85, 1.0);
      u = std::max(u, surge_level);
    }
    trace.utilization.push_back(std::clamp(u, 0.0, 1.0));
  }
  return trace;
}

}  // namespace vmlp::workloads
