#include "stats/qos.h"

#include "common/error.h"

namespace vmlp::stats {

void QosTracker::set_slo(RequestTypeId type, SimDuration slo) {
  VMLP_CHECK_MSG(slo > 0, "SLO must be positive");
  slos_[type] = slo;
}

SimDuration QosTracker::slo(RequestTypeId type) const {
  auto it = slos_.find(type);
  VMLP_CHECK_MSG(it != slos_.end(), "no SLO registered for request type " << type.value());
  return it->second;
}

void QosTracker::record_completion(RequestTypeId type, SimDuration latency) {
  ++completed_;
  latencies_.add(static_cast<double>(latency));
  if (latency > slo(type)) ++violations_;
}

void QosTracker::record_unfinished(RequestTypeId type) {
  (void)slo(type);  // validates the type is known
  ++unfinished_;
  ++violations_;
}

double QosTracker::violation_rate() const {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(violations_) / static_cast<double>(n);
}

}  // namespace vmlp::stats
