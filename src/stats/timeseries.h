// Time-bucketed series: accumulates (time, value) observations into fixed
// buckets and reports per-bucket means. Used for the utilization-over-time
// curves of Fig. 11 and the workload-rate curves of Fig. 9.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace vmlp::stats {

class TimeSeries {
 public:
  /// Buckets of width `bucket` covering [0, horizon).
  TimeSeries(SimDuration bucket, SimTime horizon);

  /// Record an observation at time t. Samples outside [0, horizon) are
  /// dropped (and counted) rather than folded into the edge buckets — folding
  /// silently corrupts the first/last bucket means. Under VMLP_AUDIT an
  /// out-of-range sample is a hard error: it means the caller's clock is off.
  void add(SimTime t, double value);
  /// Record an increment (counting semantics: bucket value = sum not mean).
  void increment(SimTime t, double delta = 1.0);

  [[nodiscard]] std::size_t bucket_count() const { return sums_.size(); }
  /// Observations rejected because t < 0 or t >= horizon.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] SimTime bucket_start(std::size_t i) const;
  [[nodiscard]] SimDuration bucket_width() const { return bucket_; }
  /// Mean of observations in bucket i; 0 when the bucket is empty.
  [[nodiscard]] double mean(std::size_t i) const;
  /// Sum of observations in bucket i.
  [[nodiscard]] double sum(std::size_t i) const { return sums_[i]; }
  [[nodiscard]] std::size_t samples(std::size_t i) const { return counts_[i]; }

  /// Per-bucket means, one entry per bucket.
  [[nodiscard]] std::vector<double> mean_series() const;
  /// Per-bucket sums.
  [[nodiscard]] std::vector<double> sum_series() const;

 private:
  /// Bucket for an in-range t, or npos when the sample must be dropped.
  [[nodiscard]] std::size_t index(SimTime t) const;

  static constexpr std::size_t kOutOfRange = static_cast<std::size_t>(-1);

  SimDuration bucket_;
  SimTime horizon_;
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
  std::size_t dropped_ = 0;
};

}  // namespace vmlp::stats
