// Fixed-bin histograms: 1-D for distribution summaries and 2-D for the
// communication-time heat map of Fig. 4 (callee × latency-range frequency).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vmlp::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside clamp to the end bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Fraction of total mass in bin i (0 when empty).
  [[nodiscard]] double fraction(std::size_t i) const;
  /// Index of the bin x falls into (after clamping).
  [[nodiscard]] std::size_t bin_index(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Row-major 2-D frequency table: rows are categories (e.g. callee service),
/// columns are uniform value bins (e.g. latency ranges).
class Histogram2D {
 public:
  Histogram2D(std::size_t rows, double col_lo, double col_hi, std::size_t cols);

  void add(std::size_t row, double x, double weight = 1.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double count(std::size_t row, std::size_t col) const;
  [[nodiscard]] double row_total(std::size_t row) const;
  /// Frequency of (row, col) relative to the row's total, as plotted in Fig. 4.
  [[nodiscard]] double row_fraction(std::size_t row, std::size_t col) const;
  [[nodiscard]] double col_lo(std::size_t col) const;
  [[nodiscard]] double col_hi(std::size_t col) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  double lo_;
  double width_;
  std::vector<double> counts_;  // rows_ * cols_
};

}  // namespace vmlp::stats
