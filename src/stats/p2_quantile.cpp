#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  VMLP_CHECK_MSG(q > 0.0 && q < 1.0, "P2 quantile q=" << q << " outside (0,1)");
}

void P2Quantile::initialize() {
  std::sort(initial_.begin(), initial_.end());
  heights_ = initial_;
  positions_ = {0, 1, 2, 3, 4};
  desired_ = {0, 2 * q_, 4 * q_, 2 + 2 * q_, 4};
  increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
  initialized_ = true;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    initial_[count_++] = x;
    if (count_ == 5) initialize();
    return;
  }
  ++count_;

  // Locate the cell containing x and update extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double n = positions_[i];
      double candidate =
          h + s / (np - nm) *
                  ((n - nm + s) * (hp - h) / (np - n) + (np - n - s) * (h - hm) / (n - nm));
      if (candidate <= hm || candidate >= hp) {
        // Parabolic step would violate monotonicity: fall back to linear.
        const std::size_t j = s > 0 ? i + 1 : i - 1;
        candidate = h + s * (heights_[j] - h) / (positions_[j] - n);
      }
      heights_[i] = candidate;
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return std::nan("");
  if (count_ < 5) {
    // Exact from the buffered samples.
    std::array<double, 5> buf = initial_;
    std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return buf[lo] * (1.0 - frac) + buf[hi] * frac;
  }
  return heights_[2];
}

}  // namespace vmlp::stats
