// P² (piecewise-parabolic) streaming quantile estimator — Jain & Chlamtac,
// CACM 1985. O(1) memory per tracked quantile; used where retaining every
// sample is too expensive (per-service latency quantiles in long-running
// monitors). For evaluation-grade exact quantiles use stats::SampleSet.
#pragma once

#include <array>
#include <cstddef>

namespace vmlp::stats {

class P2Quantile {
 public:
  /// Track the q-quantile, q in (0, 1).
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double quantile() const { return q_; }
  /// Current estimate. Exact while count < 5; marker-based afterwards.
  /// Returns NaN when no samples were added.
  [[nodiscard]] double value() const;

 private:
  void initialize();

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
  std::array<double, 5> initial_{};   // first five samples (pre-init buffer)
  bool initialized_ = false;
};

}  // namespace vmlp::stats
