#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  VMLP_CHECK_MSG(hi > lo && bins > 0, "histogram lo=" << lo << " hi=" << hi << " bins=" << bins);
}

std::size_t Histogram::bin_index(double x) const {
  if (x < lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x, double weight) {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ == 0.0 ? 0.0 : counts_[i] / total_;
}

Histogram2D::Histogram2D(std::size_t rows, double col_lo, double col_hi, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      lo_(col_lo),
      width_((col_hi - col_lo) / static_cast<double>(cols)),
      counts_(rows * cols, 0.0) {
  VMLP_CHECK(rows > 0 && cols > 0 && col_hi > col_lo);
}

void Histogram2D::add(std::size_t row, double x, double weight) {
  VMLP_CHECK_MSG(row < rows_, "histogram2d row " << row << " >= " << rows_);
  std::size_t col;
  if (x < lo_) {
    col = 0;
  } else {
    col = std::min(static_cast<std::size_t>((x - lo_) / width_), cols_ - 1);
  }
  counts_[row * cols_ + col] += weight;
}

double Histogram2D::count(std::size_t row, std::size_t col) const {
  VMLP_CHECK(row < rows_ && col < cols_);
  return counts_[row * cols_ + col];
}

double Histogram2D::row_total(std::size_t row) const {
  VMLP_CHECK(row < rows_);
  double total = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) total += counts_[row * cols_ + c];
  return total;
}

double Histogram2D::row_fraction(std::size_t row, std::size_t col) const {
  const double total = row_total(row);
  return total == 0.0 ? 0.0 : count(row, col) / total;
}

double Histogram2D::col_lo(std::size_t col) const { return lo_ + width_ * static_cast<double>(col); }
double Histogram2D::col_hi(std::size_t col) const {
  return lo_ + width_ * static_cast<double>(col + 1);
}

}  // namespace vmlp::stats
