#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::stats {

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void SampleSet::merge(const SampleSet& other) { add_all(other.samples_); }

void SampleSet::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::quantile(double q) const {
  VMLP_CHECK_MSG(!samples_.empty(), "quantile of empty SampleSet");
  VMLP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q=" << q);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::mean() const {
  VMLP_CHECK_MSG(!samples_.empty(), "mean of empty SampleSet");
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::fraction_above(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(sorted_.end() - it) / static_cast<double>(sorted_.size());
}

double SampleSet::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points(std::size_t n) const {
  VMLP_CHECK(n >= 2);
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace vmlp::stats
