#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace vmlp::stats {

void Summary::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Summary::reset() { *this = Summary{}; }

double Summary::mean() const {
  return count_ == 0 ? std::nan("") : mean_;
}

double Summary::variance() const {
  return count_ == 0 ? std::nan("") : m2_ / static_cast<double>(count_);
}

double Summary::sample_variance() const {
  return count_ < 2 ? std::nan("") : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::cv() const {
  if (count_ == 0 || mean_ == 0.0) return std::nan("");
  return stddev() / mean_;
}

}  // namespace vmlp::stats
