#include "stats/timeseries.h"

#include <algorithm>

#include "common/audit.h"
#include "common/error.h"

namespace vmlp::stats {

TimeSeries::TimeSeries(SimDuration bucket, SimTime horizon) : bucket_(bucket), horizon_(horizon) {
  VMLP_CHECK_MSG(bucket > 0 && horizon > 0, "timeseries bucket=" << bucket << " horizon=" << horizon);
  const auto n = static_cast<std::size_t>((horizon + bucket - 1) / bucket);
  sums_.assign(n, 0.0);
  counts_.assign(n, 0);
}

std::size_t TimeSeries::index(SimTime t) const {
  if (t < 0 || t >= horizon_) {
    VMLP_AUDIT_ASSERT(false, "timeseries sample at t=" << t << " outside [0, " << horizon_
                                                       << ") — caller clock is off");
    return kOutOfRange;
  }
  const auto i = static_cast<std::size_t>(t / bucket_);
  return std::min(i, sums_.size() - 1);
}

void TimeSeries::add(SimTime t, double value) {
  const std::size_t i = index(t);
  if (i == kOutOfRange) {
    ++dropped_;
    return;
  }
  sums_[i] += value;
  counts_[i] += 1;
}

void TimeSeries::increment(SimTime t, double delta) {
  const std::size_t i = index(t);
  if (i == kOutOfRange) {
    ++dropped_;
    return;
  }
  sums_[i] += delta;
}

SimTime TimeSeries::bucket_start(std::size_t i) const {
  return static_cast<SimTime>(i) * bucket_;
}

double TimeSeries::mean(std::size_t i) const {
  return counts_[i] == 0 ? 0.0 : sums_[i] / static_cast<double>(counts_[i]);
}

std::vector<double> TimeSeries::mean_series() const {
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mean(i);
  return out;
}

std::vector<double> TimeSeries::sum_series() const { return sums_; }

}  // namespace vmlp::stats
