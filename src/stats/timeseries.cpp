#include "stats/timeseries.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::stats {

TimeSeries::TimeSeries(SimDuration bucket, SimTime horizon) : bucket_(bucket) {
  VMLP_CHECK_MSG(bucket > 0 && horizon > 0, "timeseries bucket=" << bucket << " horizon=" << horizon);
  const auto n = static_cast<std::size_t>((horizon + bucket - 1) / bucket);
  sums_.assign(n, 0.0);
  counts_.assign(n, 0);
}

std::size_t TimeSeries::index(SimTime t) const {
  if (t < 0) return 0;
  const auto i = static_cast<std::size_t>(t / bucket_);
  return std::min(i, sums_.size() - 1);
}

void TimeSeries::add(SimTime t, double value) {
  const std::size_t i = index(t);
  sums_[i] += value;
  counts_[i] += 1;
}

void TimeSeries::increment(SimTime t, double delta) {
  sums_[index(t)] += delta;
}

SimTime TimeSeries::bucket_start(std::size_t i) const {
  return static_cast<SimTime>(i) * bucket_;
}

double TimeSeries::mean(std::size_t i) const {
  return counts_[i] == 0 ? 0.0 : sums_[i] / static_cast<double>(counts_[i]);
}

std::vector<double> TimeSeries::mean_series() const {
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mean(i);
  return out;
}

std::vector<double> TimeSeries::sum_series() const { return sums_; }

}  // namespace vmlp::stats
