// QoS accounting: per-request-type SLO tracking and violation rates
// (the metric behind Fig. 10).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/types.h"
#include "stats/percentile.h"

namespace vmlp::stats {

class QosTracker {
 public:
  /// Register the SLO (end-to-end latency budget) for a request type.
  void set_slo(RequestTypeId type, SimDuration slo);
  [[nodiscard]] SimDuration slo(RequestTypeId type) const;

  /// Record a completed request with its end-to-end latency.
  void record_completion(RequestTypeId type, SimDuration latency);
  /// Record a request that never finished within the horizon (counts as a
  /// violation).
  void record_unfinished(RequestTypeId type);

  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t violations() const { return violations_; }
  [[nodiscard]] std::size_t unfinished() const { return unfinished_; }
  [[nodiscard]] std::size_t total() const { return completed_ + unfinished_; }

  /// Violation rate over all accounted requests (violating completions plus
  /// unfinished); 0 when nothing was recorded.
  [[nodiscard]] double violation_rate() const;

  /// All end-to-end latencies of completed requests.
  [[nodiscard]] const SampleSet& latencies() const { return latencies_; }

 private:
  std::unordered_map<RequestTypeId, SimDuration> slos_;
  SampleSet latencies_;
  std::size_t completed_ = 0;
  std::size_t violations_ = 0;
  std::size_t unfinished_ = 0;
};

}  // namespace vmlp::stats
