// Streaming moment accumulation (Welford) — numerically stable mean/variance.
#pragma once

#include <cstddef>
#include <limits>

namespace vmlp::stats {

class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Mean of the observed samples; NaN when empty.
  [[nodiscard]] double mean() const;
  /// Population variance; NaN when empty.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); NaN when count < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation (stddev/mean); NaN when mean == 0 or empty.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vmlp::stats
