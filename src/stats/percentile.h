// Exact quantiles over retained samples plus an empirical CDF view.
//
// Evaluation-scale sample counts (≤ a few million doubles) fit comfortably in
// memory, so we keep exact samples rather than sketching; quantile queries
// sort lazily once and reuse the sorted buffer.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace vmlp::stats {

class SampleSet {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);
  void merge(const SampleSet& other);
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear();

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile q in [0,1] with linear interpolation between order statistics.
  /// Throws InvariantError when empty or q out of range.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Fraction of samples strictly greater than threshold.
  [[nodiscard]] double fraction_above(double threshold) const;

  /// Empirical CDF evaluated at x: P(X <= x).
  [[nodiscard]] double cdf(double x) const;

  /// (value, cumulative probability) pairs at n evenly spaced quantiles —
  /// the series the paper plots in its CDF figures.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(std::size_t n) const;

  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace vmlp::stats
