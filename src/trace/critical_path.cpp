#include "trace/critical_path.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::trace {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kNetwork: return "network";
    case Phase::kQueue: return "queue";
    case Phase::kExec: return "exec";
    case Phase::kLostExec: return "lost_exec";
    case Phase::kBackoff: return "backoff";
    case Phase::kHeal: return "heal";
  }
  return "?";
}

SimDuration CriticalPathResult::phase_sum() const {
  SimDuration sum = 0;
  for (const SimDuration d : totals) sum += d;
  return sum;
}

bool CriticalPathResult::on_path(std::uint32_t node) const {
  for (const CriticalStep& s : steps) {
    if (s.span->node == node) return true;
  }
  return false;
}

namespace {

/// Decompose one chain step given the end of its predecessor on the chain.
/// Clamps defensively (synthetic spans may carry the -1 "unknown" sentinel
/// or a startable_at outside [pred_end, start]); driver-recorded spans hit
/// none of the clamps and the result telescopes exactly.
CriticalStep decompose(const Span& span, SimTime pred_end) {
  CriticalStep step;
  step.span = &span;
  SimTime startable = span.startable_at;
  if (startable < pred_end) startable = pred_end;
  if (startable > span.start) startable = span.start;
  const SimDuration network = startable - pred_end;
  SimDuration wait = span.start - startable;
  const SimDuration lost = std::min(span.lost_exec_us, wait);
  wait -= lost;
  const SimDuration backoff = std::min(span.backoff_us, wait);
  wait -= backoff;
  const SimDuration heal = std::min(span.heal_us, wait);
  wait -= heal;
  step.phase[static_cast<std::size_t>(Phase::kNetwork)] = network;
  step.phase[static_cast<std::size_t>(Phase::kQueue)] = wait;
  step.phase[static_cast<std::size_t>(Phase::kExec)] = span.duration();
  step.phase[static_cast<std::size_t>(Phase::kLostExec)] = lost;
  step.phase[static_cast<std::size_t>(Phase::kBackoff)] = backoff;
  step.phase[static_cast<std::size_t>(Phase::kHeal)] = heal;
  return step;
}

}  // namespace

CriticalPathResult extract_critical_path(SimTime arrival, SimTime completion,
                                         const std::vector<const Span*>& spans,
                                         const app::Dag* dag) {
  CriticalPathResult result;
  result.latency = completion - arrival;

  // Index spans by DAG node. The driver records exactly one span per node
  // (the successful attempt); keep the later-recorded one on duplicates so
  // hand-built test inputs behave predictably.
  std::uint32_t max_node = 0;
  for (const Span* s : spans) {
    if (s->node != Span::kNoNode) max_node = std::max(max_node, s->node);
  }
  std::vector<const Span*> by_node(static_cast<std::size_t>(max_node) + 1, nullptr);
  const Span* sink = nullptr;
  for (const Span* s : spans) {
    if (s->node == Span::kNoNode) continue;
    by_node[s->node] = s;
    // Finishing node: latest end, ties to the lower node index.
    if (sink == nullptr || s->end > sink->end ||
        (s->end == sink->end && s->node < sink->node)) {
      sink = s;
    }
  }
  if (sink == nullptr) return result;  // no attributable spans recorded

  // Walk the blocking chain backwards. The visited guard bounds the walk on
  // malformed input (a blocking_parent cycle cannot happen in driver data).
  std::vector<const Span*> chain;
  std::vector<bool> visited(by_node.size(), false);
  const Span* cur = sink;
  while (cur != nullptr && !visited[cur->node]) {
    visited[cur->node] = true;
    chain.push_back(cur);
    if (cur->blocking_parent == Span::kNoNode || cur->blocking_parent >= by_node.size()) break;
    cur = by_node[cur->blocking_parent];
  }
  std::reverse(chain.begin(), chain.end());

  result.steps.reserve(chain.size());
  SimTime pred_end = arrival;
  for (const Span* s : chain) {
    result.steps.push_back(decompose(*s, pred_end));
    pred_end = s->end;
  }
  for (const CriticalStep& step : result.steps) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) result.totals[p] += step.phase[p];
  }

  // Off-path slack: finish-to-unblock gap towards the earliest dependent.
  for (const Span* s : spans) {
    if (s->node == Span::kNoNode || result.on_path(s->node)) continue;
    SimDuration slack = completion - s->end;
    if (dag != nullptr && s->node < dag->node_count()) {
      for (const std::size_t child : dag->children(s->node)) {
        const Span* c = child < by_node.size() ? by_node[child] : nullptr;
        if (c == nullptr) continue;
        const SimTime unblocked = c->startable_at >= 0 ? c->startable_at : c->start;
        slack = std::min(slack, unblocked - s->end);
      }
    }
    result.off_path.push_back(OffPathSlack{s, std::max<SimDuration>(slack, 0)});
  }
  return result;
}

CriticalPathResult extract_critical_path(const RequestRecord& record,
                                         const std::vector<const Span*>& spans,
                                         const app::Dag* dag) {
  VMLP_CHECK_MSG(record.finished(), "critical path of unfinished request " << record.id.value());
  return extract_critical_path(record.arrival, *record.completion, spans, dag);
}

}  // namespace vmlp::trace
