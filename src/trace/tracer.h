// Tracer: collects spans and request lifecycles. The information feeds the
// profile store ("stored as historical traces for future scheduling",
// Section III-D) and the evaluation metrics.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "trace/span.h"

namespace vmlp::trace {

struct RequestRecord {
  RequestId id;
  RequestTypeId type;
  SimTime arrival = 0;
  std::optional<SimTime> completion;

  [[nodiscard]] bool finished() const { return completion.has_value(); }
  /// End-to-end latency. Only meaningful for finished requests — calling it
  /// on an in-flight record used to dereference an empty optional (UB);
  /// callers must check finished() first.
  [[nodiscard]] SimDuration latency() const {
    VMLP_CHECK_MSG(finished(), "latency() on unfinished request " << id.value());
    return *completion - arrival;
  }
};

class Tracer {
 public:
  /// Record a request's arrival. Throws on duplicate ids.
  void on_request_arrival(RequestId id, RequestTypeId type, SimTime t);
  /// Record a request's completion (all sink microservices done).
  void on_request_completion(RequestId id, SimTime t);
  /// Record a finished microservice span.
  void record_span(const Span& span);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const RequestRecord* find_request(RequestId id) const;
  [[nodiscard]] std::size_t request_count() const { return order_.size(); }
  [[nodiscard]] std::size_t completed_count() const { return completed_; }

  /// All request records, in arrival order.
  [[nodiscard]] std::vector<const RequestRecord*> requests() const;

  /// Spans of one request, in start-time order.
  [[nodiscard]] std::vector<const Span*> spans_of(RequestId id) const;

 private:
  std::vector<Span> spans_;
  std::unordered_map<RequestId, RequestRecord> records_;
  std::vector<RequestId> order_;
  std::unordered_map<RequestId, std::vector<std::size_t>> spans_by_request_;
  std::size_t completed_ = 0;
};

}  // namespace vmlp::trace
