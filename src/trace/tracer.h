// Tracer: collects spans and request lifecycles. The information feeds the
// profile store ("stored as historical traces for future scheduling",
// Section III-D) and the evaluation metrics.
//
// Span storage is a flat slot vector threaded with an intrusive per-request
// chain (next_[i] = the request's next span slot), so recording is one
// amortized append with zero per-request containers — the allocation profile
// a streamed 10^6-request run needs. reserve() moves the growth doublings up
// front; release_request() recycles a completed request's slots through a
// free list so scale runs with tracing on keep RSS proportional to the
// in-flight set instead of the whole stream (see bench/perf_harness's traced
// scale leg).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "trace/span.h"

namespace vmlp::trace {

struct RequestRecord {
  RequestId id;
  RequestTypeId type;
  SimTime arrival = 0;
  std::optional<SimTime> completion;

  [[nodiscard]] bool finished() const { return completion.has_value(); }
  /// End-to-end latency. Only meaningful for finished requests — calling it
  /// on an in-flight record used to dereference an empty optional (UB);
  /// callers must check finished() first.
  [[nodiscard]] SimDuration latency() const {
    VMLP_CHECK_MSG(finished(), "latency() on unfinished request " << id.value());
    return *completion - arrival;
  }
};

class Tracer {
 public:
  /// Record a request's arrival. Throws on duplicate ids.
  void on_request_arrival(RequestId id, RequestTypeId type, SimTime t);
  /// Record a request's completion (all sink microservices done).
  void on_request_completion(RequestId id, SimTime t);
  /// Record a finished microservice span.
  void record_span(const Span& span);

  /// Pre-size span storage (slots + chain links) for an expected span count.
  void reserve(std::size_t spans);

  /// Forget one request entirely: its record and all its spans. Span slots
  /// go to the free list for reuse by later requests, which bounds a
  /// streamed run's tracing memory by the in-flight request set. After any
  /// release the flat spans() view is invalid (slots recycle in place);
  /// spans_of()/requests() remain correct for the surviving requests.
  void release_request(RequestId id);

  /// Flat view of every recorded span. Unavailable once release_request()
  /// has recycled slots (throws InvariantError) — streamed runs that release
  /// completed requests consume spans per request before releasing.
  [[nodiscard]] const std::vector<Span>& spans() const {
    VMLP_CHECK_MSG(!released_any_, "spans() after release_request() — slots were recycled");
    return spans_;
  }
  [[nodiscard]] const RequestRecord* find_request(RequestId id) const;
  [[nodiscard]] std::size_t request_count() const { return arrived_; }
  [[nodiscard]] std::size_t completed_count() const { return completed_; }

  /// All live (non-released) request records, in arrival order.
  [[nodiscard]] std::vector<const RequestRecord*> requests() const;

  /// Spans of one request, in start-time order.
  [[nodiscard]] std::vector<const Span*> spans_of(RequestId id) const;

 private:
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

  /// Intrusive chain head/tail for one request's spans.
  struct SpanChain {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
  };

  std::vector<Span> spans_;
  std::vector<std::uint32_t> next_;  ///< per-slot: next span in chain / next free slot
  std::uint32_t free_head_ = kNone;
  bool released_any_ = false;
  std::unordered_map<RequestId, RequestRecord> records_;
  std::vector<RequestId> order_;
  std::unordered_map<RequestId, SpanChain> chains_;
  std::size_t arrived_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace vmlp::trace
