// ProfileStore: the paper's per-microservice history matrix
// s_i = [u_cpu, u_mem, u_io, l, Δt] (Section III-E) — one row per historical
// execution case, keyed by (microservice type, request type).
//
// Algorithm 1 consumes it through two queries:
//   * max_slack            — the Δt column's maximum (low-V_r requests);
//   * quantile_of_recent   — "p latency of x% executions": the p-quantile of
//                            the most recent x% of rows (mid/high V_r).
// Histories are ring buffers so long runs stay O(1) per record.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/resources.h"
#include "common/types.h"

namespace vmlp::trace {

struct ExecutionCase {
  cluster::ResourceVector usage;  ///< resources the case executed with
  double machine_load = 0.0;      ///< the l column: host utilization in [0,1]
  SimDuration exec_time = 0;      ///< the Δt column
};

class ProfileStore {
 public:
  /// New records tolerated before a cached max/quantile refreshes.
  static constexpr std::uint64_t kCacheStaleness = 32;

  /// Keep at most `capacity` most recent cases per (service, request type).
  explicit ProfileStore(std::size_t capacity = 512);

  void record(ServiceTypeId service, RequestTypeId request_type, const ExecutionCase& c);

  [[nodiscard]] std::size_t case_count(ServiceTypeId service, RequestTypeId request_type) const;
  [[nodiscard]] bool has_history(ServiceTypeId service, RequestTypeId request_type) const;

  /// Max Δt across the whole history (the "maximum execution time slack").
  [[nodiscard]] std::optional<SimDuration> max_slack(ServiceTypeId service,
                                                     RequestTypeId request_type) const;
  /// Mean Δt across the whole history.
  [[nodiscard]] std::optional<SimDuration> mean_exec(ServiceTypeId service,
                                                     RequestTypeId request_type) const;
  /// q-quantile (q in [0,1]) of Δt over the most recent max(1, x% ) of cases.
  /// x_percent in (0, 100].
  [[nodiscard]] std::optional<SimDuration> quantile_of_recent(ServiceTypeId service,
                                                              RequestTypeId request_type, double q,
                                                              double x_percent) const;
  /// Mean resource usage across history (profile-driven baselines use this).
  [[nodiscard]] std::optional<cluster::ResourceVector> mean_usage(
      ServiceTypeId service, RequestTypeId request_type) const;

  /// All recorded Δt values (oldest first), for characterization benches.
  [[nodiscard]] std::vector<SimDuration> exec_times(ServiceTypeId service,
                                                    RequestTypeId request_type) const;

 private:
  struct Key {
    ServiceTypeId service;
    RequestTypeId request_type;
    friend bool operator==(const Key& a, const Key& b) {
      return a.service == b.service && a.request_type == b.request_type;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<ServiceTypeId>{}(k.service) * 1000003u ^
             std::hash<RequestTypeId>{}(k.request_type);
    }
  };
  struct QuantileKey {
    int q_milli;
    int x_milli;
    friend bool operator==(const QuantileKey& a, const QuantileKey& b) {
      return a.q_milli == b.q_milli && a.x_milli == b.x_milli;
    }
  };
  struct QuantileKeyHash {
    std::size_t operator()(const QuantileKey& k) const {
      return static_cast<std::size_t>(k.q_milli) * 100003u + static_cast<std::size_t>(k.x_milli);
    }
  };
  struct CachedValue {
    std::uint64_t revision = 0;
    SimDuration value = 0;
  };
  struct Ring {
    std::vector<ExecutionCase> cases;  // capacity-bounded ring
    std::size_t next = 0;              // insertion cursor once full
    bool full = false;
    std::uint64_t revision = 0;        // total records ever
    // O(1) aggregates maintained incrementally.
    double exec_sum = 0.0;
    cluster::ResourceVector usage_sum;
    // Hot queries are answered from these caches, refreshed after
    // kCacheStaleness new records (Algorithm 1 calls them per stage, per
    // planning attempt — recomputation each call would sort the ring).
    mutable CachedValue cached_max;
    mutable std::unordered_map<QuantileKey, CachedValue, QuantileKeyHash> cached_quantiles;
  };

  [[nodiscard]] const Ring* find(ServiceTypeId service, RequestTypeId request_type) const;
  /// Cases in oldest→newest order.
  [[nodiscard]] static std::vector<const ExecutionCase*> ordered(const Ring& ring);

  std::size_t capacity_;
  std::unordered_map<Key, Ring, KeyHash> rings_;
};

}  // namespace vmlp::trace
