// Trace and result export: Zipkin-v2-style JSON spans and CSV tables.
//
// The simulator's tracer plays the role of the paper's Zipkin/Jaeger
// deployment; exporting its spans in the Zipkin JSON shape lets standard
// trace tooling consume simulated runs, and CSV export feeds plotting
// scripts for the figure reproductions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "app/application.h"
#include "trace/tracer.h"

namespace vmlp::trace {

/// Knobs for the Zipkin span export that the tracer itself cannot know.
struct SpanExportOptions {
  /// Rack width of the simulated topology. When positive, each span gets a
  /// `rack` tag (machine / machines_per_rack) next to its `machine` tag so
  /// trace tooling can group lanes the way the cluster is cabled.
  std::size_t machines_per_rack = 0;
  /// Run the critical-path extractor over each finished request and tag its
  /// blocking-chain spans `"critical":"true"`, so Zipkin/Jaeger can filter
  /// straight to the latency-carrying path (same chain the attribution
  /// report blames).
  bool mark_critical = false;
};

/// Write all spans as a Zipkin v2 JSON array:
/// [{"traceId","id","parentId","name","timestamp","duration",
///   "localEndpoint":{...},"tags":{...}}...].
/// Timestamps are simulated microseconds. `parentId` links each span to the
/// latest-finishing DAG parent recorded for the same request (ties break to
/// the lower node index), so Zipkin/Jaeger render the request as a proper
/// tree; root spans and spans recorded without a node index omit it.
void export_spans_json(const Tracer& tracer, const app::Application& application,
                       std::ostream& out, const SpanExportOptions& options = {});

/// Convenience: export to a file. Throws ConfigError on IO failure.
void export_spans_json_file(const Tracer& tracer, const app::Application& application,
                            const std::string& path, const SpanExportOptions& options = {});

/// Write completed requests as CSV:
/// request_id,type,arrival_us,completion_us,latency_us.
void export_requests_csv(const Tracer& tracer, const app::Application& application,
                         std::ostream& out);

void export_requests_csv_file(const Tracer& tracer, const app::Application& application,
                              const std::string& path);

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace vmlp::trace
