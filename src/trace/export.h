// Trace and result export: Zipkin-v2-style JSON spans and CSV tables.
//
// The simulator's tracer plays the role of the paper's Zipkin/Jaeger
// deployment; exporting its spans in the Zipkin JSON shape lets standard
// trace tooling consume simulated runs, and CSV export feeds plotting
// scripts for the figure reproductions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "app/application.h"
#include "trace/tracer.h"

namespace vmlp::trace {

/// Write all spans as a Zipkin v2 JSON array:
/// [{"traceId","id","name","timestamp","duration","localEndpoint":{...}}...].
/// Timestamps are simulated microseconds.
void export_spans_json(const Tracer& tracer, const app::Application& application,
                       std::ostream& out);

/// Convenience: export to a file. Throws ConfigError on IO failure.
void export_spans_json_file(const Tracer& tracer, const app::Application& application,
                            const std::string& path);

/// Write completed requests as CSV:
/// request_id,type,arrival_us,completion_us,latency_us.
void export_requests_csv(const Tracer& tracer, const app::Application& application,
                         std::ostream& out);

void export_requests_csv_file(const Tracer& tracer, const app::Application& application,
                              const std::string& path);

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace vmlp::trace
