#include "trace/profile_store.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::trace {

ProfileStore::ProfileStore(std::size_t capacity) : capacity_(capacity) {
  VMLP_CHECK_MSG(capacity > 0, "profile store capacity must be positive");
}

void ProfileStore::record(ServiceTypeId service, RequestTypeId request_type,
                          const ExecutionCase& c) {
  VMLP_CHECK_MSG(c.exec_time >= 0, "negative execution time");
  Ring& ring = rings_[Key{service, request_type}];
  if (ring.cases.size() < capacity_) {
    ring.cases.push_back(c);
    if (ring.cases.size() == capacity_) {
      ring.full = true;
      ring.next = 0;
    }
  } else {
    const ExecutionCase& evicted = ring.cases[ring.next];
    ring.exec_sum -= static_cast<double>(evicted.exec_time);
    ring.usage_sum -= evicted.usage;
    ring.cases[ring.next] = c;
    ring.next = (ring.next + 1) % capacity_;
  }
  ring.exec_sum += static_cast<double>(c.exec_time);
  ring.usage_sum += c.usage;
  ++ring.revision;
}

const ProfileStore::Ring* ProfileStore::find(ServiceTypeId service,
                                             RequestTypeId request_type) const {
  auto it = rings_.find(Key{service, request_type});
  return it == rings_.end() ? nullptr : &it->second;
}

std::vector<const ExecutionCase*> ProfileStore::ordered(const Ring& ring) {
  std::vector<const ExecutionCase*> out;
  out.reserve(ring.cases.size());
  if (!ring.full) {
    for (const auto& c : ring.cases) out.push_back(&c);
  } else {
    for (std::size_t i = 0; i < ring.cases.size(); ++i) {
      out.push_back(&ring.cases[(ring.next + i) % ring.cases.size()]);
    }
  }
  return out;
}

std::size_t ProfileStore::case_count(ServiceTypeId service, RequestTypeId request_type) const {
  const Ring* ring = find(service, request_type);
  return ring == nullptr ? 0 : ring->cases.size();
}

bool ProfileStore::has_history(ServiceTypeId service, RequestTypeId request_type) const {
  return case_count(service, request_type) > 0;
}

std::optional<SimDuration> ProfileStore::max_slack(ServiceTypeId service,
                                                   RequestTypeId request_type) const {
  const Ring* ring = find(service, request_type);
  if (ring == nullptr || ring->cases.empty()) return std::nullopt;
  if (ring->cached_max.revision == 0 ||
      ring->revision - ring->cached_max.revision >= kCacheStaleness) {
    SimDuration best = 0;
    for (const auto& c : ring->cases) best = std::max(best, c.exec_time);
    ring->cached_max = CachedValue{ring->revision, best};
  }
  return ring->cached_max.value;
}

std::optional<SimDuration> ProfileStore::mean_exec(ServiceTypeId service,
                                                   RequestTypeId request_type) const {
  const Ring* ring = find(service, request_type);
  if (ring == nullptr || ring->cases.empty()) return std::nullopt;
  return static_cast<SimDuration>(
      std::llround(ring->exec_sum / static_cast<double>(ring->cases.size())));
}

std::optional<SimDuration> ProfileStore::quantile_of_recent(ServiceTypeId service,
                                                            RequestTypeId request_type, double q,
                                                            double x_percent) const {
  VMLP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q=" << q);
  VMLP_CHECK_MSG(x_percent > 0.0 && x_percent <= 100.0, "x_percent=" << x_percent);
  const Ring* ring = find(service, request_type);
  if (ring == nullptr || ring->cases.empty()) return std::nullopt;

  const QuantileKey key{static_cast<int>(std::lround(q * 1000.0)),
                        static_cast<int>(std::lround(x_percent * 10.0))};
  auto it = ring->cached_quantiles.find(key);
  if (it != ring->cached_quantiles.end() &&
      ring->revision - it->second.revision < kCacheStaleness) {
    return it->second.value;
  }

  const auto all = ordered(*ring);
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(all.size()) * x_percent / 100.0)));
  std::vector<double> recent;
  recent.reserve(take);
  for (std::size_t i = all.size() - take; i < all.size(); ++i) {
    recent.push_back(static_cast<double>(all[i]->exec_time));
  }
  std::sort(recent.begin(), recent.end());
  SimDuration value;
  if (recent.size() == 1) {
    value = static_cast<SimDuration>(std::llround(recent[0]));
  } else {
    const double pos = q * static_cast<double>(recent.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, recent.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    value = static_cast<SimDuration>(std::llround(recent[lo] * (1.0 - frac) + recent[hi] * frac));
  }
  ring->cached_quantiles[key] = CachedValue{ring->revision, value};
  return value;
}

std::optional<cluster::ResourceVector> ProfileStore::mean_usage(
    ServiceTypeId service, RequestTypeId request_type) const {
  const Ring* ring = find(service, request_type);
  if (ring == nullptr || ring->cases.empty()) return std::nullopt;
  return ring->usage_sum * (1.0 / static_cast<double>(ring->cases.size()));
}

std::vector<SimDuration> ProfileStore::exec_times(ServiceTypeId service,
                                                  RequestTypeId request_type) const {
  std::vector<SimDuration> out;
  const Ring* ring = find(service, request_type);
  if (ring == nullptr) return out;
  for (const auto* c : ordered(*ring)) out.push_back(c->exec_time);
  return out;
}

}  // namespace vmlp::trace
