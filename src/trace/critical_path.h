// Per-request latency attribution: phase decomposition along the DAG
// critical path.
//
// The driver stamps every recorded span with an attribution ledger (see
// trace/span.h): the moment the invocation became startable, the dependency
// edge that bounded it, and the failure time (lost executions, retry
// backoff, relocation/heal) absorbed while it waited. This module walks that
// record backwards from the finishing node to recover the *blocking chain* —
// the one path through the DAG whose phases sum, exactly in simulated time,
// to the request's end-to-end latency:
//
//   latency = Σ over chain spans of
//             (network + queue + lost_exec + backoff + heal + exec)
//
// where per span, with pred_end = blocking parent's finish (request arrival
// for the root):
//   network   = startable_at - pred_end         (message transfer delay)
//   exec      = end - start                     (final attempt's execution)
//   lost_exec / backoff / heal                  (failure phases, recorded)
//   queue     = (start - startable_at) - failure phases   (admission wait)
//
// The telescoping is exact because each link's network phase starts exactly
// where the previous span's `end` left off, and the chain's last span ends
// at the completion timestamp. Asserted in tests and, per completed request,
// under VMLP_AUDIT=1.
//
// Deterministic tie-breaking: the finishing node is the latest-ending span
// (ties to the lower node index), and `blocking_parent` was chosen by the
// driver with the same latest-finish/lowest-index rule — so the extracted
// path is a pure function of the recorded spans, byte-stable across runs.
//
// Everything here is read-only analysis over already-recorded data; it never
// feeds back into scheduling (zero-perturbation contract).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "app/dag.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace vmlp::trace {

/// Causal phases a request spends its end-to-end latency in. Order matters:
/// report tables and the obs `attribution.<band>.*` histogram families index
/// by it, and tools/vmlp_lint.py checks every member appears in the report
/// table (no silent phase drops).
enum class Phase : std::uint8_t {
  kNetwork = 0,  ///< dependency/ingress message transfer
  kQueue,        ///< admission wait: startable but not yet executing
  kExec,         ///< the successful attempt's execution
  kLostExec,     ///< execution voided by crashes/faults/timeouts
  kBackoff,      ///< retry backoff after a lost execution
  kHeal,         ///< relocation/heal wait for a replacement placement
};
inline constexpr std::size_t kPhaseCount = 6;

/// Stable snake_case name ("network", "queue", "exec", "lost_exec",
/// "backoff", "heal") — used for report columns and metric-name suffixes.
[[nodiscard]] const char* phase_name(Phase p);

/// One span on the blocking chain with its phase decomposition. The phase
/// durations sum to `span->end - pred_end` (pred_end = the previous step's
/// span end, or the request arrival for the first step).
struct CriticalStep {
  const Span* span = nullptr;
  std::array<SimDuration, kPhaseCount> phase{};
};

/// A recorded span that was NOT on the blocking chain, with its slack: how
/// long after it finished until the earliest dependent became startable (or
/// until request completion when no dependent span is recorded). Off-path
/// stages with large slack are where the DAG's parallelism absorbed latency.
struct OffPathSlack {
  const Span* span = nullptr;
  SimDuration slack = 0;
};

struct CriticalPathResult {
  /// Blocking chain in execution order (root first, finishing node last).
  std::vector<CriticalStep> steps;
  /// Per-phase totals over the chain, indexed by Phase.
  std::array<SimDuration, kPhaseCount> totals{};
  /// completion - arrival, as passed in.
  SimDuration latency = 0;
  /// Spans off the chain, in recorded order.
  std::vector<OffPathSlack> off_path;

  /// Σ totals — equals `latency` exactly for driver-recorded requests.
  [[nodiscard]] SimDuration phase_sum() const;
  /// True when `node` is on the blocking chain.
  [[nodiscard]] bool on_path(std::uint32_t node) const;
};

/// Extract the blocking chain from one request's recorded spans (one span
/// per DAG node; spans without a node index are ignored). `dag`, when given,
/// refines off-path slack using real child edges; without it slack falls
/// back to (completion - span end). Returns an empty result for span-less
/// requests.
[[nodiscard]] CriticalPathResult extract_critical_path(SimTime arrival, SimTime completion,
                                                       const std::vector<const Span*>& spans,
                                                       const app::Dag* dag = nullptr);

/// Convenience overload for a finished request record.
[[nodiscard]] CriticalPathResult extract_critical_path(const RequestRecord& record,
                                                       const std::vector<const Span*>& spans,
                                                       const app::Dag* dag = nullptr);

}  // namespace vmlp::trace
