// Span: one microservice invocation as observed by distributed tracing
// (the Zipkin/Jaeger analogue).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace vmlp::trace {

struct Span {
  /// "DAG position unknown" — spans recorded by code paths that do not know
  /// the node index (e.g. synthetic test spans) keep this sentinel and export
  /// without a parent link.
  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

  RequestId request;
  RequestTypeId request_type;
  ServiceTypeId service;
  InstanceId instance;
  MachineId machine;
  SimTime start = 0;
  SimTime end = 0;
  /// Index of this invocation's node in the request DAG (last member so the
  /// existing positional aggregate initializers stay valid).
  std::uint32_t node = kNoNode;

  [[nodiscard]] SimDuration duration() const { return end - start; }
};

}  // namespace vmlp::trace
