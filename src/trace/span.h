// Span: one microservice invocation as observed by distributed tracing
// (the Zipkin/Jaeger analogue).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace vmlp::trace {

struct Span {
  /// "DAG position unknown" — spans recorded by code paths that do not know
  /// the node index (e.g. synthetic test spans) keep this sentinel and export
  /// without a parent link.
  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

  RequestId request;
  RequestTypeId request_type;
  ServiceTypeId service;
  InstanceId instance;
  MachineId machine;
  SimTime start = 0;
  SimTime end = 0;
  /// Index of this invocation's node in the request DAG (appended after the
  /// original members so the existing positional aggregate initializers stay
  /// valid — every later field below keeps the same convention).
  std::uint32_t node = kNoNode;

  // --- attribution ledger (filled by the driver; see trace/critical_path.h).
  /// Earliest moment the final (successful) attempt could have started: the
  /// last dependency message's arrival including its sampled network delay,
  /// or arrival + ingress delay for DAG roots. -1 when unknown (synthetic
  /// spans) — the extractor then collapses the wait phases into queue time.
  SimTime startable_at = -1;
  /// DAG parent whose completion message arrived last and therefore bounded
  /// `startable_at` (ties break to the lower parent node index — the same
  /// convention as the Zipkin parentId link). kNoNode for roots.
  std::uint32_t blocking_parent = kNoNode;
  /// Execution time of earlier attempts voided by crashes/faults/timeouts,
  /// clipped to the final wait window [startable_at, start].
  SimDuration lost_exec_us = 0;
  /// Retry backoff waited inside the final wait window.
  SimDuration backoff_us = 0;
  /// Relocation/heal time (unplaced or post-backoff, waiting for a new
  /// placement) inside the final wait window.
  SimDuration heal_us = 0;

  [[nodiscard]] SimDuration duration() const { return end - start; }
};

}  // namespace vmlp::trace
