// Span: one microservice invocation as observed by distributed tracing
// (the Zipkin/Jaeger analogue).
#pragma once

#include "common/types.h"

namespace vmlp::trace {

struct Span {
  RequestId request;
  RequestTypeId request_type;
  ServiceTypeId service;
  InstanceId instance;
  MachineId machine;
  SimTime start = 0;
  SimTime end = 0;

  [[nodiscard]] SimDuration duration() const { return end - start; }
};

}  // namespace vmlp::trace
