#include "trace/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"

namespace vmlp::trace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void export_spans_json(const Tracer& tracer, const app::Application& application,
                       std::ostream& out) {
  out << "[";
  bool first = true;
  for (const auto& span : tracer.spans()) {
    if (!first) out << ",";
    first = false;
    const auto& svc = application.service(span.service);
    const auto& req = application.request(span.request_type);
    out << "\n  {\"traceId\":\"" << span.request.value() << "\""
        << ",\"id\":\"" << span.instance.value() << "\""
        << ",\"name\":\"" << json_escape(svc.name) << "\""
        << ",\"kind\":\"SERVER\""
        << ",\"timestamp\":" << span.start << ",\"duration\":" << span.duration()
        << ",\"localEndpoint\":{\"serviceName\":\"" << json_escape(svc.name)
        << "\",\"ipv4\":\"10.0." << span.machine.value() / 256 << "."
        << span.machine.value() % 256 << "\"}"
        << ",\"tags\":{\"requestType\":\"" << json_escape(req.name()) << "\",\"machine\":\""
        << span.machine.value() << "\"}}";
  }
  out << "\n]\n";
}

void export_spans_json_file(const Tracer& tracer, const app::Application& application,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  export_spans_json(tracer, application, out);
  if (!out) throw ConfigError("write failed: " + path);
}

void export_requests_csv(const Tracer& tracer, const app::Application& application,
                         std::ostream& out) {
  out << "request_id,type,arrival_us,completion_us,latency_us\n";
  for (const auto* rec : tracer.requests()) {
    out << rec->id.value() << "," << application.request(rec->type).name() << ","
        << rec->arrival << ",";
    if (rec->finished()) {
      out << *rec->completion << "," << rec->latency();
    } else {
      out << ",";
    }
    out << "\n";
  }
}

void export_requests_csv_file(const Tracer& tracer, const app::Application& application,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  export_requests_csv(tracer, application, out);
  if (!out) throw ConfigError("write failed: " + path);
}

}  // namespace vmlp::trace
