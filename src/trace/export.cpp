#include "trace/export.h"

#include <fstream>
#include <ostream>
#include <unordered_set>

#include "common/error.h"
#include "common/json.h"
#include "trace/critical_path.h"

namespace vmlp::trace {

std::string json_escape(const std::string& s) { return vmlp::json_escape(s); }

namespace {

/// The span this one should point at as its Zipkin parent: among the
/// request's recorded spans, the DAG parent that finished last (the edge the
/// start actually waited on); ties break to the lower node index. Null for
/// roots, spans without a node index, or parents not (yet) recorded.
const Span* parent_span(const Tracer& tracer, const app::Application& application,
                        const Span& span) {
  if (span.node == Span::kNoNode) return nullptr;
  const auto& dag = application.request(span.request_type).dag();
  if (span.node >= dag.node_count()) return nullptr;
  const auto& parents = dag.parents(span.node);
  if (parents.empty()) return nullptr;
  const Span* best = nullptr;
  for (const Span* candidate : tracer.spans_of(span.request)) {
    if (candidate->node == Span::kNoNode) continue;
    bool is_parent = false;
    for (std::size_t p : parents) is_parent = is_parent || candidate->node == p;
    if (!is_parent) continue;
    if (best == nullptr || candidate->end > best->end ||
        (candidate->end == best->end && candidate->node < best->node)) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace

void export_spans_json(const Tracer& tracer, const app::Application& application,
                       std::ostream& out, const SpanExportOptions& options) {
  // Blocking-chain membership per finished request, when requested: the set
  // of spans whose phases carry the end-to-end latency.
  std::unordered_set<const Span*> critical;
  if (options.mark_critical) {
    for (const RequestRecord* rec : tracer.requests()) {
      if (!rec->finished()) continue;
      const app::Dag& dag = application.request(rec->type).dag();
      const auto path = extract_critical_path(*rec, tracer.spans_of(rec->id), &dag);
      for (const CriticalStep& step : path.steps) critical.insert(step.span);
    }
  }

  out << "[";
  bool first = true;
  for (const auto& span : tracer.spans()) {
    if (!first) out << ",";
    first = false;
    const auto& svc = application.service(span.service);
    const auto& req = application.request(span.request_type);
    out << "\n  {\"traceId\":\"" << span.request.value() << "\""
        << ",\"id\":\"" << span.instance.value() << "\"";
    if (const Span* parent = parent_span(tracer, application, span); parent != nullptr) {
      out << ",\"parentId\":\"" << parent->instance.value() << "\"";
    }
    out << ",\"name\":\"" << json_escape(svc.name) << "\""
        << ",\"kind\":\"SERVER\""
        << ",\"timestamp\":" << span.start << ",\"duration\":" << span.duration()
        << ",\"localEndpoint\":{\"serviceName\":\"" << json_escape(svc.name)
        << "\",\"ipv4\":\"10.0." << span.machine.value() / 256 << "."
        << span.machine.value() % 256 << "\"}"
        << ",\"tags\":{\"requestType\":\"" << json_escape(req.name()) << "\",\"machine\":\""
        << span.machine.value() << "\"";
    if (options.machines_per_rack > 0) {
      out << ",\"rack\":\"" << span.machine.value() / options.machines_per_rack << "\"";
    }
    if (critical.count(&span) != 0) out << ",\"critical\":\"true\"";
    out << "}}";
  }
  out << "\n]\n";
}

void export_spans_json_file(const Tracer& tracer, const app::Application& application,
                            const std::string& path, const SpanExportOptions& options) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  export_spans_json(tracer, application, out, options);
  if (!out) throw ConfigError("write failed: " + path);
}

void export_requests_csv(const Tracer& tracer, const app::Application& application,
                         std::ostream& out) {
  out << "request_id,type,arrival_us,completion_us,latency_us\n";
  for (const auto* rec : tracer.requests()) {
    out << rec->id.value() << "," << application.request(rec->type).name() << ","
        << rec->arrival << ",";
    if (rec->finished()) {
      out << *rec->completion << "," << rec->latency();
    } else {
      out << ",";
    }
    out << "\n";
  }
}

void export_requests_csv_file(const Tracer& tracer, const app::Application& application,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  export_requests_csv(tracer, application, out);
  if (!out) throw ConfigError("write failed: " + path);
}

}  // namespace vmlp::trace
