#include "trace/tracer.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::trace {

void Tracer::on_request_arrival(RequestId id, RequestTypeId type, SimTime t) {
  auto [it, inserted] = records_.emplace(id, RequestRecord{id, type, t, std::nullopt});
  VMLP_CHECK_MSG(inserted, "duplicate request id " << id.value());
  (void)it;
  order_.push_back(id);
  ++arrived_;
}

void Tracer::on_request_completion(RequestId id, SimTime t) {
  auto it = records_.find(id);
  VMLP_CHECK_MSG(it != records_.end(), "completion of unknown request " << id.value());
  VMLP_CHECK_MSG(!it->second.completion.has_value(), "request " << id.value() << " completed twice");
  VMLP_CHECK_MSG(t >= it->second.arrival, "completion precedes arrival");
  it->second.completion = t;
  ++completed_;
}

void Tracer::record_span(const Span& span) {
  VMLP_CHECK_MSG(span.end >= span.start, "span ends before it starts");
  std::uint32_t slot;
  if (free_head_ != kNone) {
    // Reuse a released slot: steady-state streamed runs stop growing here.
    slot = free_head_;
    free_head_ = next_[slot];
    spans_[slot] = span;
  } else {
    VMLP_CHECK_MSG(spans_.size() < kNone, "span slot index overflow");
    slot = static_cast<std::uint32_t>(spans_.size());
    spans_.push_back(span);
    next_.push_back(kNone);
  }
  next_[slot] = kNone;
  SpanChain& chain = chains_[span.request];
  if (chain.head == kNone) {
    chain.head = slot;
  } else {
    next_[chain.tail] = slot;
  }
  chain.tail = slot;
}

void Tracer::reserve(std::size_t spans) {
  spans_.reserve(spans);
  next_.reserve(spans);
}

void Tracer::release_request(RequestId id) {
  if (auto it = chains_.find(id); it != chains_.end()) {
    released_any_ = true;
    std::uint32_t slot = it->second.head;
    while (slot != kNone) {
      const std::uint32_t next = next_[slot];
      next_[slot] = free_head_;
      free_head_ = slot;
      slot = next;
    }
    chains_.erase(it);
  }
  records_.erase(id);
}

const RequestRecord* Tracer::find_request(RequestId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const RequestRecord*> Tracer::requests() const {
  std::vector<const RequestRecord*> out;
  out.reserve(order_.size());
  for (RequestId id : order_) {
    if (auto it = records_.find(id); it != records_.end()) out.push_back(&it->second);
  }
  return out;
}

std::vector<const Span*> Tracer::spans_of(RequestId id) const {
  std::vector<const Span*> out;
  auto it = chains_.find(id);
  if (it == chains_.end()) return out;
  for (std::uint32_t slot = it->second.head; slot != kNone; slot = next_[slot]) {
    out.push_back(&spans_[slot]);
  }
  std::sort(out.begin(), out.end(),
            [](const Span* a, const Span* b) { return a->start < b->start; });
  return out;
}

}  // namespace vmlp::trace
