#include "trace/tracer.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::trace {

void Tracer::on_request_arrival(RequestId id, RequestTypeId type, SimTime t) {
  auto [it, inserted] = records_.emplace(id, RequestRecord{id, type, t, std::nullopt});
  VMLP_CHECK_MSG(inserted, "duplicate request id " << id.value());
  (void)it;
  order_.push_back(id);
}

void Tracer::on_request_completion(RequestId id, SimTime t) {
  auto it = records_.find(id);
  VMLP_CHECK_MSG(it != records_.end(), "completion of unknown request " << id.value());
  VMLP_CHECK_MSG(!it->second.completion.has_value(), "request " << id.value() << " completed twice");
  VMLP_CHECK_MSG(t >= it->second.arrival, "completion precedes arrival");
  it->second.completion = t;
  ++completed_;
}

void Tracer::record_span(const Span& span) {
  VMLP_CHECK_MSG(span.end >= span.start, "span ends before it starts");
  spans_by_request_[span.request].push_back(spans_.size());
  spans_.push_back(span);
}

const RequestRecord* Tracer::find_request(RequestId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const RequestRecord*> Tracer::requests() const {
  std::vector<const RequestRecord*> out;
  out.reserve(order_.size());
  for (RequestId id : order_) out.push_back(&records_.at(id));
  return out;
}

std::vector<const Span*> Tracer::spans_of(RequestId id) const {
  std::vector<const Span*> out;
  auto it = spans_by_request_.find(id);
  if (it == spans_by_request_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&spans_[i]);
  std::sort(out.begin(), out.end(),
            [](const Span* a, const Span* b) { return a->start < b->start; });
  return out;
}

}  // namespace vmlp::trace
