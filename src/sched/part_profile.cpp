#include "sched/part_profile.h"

#include <algorithm>

#include "sched/common.h"
#include "sched/driver.h"

namespace vmlp::sched {

void PartProfile::on_request_arrival(RequestId id) {
  ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return;
  for (std::size_t node : ar->runtime.ready_nodes()) ready_.emplace_back(id, node);
  drain();
}

void PartProfile::on_node_unblocked(RequestId id, std::size_t node) {
  ready_.emplace_back(id, node);
  drain();
}

void PartProfile::on_tick() { drain(); }

SimDuration PartProfile::remaining_path_estimate(RequestId id, std::size_t from_node) const {
  // Profiled mean time of the longest remaining dependency path rooted at
  // from_node (partial profiling: per-stage means, no interference model).
  ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return 0;
  const auto& type = ar->runtime.type();

  const std::uint64_t cache_key =
      (static_cast<std::uint64_t>(type.id().value()) << 32) | static_cast<std::uint64_t>(from_node);
  auto cached = path_cache_.find(cache_key);
  if (cached != path_cache_.end() &&
      driver_->now() - cached->second.computed_at < kPathCacheTtl) {
    return cached->second.value;
  }
  const auto order = type.dag().topo_order();
  std::vector<SimDuration> longest(type.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t n = *it;
    SimDuration tail = 0;
    for (std::size_t child : type.dag().children(n)) tail = std::max(tail, longest[child]);
    longest[n] = estimate_mean_exec(*driver_, type, n) + tail;
  }
  // Populate the cache for every node of this type while we have the array.
  for (std::size_t n = 0; n < type.size(); ++n) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(type.id().value()) << 32) | static_cast<std::uint64_t>(n);
    path_cache_[key] = CachedPath{driver_->now(), longest[n]};
  }
  return longest[from_node];
}

void PartProfile::drain() {
  // Least slack first; slack is computed once per entry (decorate-sort).
  std::vector<std::tuple<SimDuration, RequestId, std::size_t>> keyed;
  keyed.reserve(ready_.size());
  for (const auto& [id, node] : ready_) {
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr) continue;
    const SimDuration elapsed = driver_->now() - ar->runtime.arrival();
    const SimDuration slack =
        ar->runtime.type().slo() - elapsed - remaining_path_estimate(id, node);
    keyed.emplace_back(slack, id, node);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return std::get<0>(a) < std::get<0>(b); });

  std::vector<std::pair<RequestId, std::size_t>> deferred;
  std::size_t consecutive_failures = 0;
  for (const auto& [slack, id, node] : keyed) {
    (void)slack;
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr || ar->nodes[node].placed) continue;
    const auto& req_node = ar->runtime.type().nodes()[node];
    const auto& svc = driver_->application().service(req_node.service);
    const SimDuration est = estimate_mean_exec(*driver_, ar->runtime.type(), node);

    // Once several admissions failed in a row, the cluster is saturated —
    // defer the rest without probing every machine for each of them.
    MachineId machine;
    if (consecutive_failures < 4) {
      machine = machine_first_fit(driver_->cluster(), driver_->now(), est, svc.demand);
    }
    if (machine.valid()) {
      consecutive_failures = 0;
      driver_->place(id, node, machine, svc.demand, driver_->now(), est);
    } else {
      ++consecutive_failures;
      deferred.emplace_back(id, node);  // admission control: wait for capacity
    }
  }
  ready_ = std::move(deferred);
}

}  // namespace vmlp::sched
