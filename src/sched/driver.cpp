#include "sched/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/audit.h"
#include "common/error.h"
#include "common/log.h"

namespace vmlp::sched {

namespace {
// Index of running instances per machine, kept in the driver via this helper
// key type (declared here to keep the header lean).

/// Scoped host-clock accumulator around a scheduler callback. Only the
/// outermost scope on a callback chain accumulates, so a policy that
/// synchronously triggers another callback (place -> immediate start ->
/// on_node_started) is not double-counted. Host time never influences
/// simulation decisions — it only feeds RunResult::policy_seconds and, when
/// telemetry is on, the collector's host-clock profiling slices (which only
/// the Perfetto exporter reads; no byte-compared output includes them).
class PolicyScope {
 public:
  PolicyScope(std::int64_t& acc, int& depth, obs::Collector* obs, obs::PolicyCallback kind,
              std::chrono::steady_clock::time_point epoch)
      : acc_(acc), depth_(depth), obs_(obs), kind_(kind), epoch_(epoch) {
    if (depth_++ == 0) start_ = std::chrono::steady_clock::now();
  }
  ~PolicyScope() {
    if (--depth_ == 0) {
      const auto ns = [](std::chrono::steady_clock::duration d) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
      };
      const auto end = std::chrono::steady_clock::now();
      const std::int64_t dur = ns(end - start_);
      acc_ += dur;
      if (obs_ != nullptr) obs_->policy_slice(kind_, ns(start_ - epoch_), dur);
    }
  }
  PolicyScope(const PolicyScope&) = delete;
  PolicyScope& operator=(const PolicyScope&) = delete;

 private:
  std::int64_t& acc_;
  int& depth_;
  obs::Collector* obs_;
  obs::PolicyCallback kind_;
  std::chrono::steady_clock::time_point epoch_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

SimulationDriver::SimulationDriver(const app::Application& application, IScheduler& scheduler,
                                   DriverParams params)
    : app_(application),
      scheduler_(scheduler),
      params_(params),
      cluster_(params.cluster),
      topology_(params.cluster.machine_count, params.machines_per_rack),
      comm_(topology_, params.comm, Rng(params.seed).fork("comm")),
      exec_(params.exec),
      monitor_(cluster_, params.monitor_period, params.monitor_bucket, params.horizon),
      rng_(Rng(params.seed).fork("exec")),
      rng_interference_(Rng(params.seed).fork("interference")),
      rng_failure_(Rng(params.seed).fork("failure-exec")),
      failure_schedule_(build_failure_schedule(params.failure, params.seed, params.horizon,
                                               params.cluster.machine_count)) {
  VMLP_CHECK_MSG(params.horizon > 0 && params.tick > 0, "bad driver timing params");
  if (params_.obs.enabled) {
    // Telemetry is strictly write-only: the collector never feeds a decision,
    // an RNG draw, or any simulated state, so attaching it cannot perturb the
    // run (determinism_check claim 6 pins this byte-for-byte).
    obs::Params obs_params = params_.obs;
    obs_params.topology_cells = cluster_.cells().cell_count();
    obs_ = std::make_unique<obs::Collector>(obs_params);
    engine_.set_observer(obs_.get());
    for (std::size_t m = 0; m < cluster_.machine_count(); ++m) {
      cluster_.machine(MachineId(static_cast<std::uint32_t>(m))).ledger().set_observer(obs_.get());
    }
  }
  volatility_cache_.resize(app_.request_count(), 0.0);
  for (const auto& rt : app_.requests()) {
    qos_.set_slo(rt.id(), rt.slo());
    volatility_cache_[rt.id().value()] = app_.volatility(rt.id());
  }
  if (params_.profile_warmup > 0) warmup_profiles();
}

void SimulationDriver::warmup_profiles() {
  // Offline characterization runs (the paper's historical traces): each
  // (service, request type) pair executed with abundant resources under a
  // random background load — exactly what the workload-characterization
  // cluster of Table IV.A produced.
  Rng rng = Rng(params_.seed).fork("warmup");
  for (const auto& rt : app_.requests()) {
    for (const auto& node : rt.nodes()) {
      const auto& type = app_.service(node.service);
      for (std::size_t i = 0; i < params_.profile_warmup; ++i) {
        trace::ExecutionCase c;
        c.usage = type.demand;
        c.machine_load = rng.uniform(0.05, 0.35);
        c.exec_time = exec_.sample_duration(type, node.time_scale, type.demand, rng);
        profiles_.record(node.service, rt.id(), c);
      }
    }
  }
}

void SimulationDriver::load_arrivals(const std::vector<loadgen::Arrival>& arrivals) {
  // Arrival events dominate the initial pending set; pre-sizing the pool puts
  // the growth doublings up front (and inside the shard arena when bound)
  // instead of spread across the first half of the run.
  engine_.reserve(arrivals.size() + arrivals.size() / 4 + 64);
  if (params_.trace_spans && !params_.trace_release_completed) {
    // Same idea for span slots: one span per executed node, estimated from
    // the suite's mean DAG width. Release mode stays small by recycling.
    std::size_t node_sum = 0;
    for (const auto& rt : app_.requests()) node_sum += rt.size();
    if (app_.request_count() > 0) {
      tracer_.reserve(arrivals.size() * (node_sum / app_.request_count() + 1));
    }
  }
  for (const auto& a : arrivals) {
    VMLP_CHECK_MSG(a.time >= 0 && a.time < params_.horizon, "arrival outside horizon");
    engine_.schedule_at(a.time, [this, type = a.type] { on_arrival(type); });
  }
}

void SimulationDriver::stream_arrivals(loadgen::ArrivalStream stream) {
  VMLP_CHECK_MSG(!arrival_stream_.has_value(), "stream_arrivals() called twice");
  VMLP_CHECK_MSG(!ran_, "stream_arrivals() after run()");
  arrival_stream_.emplace(std::move(stream));
  schedule_next_stream_arrival();
}

void SimulationDriver::schedule_next_stream_arrival() {
  const auto next = arrival_stream_->next();
  if (!next.has_value()) return;  // stream drained; no more arrival events
  VMLP_CHECK_MSG(next->time >= 0 && next->time < params_.horizon, "arrival outside horizon");
  // Chain: pull the successor from inside this arrival's event, so exactly
  // one un-fired arrival is pending at any moment (O(1) arrival state).
  engine_.schedule_at(next->time, [this, type = next->type] {
    schedule_next_stream_arrival();
    on_arrival(type);
  });
}

void SimulationDriver::on_arrival(RequestTypeId type) {
  const RequestId rid(next_request_++);
  const auto& rt = app_.request(type);
  auto ar = std::make_unique<ActiveRequest>(rt, rid, engine_.now());
  requests_.emplace(rid, std::move(ar));
  arrival_order_.push_back(rid);
  tracer_.on_request_arrival(rid, type, engine_.now());
  ++arrived_;
  {
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kArrival,
                          policy_epoch_);
    scheduler_.on_request_arrival(rid);
  }
}

ActiveRequest* SimulationDriver::find_request(RequestId id) {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : it->second.get();
}

std::vector<RequestId> SimulationDriver::active_requests() const {
  std::vector<RequestId> out;
  for (RequestId id : arrival_order_) {
    if (requests_.count(id) > 0) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<RequestId, std::size_t>> SimulationDriver::running_on(
    MachineId machine) const {
  auto it = running_on_.find(machine.value());
  if (it == running_on_.end()) return {};
  std::vector<std::pair<RequestId, std::size_t>> out;
  out.reserve(it->second.size());
  for (const RunningRef& r : it->second) out.emplace_back(r.id, r.node);
  return out;
}

SimDuration SimulationDriver::expected_comm(MachineId a, MachineId b) const {
  const auto& p = params_.comm;
  switch (topology_.distance(a, b)) {
    case net::Distance::kSameMachine:
      return static_cast<SimDuration>(p.same_machine_mean_us);
    case net::Distance::kSameRack:
      return static_cast<SimDuration>(p.same_rack_mean_us);
    case net::Distance::kCrossRack:
    default:
      return static_cast<SimDuration>(p.cross_rack_mean_us);
  }
}

double SimulationDriver::volatility(RequestTypeId type) const {
  VMLP_CHECK_MSG(type.value() < volatility_cache_.size(), "unknown request type");
  return volatility_cache_[type.value()];
}

void SimulationDriver::audit_machine_conservation(MachineId machine) const {
  if (!audit::enabled()) return;
  // Collect the live reservation windows the driver believes exist on this
  // machine, clipped to the future (past segments are historical record).
  const SimTime now = engine_.now();
  struct Window {
    SimTime begin;
    SimTime end;
    cluster::ResourceVector res;
  };
  std::vector<Window> windows;
  std::vector<SimTime> probes{now};
  // Walk requests in id order so the float sum below accumulates in a
  // deterministic order (audit runs must not depend on hash-table history).
  std::vector<RequestId> ids;
  ids.reserve(requests_.size());
  for (const auto& entry : requests_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  for (const RequestId rid : ids) {
    const ActiveRequest* ar = requests_.at(rid).get();
    for (const DriverNode& dn : ar->nodes) {
      if (!dn.has_reservation || !(dn.machine == machine)) continue;
      const SimTime lo = std::max(dn.reserved_begin, now);
      if (lo >= dn.reserved_end) continue;
      windows.push_back(Window{lo, dn.reserved_end, dn.limit});
      probes.push_back(lo);
    }
  }
  const auto& ledger = cluster_.machine(machine).ledger();
  for (const SimTime t : probes) {
    cluster::ResourceVector expected;
    for (const Window& w : windows) {
      if (w.begin <= t && t < w.end) expected += w.res;
    }
    const cluster::ResourceVector actual = ledger.usage_at(t);
    const cluster::ResourceVector diff = actual - expected;
    // Tolerance absorbs float residue from repeated reserve/release cycles.
    constexpr double kTol = 1e-3;
    VMLP_AUDIT_ASSERT(std::abs(diff.cpu) <= kTol && std::abs(diff.mem) <= kTol &&
                          std::abs(diff.io) <= kTol,
                      "capacity conservation violated on machine "
                          << machine.value() << " at t=" << t << ": ledger "
                          << actual.to_string() << " != tracked " << expected.to_string());
  }
}

void SimulationDriver::place(RequestId id, std::size_t node, MachineId machine,
                             const cluster::ResourceVector& limit, SimTime planned_start,
                             SimDuration reserve_duration) {
  ActiveRequest* ar = find_request(id);
  VMLP_CHECK_MSG(ar != nullptr, "place() on unknown request " << id.value());
  VMLP_CHECK_MSG(node < ar->nodes.size(), "node index out of range");
  DriverNode& dn = ar->nodes[node];
  VMLP_CHECK_MSG(!dn.placed && !dn.done, "node already placed");
  VMLP_CHECK_MSG(planned_start >= engine_.now(), "planned start in the past");
  VMLP_CHECK_MSG(reserve_duration > 0, "reserve_duration must be positive");

  cluster::Machine& m = cluster_.machine(machine);
  VMLP_CHECK_MSG(m.up(), "place() on down machine " << machine.value()
                                                    << " — schedulers must skip crash windows");
  dn.placed = true;
  dn.machine = machine;
  dn.limit = limit.clamp_to(m.capacity());
  VMLP_CHECK_MSG(!dn.limit.near_zero(), "placement with a zero resource limit");
  dn.planned_start = planned_start;
  dn.reserve_duration = reserve_duration;
  VMLP_AUDIT_ASSERT(!dn.has_reservation,
                    "placing node " << node << " of request " << id.value()
                                    << " that already holds a reservation (double-booking)");
  dn.reserved_begin = planned_start;
  dn.reserved_end = planned_start + reserve_duration;
  dn.has_reservation = true;
  m.ledger().reserve(dn.reserved_begin, dn.reserved_end, dn.limit);
  cluster_.cells().note_mutation(machine, m);
  audit_machine_conservation(machine);
  ++counters_.placements;
  cluster_.cells().add_placement(machine);

  const InstanceId iid(next_instance_++);
  dn.instance = iid;
  ar->runtime.mark_placed(node, machine, iid, planned_start);

  // Attribution ledger: a re-placement closes the open heal interval (time
  // since the placement was lost / the retry backoff elapsed).
  if (params_.trace_spans && dn.heal_from >= 0) {
    if (engine_.now() > dn.heal_from) {
      dn.phase_segs.push_back(PhaseSeg{trace::Phase::kHeal, dn.heal_from, engine_.now()});
    }
    dn.heal_from = -1;
  }

  const bool is_root = ar->runtime.type().dag().parents(node).empty();
  const bool deps_met = ar->runtime.node(node).pending_parents == 0;

  if (is_root) {
    // Ingress hop: request handler -> first microservice.
    dn.startable_at = ar->runtime.arrival() + comm_.sample_delay(net::Distance::kSameRack);
    dn.blocking_parent = trace::Span::kNoNode;
  } else if (deps_met) {
    SimTime startable = 0;
    std::uint32_t blocking = trace::Span::kNoNode;
    for (const auto& msg : dn.parent_msgs) {
      const SimTime arrived = msg.finish + comm_.sample_delay(msg.machine, machine);
      // Blocking edge: latest message arrival, ties to the lower parent
      // index (the deterministic convention shared with trace/export).
      if (arrived > startable || (arrived == startable && msg.parent < blocking)) {
        startable = arrived;
        blocking = msg.parent;
      }
    }
    dn.startable_at = startable;
    dn.blocking_parent = blocking;
  }

  schedule_start_attempt(*ar, node);
}

void SimulationDriver::schedule_start_attempt(ActiveRequest& ar, std::size_t node) {
  DriverNode& dn = ar.nodes[node];
  VMLP_CHECK(dn.placed && !dn.running && !dn.done);
  const RequestId rid = ar.runtime.id();

  if (dn.startable_at >= 0) {
    // Work conservation: a node whose dependencies completed ahead of the
    // conservative plan may start early — start_node() admits the early
    // start only if the machine has the spare budget right then.
    const SimTime start_at = std::max(engine_.now(), dn.startable_at);
    // Fast path: move the pending start event instead of cancel+recreate —
    // the stored callback is identical, only the key changes.
    if (!engine_.reschedule(dn.start_event, start_at)) {
      dn.start_event = engine_.schedule_at(start_at, [this, rid, node] { start_node(rid, node); });
    }
    // Starting later than planned leaves a resource vacancy: self-healing
    // territory. Note for scheduler authors: planned_start == now() arms the
    // watch at the current timestamp, so on_late_invocation must never
    // respond by re-placing with planned_start = now() again — that closes a
    // zero-delay event cycle where simulated time never advances (see the
    // backoff in VmlpScheduler::on_late_invocation).
    if (start_at > dn.planned_start && dn.planned_start >= engine_.now() &&
        !engine_.reschedule(dn.late_event, dn.planned_start)) {
      dn.late_event = engine_.schedule_at(dn.planned_start, [this, rid, node] {
        ActiveRequest* r = find_request(rid);
        if (r == nullptr) return;
        DriverNode& n = r->nodes[node];
        if (!n.running && !n.done) {
          ++counters_.late_events;
          PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kLateInvocation,
                          policy_epoch_);
          scheduler_.on_late_invocation(rid, node);
        }
      });
    }
  } else {
    // Dependencies still executing; watch for lateness at the planned start.
    if (dn.planned_start >= engine_.now() && !dn.late_event.valid()) {
      dn.late_event = engine_.schedule_at(dn.planned_start, [this, rid, node] {
        ActiveRequest* r = find_request(rid);
        if (r == nullptr) return;
        DriverNode& n = r->nodes[node];
        if (!n.running && !n.done) {
          ++counters_.late_events;
          PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kLateInvocation,
                          policy_epoch_);
          scheduler_.on_late_invocation(rid, node);
        }
      });
    }
  }
}

void SimulationDriver::release_reservation_tail(ActiveRequest& ar, std::size_t node,
                                                SimTime from) {
  DriverNode& dn = ar.nodes[node];
  if (!dn.has_reservation) return;
  const SimTime lo = std::max(from, dn.reserved_begin);
  if (lo < dn.reserved_end) {
    cluster::Machine& m = cluster_.machine(dn.machine);
    m.ledger().release(lo, dn.reserved_end, dn.limit);
    cluster_.cells().note_mutation(dn.machine, m);
  }
  dn.has_reservation = false;
}

void SimulationDriver::start_node(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  if (ar == nullptr) return;
  DriverNode& dn = ar->nodes[node];
  if (dn.running || dn.done) return;
  VMLP_CHECK_MSG(dn.placed, "starting unplaced node");
  VMLP_CHECK_MSG(ar->runtime.node(node).pending_parents == 0,
                 "starting node with unmet dependencies");
  const SimTime t = engine_.now();

  if (t < dn.planned_start) {
    // Early-start attempt: admit when the machine's *actual* occupancy (the
    // limits of containers running right now) leaves room. Future ledger
    // bookings must not block this — holding a machine idle until a planned
    // start while its resources sit free is exactly the waste the paper's
    // self-healing module exists to eliminate; momentary overlap with a
    // later booking is absorbed by the contention model.
    cluster::Machine& m = cluster_.machine(dn.machine);
    if (!(m.allocated() + dn.limit).fits_within(m.capacity())) {
      ++counters_.early_denials;
      ++dn.early_denial_streak;
      // Poll for freed capacity instead of idling until the planned start.
      const SimTime retry = std::min(dn.planned_start, t + kEarlyRetryInterval);
      dn.start_event = engine_.schedule_at(retry, [this, id, node] { start_node(id, node); });
      // The planned machine keeps refusing while the node is ready to go:
      // treat it as a (pre-)late invocation so the scheduler may relocate it.
      if (dn.early_denial_streak >= DriverNode::kStuckThreshold && !dn.stuck_notified) {
        dn.stuck_notified = true;
        ++counters_.late_events;
        PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kLateInvocation,
                          policy_epoch_);
        scheduler_.on_late_invocation(id, node);
      }
      return;
    }
    dn.early_denial_streak = 0;
    ++counters_.early_starts;
  } else {
    ++counters_.on_time_starts;
  }

  // Re-book the reservation to the actual execution window if it drifted.
  if (t != dn.reserved_begin) {
    release_reservation_tail(*ar, node, t);
    dn.reserved_begin = t;
    dn.reserved_end = t + dn.reserve_duration;
    cluster::Machine& m = cluster_.machine(dn.machine);
    m.ledger().reserve(dn.reserved_begin, dn.reserved_end, dn.limit);
    dn.has_reservation = true;
    cluster_.cells().note_mutation(dn.machine, m);
    audit_machine_conservation(dn.machine);
  }

  const auto& req_node = ar->runtime.type().nodes()[node];
  const auto& type = app_.service(req_node.service);

  const ContainerId cid(next_container_++);
  cluster_.machine(dn.machine).add_container(cid, dn.instance, type.demand, dn.limit);
  dn.container = cid;
  ar->runtime.mark_running(node, cid, t);

  dn.remaining_work = static_cast<double>(exec_.sample_work(type, req_node.time_scale, rng_));
  dn.jitter = type.cls.resource_sensitivity == 3
                  ? rng_.lognormal_mean_cv(1.0, exec_.params().high_sensitivity_extra_cv)
                  : 1.0;
  dn.last_advance = t;
  dn.running = true;
  if (dn.late_event.valid()) {
    engine_.cancel(dn.late_event);
    dn.late_event = {};
  }

  if (params_.failure.enabled) {
    if (params_.failure.container_fault_prob > 0.0 &&
        rng_failure_.bernoulli(params_.failure.container_fault_prob)) {
      // The container dies somewhere inside its expected execution window.
      const double frac = rng_failure_.uniform(0.05, 0.95);
      const auto fault_delay = std::max<SimDuration>(
          1, static_cast<SimDuration>(static_cast<double>(dn.reserve_duration) * frac));
      dn.fault_event =
          engine_.schedule_after(fault_delay, [this, id, node] { container_fault(id, node); });
    }
    if (params_.failure.invocation_timeout > 0) {
      dn.timeout_event = engine_.schedule_after(
          params_.failure.invocation_timeout, [this, id, node] { invocation_timeout(id, node); });
    }
  }

  running_on_[dn.machine.value()].push_back(RunningRef{id, node, ar});
  recompute_machine(dn.machine);
  {
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kNodeStarted,
                          policy_epoch_);
    scheduler_.on_node_started(id, node);
  }
}

void SimulationDriver::advance_instance(DriverNode& dn, SimTime to) {
  VMLP_CHECK(dn.running);
  if (to > dn.last_advance) {
    dn.remaining_work -= dn.rate * static_cast<double>(to - dn.last_advance);
    if (dn.remaining_work < 0.0) dn.remaining_work = 0.0;
  }
  dn.last_advance = to;
}

double SimulationDriver::instance_rate(const app::MicroserviceType& type, const DriverNode& dn,
                                       const cluster::ResourceVector& effective) const {
  double rate = exec_.rate(type, effective);
  if (type.cls.resource_sensitivity == 3) {
    const double f = exec_.bottleneck(type, effective);
    if (f > 1.0) {
      // The per-instance dispersion multiplier bites only under contention —
      // Fig. 3(c)'s variance inflation.
      rate /= 1.0 + (dn.jitter - 1.0) * std::min(f - 1.0, 1.0);
    }
  }
  return std::max(rate, 1e-6);
}

void SimulationDriver::recompute_machine(MachineId machine) {
  auto it = running_on_.find(machine.value());
  if (it == running_on_.end() || it->second.empty()) return;
  cluster::Machine& m = cluster_.machine(machine);
  const SimTime t = engine_.now();

  // Oversubscription: effective allocation shrinks proportionally per
  // dimension when granted limits exceed capacity. Sum over *all* containers
  // on the machine — including injected interference phantoms.
  const cluster::ResourceVector total = m.allocated();
  const auto& cap = m.capacity();
  const cluster::ResourceVector scale{
      total.cpu > cap.cpu ? cap.cpu / total.cpu : 1.0,
      total.mem > cap.mem ? cap.mem / total.mem : 1.0,
      total.io > cap.io ? cap.io / total.io : 1.0,
  };

  for (const RunningRef& ref : it->second) {
    DriverNode& dn = ref.ar->nodes[ref.node];
    advance_instance(dn, t);
    const auto& req_node = ref.ar->runtime.type().nodes()[ref.node];
    const auto& type = app_.service(req_node.service);
    const cluster::ResourceVector effective{dn.limit.cpu * scale.cpu, dn.limit.mem * scale.mem,
                                            dn.limit.io * scale.io};
    dn.rate = instance_rate(type, dn, effective);
    const auto remaining_time = static_cast<SimDuration>(
        std::ceil(dn.remaining_work / dn.rate));
    const auto delay = std::max<SimDuration>(remaining_time, dn.remaining_work > 0 ? 1 : 0);
    // Decrease-key fast path: the finish callback is invariant per node, so
    // a re-rate only moves the already-queued event.
    if (!engine_.reschedule_after(dn.finish_event, delay)) {
      const RequestId rid = ref.id;
      const std::size_t node = ref.node;
      dn.finish_event =
          engine_.schedule_after(delay, [this, rid, node] { finish_node(rid, node); });
    }
  }
}

void SimulationDriver::finish_node(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  if (ar == nullptr) return;
  DriverNode& dn = ar->nodes[node];
  if (!dn.running || dn.done) return;
  const SimTime t = engine_.now();
  advance_instance(dn, t);
  // Rounding can leave sub-microsecond residue; treat as finished.
  VMLP_CHECK_MSG(dn.remaining_work <= 1.0 + 1e-6,
                 "finish event fired with " << dn.remaining_work << "us of work left");

  dn.running = false;
  dn.done = true;
  cluster_.cells().remove_placement(dn.machine);
  for (sim::EventHandle* ev : {&dn.finish_event, &dn.fault_event, &dn.timeout_event}) {
    if (ev->valid()) {
      engine_.cancel(*ev);
      *ev = {};
    }
  }

  // Tear down the container and the remaining reservation window.
  auto& vec = running_on_[dn.machine.value()];
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&](const RunningRef& r) { return r.id == id && r.node == node; }),
            vec.end());
  cluster::Machine& m = cluster_.machine(dn.machine);
  m.remove_container(dn.container);
  release_reservation_tail(*ar, node, t);
  audit_machine_conservation(dn.machine);
  recompute_machine(dn.machine);

  const auto& req_node = ar->runtime.type().nodes()[node];
  const SimTime started = ar->runtime.node(node).started_at;

  // Tracing + profiling (Fig. 8's feedback loop). Span retention is optional
  // (DriverParams::trace_spans) — scale runs shed the per-execution memory.
  if (params_.trace_spans) {
    trace::Span span{id, ar->runtime.type().id(), req_node.service, dn.instance,
                     dn.machine, started, t};
    span.node = static_cast<std::uint32_t>(node);
    // Attribution ledger: the final wait window is [startable_at, started];
    // failure intervals from earlier attempts are clipped into it so the
    // span's phases telescope exactly (queue time is the residual — see
    // trace/critical_path.h for the identity this preserves).
    span.startable_at = dn.startable_at;
    span.blocking_parent = dn.blocking_parent;
    for (const PhaseSeg& seg : dn.phase_segs) {
      const SimTime lo = std::max(seg.begin, dn.startable_at);
      const SimTime hi = std::min(seg.end, started);
      if (hi <= lo) continue;
      switch (seg.kind) {
        case trace::Phase::kLostExec: span.lost_exec_us += hi - lo; break;
        case trace::Phase::kBackoff: span.backoff_us += hi - lo; break;
        case trace::Phase::kHeal: span.heal_us += hi - lo; break;
        default: break;
      }
    }
    tracer_.record_span(span);
  }
  trace::ExecutionCase c;
  c.usage = dn.limit;
  c.machine_load = m.utilization_sum() / 3.0;
  c.exec_time = t - started;
  profiles_.record(req_node.service, ar->runtime.type().id(), c);

  const auto children = ar->runtime.type().dag().children(node);
  const auto unblocked = ar->runtime.mark_done(node, t);
  for (std::size_t child : children) {
    ar->nodes[child].parent_msgs.push_back(
        ParentMsg{static_cast<std::uint32_t>(node), dn.machine, t});
  }
  for (std::size_t child : unblocked) {
    handle_parent_finished(*ar, child, dn.machine, t);
  }
  {
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kNodeFinished,
                          policy_epoch_);
    scheduler_.on_node_finished(id, node);
  }

  if (ar->runtime.finished()) {
    tracer_.on_request_completion(id, t);
    qos_.record_completion(ar->runtime.type().id(), t - ar->runtime.arrival());
    if (obs_ != nullptr) {
      obs_->observe(obs_->driver().latency_us, static_cast<double>(t - ar->runtime.arrival()));
    }
    if (params_.attribution && params_.trace_spans) attribute_request(*ar, id);
    if (ar->degraded) orphaned_latencies_.add(static_cast<double>(t - ar->runtime.arrival()));
    ++completed_;
    {
      PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kRequestFinished,
                          policy_epoch_);
      scheduler_.on_request_finished(id);
    }
    requests_.erase(id);
    if (params_.trace_release_completed) tracer_.release_request(id);
  }
}

void SimulationDriver::attribute_request(const ActiveRequest& ar, RequestId id) {
  // Write-only analysis over the already-recorded spans: nothing below may
  // touch simulated state, RNG streams, or scheduler-visible data — that is
  // what keeps attribution on/off byte-identical (determinism_check claim 8).
#ifdef VMLP_NO_OBS
  // With telemetry compiled out the extraction has no sink; keep only the
  // audit-tier exactness check.
  if (!audit::enabled()) return;
#else
  if (obs_ == nullptr && !audit::enabled()) return;
#endif
  const trace::RequestRecord* rec = tracer_.find_request(id);
  VMLP_CHECK_MSG(rec != nullptr && rec->finished(), "attribution before completion");
  const app::Dag& dag = ar.runtime.type().dag();
  const auto path = trace::extract_critical_path(*rec, tracer_.spans_of(id), &dag);
  // The acceptance identity: phases along the blocking chain telescope to
  // the end-to-end latency, exactly, in simulated time.
  VMLP_AUDIT_ASSERT(path.phase_sum() == rec->latency(),
                    "critical-path phases sum to " << path.phase_sum() << "us but request "
                                                   << id.value() << " took " << rec->latency()
                                                   << "us end to end");
#ifndef VMLP_NO_OBS
  if (obs_ == nullptr) return;
  static_assert(trace::kPhaseCount == obs::Collector::AttributionMetrics::kPhases,
                "attribution metric families must cover every trace::Phase");
  const auto band = app_.band(ar.runtime.type().id());
  const auto& bm = obs_->attribution().band[static_cast<std::size_t>(band)];
  const auto latency = static_cast<double>(rec->latency());
  if (latency > 0.0) {
    for (std::size_t p = 0; p < trace::kPhaseCount; ++p) {
      obs_->observe(bm.phase_share[p], static_cast<double>(path.totals[p]) / latency);
    }
  }
  obs_->observe(bm.path_len, static_cast<double>(path.steps.size()));
  for (const auto& off : path.off_path) {
    obs_->observe(bm.off_path_slack_us, static_cast<double>(off.slack));
  }
#endif
}

void SimulationDriver::handle_parent_finished(ActiveRequest& ar, std::size_t child,
                                              MachineId /*parent_machine*/, SimTime /*t*/) {
  DriverNode& dn = ar.nodes[child];
  VMLP_CHECK(ar.runtime.node(child).pending_parents == 0);
  if (dn.placed) {
    SimTime startable = 0;
    std::uint32_t blocking = trace::Span::kNoNode;
    for (const auto& msg : dn.parent_msgs) {
      const SimTime arrived = msg.finish + comm_.sample_delay(msg.machine, dn.machine);
      if (arrived > startable || (arrived == startable && msg.parent < blocking)) {
        startable = arrived;
        blocking = msg.parent;
      }
    }
    dn.startable_at = startable;
    dn.blocking_parent = blocking;
    schedule_start_attempt(ar, child);
  } else {
    ar.runtime.mark_ready(child, engine_.now());
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kNodeUnblocked,
                          policy_epoch_);
    scheduler_.on_node_unblocked(ar.runtime.id(), child);
  }
}

void SimulationDriver::adjust_limit(RequestId id, std::size_t node,
                                    const cluster::ResourceVector& new_limit) {
  ActiveRequest* ar = find_request(id);
  VMLP_CHECK_MSG(ar != nullptr, "adjust_limit on unknown request");
  DriverNode& dn = ar->nodes[node];
  VMLP_CHECK_MSG(dn.running, "adjust_limit on a non-running node");
  cluster::Machine& m = cluster_.machine(dn.machine);
  const cluster::ResourceVector clamped = new_limit.clamp_to(m.capacity());
  VMLP_CHECK_MSG(!clamped.near_zero(), "adjust_limit to zero");

  // Update the ledger's future view: swap the remaining reservation.
  const SimTime t = engine_.now();
  if (dn.has_reservation && t < dn.reserved_end) {
    m.ledger().release(std::max(t, dn.reserved_begin), dn.reserved_end, dn.limit);
    m.ledger().reserve(std::max(t, dn.reserved_begin), dn.reserved_end, clamped);
    cluster_.cells().note_mutation(dn.machine, m);
  }
  dn.limit = clamped;
  cluster::Container* c = m.find_container(dn.container);
  VMLP_CHECK(c != nullptr);
  c->set_limit(clamped);
  ++counters_.reallocations;
  audit_machine_conservation(dn.machine);
  recompute_machine(dn.machine);
}

void SimulationDriver::unplace(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  VMLP_CHECK_MSG(ar != nullptr, "unplace on unknown request");
  DriverNode& dn = ar->nodes[node];
  VMLP_CHECK_MSG(dn.placed && !dn.running && !dn.done,
                 "unplace on a node that is not pending");
  release_reservation_tail(*ar, node, engine_.now());
  if (dn.start_event.valid()) {
    engine_.cancel(dn.start_event);
    dn.start_event = {};
  }
  if (dn.late_event.valid()) {
    engine_.cancel(dn.late_event);
    dn.late_event = {};
  }
  dn.placed = false;
  cluster_.cells().remove_placement(dn.machine);
  dn.planned_start = -1;
  dn.startable_at = -1;
  dn.reserved_begin = -1;
  dn.reserved_end = -1;
  dn.reserve_duration = 0;
  dn.early_denial_streak = 0;
  dn.stuck_notified = false;
  // Attribution ledger: relocation time runs from here to the re-placement
  // (clipped to the final wait window, so pre-startable relocations vanish).
  if (params_.trace_spans && dn.heal_from < 0) dn.heal_from = engine_.now();
  ar->runtime.revert_placement(node, engine_.now());
  audit_machine_conservation(dn.machine);
}

void SimulationDriver::release_reservation(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  VMLP_CHECK_MSG(ar != nullptr, "release_reservation on unknown request");
  DriverNode& dn = ar->nodes[node];
  VMLP_CHECK_MSG(dn.placed && !dn.running && !dn.done,
                 "release_reservation on a node that is not pending");
  release_reservation_tail(*ar, node, engine_.now());
  audit_machine_conservation(dn.machine);
}

void SimulationDriver::schedule_next_interference() {
  const auto& p = params_.interference;
  if (!p.enabled || p.events_per_second <= 0.0) return;
  const double gap_sec = rng_interference_.exponential_mean(1.0 / p.events_per_second);
  const auto delay = std::max<SimDuration>(1, static_cast<SimDuration>(gap_sec * kSec));
  engine_.schedule_after(delay, [this] {
    inject_interference();
    schedule_next_interference();
  });
}

void SimulationDriver::inject_interference() {
  const auto& p = params_.interference;
  const MachineId machine(static_cast<std::uint32_t>(rng_interference_.uniform_int(
      0, static_cast<std::int64_t>(cluster_.machine_count()) - 1)));
  cluster::Machine& m = cluster_.machine(machine);
  if (!m.up()) return;  // nobody co-tenants a dead machine; skip this burst
  const cluster::ResourceVector burst = m.capacity() * p.magnitude;

  const ContainerId cid(next_container_++);
  m.add_container(cid, InstanceId(), burst, burst);
  ++counters_.interference_bursts;
  recompute_machine(machine);

  const double len_sec =
      rng_interference_.exponential_mean(static_cast<double>(p.duration_mean) / kSec);
  const auto len = std::max<SimDuration>(kMsec, static_cast<SimDuration>(len_sec * kSec));
  engine_.schedule_after(len, [this, machine, cid] {
    cluster_.machine(machine).remove_container(cid);
    recompute_machine(machine);
  });
}

void SimulationDriver::schedule_failures() {
  for (const FailureWindow& w : failure_schedule_) {
    engine_.schedule_at(w.down_at, [this, m = w.machine] { crash_machine(m); });
    if (w.up_at < params_.horizon) {
      engine_.schedule_at(w.up_at, [this, m = w.machine] { recover_machine(m); });
    }
  }
}

void SimulationDriver::crash_machine(MachineId machine) {
  cluster::Machine& m = cluster_.machine(machine);
  VMLP_CHECK_MSG(m.up(), "crash on already-down machine " << machine.value());
  m.set_up(false);
  ++counters_.machine_crashes;
  if (obs_ != nullptr) {
    obs_->count(obs_->failure().machines_crashed);
    obs_->event(obs::DecisionKind::kCrash, engine_.now(), obs::DecisionEvent::kNoRequest,
                obs::DecisionEvent::kNoIndex, machine.value());
  }

  // Orphan every running execution here. Copy the refs: the fail path edits
  // running_on_ and may trigger scheduler callbacks that place elsewhere.
  std::vector<RunningRef> victims;
  if (auto it = running_on_.find(machine.value()); it != running_on_.end()) victims = it->second;
  for (const RunningRef& ref : victims) {
    ActiveRequest* ar = find_request(ref.id);
    if (ar == nullptr || !ar->nodes[ref.node].running) continue;
    fail_running_node(*ar, ref.node);
  }

  // Void placements waiting to start here. Scan in arrival order — requests_
  // is unordered and its iteration order must not leak into event order.
  for (RequestId id : arrival_order_) {
    ActiveRequest* ar = find_request(id);
    if (ar == nullptr) continue;
    for (std::size_t node = 0; node < ar->nodes.size(); ++node) {
      DriverNode& dn = ar->nodes[node];
      if (!dn.placed || dn.running || dn.done || !(dn.machine == machine)) continue;
      unplace(id, node);
      ar->degraded = true;
      ++counters_.orphaned_pending;
      if (obs_ != nullptr) {
        obs_->event(obs::DecisionKind::kOrphan, engine_.now(), id.value(),
                    static_cast<std::uint32_t>(node), machine.value());
      }
      // Nothing executed, so no retry is charged: deps-met nodes go straight
      // back to the scheduler; the rest re-enter via handle_parent_finished.
      if (ar->runtime.node(node).pending_parents == 0) {
        PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kNodeOrphaned,
                          policy_epoch_);
        scheduler_.on_node_orphaned(id, node);
      }
    }
  }
  // Interference phantoms stay: their removal events are already queued and
  // remove_container would throw on a second removal.

  // Audit tier: the purge must leave the dead machine with zero live driver
  // reservations and a ledger that agrees (capacity conservation through a
  // crash).
  if (audit::enabled()) {
    const auto rit = running_on_.find(machine.value());
    VMLP_AUDIT_ASSERT(rit == running_on_.end() || rit->second.empty(),
                      "crash purge left executions on machine " << machine.value());
    for (RequestId id : arrival_order_) {
      const ActiveRequest* ar = find_request(id);
      if (ar == nullptr) continue;
      for (const DriverNode& dn : ar->nodes) {
        VMLP_AUDIT_ASSERT(!(dn.has_reservation && dn.machine == machine),
                          "crash purge left a live reservation on machine " << machine.value());
      }
    }
    audit_machine_conservation(machine);
  }
}

void SimulationDriver::recover_machine(MachineId machine) {
  cluster::Machine& m = cluster_.machine(machine);
  VMLP_CHECK_MSG(!m.up(), "recovery on up machine " << machine.value());
  m.set_up(true);
  ++counters_.machine_recoveries;
  if (obs_ != nullptr) {
    obs_->count(obs_->failure().machines_recovered);
    obs_->event(obs::DecisionKind::kRecover, engine_.now(), obs::DecisionEvent::kNoRequest,
                obs::DecisionEvent::kNoIndex, machine.value());
  }
}

void SimulationDriver::fail_running_node(ActiveRequest& ar, std::size_t node) {
  DriverNode& dn = ar.nodes[node];
  VMLP_CHECK_MSG(dn.running && !dn.done, "failing a node that is not executing");
  const RequestId id = ar.runtime.id();
  const SimTime t = engine_.now();
  const MachineId machine = dn.machine;

  for (sim::EventHandle* ev : {&dn.finish_event, &dn.fault_event, &dn.timeout_event,
                               &dn.start_event, &dn.late_event}) {
    if (ev->valid()) {
      engine_.cancel(*ev);
      *ev = {};
    }
  }
  auto& vec = running_on_[machine.value()];
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&](const RunningRef& r) { return r.id == id && r.node == node; }),
            vec.end());
  cluster::Machine& m = cluster_.machine(machine);
  m.remove_container(dn.container);
  release_reservation_tail(ar, node, t);

  // Attribution ledger: the voided attempt's execution is lost time.
  if (params_.trace_spans) {
    const SimTime attempt_started = ar.runtime.node(node).started_at;
    if (attempt_started >= 0 && t > attempt_started) {
      dn.phase_segs.push_back(PhaseSeg{trace::Phase::kLostExec, attempt_started, t});
    }
  }

  dn.running = false;
  dn.placed = false;
  cluster_.cells().remove_placement(machine);
  dn.planned_start = -1;
  dn.startable_at = -1;
  dn.reserved_begin = -1;
  dn.reserved_end = -1;
  dn.reserve_duration = 0;
  dn.remaining_work = 0.0;  // completed work is lost; retries restart cold
  dn.early_denial_streak = 0;
  dn.stuck_notified = false;
  ++dn.attempts;
  ar.degraded = true;
  ++counters_.orphaned_running;
  if (obs_ != nullptr) {
    obs_->event(obs::DecisionKind::kOrphan, t, id.value(), static_cast<std::uint32_t>(node),
                machine.value());
  }
  ar.runtime.mark_failed(node, t);
  audit_machine_conservation(machine);
  if (m.up()) recompute_machine(machine);  // survivors re-rate on the freed capacity

  schedule_retry(ar, node);
}

void SimulationDriver::schedule_retry(ActiveRequest& ar, std::size_t node) {
  DriverNode& dn = ar.nodes[node];
  if (dn.attempts > params_.failure.max_retries) {
    dn.abandoned = true;
    ++counters_.retries_dropped;
    return;  // the request stays unfinished; horizon accounting charges it
  }
  ++counters_.retries_scheduled;
  if (obs_ != nullptr) {
    obs_->event(obs::DecisionKind::kRetry, engine_.now(), ar.runtime.id().value(),
                static_cast<std::uint32_t>(node), obs::DecisionEvent::kNoIndex,
                static_cast<std::int64_t>(dn.attempts));
  }
  const double factor = std::pow(std::max(1.0, params_.failure.retry_backoff_factor),
                                 static_cast<double>(dn.attempts - 1));
  const auto backoff = std::max<SimDuration>(
      1, static_cast<SimDuration>(
             std::llround(static_cast<double>(params_.failure.retry_backoff_base) * factor)));
  // Attribution ledger: the backoff interval, then an open heal interval
  // until the next placement commits (closed in place()).
  if (params_.trace_spans) {
    dn.phase_segs.push_back(
        PhaseSeg{trace::Phase::kBackoff, engine_.now(), engine_.now() + backoff});
    dn.heal_from = engine_.now() + backoff;
  }
  const RequestId id = ar.runtime.id();
  engine_.schedule_after(backoff, [this, id, node] {
    ActiveRequest* r = find_request(id);
    if (r == nullptr) return;
    const DriverNode& n = r->nodes[node];
    if (n.placed || n.running || n.done || n.abandoned) return;
    if (r->runtime.node(node).pending_parents != 0) return;  // re-enters via parents
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kNodeOrphaned,
                          policy_epoch_);
    scheduler_.on_node_orphaned(id, node);
  });
}

void SimulationDriver::container_fault(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  if (ar == nullptr) return;
  DriverNode& dn = ar->nodes[node];
  if (!dn.running || dn.done) return;
  dn.fault_event = {};  // this event just fired; don't cancel a stale handle
  ++counters_.container_faults;
  fail_running_node(*ar, node);
}

void SimulationDriver::invocation_timeout(RequestId id, std::size_t node) {
  ActiveRequest* ar = find_request(id);
  if (ar == nullptr) return;
  DriverNode& dn = ar->nodes[node];
  if (!dn.running || dn.done) return;
  dn.timeout_event = {};
  ++counters_.invocation_timeouts;
  fail_running_node(*ar, node);
}

RunResult SimulationDriver::run() {
  VMLP_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  // analyze: allow(host-clock): epoch for obs policy-profiling slices only;
  // host time never feeds a simulation decision (zero-perturbation contract).
  policy_epoch_ = std::chrono::steady_clock::now();
  if (obs_ != nullptr) {
    obs_->set_gauge(obs_->failure().windows_planned,
                    static_cast<double>(failure_schedule_.size()));
  }
  scheduler_.attach(*this);
  monitor_.attach(engine_);
  schedule_next_interference();
  schedule_failures();
  engine_.schedule_periodic(params_.tick, params_.tick, [this] {
    PolicyScope scope(policy_ns_, policy_depth_, obs_.get(), obs::PolicyCallback::kTick,
                          policy_epoch_);
    scheduler_.on_tick();
  });
  if (params_.ledger_compact_period > 0) {
    engine_.schedule_periodic(params_.ledger_compact_period, params_.ledger_compact_period,
                              [this] {
                                if (engine_.now() > kSec) {
                                  cluster_.compact_ledgers_before(engine_.now() - kSec);
                                }
                              });
  }
  engine_.run_until(params_.horizon);

  RunResult result;
  result.arrived = arrived_;
  result.completed = completed_;
  for (RequestId id : active_requests()) {
    const ActiveRequest& ar = *requests_.at(id);
    qos_.record_unfinished(ar.runtime.type().id());
    ++result.unfinished;
    bool abandoned = false;
    for (const DriverNode& dn : ar.nodes) abandoned = abandoned || dn.abandoned;
    if (abandoned) ++result.abandoned_requests;
  }
  result.qos_violation_rate = qos_.violation_rate();
  result.mean_utilization = monitor_.mean_overall();
  const auto& lat = qos_.latencies();
  if (!lat.empty()) {
    result.p50_latency_us = lat.quantile(0.50);
    result.p90_latency_us = lat.quantile(0.90);
    result.p99_latency_us = lat.quantile(0.99);
    result.mean_latency_us = lat.mean();
  }
  result.throughput_rps =
      static_cast<double>(completed_) / (static_cast<double>(params_.horizon) / kSec);
  result.placements = counters_.placements;
  result.policy_seconds = static_cast<double>(policy_ns_) * 1e-9;

  result.machine_crashes = counters_.machine_crashes;
  result.container_faults = counters_.container_faults;
  result.invocation_timeouts = counters_.invocation_timeouts;
  result.orphaned_nodes = counters_.orphaned_running;
  result.retries = counters_.retries_scheduled;
  if (!orphaned_latencies_.empty()) {
    result.orphaned_mean_latency_us = orphaned_latencies_.mean();
    result.orphaned_p99_latency_us = orphaned_latencies_.quantile(0.99);
  }
  const std::size_t met_slo = qos_.total() - qos_.violations();
  result.goodput_rps =
      static_cast<double>(met_slo) / (static_cast<double>(params_.horizon) / kSec);
  sync_observability(result);
  return result;
}

void SimulationDriver::sync_observability(const RunResult& result) {
  if (obs_ == nullptr) return;
  // Counters the driver already maintains are copied into the registry once,
  // at end of run, rather than double-counted on the hot path. The registry
  // is the export surface; Counters stays the source of truth.
  obs::Collector& c = *obs_;
  const auto& d = c.driver();
  c.set_counter(d.requests_arrived, arrived_);
  c.set_counter(d.requests_completed, completed_);
  c.set_counter(d.requests_unfinished, result.unfinished);
  c.set_counter(d.placements_committed, counters_.placements);
  c.set_counter(d.starts_early, counters_.early_starts);
  c.set_counter(d.starts_ontime, counters_.on_time_starts);
  c.set_counter(d.starts_denied, counters_.early_denials);
  c.set_counter(d.lates_fired, counters_.late_events);
  c.set_counter(d.limits_adjusted, counters_.reallocations);
  c.set_counter(d.bursts_injected, counters_.interference_bursts);
  const auto& f = c.failure();
  c.set_counter(f.containers_faulted, counters_.container_faults);
  c.set_counter(f.invocations_timedout, counters_.invocation_timeouts);
  c.set_counter(f.nodes_orphaned, counters_.orphaned_running + counters_.orphaned_pending);
  c.set_counter(f.retries_scheduled, counters_.retries_scheduled);
  c.set_counter(f.retries_dropped, counters_.retries_dropped);
  // Topology gauges come from the cell counters the driver maintains at the
  // placed-node transitions; per-cell labels are bounded (kMaxCellGauges).
  const auto& topo = c.topology();
  const cluster::CellTopology& cells = cluster_.cells();
  c.set_gauge(topo.cells_configured, static_cast<double>(cells.cell_count()));
  c.set_gauge(topo.cell_live_peak, static_cast<double>(cells.live_peak()));
  for (std::size_t i = 0; i < topo.cell_live.size(); ++i) {
    c.set_gauge(topo.cell_live[i], static_cast<double>(cells.cell_live_peak(i)));
  }
  // The engine keeps its own tallies (plain members on the hot paths);
  // publish them into the registry in the same end-of-run sync.
  engine_.flush_observability();
}

}  // namespace vmlp::sched
