// Failure injection: machine crash/recovery windows and per-invocation
// container faults, healed by bounded retry with exponential backoff.
//
// The paper's self-healing module (Fig. 7) only heals *delay* — this layer
// adds the cloud-native failure axis: machines die mid-chain, in-flight
// microservices are orphaned, their reservations are released (capacity
// conservation holds through a crash — see the VMLP_AUDIT driver checks),
// and the lost work is re-executed.
//
// The crash schedule is a *pure function of the seed*: it is generated
// up-front from a dedicated substream, never from simulation state, so a
// failure-enabled run stays byte-reproducible across thread counts and
// repeated runs (tools/determinism_check, claim 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace vmlp::sched {

struct FailureParams {
  bool enabled = false;
  /// Cluster-wide machine crash arrival rate (Poisson, crashes/second).
  double crashes_per_second = 0.1;
  /// Mean machine downtime (exponential, floored at 1 ms).
  SimDuration recovery_mean = 2 * kSec;
  /// Probability that any one invocation's container dies mid-execution.
  double container_fault_prob = 0.0;
  /// An invocation running longer than this is killed and retried (0 = off).
  SimDuration invocation_timeout = 0;
  /// A node's execution is retried at most this many times; past the budget
  /// the request is abandoned (stays unfinished — a QoS violation).
  int max_retries = 3;
  /// Backoff before the retry's re-placement: base * factor^(attempt-1).
  SimDuration retry_backoff_base = 5 * kMsec;
  double retry_backoff_factor = 2.0;
};

/// One machine outage: the machine is down during [down_at, up_at).
struct FailureWindow {
  MachineId machine;
  SimTime down_at = 0;
  SimTime up_at = 0;
};

/// Build the crash/recovery schedule for one run: Poisson crash arrivals over
/// [0, horizon) at `crashes_per_second`, each hitting a uniformly random
/// machine for an exponential downtime. Crashes drawn while the victim is
/// still down are discarded, so one machine's windows never overlap. The
/// result is sorted by down_at and depends only on the arguments.
[[nodiscard]] std::vector<FailureWindow> build_failure_schedule(const FailureParams& params,
                                                                std::uint64_t seed,
                                                                SimTime horizon,
                                                                std::size_t machine_count);

}  // namespace vmlp::sched
