// CurSched (Table VI): FCFS request queue, allocation by current load.
//
// Each ready microservice is granted its full demand on the machine that is
// least utilized *right now*. Reactive placement with no view of committed
// future work: fine at low load, collides at traffic peaks because several
// in-flight chains converge on the same "idle" machine.
#pragma once

#include <deque>
#include <utility>

#include "sched/scheduler.h"

namespace vmlp::sched {

class CurSched final : public IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "CurSched"; }
  void on_request_arrival(RequestId id) override;
  void on_node_unblocked(RequestId id, std::size_t node) override;
  void on_tick() override;

 private:
  void drain();
  std::deque<std::pair<RequestId, std::size_t>> ready_;
};

}  // namespace vmlp::sched
