#include "sched/full_profile.h"

#include <algorithm>

#include "sched/common.h"
#include "sched/driver.h"

namespace vmlp::sched {

const FullProfile::OverallProfile& FullProfile::profile_of(RequestTypeId type_id) const {
  auto it = profile_cache_.find(type_id);
  if (it != profile_cache_.end() &&
      driver_->now() - it->second.computed_at < kProfileCacheTtl) {
    return it->second.profile;
  }

  const auto& type = driver_->application().request(type_id);
  OverallProfile p;
  double weighted_cpu = 0.0, weighted_mem = 0.0, weighted_io = 0.0;
  for (std::size_t n = 0; n < type.size(); ++n) {
    const auto& svc = driver_->application().service(type.nodes()[n].service);
    const SimDuration est = estimate_mean_exec(*driver_, type, n);
    p.total_time += est;
    weighted_cpu += svc.demand.cpu * static_cast<double>(est);
    weighted_mem += svc.demand.mem * static_cast<double>(est);
    weighted_io += svc.demand.io * static_cast<double>(est);
  }
  if (p.total_time > 0) {
    const double t = static_cast<double>(p.total_time);
    p.avg_demand = {weighted_cpu / t, weighted_mem / t, weighted_io / t};
  }
  p.avg_stage_time =
      std::max<SimDuration>(1, p.total_time / static_cast<SimDuration>(type.size()));

  auto& slot = profile_cache_[type_id];
  slot.computed_at = driver_->now();
  slot.profile = p;
  return slot.profile;
}

void FullProfile::on_request_arrival(RequestId id) {
  ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return;
  for (std::size_t node : ar->runtime.ready_nodes()) ready_.emplace_back(id, node);
  drain();
}

void FullProfile::on_node_unblocked(RequestId id, std::size_t node) {
  ready_.emplace_back(id, node);
  drain();
}

void FullProfile::on_tick() { drain(); }

void FullProfile::drain() {
  // Priority: shortest overall profile first (app-granularity SJF).
  std::vector<std::tuple<SimDuration, RequestId, std::size_t>> keyed;
  keyed.reserve(ready_.size());
  for (const auto& [id, node] : ready_) {
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr) continue;
    keyed.emplace_back(profile_of(ar->runtime.type().id()).total_time, id, node);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return std::get<0>(a) < std::get<0>(b); });

  std::vector<std::pair<RequestId, std::size_t>> deferred;
  std::size_t consecutive_failures = 0;
  for (const auto& [key, id, node] : keyed) {
    (void)key;
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr || ar->nodes[node].placed) continue;
    const OverallProfile& p = profile_of(ar->runtime.type().id());

    // The whole point — and the flaw — of overall profiling: admission sees
    // only the application-*averaged* demand and stage duration, blind to
    // the stage's own shape, so heavy phases of concurrent chains collide on
    // machines that looked fine on average. The stage still runs at its real
    // demand once admitted.
    MachineId machine;
    if (consecutive_failures < 4) {
      machine = machine_best_fit(driver_->cluster(), driver_->now(), p.avg_stage_time,
                                 p.avg_demand);
    }
    if (machine.valid()) {
      consecutive_failures = 0;
      const auto& svc =
          driver_->application().service(ar->runtime.type().nodes()[node].service);
      driver_->place(id, node, machine, svc.demand, driver_->now(), p.avg_stage_time);
    } else {
      ++consecutive_failures;
      deferred.emplace_back(id, node);
    }
  }
  ready_ = std::move(deferred);
}

}  // namespace vmlp::sched
