// SimulationDriver: the trace-driven evaluation engine (Fig. 8).
//
// Wires together every substrate — event engine, cluster, network, execution
// model, tracing, profiling, monitoring, QoS accounting — and executes a
// request stream under a pluggable scheduler policy.
//
// Mechanism highlights:
//  * Work/rate execution: each running instance holds remaining work; its
//    rate derives from the *effective* allocation, which shrinks when the
//    host machine's granted limits exceed capacity (oversubscription is
//    legal and punished, never crashes). Any membership/limit change on a
//    machine re-rates every instance there and reschedules finish events.
//  * Dependency communication: a callee becomes startable only after every
//    caller's completion message arrives; message delay is sampled from the
//    CommModel using the actual (caller machine, callee machine) distance.
//  * Reservations: every placement books [planned_start, +reserve_duration)
//    on the target machine's ledger. v-MLP plans chains into the future;
//    baselines book from "now" with their own estimates.
//  * Late invocations: a placed node that has not started by its planned
//    start triggers IScheduler::on_late_invocation — the hook the paper's
//    self-healing module hangs off.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "app/application.h"
#include "app/exec_model.h"
#include "common/arena.h"
#include "app/request_runtime.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "loadgen/generator.h"
#include "monitor/monitor.h"
#include "net/comm_model.h"
#include "net/topology.h"
#include "obs/collector.h"
#include "sched/failure.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "stats/qos.h"
#include "trace/critical_path.h"
#include "trace/profile_store.h"
#include "trace/tracer.h"

namespace vmlp::sched {

/// Denied early-start attempts re-probe the machine at this interval.
inline constexpr SimDuration kEarlyRetryInterval = 2 * kMsec;

/// Background interference injection (Section II-B, Observation 2: resource
/// over-subscription causes "unpredictable performance interference").
/// Random machines receive phantom co-tenant load for random intervals;
/// the disturbance is invisible to every scheduler's ledger — reacting to it
/// is what the self-healing module is for.
struct InterferenceParams {
  bool enabled = false;
  double events_per_second = 2.0;          ///< cluster-wide burst arrival rate
  SimDuration duration_mean = 500 * kMsec; ///< exponential burst length
  double magnitude = 0.5;                  ///< fraction of machine capacity occupied
};

struct DriverParams {
  SimTime horizon = 100 * kSec;
  SimDuration tick = 1 * kMsec;
  InterferenceParams interference;
  FailureParams failure;
  std::size_t machines_per_rack = 20;
  cluster::ClusterParams cluster;
  net::CommModelParams comm;
  app::ExecModelParams exec;
  SimDuration monitor_period = 100 * kMsec;
  SimDuration monitor_bucket = 1 * kSec;
  std::uint64_t seed = 1;
  /// Pre-populate the profile store with this many offline execution cases
  /// per (service, request type) — the paper's historical traces.
  std::size_t profile_warmup = 64;
  /// Drop per-machine ledger history every this often (0 = never).
  SimDuration ledger_compact_period = 10 * kSec;
  /// Record a trace::Span per finished node. Spans are the Fig. 8 tracing
  /// feedback artifact but cost ~100 B per execution; a 10^6-request scale
  /// run either turns them off or sets trace_release_completed to keep RSS
  /// bounded (profiles still record — the scheduler's feedback loop does not
  /// need retained spans).
  bool trace_spans = true;
  /// Recycle a request's tracer state (record + span slots) as soon as it
  /// completes, after the attribution pass consumed it. Bounds tracing
  /// memory by the in-flight request set, at the cost of post-run span
  /// exports (Tracer::spans() becomes unavailable) — the streamed scale
  /// bench's way of running tracing + attribution under its RSS assert.
  bool trace_release_completed = false;
  /// Per-request latency attribution: at each completion, extract the DAG
  /// critical path from the recorded spans (trace/critical_path.h) and
  /// observe the per-volatility-band `attribution.*` histogram families.
  /// Requires trace_spans; write-only telemetry like the rest of obs —
  /// RunResult is byte-identical on/off (determinism_check claim 8) — and
  /// the recording compiles out under -DVMLP_NO_OBS (the extraction then
  /// only runs under VMLP_AUDIT, which asserts the exact phase-sum
  /// identity).
  bool attribution = false;
  /// Telemetry (metrics registry + decision-event ring + policy profiling).
  /// Strictly write-only for the simulation: enabling it cannot change any
  /// RunResult byte (determinism_check claim 6).
  obs::Params obs;
};

/// One completion message from a finished DAG parent.
struct ParentMsg {
  std::uint32_t parent;  ///< parent node index (attribution: blocking-edge id)
  MachineId machine;     ///< caller machine (network distance source)
  SimTime finish;        ///< caller finish time
};

/// One disjoint wall-clock interval a node spent in a failure-induced phase
/// (attribution ledger; recorded only when trace_spans is on, clipped to the
/// final wait window when the span is emitted).
struct PhaseSeg {
  trace::Phase kind;
  SimTime begin;
  SimTime end;
};

/// Per-node driver state (mechanism-side; policy state stays in schedulers).
struct DriverNode {
  bool placed = false;
  MachineId machine;
  cluster::ResourceVector limit;
  SimTime planned_start = -1;
  SimDuration reserve_duration = 0;
  SimTime reserved_begin = -1;
  SimTime reserved_end = -1;
  bool has_reservation = false;

  /// Completion messages from finished parents. Arena-backed: one
  /// short-lived vector per DAG node is exactly the small allocation pattern
  /// the per-shard arena exists for.
  ArenaVector<ParentMsg> parent_msgs;
  SimTime startable_at = -1;  ///< max(parent finish + comm), known once placed & unblocked
  /// Parent whose message bounded startable_at (latest arrival, ties to the
  /// lower parent index — matching the Zipkin parentId convention).
  /// trace::Span::kNoNode for roots.
  std::uint32_t blocking_parent = trace::Span::kNoNode;
  /// Failure-phase intervals accrued across lost attempts (attribution
  /// ledger; empty on the no-failure fast path).
  ArenaVector<PhaseSeg> phase_segs;
  /// Open heal interval: set when the node loses its placement (relocation,
  /// crash void) or finishes a retry backoff; closed at the next place().
  SimTime heal_from = -1;
  sim::EventHandle start_event;
  sim::EventHandle late_event;

  // Running state.
  InstanceId instance;
  ContainerId container;
  double remaining_work = 0.0;  ///< microseconds of work at rate 1
  double rate = 1.0;
  double jitter = 1.0;  ///< S=3 contention-dispersion multiplier, fixed per instance
  SimTime last_advance = 0;
  sim::EventHandle finish_event;
  sim::EventHandle fault_event;    ///< pending mid-flight container fault
  sim::EventHandle timeout_event;  ///< invocation-timeout watchdog
  bool running = false;
  bool done = false;
  /// Executions lost to crashes/faults/timeouts so far (bounded retry).
  int attempts = 0;
  /// Retry budget exhausted: the node is never re-placed and the request
  /// stays unfinished (accounted as a QoS violation at the horizon).
  bool abandoned = false;
  /// Consecutive denied early-start probes; at kStuckThreshold the scheduler
  /// is told the node is effectively late so it can relocate it.
  int early_denial_streak = 0;
  bool stuck_notified = false;
  static constexpr int kStuckThreshold = 3;
};

struct ActiveRequest {
  ActiveRequest(const app::RequestType& type, RequestId id, SimTime arrival)
      : runtime(type, id, arrival), nodes(type.size()) {}
  app::RequestRuntime runtime;
  ArenaVector<DriverNode> nodes;
  /// At least one node lost an execution or placement to a failure.
  bool degraded = false;
};

struct RunResult {
  std::size_t arrived = 0;
  std::size_t completed = 0;
  std::size_t unfinished = 0;
  double qos_violation_rate = 0.0;
  double mean_utilization = 0.0;
  double p50_latency_us = 0.0;
  double p90_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double mean_latency_us = 0.0;
  double throughput_rps = 0.0;  ///< completions / horizon
  std::size_t placements = 0;   ///< successful place() calls (admission decisions)
  /// Wall-clock seconds spent inside scheduler policy callbacks, including
  /// driver work they invoke synchronously (place/ledger bookings). This is
  /// the denominator of the perf harness's placements-per-second metric —
  /// host timing, NOT simulated time, so it is nondeterministic and must
  /// never feed a byte-compared output.
  double policy_seconds = 0.0;

  // Failure-robustness metrics (all zero when failure injection is off).
  std::size_t machine_crashes = 0;
  std::size_t container_faults = 0;
  std::size_t invocation_timeouts = 0;
  std::size_t orphaned_nodes = 0;      ///< executions lost mid-flight
  std::size_t retries = 0;             ///< retry re-placements scheduled
  std::size_t abandoned_requests = 0;  ///< unfinished with retry budget spent
  /// End-to-end latency of *completed* requests that lost at least one
  /// execution or placement to a failure.
  double orphaned_mean_latency_us = 0.0;
  double orphaned_p99_latency_us = 0.0;
  /// SLO-meeting completions per second — throughput that actually counts.
  double goodput_rps = 0.0;
};

class SimulationDriver {
 public:
  SimulationDriver(const app::Application& application, IScheduler& scheduler,
                   DriverParams params);

  /// Queue a pre-generated arrival stream (sorted or not).
  void load_arrivals(const std::vector<loadgen::Arrival>& arrivals);
  /// Streamed arrival mode: pull arrivals from `stream` one at a time, each
  /// arrival event chaining the next pull — a 10^6-request scale run keeps
  /// O(1) arrival state instead of materializing the vector. NOT
  /// byte-identical to load_arrivals over the drained stream (engine
  /// sequence numbers interleave differently, so same-timestamp ties can
  /// order differently); a streamed run is deterministic in itself and
  /// admits exactly the arrivals the bulk path would.
  void stream_arrivals(loadgen::ArrivalStream stream);
  /// Run to the horizon and finalize accounting. Returns the result summary.
  RunResult run();

  // ---- scheduler-facing API -------------------------------------------
  [[nodiscard]] SimTime now() const { return engine_.now(); }
  [[nodiscard]] const DriverParams& params() const { return params_; }
  [[nodiscard]] const app::Application& application() const { return app_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] net::CommModel& comm_model() { return comm_; }
  [[nodiscard]] const app::ExecModel& exec_model() const { return exec_; }
  [[nodiscard]] trace::ProfileStore& profiles() { return profiles_; }
  [[nodiscard]] const monitor::ClusterMonitor& cluster_monitor() const { return monitor_; }
  [[nodiscard]] stats::QosTracker& qos() { return qos_; }
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }
  /// Telemetry collector; nullptr when DriverParams::obs.enabled is false.
  /// Subsystems and schedulers may record through it but must never read
  /// recorded values back into decisions (zero-perturbation contract).
  [[nodiscard]] obs::Collector* observer() { return obs_.get(); }
  [[nodiscard]] const obs::Collector* observer() const { return obs_.get(); }

  [[nodiscard]] ActiveRequest* find_request(RequestId id);
  /// Unfinished requests in arrival order.
  [[nodiscard]] std::vector<RequestId> active_requests() const;
  /// Running (request, node) pairs currently executing on a machine.
  [[nodiscard]] std::vector<std::pair<RequestId, std::size_t>> running_on(MachineId machine) const;

  /// Place node `node` of request `id` on `machine` with resource `limit`,
  /// planned to start at `planned_start` (>= now) and reserving
  /// `reserve_duration` of ledger time. The node starts at
  /// max(planned_start, dependency messages' arrival).
  void place(RequestId id, std::size_t node, MachineId machine,
             const cluster::ResourceVector& limit, SimTime planned_start,
             SimDuration reserve_duration);

  /// Change a *running* node's resource limit (the Table III controllers /
  /// resource-stretch actuation). Re-rates the host machine.
  void adjust_limit(RequestId id, std::size_t node, const cluster::ResourceVector& new_limit);

  /// Release a placed-but-not-running node's remaining ledger reservation
  /// (the delay-slot mechanism frees a late node's vacancy for candidates;
  /// the node re-books automatically when it actually starts).
  void release_reservation(RequestId id, std::size_t node);

  /// Undo a placement that has not started (the self-healing module's
  /// "relocation of late-invoking" microservices): the reservation is
  /// released, pending events cancelled, and the node returns to the
  /// ready/waiting state for re-placement.
  void unplace(RequestId id, std::size_t node);

  /// Mean communication delay estimate between two machines (planning aid).
  [[nodiscard]] SimDuration expected_comm(MachineId a, MachineId b) const;
  /// Mean ingress delay (request handler -> first microservice).
  [[nodiscard]] SimDuration expected_ingress() const {
    return static_cast<SimDuration>(params_.comm.same_rack_mean_us);
  }

  /// Volatility of a request type (cached).
  [[nodiscard]] double volatility(RequestTypeId type) const;

  [[nodiscard]] std::size_t arrived_count() const { return arrived_; }
  [[nodiscard]] std::size_t completed_count() const { return completed_; }

  /// Mechanism counters (observability for tests and ablations).
  struct Counters {
    std::size_t placements = 0;       ///< successful place() calls
    std::size_t early_starts = 0;     ///< nodes started before their planned time
    std::size_t early_denials = 0;    ///< early attempts pushed back to plan time
    std::size_t on_time_starts = 0;   ///< started at/after planned time
    std::size_t late_events = 0;      ///< on_late_invocation deliveries
    std::size_t reallocations = 0;    ///< adjust_limit calls
    std::size_t interference_bursts = 0;  ///< injected co-tenant bursts
    std::size_t machine_crashes = 0;      ///< crash windows entered
    std::size_t machine_recoveries = 0;   ///< crash windows exited in-horizon
    std::size_t container_faults = 0;     ///< mid-flight container deaths
    std::size_t invocation_timeouts = 0;  ///< watchdog kills
    std::size_t orphaned_running = 0;     ///< executions lost mid-flight
    std::size_t orphaned_pending = 0;     ///< placements voided by a crash
    std::size_t retries_scheduled = 0;    ///< backoff retries armed
    std::size_t retries_dropped = 0;      ///< nodes past the retry budget
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// The run's machine outage windows (pure function of the seed).
  [[nodiscard]] const std::vector<FailureWindow>& failure_schedule() const {
    return failure_schedule_;
  }

 private:
  void warmup_profiles();
  void on_arrival(RequestTypeId type);
  /// Pull the next arrival from arrival_stream_ and schedule it (chained).
  void schedule_next_stream_arrival();
  void schedule_next_interference();
  void inject_interference();
  void schedule_failures();
  /// Machine outage: orphan running executions, void pending placements,
  /// release every reservation — then hand the lost work back to the
  /// scheduler via bounded retry / on_node_orphaned.
  void crash_machine(MachineId machine);
  void recover_machine(MachineId machine);
  /// Kill one running execution (crash/fault/timeout): container destroyed,
  /// reservation released, runtime state back to ready, retry scheduled.
  void fail_running_node(ActiveRequest& ar, std::size_t node);
  void schedule_retry(ActiveRequest& ar, std::size_t node);
  void container_fault(RequestId id, std::size_t node);
  void invocation_timeout(RequestId id, std::size_t node);
  void schedule_start_attempt(ActiveRequest& ar, std::size_t node);
  void start_node(RequestId id, std::size_t node);
  void finish_node(RequestId id, std::size_t node);
  void handle_parent_finished(ActiveRequest& ar, std::size_t child, MachineId parent_machine,
                              SimTime finish_time);
  /// Re-rate all running instances on a machine and reschedule their finishes.
  void recompute_machine(MachineId machine);
  void advance_instance(DriverNode& dn, SimTime to);
  void release_reservation_tail(ActiveRequest& ar, std::size_t node, SimTime from);
  /// Audit tier: the machine's ledger at every future probe time must equal
  /// the sum of the live node reservations the driver tracks for it —
  /// capacity conservation across place/heal/release (no double-booked and
  /// no leaked reservations). No-op unless vmlp::audit::enabled().
  void audit_machine_conservation(MachineId machine) const;
  /// Copy the mechanism counters (driver, failure, engine-executed) into the
  /// telemetry registry at end of run — zero per-event cost for values the
  /// driver already tracks. No-op when telemetry is off.
  void sync_observability(const RunResult& result);
  /// Attribution pass at request completion (params_.attribution): extract
  /// the critical path from the recorded spans, observe the per-band
  /// `attribution.*` histograms, and (audit tier) assert the exact
  /// phase-sum identity. Write-only: never touches simulated state.
  void attribute_request(const ActiveRequest& ar, RequestId id);
  [[nodiscard]] double instance_rate(const app::MicroserviceType& type, const DriverNode& dn,
                                     const cluster::ResourceVector& effective) const;

  const app::Application& app_;
  IScheduler& scheduler_;
  DriverParams params_;

  sim::Engine engine_;
  cluster::Cluster cluster_;
  net::Topology topology_;
  net::CommModel comm_;
  app::ExecModel exec_;
  trace::Tracer tracer_;
  trace::ProfileStore profiles_;
  monitor::ClusterMonitor monitor_;
  stats::QosTracker qos_;

  /// One running instance on a machine. Caches the ActiveRequest pointer so
  /// the per-firing re-rate loop in recompute_machine() skips the request
  /// hash lookup; the pointer is stable (requests_ holds unique_ptrs) and the
  /// entry is removed in finish_node() before the request itself is erased.
  struct RunningRef {
    RequestId id;
    std::size_t node;
    ActiveRequest* ar;
  };

  Rng rng_;               // execution sampling
  Rng rng_interference_;  // interference injection stream
  Rng rng_failure_;       // per-invocation fault draws (schedule has its own)
  std::vector<FailureWindow> failure_schedule_;
  stats::SampleSet orphaned_latencies_;
  std::unordered_map<RequestId, std::unique_ptr<ActiveRequest>> requests_;
  /// machine id -> running instances placed there.
  std::unordered_map<std::uint32_t, std::vector<RunningRef>> running_on_;
  /// V_r per request type id, precomputed once: the lookup is hot in the
  /// self-organizing module's per-placement scoring and was previously
  /// recomputed from the service classes on every call.
  std::vector<double> volatility_cache_;
  std::vector<RequestId> arrival_order_;
  std::uint64_t next_request_ = 0;
  std::uint64_t next_instance_ = 0;
  std::uint64_t next_container_ = 0;
  std::size_t arrived_ = 0;
  std::size_t completed_ = 0;
  Counters counters_;
  /// Accumulated host-clock nanoseconds inside scheduler callbacks (see
  /// RunResult::policy_seconds). The depth counter keeps re-entrant
  /// callback chains from double-counting the nested interval.
  std::int64_t policy_ns_ = 0;
  int policy_depth_ = 0;
  /// Host-clock origin for policy-profiling slices (set when run() starts).
  std::chrono::steady_clock::time_point policy_epoch_;
  std::unique_ptr<obs::Collector> obs_;  ///< null when telemetry is off
  /// Live arrival source in streamed mode (empty in bulk mode).
  std::optional<loadgen::ArrivalStream> arrival_stream_;
  bool ran_ = false;
};

}  // namespace vmlp::sched
