// FairSched (Table VI): FCFS request queue, equal resource allocation.
//
// Every ready microservice receives an identical slice of a machine
// (capacity / kSlotsPerMachine) regardless of its demand — the fair-share
// policy of Quincy-style schedulers [22]. No admission control, no history:
// under load, machines oversubscribe and the execution model punishes the
// resulting contention.
#pragma once

#include <deque>
#include <utility>

#include "sched/scheduler.h"

namespace vmlp::sched {

class FairSched final : public IScheduler {
 public:
  static constexpr std::size_t kSlotsPerMachine = 8;

  [[nodiscard]] std::string name() const override { return "FairSched"; }
  void on_request_arrival(RequestId id) override;
  void on_node_unblocked(RequestId id, std::size_t node) override;
  void on_tick() override;

 private:
  void drain();
  std::deque<std::pair<RequestId, std::size_t>> ready_;
};

}  // namespace vmlp::sched
