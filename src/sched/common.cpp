#include "sched/common.h"

#include <cmath>

namespace vmlp::sched {

SimDuration estimate_mean_exec(SimulationDriver& driver, const app::RequestType& type,
                               std::size_t node) {
  const auto& req_node = type.nodes()[node];
  const auto est = driver.profiles().mean_exec(req_node.service, type.id());
  if (est.has_value()) return std::max<SimDuration>(1, *est);
  const auto& svc = driver.application().service(req_node.service);
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(std::llround(static_cast<double>(svc.nominal_time) *
                                               req_node.time_scale)));
}

MachineId machine_fewest_containers(const cluster::Cluster& clustr) {
  MachineId best;
  std::size_t best_count = 0;
  for (const auto& m : clustr.machines()) {
    if (!m.up()) continue;
    if (!best.valid() || m.container_count() < best_count) {
      best = m.id();
      best_count = m.container_count();
    }
  }
  return best;
}

MachineId machine_lowest_utilization(const cluster::Cluster& clustr) {
  MachineId best;
  double best_util = 0.0;
  for (const auto& m : clustr.machines()) {
    if (!m.up()) continue;
    const double u = m.utilization_sum();
    if (!best.valid() || u < best_util) {
      best = m.id();
      best_util = u;
    }
  }
  return best;
}

MachineId machine_first_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                            const cluster::ResourceVector& demand) {
  for (const auto& m : clustr.machines()) {
    if (!m.up()) continue;
    if (m.ledger().fits(start, start + duration, demand)) return m.id();
  }
  return MachineId::invalid();
}

MachineId machine_best_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                           const cluster::ResourceVector& demand) {
  MachineId best;
  double best_spare = -1.0;
  for (const auto& m : clustr.machines()) {
    if (!m.up()) continue;
    if (!m.ledger().fits(start, start + duration, demand)) continue;
    const auto avail = m.ledger().available(start, start + duration);
    if (avail.cpu > best_spare) {
      best_spare = avail.cpu;
      best = m.id();
    }
  }
  return best;
}

}  // namespace vmlp::sched
