#include "sched/common.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace vmlp::sched {

namespace {

/// Baseline scans on a multi-cell topology go cell by cell in the router's
/// ranked (least-loaded-first) order and stop at the first cell that yields a
/// candidate — the same bounded-search story as the v-MLP router, so baseline
/// placement cost also stays O(cell), not O(cluster), as machine count grows.
/// On a single-cell topology the ranked order is the whole ascending-id range
/// and every helper is bit-identical to the historical flat scan.
///
/// The density ranking itself is an exact-integer cross-multiplication sort
/// over at most a few dozen cells — deliberately NOT routed through the
/// common/simd.h kernels (no float lanes to fill, and the integer compare is
/// what keeps ranking independent of accumulation order). The per-machine
/// scans below are where the SIMD work lands, indirectly: every
/// ledger().fits/available call now runs the dispatched kernels over the
/// ledger's SoA mirrors, and the ranked buffer is reused per thread so the
/// scan itself is allocation-free after warm-up (worker threads run disjoint
/// trials; a thread-local is exactly one live scan deep).
template <typename PerCell>
MachineId scan_ranked_cells(const cluster::Cluster& clustr, PerCell&& per_cell) {
  static thread_local std::vector<std::size_t> ranked;
  clustr.cells().ranked_cells(ranked);
  for (std::size_t cell : ranked) {
    const std::size_t begin = clustr.cells().cell_begin(cell);
    const std::size_t end = begin + clustr.cells().cell_size(cell);
    const MachineId found = per_cell(begin, end);
    if (found.valid()) return found;
  }
  return MachineId::invalid();
}

}  // namespace

SimDuration estimate_mean_exec(SimulationDriver& driver, const app::RequestType& type,
                               std::size_t node) {
  const auto& req_node = type.nodes()[node];
  const auto est = driver.profiles().mean_exec(req_node.service, type.id());
  if (est.has_value()) return std::max<SimDuration>(1, *est);
  const auto& svc = driver.application().service(req_node.service);
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(std::llround(static_cast<double>(svc.nominal_time) *
                                               req_node.time_scale)));
}

MachineId machine_fewest_containers(const cluster::Cluster& clustr) {
  return scan_ranked_cells(clustr, [&](std::size_t begin, std::size_t end) {
    MachineId best;
    std::size_t best_count = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& m = clustr.machine(MachineId(static_cast<std::uint32_t>(i)));
      if (!m.up()) continue;
      if (!best.valid() || m.container_count() < best_count) {
        best = m.id();
        best_count = m.container_count();
      }
    }
    return best;
  });
}

MachineId machine_lowest_utilization(const cluster::Cluster& clustr) {
  return scan_ranked_cells(clustr, [&](std::size_t begin, std::size_t end) {
    MachineId best;
    double best_util = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& m = clustr.machine(MachineId(static_cast<std::uint32_t>(i)));
      if (!m.up()) continue;
      const double u = m.utilization_sum();
      if (!best.valid() || u < best_util) {
        best = m.id();
        best_util = u;
      }
    }
    return best;
  });
}

MachineId machine_first_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                            const cluster::ResourceVector& demand) {
  return scan_ranked_cells(clustr, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& m = clustr.machine(MachineId(static_cast<std::uint32_t>(i)));
      if (!m.up()) continue;
      if (m.ledger().fits(start, start + duration, demand)) return m.id();
    }
    return MachineId::invalid();
  });
}

MachineId machine_best_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                           const cluster::ResourceVector& demand) {
  // Multi-cell: best fit *within* the least-loaded cell that fits at all —
  // cell-local best fit, by design, so the scan stays cell-bounded.
  return scan_ranked_cells(clustr, [&](std::size_t begin, std::size_t end) {
    MachineId best;
    double best_spare = -1.0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& m = clustr.machine(MachineId(static_cast<std::uint32_t>(i)));
      if (!m.up()) continue;
      if (!m.ledger().fits(start, start + duration, demand)) continue;
      const auto avail = m.ledger().available(start, start + duration);
      if (avail.cpu > best_spare) {
        best_spare = avail.cpu;
        best = m.id();
      }
    }
    return best;
  });
}

}  // namespace vmlp::sched
