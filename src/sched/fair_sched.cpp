#include "sched/fair_sched.h"

#include <algorithm>

#include "sched/common.h"
#include "sched/driver.h"

namespace vmlp::sched {

void FairSched::on_request_arrival(RequestId id) {
  ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return;
  for (std::size_t node : ar->runtime.ready_nodes()) ready_.emplace_back(id, node);
  drain();
}

void FairSched::on_node_unblocked(RequestId id, std::size_t node) {
  ready_.emplace_back(id, node);
  drain();
}

void FairSched::on_tick() { drain(); }

void FairSched::drain() {
  while (!ready_.empty()) {
    const auto [id, node] = ready_.front();
    ready_.pop_front();
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr || ar->nodes[node].placed) continue;

    const MachineId machine = machine_fewest_containers(driver_->cluster());
    if (!machine.valid()) {
      // Every machine is in a crash window: requeue and wait for a recovery
      // (the periodic tick re-drains).
      ready_.emplace_front(id, node);
      return;
    }
    const cluster::Machine& m = driver_->cluster().machine(machine);
    // Fair share: capacity split equally among the machine's occupants
    // (including the newcomer), floored so a crowded machine still makes
    // progress.
    const double occupants = static_cast<double>(m.container_count() + 1);
    const cluster::ResourceVector slice =
        m.capacity() * (1.0 / std::min(occupants, static_cast<double>(kSlotsPerMachine) * 2.0));
    const SimDuration est = estimate_mean_exec(*driver_, ar->runtime.type(), node);
    driver_->place(id, node, machine, slice, driver_->now(), est);
  }
}

}  // namespace vmlp::sched
