// FullProfile (Table VI): priority reordering + whole-application ("overall")
// profiling — a Paragon-style workload-specific scheme [11].
//
// The scheme sees each application only through its *overall* profile: the
// time-averaged aggregate demand and the mean stage duration of the whole
// request. Stages are admitted and allocated with those averages — the heavy
// stages of a volatile chain get less than they need (capped, slower, wider
// tails) while the light stages over-reserve (wasted capacity). The ready
// queue is reordered by shortest-overall-profile first. This is exactly the
// paper's critique: whole-application profiles ignore the chain's per-stage
// phase structure.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/resources.h"
#include "sched/scheduler.h"

namespace vmlp::sched {

class FullProfile final : public IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FullProfile"; }
  void on_request_arrival(RequestId id) override;
  void on_node_unblocked(RequestId id, std::size_t node) override;
  void on_tick() override;

 private:
  struct OverallProfile {
    cluster::ResourceVector avg_demand;  ///< time-averaged aggregate demand
    SimDuration total_time = 0;          ///< profiled total busy time
    SimDuration avg_stage_time = 0;      ///< total_time / #stages
  };

  void drain();
  /// Overall profile of a request *type*, cached with a coarse TTL (profile
  /// means drift slowly).
  [[nodiscard]] const OverallProfile& profile_of(RequestTypeId type) const;

  std::vector<std::pair<RequestId, std::size_t>> ready_;
  struct CachedProfile {
    SimTime computed_at = -1;
    OverallProfile profile;
  };
  mutable std::unordered_map<RequestTypeId, CachedProfile> profile_cache_;
  static constexpr SimDuration kProfileCacheTtl = 100 * kMsec;
};

}  // namespace vmlp::sched
