// Scheduler policy interface.
//
// The SimulationDriver owns all mechanism (containers, reservations, events,
// communication, metrics); a scheduler is a pure policy object that reacts to
// driver callbacks and issues placements through the driver's API. All five
// evaluated schemes (Table VI) implement this interface.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

namespace vmlp::sched {

class SimulationDriver;

class IScheduler {
 public:
  virtual ~IScheduler() = default;

  /// Scheme name as printed in result tables ("FairSched", "v-MLP", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the run starts; keep the driver pointer.
  virtual void attach(SimulationDriver& driver) { driver_ = &driver; }

  /// A new request arrived (its root nodes are ready).
  virtual void on_request_arrival(RequestId id) = 0;
  /// A node's dependencies completed and it is not placed yet.
  virtual void on_node_unblocked(RequestId id, std::size_t node) = 0;
  /// Periodic scheduling tick.
  virtual void on_tick() = 0;
  /// A planned node failed to start by its planned time (v-MLP's self-healing
  /// trigger). Default: ignore.
  virtual void on_late_invocation(RequestId id, std::size_t node) {
    (void)id;
    (void)node;
  }
  /// A node lost an execution or placement to a failure (machine crash,
  /// container fault, invocation timeout) and its dependencies are met; the
  /// driver's bounded-retry policy wants it re-placed. Default: blind retry —
  /// treat it exactly like a freshly unblocked node. v-MLP overrides this to
  /// route orphans through its relocation path.
  virtual void on_node_orphaned(RequestId id, std::size_t node) {
    on_node_unblocked(id, node);
  }
  /// A node started executing. Default: ignore.
  virtual void on_node_started(RequestId id, std::size_t node) {
    (void)id;
    (void)node;
  }
  /// A node finished. Default: ignore.
  virtual void on_node_finished(RequestId id, std::size_t node) {
    (void)id;
    (void)node;
  }
  /// The whole request completed. Default: ignore.
  virtual void on_request_finished(RequestId id) { (void)id; }

 protected:
  SimulationDriver* driver_ = nullptr;
};

}  // namespace vmlp::sched
