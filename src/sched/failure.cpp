#include "sched/failure.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vmlp::sched {

std::vector<FailureWindow> build_failure_schedule(const FailureParams& params, std::uint64_t seed,
                                                  SimTime horizon, std::size_t machine_count) {
  std::vector<FailureWindow> schedule;
  if (!params.enabled || params.crashes_per_second <= 0.0 || machine_count == 0) return schedule;
  VMLP_CHECK_MSG(horizon > 0, "failure schedule needs a positive horizon");
  VMLP_CHECK_MSG(params.recovery_mean > 0, "recovery_mean must be positive");

  Rng rng = Rng(seed).fork("failure");
  std::vector<SimTime> down_until(machine_count, 0);
  double t_sec = 0.0;
  const double horizon_sec = static_cast<double>(horizon) / kSec;
  while (true) {
    t_sec += rng.exponential_mean(1.0 / params.crashes_per_second);
    if (t_sec >= horizon_sec) break;
    const auto down_at = static_cast<SimTime>(std::llround(t_sec * kSec));
    if (down_at >= horizon) break;
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(machine_count) - 1));
    const double len_sec =
        rng.exponential_mean(static_cast<double>(params.recovery_mean) / kSec);
    const auto length =
        std::max<SimDuration>(kMsec, static_cast<SimDuration>(std::llround(len_sec * kSec)));
    // The victim is still down: discard (the draws above are consumed either
    // way, keeping the stream aligned across parameter tweaks elsewhere).
    if (down_at < down_until[victim]) continue;
    down_until[victim] = down_at + length;
    schedule.push_back(
        FailureWindow{MachineId(static_cast<std::uint32_t>(victim)), down_at, down_at + length});
  }
  return schedule;
}

}  // namespace vmlp::sched
