#include "sched/cur_sched.h"

#include "sched/common.h"
#include "sched/driver.h"

namespace vmlp::sched {

void CurSched::on_request_arrival(RequestId id) {
  ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return;
  for (std::size_t node : ar->runtime.ready_nodes()) ready_.emplace_back(id, node);
  drain();
}

void CurSched::on_node_unblocked(RequestId id, std::size_t node) {
  ready_.emplace_back(id, node);
  drain();
}

void CurSched::on_tick() { drain(); }

void CurSched::drain() {
  while (!ready_.empty()) {
    const auto [id, node] = ready_.front();
    ready_.pop_front();
    ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr || ar->nodes[node].placed) continue;

    const MachineId machine = machine_lowest_utilization(driver_->cluster());
    if (!machine.valid()) {
      // Whole cluster down: requeue and wait for a recovery.
      ready_.emplace_front(id, node);
      return;
    }
    const auto& req_node = ar->runtime.type().nodes()[node];
    const auto& svc = driver_->application().service(req_node.service);
    const SimDuration est = estimate_mean_exec(*driver_, ar->runtime.type(), node);
    driver_->place(id, node, machine, svc.demand, driver_->now(), est);
  }
}

}  // namespace vmlp::sched
