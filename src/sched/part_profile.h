// PartProfile (Table VI): priority reordering + per-microservice ("partial")
// profiling — a GrandSLAm-style scheme [26].
//
// Ready microservices queue by least slack first: slack = SLO budget minus
// time elapsed minus the profiled mean time of the request's remaining
// critical path. Placement admits a stage only onto a machine whose ledger
// fits the stage's demand for its profiled mean duration; otherwise the stage
// waits. Per-stage admission keeps QoS violations low, but stage-by-stage
// gaps idle the pipeline — exactly the efficiency gap v-MLP targets.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sched/scheduler.h"

namespace vmlp::sched {

class PartProfile final : public IScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "PartProfile"; }
  void on_request_arrival(RequestId id) override;
  void on_node_unblocked(RequestId id, std::size_t node) override;
  void on_tick() override;

 private:
  void drain();
  [[nodiscard]] SimDuration remaining_path_estimate(RequestId id, std::size_t from_node) const;

  std::vector<std::pair<RequestId, std::size_t>> ready_;
  /// (request type, node) -> cached longest-remaining-path estimate; profile
  /// means drift slowly, so entries refresh on a coarse timer.
  struct CachedPath {
    SimTime computed_at = -1;
    SimDuration value = 0;
  };
  mutable std::unordered_map<std::uint64_t, CachedPath> path_cache_;
  static constexpr SimDuration kPathCacheTtl = 100 * kMsec;
};

}  // namespace vmlp::sched
