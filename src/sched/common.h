// Shared policy helpers used across the baseline schedulers.
#pragma once

#include "app/application.h"
#include "cluster/cluster.h"
#include "sched/driver.h"

namespace vmlp::sched {

/// Mean execution-time estimate for one request node: profile-store mean when
/// history exists, nominal×scale otherwise.
SimDuration estimate_mean_exec(SimulationDriver& driver, const app::RequestType& type,
                               std::size_t node);

/// Machine with the fewest containers (ties: lowest id).
MachineId machine_fewest_containers(const cluster::Cluster& clustr);

/// Machine with the lowest instantaneous utilization sum (ties: lowest id).
MachineId machine_lowest_utilization(const cluster::Cluster& clustr);

/// First machine whose ledger fits `demand` over [start, start+duration);
/// invalid id when none does.
MachineId machine_first_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                            const cluster::ResourceVector& demand);

/// Machine with the most spare capacity over [start, start+duration) that
/// still fits `demand` (best-fit by spare CPU); invalid id when none fits.
MachineId machine_best_fit(const cluster::Cluster& clustr, SimTime start, SimDuration duration,
                           const cluster::ResourceVector& demand);

}  // namespace vmlp::sched
