#include "monitor/monitor.h"

#include "common/error.h"

namespace vmlp::monitor {

ClusterMonitor::ClusterMonitor(const cluster::Cluster& clustr, SimDuration period,
                               SimDuration bucket, SimTime horizon)
    : cluster_(clustr),
      period_(period),
      horizon_(horizon),
      overall_(bucket, horizon),
      cpu_(bucket, horizon),
      mem_(bucket, horizon),
      io_(bucket, horizon) {
  VMLP_CHECK_MSG(period > 0, "monitor period must be positive");
}

void ClusterMonitor::attach(sim::Engine& engine) {
  engine.schedule_periodic(engine.now(), period_, [this, &engine] { sample(engine.now()); });
}

void ClusterMonitor::sample(SimTime now) {
  if (now < 0 || now >= horizon_) return;
  const cluster::ResourceVector usage = cluster_.total_usage();
  const cluster::ResourceVector capacity = cluster_.total_capacity();
  const double overall = cluster_.overall_utilization();

  overall_.add(now, overall);
  cpu_.add(now, capacity.cpu > 0 ? usage.cpu / capacity.cpu : 0.0);
  mem_.add(now, capacity.mem > 0 ? usage.mem / capacity.mem : 0.0);
  io_.add(now, capacity.io > 0 ? usage.io / capacity.io : 0.0);

  latest_ = UtilizationSnapshot{now, overall, usage, capacity};
  ++samples_;
  overall_sum_ += overall;
}

double ClusterMonitor::mean_overall() const {
  return samples_ == 0 ? 0.0 : overall_sum_ / static_cast<double>(samples_);
}

}  // namespace vmlp::monitor
