// Cluster resource monitoring (the Prometheus/cAdvisor analogue).
//
// A ClusterMonitor samples every machine's usage on a fixed period driven by
// the simulation engine and accumulates: the paper's overall utilization
// U(t) series (Fig. 11), per-resource cluster series, and instantaneous
// snapshots for schedulers that allocate by current load.
#pragma once

#include "cluster/cluster.h"
#include "sim/engine.h"
#include "stats/timeseries.h"

namespace vmlp::monitor {

struct UtilizationSnapshot {
  SimTime time = 0;
  double overall = 0.0;  ///< the paper's U at this instant
  cluster::ResourceVector usage;
  cluster::ResourceVector capacity;
};

class ClusterMonitor {
 public:
  /// Samples `clustr` every `period`, recording into buckets of `bucket`
  /// width over [0, horizon).
  ClusterMonitor(const cluster::Cluster& clustr, SimDuration period, SimDuration bucket,
                 SimTime horizon);

  /// Arm the periodic sampling on the engine (first sample at t=0).
  void attach(sim::Engine& engine);
  /// Take one sample immediately (also usable without an engine). Samples at
  /// or past the horizon are ignored: Engine::run_until(horizon) fires events
  /// with time <= horizon, so a period dividing the horizon lands one tick
  /// exactly on it — outside every bucket.
  void sample(SimTime now);

  [[nodiscard]] const stats::TimeSeries& overall_series() const { return overall_; }
  [[nodiscard]] const stats::TimeSeries& cpu_series() const { return cpu_; }
  [[nodiscard]] const stats::TimeSeries& mem_series() const { return mem_; }
  [[nodiscard]] const stats::TimeSeries& io_series() const { return io_; }
  [[nodiscard]] const UtilizationSnapshot& latest() const { return latest_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_; }
  [[nodiscard]] SimDuration period() const { return period_; }

  /// Mean of U over all samples taken so far.
  [[nodiscard]] double mean_overall() const;

 private:
  const cluster::Cluster& cluster_;
  SimDuration period_;
  SimTime horizon_;
  stats::TimeSeries overall_;
  stats::TimeSeries cpu_;
  stats::TimeSeries mem_;
  stats::TimeSeries io_;
  UtilizationSnapshot latest_;
  std::size_t samples_ = 0;
  double overall_sum_ = 0.0;
};

}  // namespace vmlp::monitor
