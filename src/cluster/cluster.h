// Cluster: the set of simulated machines plus aggregate metrics
// (the U utilization metric of Section V-B).
#pragma once

#include <vector>

#include "cluster/machine.h"
#include "common/types.h"

namespace vmlp::cluster {

struct ClusterParams {
  std::size_t machine_count = 100;
  // 4-core worker nodes (Table IV.A's cluster averages 6 cores/node; smaller
  // nodes keep the paper's 1000 req/s peak in contention territory).
  ResourceVector machine_capacity{4000.0, 16384.0, 1000.0};
};

class Cluster {
 public:
  explicit Cluster(const ClusterParams& params);

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] Machine& machine(MachineId id);
  [[nodiscard]] const Machine& machine(MachineId id) const;
  [[nodiscard]] std::vector<Machine>& machines() { return machines_; }
  [[nodiscard]] const std::vector<Machine>& machines() const { return machines_; }

  /// The paper's U: sum over nodes of (u_cpu+u_mem+u_io) divided by
  /// (#resource types × #nodes). In [0, 1].
  [[nodiscard]] double overall_utilization() const;

  /// Total current usage and capacity across the cluster.
  [[nodiscard]] ResourceVector total_usage() const;
  [[nodiscard]] ResourceVector total_capacity() const;

  /// Drop reservation-profile history before t on every machine.
  void compact_ledgers_before(SimTime t);

 private:
  std::vector<Machine> machines_;
};

}  // namespace vmlp::cluster
