// Cluster: the set of simulated machines plus aggregate metrics
// (the U utilization metric of Section V-B).
#pragma once

#include <vector>

#include "cluster/cell_topology.h"
#include "cluster/machine.h"
#include "common/error.h"
#include "common/types.h"

namespace vmlp::cluster {

struct ClusterParams {
  std::size_t machine_count = 100;
  // 4-core worker nodes (Table IV.A's cluster averages 6 cores/node; smaller
  // nodes keep the paper's 1000 req/s peak in contention territory).
  ResourceVector machine_capacity{4000.0, 16384.0, 1000.0};
  /// Back every machine's ledger with the legacy map representation instead
  /// of the indexed flat vector — the differential-testing reference for the
  /// admission fast path (tools/determinism_check claim 5). Queries are
  /// decision-identical across backends; only speed differs.
  bool legacy_ledger = false;
  /// Cell partition for the scale-out router (see cell_topology.h). The
  /// default single cell is byte-identical to the pre-topology flat cluster.
  CellTopologyParams topology;
};

class Cluster {
 public:
  explicit Cluster(const ClusterParams& params);

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  // Inline: the admission probe loop resolves machines tens of millions of
  // times per contended run; an out-of-line call dominated the lookup.
  [[nodiscard]] Machine& machine(MachineId id) {
    VMLP_CHECK_MSG(id.valid() && id.value() < machines_.size(), "machine id out of range");
    return machines_[id.value()];
  }
  [[nodiscard]] const Machine& machine(MachineId id) const {
    VMLP_CHECK_MSG(id.valid() && id.value() < machines_.size(), "machine id out of range");
    return machines_[id.value()];
  }
  [[nodiscard]] std::vector<Machine>& machines() { return machines_; }
  [[nodiscard]] const std::vector<Machine>& machines() const { return machines_; }

  /// The paper's U: sum over nodes of (u_cpu+u_mem+u_io) divided by
  /// (#resource types × #nodes). In [0, 1].
  [[nodiscard]] double overall_utilization() const;

  /// Total current usage and capacity across the cluster.
  [[nodiscard]] ResourceVector total_usage() const;
  [[nodiscard]] ResourceVector total_capacity() const;

  /// Drop reservation-profile history before t on every machine.
  void compact_ledgers_before(SimTime t);

  /// Cell partition + router load counters + headroom summary index.
  [[nodiscard]] CellTopology& cells() { return cells_; }
  [[nodiscard]] const CellTopology& cells() const { return cells_; }

 private:
  std::vector<Machine> machines_;
  CellTopology cells_;
};

}  // namespace vmlp::cluster
