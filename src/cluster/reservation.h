// ReservationLedger: a machine's piecewise-constant *future* resource-usage
// profile.
//
// This is the structure behind Algorithm 1's admission test
// `Compare t → t+Δt : l_res ≥ u_res` — the self-organizing module reserves a
// microservice's demand over its estimated execution window, so later
// placement decisions see the machine's committed future, not just its
// present load. Non-reserving baseline schedulers use it degenerately
// (reserve from "now" with no lookahead).
//
// Representation: std::map<SimTime, ResourceVector> where each entry gives
// the usage level from its key until the next key. The map always contains a
// segment starting at 0 (or the compaction point).
#pragma once

#include <map>

#include "cluster/resources.h"
#include "common/types.h"

namespace vmlp::cluster {

class ReservationLedger {
 public:
  explicit ReservationLedger(ResourceVector capacity);

  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }

  /// Add `r` to the usage profile over [t0, t1). Overbooking is legal — the
  /// execution model punishes it — but tracked; `fits` tells schedulers
  /// whether the addition would stay within capacity.
  void reserve(SimTime t0, SimTime t1, const ResourceVector& r);
  /// Subtract `r` over [t0, t1) (e.g. an instance finished early or was
  /// re-planned). Throws if the profile would go negative.
  void release(SimTime t0, SimTime t1, const ResourceVector& r);

  /// Usage level at time t.
  [[nodiscard]] ResourceVector usage_at(SimTime t) const;
  /// Component-wise max usage over [t0, t1).
  [[nodiscard]] ResourceVector max_usage(SimTime t0, SimTime t1) const;
  /// capacity - max_usage over the window, clamped at 0.
  [[nodiscard]] ResourceVector available(SimTime t0, SimTime t1) const;
  /// Algorithm 1's admission test: does `r` fit within spare capacity over
  /// the whole window [t0, t1)?
  [[nodiscard]] bool fits(SimTime t0, SimTime t1, const ResourceVector& r) const;

  /// First time >= `from` at which `r` fits for `duration`, searching segment
  /// boundaries up to `horizon`. Returns kTimeInfinity if none.
  [[nodiscard]] SimTime earliest_fit(SimTime from, SimDuration duration, const ResourceVector& r,
                                     SimTime horizon) const;

  /// Drop profile detail before `t` (memory bound for long runs). The level
  /// at `t` is preserved.
  void compact_before(SimTime t);

  /// Deep structural validation (audit tier): the profile is non-empty,
  /// every level is finite and non-negative, and the segment list is
  /// canonical (no adjacent equal levels). Throws
  /// InvariantError on violation. Called automatically after mutations when
  /// vmlp::audit::enabled(); also callable directly from tests.
  void audit_invariants() const;

  [[nodiscard]] std::size_t segment_count() const { return profile_.size(); }

 private:
  /// Ensure a map key exists exactly at t, splitting the covering segment.
  std::map<SimTime, ResourceVector>::iterator split_at(SimTime t);
  /// Merge adjacent segments with equal levels around the touched range.
  void coalesce(SimTime t0, SimTime t1);

  ResourceVector capacity_;
  std::map<SimTime, ResourceVector> profile_;
};

}  // namespace vmlp::cluster
