// ReservationLedger: a machine's piecewise-constant *future* resource-usage
// profile.
//
// This is the structure behind Algorithm 1's admission test
// `Compare t → t+Δt : l_res ≥ u_res` — the self-organizing module reserves a
// microservice's demand over its estimated execution window, so later
// placement decisions see the machine's committed future, not just its
// present load. Non-reserving baseline schedulers use it degenerately
// (reserve from "now" with no lookahead).
//
// Two interchangeable backends (selected per ledger at construction):
//
//  * kFlat (default) — the admission fast path. Segments live in a flat
//    sorted vector (cache-friendly iteration, batched reserve/release
//    edits). Each segment caches a scalar *headroom* (the tightest
//    remaining-capacity fraction across resource dimensions), and a lazily
//    rebuilt coarse index stores per-block component-wise max/min levels
//    plus the whole-profile peak. `fits` / `max_usage` / `available` then
//    answer by walking blocks instead of every segment in the window, and
//    an uncontended window is accepted from the cached peak alone.
//  * kLegacyMap — the original std::map<SimTime, ResourceVector>
//    representation, kept as a differential-testing reference. Every query
//    is **decision-identical** across backends: both maintain the same
//    canonical segment profile and perform the same floating-point
//    arithmetic in the same order, so fits/max_usage/available/usage_at/
//    earliest_fit return byte-identical results (tools/determinism_check
//    claim 5 enforces this end-to-end).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "cluster/resources.h"
#include "common/arena.h"
#include "common/types.h"

namespace vmlp::obs {
class Collector;
}

namespace vmlp::simd {
struct KernelTable;
}

namespace vmlp::cluster {

/// "No covering-index hint" sentinel for ReservationLedger::fits /
/// span_could_fit. See the hint contract on fits().
inline constexpr std::size_t kNoCoverHint = static_cast<std::size_t>(-1);

class ReservationLedger {
 public:
  enum class Backend { kFlat, kLegacyMap };

  explicit ReservationLedger(ResourceVector capacity, Backend backend = Backend::kFlat);

  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }
  [[nodiscard]] Backend backend() const { return backend_; }

  /// Add `r` to the usage profile over [t0, t1). Overbooking is legal — the
  /// execution model punishes it — but tracked; `fits` tells schedulers
  /// whether the addition would stay within capacity.
  void reserve(SimTime t0, SimTime t1, const ResourceVector& r);
  /// Subtract `r` over [t0, t1) (e.g. an instance finished early or was
  /// re-planned). Throws if the profile would go negative.
  void release(SimTime t0, SimTime t1, const ResourceVector& r);

  /// Usage level at time t.
  [[nodiscard]] ResourceVector usage_at(SimTime t) const;
  /// Component-wise max usage over [t0, t1).
  [[nodiscard]] ResourceVector max_usage(SimTime t0, SimTime t1) const;
  /// Component-wise min usage over [t0, t1) — the *best* level the window
  /// ever reaches. Admission quick-rejects use it: if demand does not fit
  /// even against the window minimum, no start inside the window can admit.
  [[nodiscard]] ResourceVector min_usage(SimTime t0, SimTime t1) const;
  /// Exactly `(min_usage(t0, t1) + r).fits_within(capacity())`, but with an
  /// early exit: the running min only decreases as segments fold in and
  /// double addition is monotone per component, so the first partial min
  /// that admits the demand already decides the answer. Admission probe
  /// pruning calls this on every contended machine; the common "machine is
  /// probeable" verdict usually resolves within a segment or two instead of
  /// walking the whole multi-step span.
  /// `cover_hint` (optional, flat backend): caller-held covering-index
  /// cache for repeated queries with nearby window starts. Any value is
  /// accepted — a hint that no longer names a segment starting at or before
  /// t0 in the *current* profile (kNoCoverHint, out of range, or left ahead
  /// by mutations) falls back to the binary search; a valid one is walked
  /// forward to covering_index(t0), which is what the hint holds on exit.
  /// The admission probe loop keeps one hint per machine across stages, so
  /// most probes skip the binary search entirely. The covering index found
  /// is identical either way — results do not depend on the hint.
  [[nodiscard]] bool span_could_fit(SimTime t0, SimTime t1, const ResourceVector& r,
                                    std::size_t* cover_hint = nullptr) const;
  /// capacity - max_usage over the window, clamped at 0.
  [[nodiscard]] ResourceVector available(SimTime t0, SimTime t1) const;
  /// Algorithm 1's admission test: does `r` fit within spare capacity over
  /// the whole window [t0, t1)? `cover_hint`: see span_could_fit.
  /// `refit_out` (optional, flat backend): when the test fails, receives the
  /// start of the first segment after the maximal run of blocking segments
  /// containing the first blocker found (kTimeInfinity when the run reaches
  /// the profile tail) — the same skip bound earliest_fit uses. Any window of
  /// the same demand and duration starting at or after t0 but before that
  /// bound still overlaps the run and provably fails, so the admission probe
  /// loop can discard those slip steps without re-walking the ledger. Left
  /// untouched when the test passes (or on the legacy backend).
  [[nodiscard]] bool fits(SimTime t0, SimTime t1, const ResourceVector& r,
                          std::size_t* cover_hint = nullptr, SimTime* refit_out = nullptr) const;

  /// First time >= `from` at which `r` fits for `duration`, searching segment
  /// boundaries up to `horizon`. Returns kTimeInfinity if none. The flat
  /// backend skips directly past the maximal run of blocking segments after
  /// each failed probe; the legacy backend advances one boundary at a time
  /// (the pre-fast-path behaviour, kept as the reference). `probes_out`, when
  /// non-null, receives the number of candidate start times evaluated — the
  /// probe-count regression tests pin the flat backend's skipping.
  [[nodiscard]] SimTime earliest_fit(SimTime from, SimDuration duration, const ResourceVector& r,
                                     SimTime horizon, std::size_t* probes_out = nullptr) const;

  /// Drop profile detail before `t` (memory bound for long runs). The level
  /// at `t` is preserved.
  void compact_before(SimTime t);

  /// Deep structural validation (audit tier): the profile is non-empty,
  /// every level is finite and non-negative, and the segment list is
  /// canonical (no adjacent equal levels). The flat backend additionally
  /// checks segment ordering and cached-headroom consistency. Throws
  /// InvariantError on violation. Called automatically after mutations when
  /// vmlp::audit::enabled(); also callable directly from tests.
  void audit_invariants() const;

  [[nodiscard]] std::size_t segment_count() const {
    return backend_ == Backend::kFlat ? segs_.size() : profile_.size();
  }

  /// Monotonic mutation epoch: incremented by every reserve/release and by
  /// any compact_before that actually erases history. Cached summaries built
  /// from this ledger (the cell headroom index) compare epochs to detect
  /// staleness without being wired into the mutation path.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Guaranteed free fraction: min over dimensions of
  /// (capacity - whole-profile peak) / capacity, clamped at 0. A demand whose
  /// demand_fraction_of() is strictly below this fits at *every* time — the
  /// cell headroom index uses it as a sufficient-fit summary. Flat backend
  /// reads the incrementally maintained peak upper bound WITHOUT forcing an
  /// index rebuild, so the call is O(1) and the result is exact after
  /// reserve-only mutation histories and a sound lower bound (peak never
  /// understated) after releases, re-tightening on the next indexed query;
  /// the legacy backend folds the profile (reference path, not
  /// performance-relevant).
  [[nodiscard]] double free_fraction() const;

  /// Max capacity-fraction `r` needs in any dimension (+inf when it needs a
  /// dimension the machine lacks). Public counterpart of the internal scalar
  /// used by the headroom fast path, exposed for the cell headroom index.
  [[nodiscard]] double demand_fraction_of(const ResourceVector& r) const {
    return demand_fraction(r);
  }

  /// Attach (or detach with nullptr) a telemetry collector. Write-only:
  /// recorded hint-hit/probe/booking counts never feed back into any query
  /// result, so observed and unobserved ledgers answer identically.
  void set_observer(obs::Collector* obs) { obs_ = obs; }

 private:
  /// One piecewise-constant segment: the usage level from `start` until the
  /// next segment's start (the last segment extends to infinity).
  struct Segment {
    SimTime start;
    ResourceVector level;
    /// Cached min over dimensions of (capacity - level) / capacity — the
    /// scalar headroom fraction. A demand whose own max capacity-fraction is
    /// below this provably fits the segment without the vector compare.
    double headroom;
  };

  /// Segments per coarse-index block (32): small enough that partial-block
  /// walks stay short, large enough that indexed window queries touch ~n/32
  /// entries.
  static constexpr std::size_t kBlockShift = 5;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

  // --- flat backend ------------------------------------------------------
  [[nodiscard]] double headroom_of(const ResourceVector& level) const;
  /// Max capacity-fraction the demand needs in any dimension (+inf when it
  /// needs a dimension the machine lacks). Compared against cached headroom
  /// with a safety margin so the scalar fast path never accepts a demand the
  /// exact vector compare would reject.
  [[nodiscard]] double demand_fraction(const ResourceVector& r) const;
  /// Index of the segment covering t. Throws if t precedes the origin.
  [[nodiscard]] std::size_t covering_index(SimTime t) const;
  /// covering_index(t) resolved through an optional caller-held hint (see
  /// fits): a valid hint turns the binary search into a short forward walk.
  [[nodiscard]] std::size_t hinted_covering_index(SimTime t, std::size_t* cover_hint) const;
  /// First segment index with start >= t.
  [[nodiscard]] std::size_t lower_index(SimTime t) const;
  /// Ensure a segment starts exactly at t; returns its index.
  std::size_t split_index_at(SimTime t);
  void coalesce_flat(SimTime t0, SimTime t1);
  /// Rebuild peak/block caches if a mutation invalidated them.
  void ensure_index() const;
  [[nodiscard]] bool segment_blocks(const Segment& s, const ResourceVector& r,
                                    double frac) const;
  /// Start of the first segment after the maximal run of blocking segments
  /// beginning at `first_blocking` (kTimeInfinity when the run reaches the
  /// profile tail). The fits() refit bound — see refit_out.
  [[nodiscard]] SimTime blocking_run_end(std::size_t first_blocking, const ResourceVector& r,
                                         double frac) const;

  // --- SIMD SoA mirrors (flat backend, simd::enabled() only) -------------
  /// Bring the SoA mirrors up to date with segs_ and the block index.
  /// Precondition: ensure_index() already ran (the block mirrors copy from
  /// block_max_/block_min_). Same lazy-tail discipline as ensure_index:
  /// mutations only mark `mirror_from_`/ensure_index only lowers
  /// `block_mirror_from_`, and the stale tail is rewritten here on the next
  /// SIMD query.
  void ensure_mirror() const;
  /// SIMD-active arm of ensure_index(): syncs the segment planes, then folds
  /// each stale block [first, blocks) from them with the reduce kernels,
  /// writing block_max_/block_min_ AND the block mirror planes in one pass
  /// (bitwise-identical to the scalar AoS fold — min/max over finite doubles
  /// is order-independent). Leaves every mirror current (mirror_clean_).
  void rebuild_index_simd(const simd::KernelTable& k, std::size_t first,
                          std::size_t blocks) const;
  /// lower_index(t) on the contiguous start-time mirror, galloping out of
  /// `lo` (caller guarantees soa_start_[lo] < t). Query windows usually span
  /// a handful of segments of a long profile, so doubling from the covering
  /// index beats a whole-plane binary search.
  [[nodiscard]] std::size_t lower_index_soa(std::size_t lo, SimTime t) const;
  /// Vectorized twins of the scalar block-walk query loops, dispatched on the
  /// caller's one-per-query kernel-table load. Byte-identical verdicts by
  /// construction — see the bit-exactness argument in common/simd.h and
  /// DESIGN.md §14.
  [[nodiscard]] bool span_could_fit_simd(const simd::KernelTable& k, std::size_t lo, SimTime t1,
                                         const ResourceVector& r) const;
  [[nodiscard]] bool fits_simd(const simd::KernelTable& k, std::size_t lo, SimTime t1,
                               const ResourceVector& r, SimTime* refit_out) const;
  [[nodiscard]] ResourceVector extreme_usage_simd(const simd::KernelTable& k, std::size_t lo,
                                                  SimTime t1, bool want_max) const;

  // --- legacy backend ----------------------------------------------------
  /// Ensure a map key exists exactly at t, splitting the covering segment.
  std::map<SimTime, ResourceVector>::iterator split_at(SimTime t);
  /// Merge adjacent segments with equal levels around the touched range.
  void coalesce(SimTime t0, SimTime t1);

  ResourceVector capacity_;
  /// Component-wise 1/capacity (0 where capacity is 0) for headroom math.
  ResourceVector inv_capacity_;
  Backend backend_;
  obs::Collector* obs_ = nullptr;  ///< optional telemetry sink (write-only)

  // Flat-backend storage is arena-backed: ledgers are per-trial objects, and
  // the segment vector plus the index blocks below are the scheduler's
  // highest-churn allocations after engine events. Inside a shard's arena
  // scope their growth is lane-local; outside one they are heap vectors.
  ArenaVector<Segment> segs_;  // flat backend storage
  // Coarse window-max index over the flat segments, rebuilt lazily on the
  // first query after a mutation — and only from `dirty_from_` onward.
  // Mutations target windows at or after "now" while the profile keeps up to
  // a second of history in front, so the long historical prefix of blocks
  // stays valid and a rebuild touches only the recent tail. Erase/insert
  // shifts indices only at or after the mutation point, never before it,
  // which is what keeps prefix blocks exact.
  mutable ArenaVector<ResourceVector> block_max_;
  mutable ArenaVector<ResourceVector> block_min_;
  /// Whole-profile peak, maintained as a monotone UPPER bound between index
  /// rebuilds: exact right after ensure_index(); reserve() folds the levels
  /// it writes (still exact — reserving only raises levels); release() and
  /// compact_before() leave it stale-high. free_fraction() reads it without
  /// forcing a rebuild, so its result is a sound lower bound on the true
  /// guaranteed-free fraction — which is all the cell headroom summary
  /// needs, and what keeps that summary from re-folding every mutated
  /// ledger in the cluster (O(segments) each) once per mutation.
  mutable ResourceVector peak_;
  mutable bool index_dirty_ = true;
  /// Lowest segment index whose block may be stale (mutations lower it,
  /// rebuilds reset it past the end).
  mutable std::size_t dirty_from_ = 0;
  // SoA mirrors of the flat segment vector for the SIMD kernels
  // (common/simd.h): contiguous start-time, per-resource level, and headroom
  // planes, plus per-block component planes of block_max_/block_min_. Arena-
  // backed like segs_; filled lazily by ensure_mirror() and skipped entirely
  // when the scalar target is active, so a forced-scalar run pays nothing.
  // Invariant (audited): entries below the corresponding `*_from_` watermark
  // bitwise-equal the AoS truth — mutations advance the watermarks at the
  // same sites that advance dirty_from_, and never touch entries below them.
  mutable ArenaVector<SimTime> soa_start_;
  mutable ArenaVector<double> soa_cpu_;
  mutable ArenaVector<double> soa_mem_;
  mutable ArenaVector<double> soa_io_;
  mutable ArenaVector<double> soa_headroom_;
  mutable ArenaVector<double> soa_bmax_cpu_;
  mutable ArenaVector<double> soa_bmax_mem_;
  mutable ArenaVector<double> soa_bmax_io_;
  mutable ArenaVector<double> soa_bmin_cpu_;
  mutable ArenaVector<double> soa_bmin_mem_;
  mutable ArenaVector<double> soa_bmin_io_;
  /// First possibly-stale segment-mirror entry (mutations lower it alongside
  /// dirty_from_; ensure_mirror resets it past the end).
  mutable std::size_t mirror_from_ = 0;
  /// First possibly-stale block-mirror entry. Only ensure_index() invalidates
  /// it (block summaries change nowhere else), so a scalar-mode rebuild
  /// still records what a later SIMD query must re-copy.
  mutable std::size_t block_mirror_from_ = 0;
  /// True when every mirror plane is fully current — the one branch a SIMD
  /// query pays between mutations. Cleared wherever a watermark is lowered,
  /// set by ensure_mirror() after it rewrites the stale tails.
  mutable bool mirror_clean_ = false;
  std::uint64_t version_ = 0;  ///< mutation epoch, see version()

  std::map<SimTime, ResourceVector> profile_;  // legacy backend storage
};

}  // namespace vmlp::cluster
