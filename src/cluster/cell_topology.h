// CellTopology: hierarchical grouping of a cluster's machines into cells.
//
// The paper's evaluation cell is 100 machines; scaling to 10k+ machines
// (ROADMAP "100 → 10k+, multi-cell") needs two things a flat cluster lacks:
//
//  * a *router* level — cells ranked by live-placement load so admission
//    starts in the least-loaded cell and sheds to the next when one
//    saturates, keeping the per-decision search bounded by a cell, not the
//    cluster; and
//  * a *headroom summary index* — the per-32-segment max/min block index the
//    reservation ledger uses, lifted one level up: per cell, a per-32-machine
//    block max over each machine's guaranteed free fraction
//    (ReservationLedger::free_fraction — an O(1) read of the ledger's
//    maintained peak bound, deliberately NOT an index rebuild; see its
//    declaration). The fraction is a sound lower bound, so a block whose
//    cached max admits a demand provably contains a machine where the demand
//    fits at every time, and machine selection can jump straight to it
//    instead of scanning the cell. The index is push-maintained: the driver
//    notifies it (note_mutation) right after each ledger reserve/release, so
//    the query path reads only cached values — summaries stay a
//    deterministic function of the simulation's mutation history, which is
//    what keeps decisions byte-stable run to run, and the audit tier
//    cross-checks cached epochs against ledger versions to catch a mutation
//    site that forgot to notify.
//
// Determinism contract: a 1-cell topology is structurally inert — the router
// ranks a single cell and the probe arithmetic degenerates to the flat
// cluster scan, byte-identical to the pre-topology code
// (tools/determinism_check claim 7). The headroom index is only consulted in
// multi-cell mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace vmlp::cluster {

class Cluster;
class Machine;

struct CellTopologyParams {
  /// Number of cells the machines are partitioned into (contiguous id
  /// ranges; sizes differ by at most one). 1 keeps today's flat single-cell
  /// cluster. 0 auto-sizes to ceil(machines / kAutoCellTarget) so 1k
  /// machines become 4 cells and 10k become 40. Clamped to machine_count.
  std::size_t cells = 1;
};

class CellTopology {
 public:
  /// Auto-sizing target: machines per cell when params.cells == 0. Matches
  /// the order of magnitude of the paper's 100-machine evaluation cell while
  /// keeping per-cell scans comfortably cache-resident.
  static constexpr std::size_t kAutoCellTarget = 256;
  /// Machines per headroom-index block — same granularity as the ledger's
  /// per-32-segment index (its kBlockShift), reused one level up.
  static constexpr std::size_t kBlockShift = 5;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  /// "No candidate" sentinel from first_fit_candidate.
  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

  CellTopology(std::size_t machine_count, const CellTopologyParams& params);

  [[nodiscard]] std::size_t machine_count() const { return cell_of_.size(); }
  [[nodiscard]] std::size_t cell_count() const { return begins_.size() - 1; }
  [[nodiscard]] std::size_t cell_of(MachineId m) const {
    VMLP_CHECK_MSG(m.valid() && m.value() < cell_of_.size(), "machine id out of range");
    return cell_of_[m.value()];
  }
  /// First machine index of `cell` (cells are contiguous id ranges).
  [[nodiscard]] std::size_t cell_begin(std::size_t cell) const {
    VMLP_CHECK_MSG(cell < cell_count(), "cell index out of range");
    return begins_[cell];
  }
  [[nodiscard]] std::size_t cell_size(std::size_t cell) const {
    VMLP_CHECK_MSG(cell < cell_count(), "cell index out of range");
    return begins_[cell + 1] - begins_[cell];
  }

  // --- router load accounting --------------------------------------------
  // O(1) counters maintained by the driver at the four placed-node
  // transitions (place / finish / unplace / fail). They are the router's
  // ranking signal: cheap, exact, and independent of float accumulation
  // order.
  void add_placement(MachineId m) {
    const std::size_t c = cell_of(m);
    ++live_[c];
    if (live_[c] > cell_peak_[c]) cell_peak_[c] = live_[c];
    ++live_total_;
    if (live_total_ > live_peak_) live_peak_ = live_total_;
  }
  void remove_placement(MachineId m) {
    const std::size_t c = cell_of(m);
    VMLP_CHECK_MSG(live_[c] > 0, "cell live-placement counter underflow");
    --live_[c];
    --live_total_;
  }
  /// Push-maintain the headroom index: the driver calls this immediately
  /// after every reserve/release it issues on `machine`'s ledger, and the
  /// index caches the machine's (now O(1)) free_fraction plus a refold of
  /// its 32-entry block max over the cached fractions — so the *query* path
  /// touches no ledger state at all. A missed call site would leave a stale
  /// summary; that is advisory-only (admission re-validates every candidate
  /// with the exact ledger query, so decisions stay correct — only the jump
  /// hint quality degrades) and loud under the audit tier, where
  /// refresh_block cross-checks cached epochs against ledger versions.
  /// compact_before needs no call: it never moves the ledger's maintained
  /// peak bound, so free_fraction is unchanged by it.
  void note_mutation(MachineId m, const Machine& machine);
  [[nodiscard]] std::uint64_t live_placements(std::size_t cell) const {
    VMLP_CHECK_MSG(cell < cell_count(), "cell index out of range");
    return live_[cell];
  }
  [[nodiscard]] std::uint64_t live_total() const { return live_total_; }
  [[nodiscard]] std::uint64_t live_peak() const { return live_peak_; }
  [[nodiscard]] std::uint64_t cell_live_peak(std::size_t cell) const {
    VMLP_CHECK_MSG(cell < cell_count(), "cell index out of range");
    return cell_peak_[cell];
  }

  /// Fill `out` with every cell id, ranked ascending by live-placement load
  /// *density* (live / size, so unequal cell sizes compare fairly), ties
  /// broken by lower cell id. The density compare is exact integer
  /// cross-multiplication (live_a * size_b vs live_b * size_a) — no floats,
  /// so ranking can never depend on accumulation order. Reuses `out`'s
  /// storage; allocation-free once warmed.
  void ranked_cells(std::vector<std::size_t>& out) const;

  // --- headroom summary index (multi-cell advisory) ----------------------
  /// First machine of `cell` — searching block-wise from the block holding
  /// cell-local offset `cursor`, wrapping — that is up and whose guaranteed
  /// free fraction admits `demand_frac` (strictly, with the same safety
  /// margin discipline as the ledger's scalar fast path). Such a machine
  /// provably fits the demand at every time; kNoMachine when no block max
  /// admits it. Advisory only: callers re-validate with the exact ledger
  /// query (plan overlays can still block). Deterministic: cached fractions
  /// are refreshed from ledger mutation epochs, so the answer is a pure
  /// function of the run's deterministic mutation/query history.
  [[nodiscard]] std::size_t first_fit_candidate(const Cluster& cluster, std::size_t cell,
                                                std::size_t cursor, double demand_frac) const;

 private:
  /// Block max free fraction of global block `b`. First query folds every
  /// member from its ledger; afterwards the cached max is simply read —
  /// note_mutation keeps it current. Under the audit tier, re-validates the
  /// cached epochs against ledger versions (catches a mutation site that
  /// forgot to notify).
  double refresh_block(const Cluster& cluster, std::size_t b) const;

  std::vector<std::size_t> begins_;    ///< cell_count()+1 partition bounds
  std::vector<std::uint32_t> cell_of_; ///< machine index -> cell id
  std::vector<std::uint64_t> live_;      ///< per-cell live placed-node count
  std::vector<std::uint64_t> cell_peak_; ///< per-cell live high-water marks
  std::uint64_t live_total_ = 0;
  std::uint64_t live_peak_ = 0;

  // Headroom index caches (lazily refreshed; mutable because queries are
  // logically const — the cache is a pure function of ledger state).
  mutable std::vector<double> free_frac_;          ///< per machine
  mutable std::vector<std::uint64_t> seen_epoch_;  ///< ledger version seen
  mutable std::vector<double> block_free_max_;     ///< per 32-machine block
  /// Whether block b's members have been folded from their ledgers at least
  /// once (the lazy first query). From then on block_free_max_ is maintained
  /// by note_mutation over the cached fractions alone: a pull model that
  /// validated blocks against ledger versions per query cost O(32) scattered
  /// loads per block, and a contended candidate scan walking every block of
  /// a cell re-coupled per-stage cost to cell size.
  mutable std::vector<std::uint8_t> block_folded_;
};

}  // namespace vmlp::cluster
