#include "cluster/machine.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::cluster {

Machine::Machine(MachineId id, ResourceVector capacity,
                 ReservationLedger::Backend ledger_backend)
    : id_(id), capacity_(capacity), ledger_(capacity, ledger_backend) {
  VMLP_CHECK_MSG(id.valid(), "invalid machine id");
}

Container& Machine::add_container(ContainerId id, InstanceId instance,
                                  const ResourceVector& demand, const ResourceVector& limit) {
  auto [it, inserted] = containers_.emplace(
      id, Container(id, instance, id_, demand, limit));
  VMLP_CHECK_MSG(inserted, "container " << id.value() << " already on machine " << id_.value());
  return it->second;
}

void Machine::remove_container(ContainerId id) {
  VMLP_CHECK_MSG(containers_.erase(id) == 1,
                 "container " << id.value() << " not on machine " << id_.value());
}

Container* Machine::find_container(ContainerId id) {
  auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : &it->second;
}

const Container* Machine::find_container(ContainerId id) const {
  auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : &it->second;
}

std::vector<ContainerId> Machine::container_ids() const {
  std::vector<ContainerId> ids;
  ids.reserve(containers_.size());
  for (const auto& [id, _] : containers_) ids.push_back(id);  // map: already id-sorted
  return ids;
}

ResourceVector Machine::current_usage() const {
  ResourceVector usage;
  for (const auto& [_, c] : containers_) usage += c.effective_usage();
  return usage.min(capacity_);
}

ResourceVector Machine::allocated() const {
  ResourceVector total;
  for (const auto& [_, c] : containers_) total += c.limit();
  return total;
}

ResourceVector Machine::demanded() const {
  ResourceVector total;
  for (const auto& [_, c] : containers_) total += c.demand();
  return total;
}

double Machine::utilization_sum() const { return current_usage().utilization_sum(capacity_); }

bool Machine::oversubscribed() const { return !allocated().fits_within(capacity_); }

double Machine::contention_factor() const {
  return std::max(1.0, allocated().max_ratio_over(capacity_));
}

}  // namespace vmlp::cluster
