// Container: one placed microservice invocation running on a machine, with
// cgroup-like resource limits (the Table III controllers). The limit is what
// the scheduler granted; the demand is what the service wants. Execution
// speed follows limit/demand through the execution model.
#pragma once

#include "cluster/resources.h"
#include "common/types.h"

namespace vmlp::cluster {

enum class ContainerState { kRunning, kSuspended };

class Container {
 public:
  Container(ContainerId id, InstanceId instance, MachineId machine, ResourceVector demand,
            ResourceVector limit);

  [[nodiscard]] ContainerId id() const { return id_; }
  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] MachineId machine() const { return machine_; }
  [[nodiscard]] const ResourceVector& demand() const { return demand_; }
  [[nodiscard]] const ResourceVector& limit() const { return limit_; }
  [[nodiscard]] ContainerState state() const { return state_; }

  /// Change resource limits (cgroups write). Returns the previous limit.
  ResourceVector set_limit(const ResourceVector& limit);

  void suspend() { state_ = ContainerState::kSuspended; }
  void resume() { state_ = ContainerState::kRunning; }

  /// Resources the container effectively consumes right now: the full limit
  /// while running; while suspended, CPU and IO drop to a keep-alive trickle
  /// but resident memory stays mostly held — which is why the paper's
  /// execution/suspension demand ratios differ per resource type (Fig. 3(a)).
  [[nodiscard]] ResourceVector effective_usage() const;

  /// Suspended-state usage = max(floor, fraction × running usage) per
  /// resource: an idle container still burns a keep-alive baseline (health
  /// checks, heartbeats, page cache), so lighter services show smaller
  /// execution/suspension ratios — the per-service spread of Fig. 3(a).
  static constexpr double kSuspendedCpuFraction = 0.05;
  static constexpr double kSuspendedMemFraction = 0.60;
  static constexpr double kSuspendedIoFraction = 0.05;
  static constexpr double kSuspendedCpuFloor = 40.0;   // mC
  static constexpr double kSuspendedMemFloor = 96.0;   // MB
  static constexpr double kSuspendedIoFloor = 4.0;     // MB/s

 private:
  ContainerId id_;
  InstanceId instance_;
  MachineId machine_;
  ResourceVector demand_;
  ResourceVector limit_;
  ContainerState state_ = ContainerState::kRunning;
};

}  // namespace vmlp::cluster
