#include "cluster/reservation.h"

#include <algorithm>
#include <limits>

#include "common/audit.h"
#include "common/error.h"
#include "common/simd.h"
#include "obs/collector.h"

namespace vmlp::cluster {
namespace {

bool nearly_equal(const ResourceVector& a, const ResourceVector& b) {
  const ResourceVector d = a - b;
  return !d.any_negative() && !(b - a).any_negative();
}

/// Margin on the scalar headroom fast path. Acceptance requires
/// `frac + kHeadroomSafety <= headroom`; the margin (relative to capacity)
/// dwarfs multiplication rounding, so the scalar path can only accept
/// demands the exact vector compare would also accept — never the reverse.
constexpr double kHeadroomSafety = 1e-9;

constexpr std::size_t kNoSegment = std::numeric_limits<std::size_t>::max();

}  // namespace

ReservationLedger::ReservationLedger(ResourceVector capacity, Backend backend)
    : capacity_(capacity), backend_(backend) {
  VMLP_CHECK_MSG(!capacity.any_negative(), "negative capacity");
  inv_capacity_ = ResourceVector{capacity.cpu > 0 ? 1.0 / capacity.cpu : 0.0,
                                 capacity.mem > 0 ? 1.0 / capacity.mem : 0.0,
                                 capacity.io > 0 ? 1.0 / capacity.io : 0.0};
  if (backend_ == Backend::kFlat) {
    segs_.push_back(Segment{0, ResourceVector::zero(), headroom_of(ResourceVector::zero())});
  } else {
    profile_.emplace(0, ResourceVector::zero());
  }
}

// --------------------------------------------------------------------------
// Flat backend: sorted segment vector + lazy coarse index.
// --------------------------------------------------------------------------

double ReservationLedger::headroom_of(const ResourceVector& level) const {
  // min over dimensions of (capacity - level) / capacity. Zero-capacity
  // dimensions contribute 0, disabling the scalar fast path (conservative).
  const double h_cpu = (capacity_.cpu - level.cpu) * inv_capacity_.cpu;
  const double h_mem = (capacity_.mem - level.mem) * inv_capacity_.mem;
  const double h_io = (capacity_.io - level.io) * inv_capacity_.io;
  return std::min(h_cpu, std::min(h_mem, h_io));
}

double ReservationLedger::demand_fraction(const ResourceVector& r) const {
  const double f_cpu = r.cpu * inv_capacity_.cpu;
  const double f_mem = r.mem * inv_capacity_.mem;
  const double f_io = r.io * inv_capacity_.io;
  return std::max(f_cpu, std::max(f_mem, f_io));
}

bool ReservationLedger::segment_blocks(const Segment& s, const ResourceVector& r,
                                       double frac) const {
  if (frac + kHeadroomSafety <= s.headroom) return false;  // provably fits
  return !(s.level + r).fits_within(capacity_);
}

std::size_t ReservationLedger::lower_index(SimTime t) const {
  const auto it = std::lower_bound(segs_.begin(), segs_.end(), t,
                                   [](const Segment& s, SimTime v) { return s.start < v; });
  return static_cast<std::size_t>(it - segs_.begin());
}

std::size_t ReservationLedger::covering_index(SimTime t) const {
  const auto it = std::upper_bound(segs_.begin(), segs_.end(), t,
                                   [](SimTime v, const Segment& s) { return v < s.start; });
  VMLP_CHECK_MSG(it != segs_.begin(), "time " << t << " precedes ledger origin");
  return static_cast<std::size_t>(it - segs_.begin()) - 1;
}

std::size_t ReservationLedger::hinted_covering_index(SimTime t,
                                                     std::size_t* cover_hint) const {
  // A usable hint names a segment starting at or before t *in the current
  // profile* — checked here, so callers may carry hints across mutations.
  // When it holds, the covering segment lies at or after the hint: walk
  // forward to the last segment with start <= t — the same index the binary
  // search would find. A hint left far behind by mutations would make that
  // walk worse than the O(log n) search, so bail out after a few steps.
  constexpr std::size_t kMaxHintWalk = 32;
  if (cover_hint != nullptr && *cover_hint < segs_.size() && segs_[*cover_hint].start <= t) {
    if (obs_ != nullptr) obs_->count(obs_->ledger().hints_hit);
    std::size_t lo = *cover_hint;
    std::size_t walked = 0;
    while (lo + 1 < segs_.size() && segs_[lo + 1].start <= t) {
      if (++walked > kMaxHintWalk) {
        lo = covering_index(t);
        break;
      }
      ++lo;
    }
    *cover_hint = lo;
    return lo;
  }
  if (obs_ != nullptr && cover_hint != nullptr) obs_->count(obs_->ledger().hints_missed);
  const std::size_t lo = covering_index(t);
  if (cover_hint != nullptr) *cover_hint = lo;
  return lo;
}

std::size_t ReservationLedger::split_index_at(SimTime t) {
  std::size_t i = lower_index(t);
  if (i < segs_.size() && segs_[i].start == t) return i;
  VMLP_CHECK_MSG(i != 0, "time " << t << " precedes ledger origin");
  segs_.insert(segs_.begin() + static_cast<std::ptrdiff_t>(i),
               Segment{t, segs_[i - 1].level, segs_[i - 1].headroom});
  return i;
}

void ReservationLedger::coalesce_flat(SimTime t0, SimTime t1) {
  // Mirrors the legacy map coalesce exactly: walk from the segment before
  // the touched range, erasing the later of each nearly-equal adjacent pair.
  std::size_t i = lower_index(t0);
  if (i > 0) --i;
  while (i + 1 < segs_.size()) {
    if (segs_[i + 1].start > t1) break;
    if (nearly_equal(segs_[i].level, segs_[i + 1].level)) {
      segs_.erase(segs_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
}

void ReservationLedger::ensure_index() const {
  if (!index_dirty_) return;
  const std::size_t blocks = (segs_.size() + kBlockSize - 1) >> kBlockShift;
  block_max_.resize(blocks);
  block_min_.resize(blocks);
  // Only blocks from the first mutated index onward can be stale: edits
  // never shift or change segments below `dirty_from_`, so the historical
  // prefix keeps its cached entries. The peak refold over block maxima is
  // O(blocks) — noise next to even one partial rebuild.
  const std::size_t first =
      std::min(dirty_from_, segs_.size() - 1) >> kBlockShift;
  // Rebuilt blocks invalidate their SoA mirror entries; the next SIMD query
  // re-copies them (ensure_mirror). Recorded even when the scalar target is
  // active so a later target switch cannot read a stale block mirror.
  block_mirror_from_ = std::min(block_mirror_from_, first);
  mirror_clean_ = false;
  const simd::KernelTable& kt = simd::kernels();
  if (kt.target != simd::Target::kScalar) {
    // One combined pass: sync the segment planes, then vector-fold each stale
    // block from them, writing the coarse index and its mirror in one go —
    // so a SIMD-active rebuild costs less than the scalar AoS fold instead of
    // paying for both it and a later ensure_mirror().
    rebuild_index_simd(kt, first, blocks);
  } else {
    for (std::size_t b = first; b < blocks; ++b) {
      const std::size_t lo = b << kBlockShift;
      const std::size_t hi = std::min(segs_.size(), lo + kBlockSize);
      ResourceVector mx = segs_[lo].level;
      ResourceVector mn = segs_[lo].level;
      for (std::size_t i = lo + 1; i < hi; ++i) {
        mx = mx.max(segs_[i].level);
        mn = mn.min(segs_[i].level);
      }
      block_max_[b] = mx;
      block_min_[b] = mn;
    }
  }
  peak_ = block_max_[0];
  for (std::size_t b = 1; b < blocks; ++b) peak_ = peak_.max(block_max_[b]);
  index_dirty_ = false;
  dirty_from_ = segs_.size();
}

void ReservationLedger::rebuild_index_simd(const simd::KernelTable& k, std::size_t first,
                                           std::size_t blocks) const {
  // Segment planes first — the same stale-tail rewrite ensure_mirror() would
  // perform. Folding each stale block from the contiguous planes with the
  // reduce kernels is bitwise identical to the scalar AoS fold: min/max over
  // finite doubles is order-independent, and every lane reduction lands on
  // the same IEEE value (audit_invariants re-folds scalar-style and checks).
  const std::size_t n = segs_.size();
  if (mirror_from_ < n || soa_start_.size() != n) {
    soa_start_.resize(n);
    soa_cpu_.resize(n);
    soa_mem_.resize(n);
    soa_io_.resize(n);
    soa_headroom_.resize(n);
    for (std::size_t i = std::min(mirror_from_, n); i < n; ++i) {
      const Segment& s = segs_[i];
      soa_start_[i] = s.start;
      soa_cpu_[i] = s.level.cpu;
      soa_mem_[i] = s.level.mem;
      soa_io_[i] = s.level.io;
      soa_headroom_[i] = s.headroom;
    }
    mirror_from_ = n;
  }
  soa_bmax_cpu_.resize(blocks);
  soa_bmax_mem_.resize(blocks);
  soa_bmax_io_.resize(blocks);
  soa_bmin_cpu_.resize(blocks);
  soa_bmin_mem_.resize(blocks);
  soa_bmin_io_.resize(blocks);
  // Blocks below `first` are clean in the coarse index but may carry a stale
  // mirror from an earlier scalar-active rebuild: copy, don't refold.
  for (std::size_t b = std::min(block_mirror_from_, first); b < first; ++b) {
    soa_bmax_cpu_[b] = block_max_[b].cpu;
    soa_bmax_mem_[b] = block_max_[b].mem;
    soa_bmax_io_[b] = block_max_[b].io;
    soa_bmin_cpu_[b] = block_min_[b].cpu;
    soa_bmin_mem_[b] = block_min_[b].mem;
    soa_bmin_io_[b] = block_min_[b].io;
  }
  for (std::size_t b = first; b < blocks; ++b) {
    const std::size_t lo = b << kBlockShift;
    const std::size_t len = std::min(n, lo + kBlockSize) - lo;
    double mx[3] = {-std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
    double mn[3] = {std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
    k.reduce_max3(soa_cpu_.data() + lo, soa_mem_.data() + lo, soa_io_.data() + lo, len, mx);
    k.reduce_min3(soa_cpu_.data() + lo, soa_mem_.data() + lo, soa_io_.data() + lo, len, mn);
    block_max_[b] = ResourceVector{mx[0], mx[1], mx[2]};
    block_min_[b] = ResourceVector{mn[0], mn[1], mn[2]};
    soa_bmax_cpu_[b] = mx[0];
    soa_bmax_mem_[b] = mx[1];
    soa_bmax_io_[b] = mx[2];
    soa_bmin_cpu_[b] = mn[0];
    soa_bmin_mem_[b] = mn[1];
    soa_bmin_io_[b] = mn[2];
  }
  block_mirror_from_ = blocks;
  mirror_clean_ = true;
}

void ReservationLedger::ensure_mirror() const {
  if (mirror_clean_) return;  // the one branch a between-mutations query pays
  // Segment planes: rewrite the stale tail [mirror_from_, n). Entries below
  // the watermark are bitwise-current — mutations never modify or shift a
  // segment below the same conservative bound dirty_from_ uses, and they
  // lower mirror_from_ alongside it.
  const std::size_t n = segs_.size();
  if (mirror_from_ < n || soa_start_.size() != n) {
    soa_start_.resize(n);
    soa_cpu_.resize(n);
    soa_mem_.resize(n);
    soa_io_.resize(n);
    soa_headroom_.resize(n);
    for (std::size_t i = std::min(mirror_from_, n); i < n; ++i) {
      const Segment& s = segs_[i];
      soa_start_[i] = s.start;
      soa_cpu_[i] = s.level.cpu;
      soa_mem_[i] = s.level.mem;
      soa_io_[i] = s.level.io;
      soa_headroom_[i] = s.headroom;
    }
    mirror_from_ = n;
  }
  // Block planes copy from the (already rebuilt — ensure_index is a
  // precondition) coarse index; ensure_index lowers block_mirror_from_ for
  // every block it refolds.
  const std::size_t blocks = block_max_.size();
  if (block_mirror_from_ < blocks || soa_bmax_cpu_.size() != blocks) {
    soa_bmax_cpu_.resize(blocks);
    soa_bmax_mem_.resize(blocks);
    soa_bmax_io_.resize(blocks);
    soa_bmin_cpu_.resize(blocks);
    soa_bmin_mem_.resize(blocks);
    soa_bmin_io_.resize(blocks);
    for (std::size_t b = std::min(block_mirror_from_, blocks); b < blocks; ++b) {
      soa_bmax_cpu_[b] = block_max_[b].cpu;
      soa_bmax_mem_[b] = block_max_[b].mem;
      soa_bmax_io_[b] = block_max_[b].io;
      soa_bmin_cpu_[b] = block_min_[b].cpu;
      soa_bmin_mem_[b] = block_min_[b].mem;
      soa_bmin_io_[b] = block_min_[b].io;
    }
    block_mirror_from_ = blocks;
  }
  mirror_clean_ = true;
}

std::size_t ReservationLedger::lower_index_soa(std::size_t lo, SimTime t) const {
  const std::size_t n = soa_start_.size();
  std::size_t base = lo;  // invariant: soa_start_[base] < t
  std::size_t step = 1;
  std::size_t probe = lo + 1;
  while (probe < n && soa_start_[probe] < t) {
    base = probe;
    step <<= 1;
    probe = lo + step;
  }
  const auto first = soa_start_.begin() + static_cast<std::ptrdiff_t>(base + 1);
  const auto last = soa_start_.begin() + static_cast<std::ptrdiff_t>(std::min(n, probe));
  return static_cast<std::size_t>(std::lower_bound(first, last, t) - soa_start_.begin());
}

// The _simd query twins below reproduce the scalar block-walk loops over the
// SoA planes. Two structural differences, neither visible in any verdict:
//
//   * span/extreme folds decompose [lo, hi) — hi = lower_index(t1), found by
//     galloping out of `lo` — into a leading partial block, whole 32-segment
//     blocks scanned one *block-mirror* entry each (exactly the blocks the
//     scalar loop takes via its `(i & 31) == 0 && i + 32 <= size &&
//     segs_[i+31].start < t1` whole-block branch), and a trailing partial;
//   * fits never computes hi at all: starts are sorted, so the first
//     exactly-blocking segment at or after lo decides the verdict with one
//     `start < t1` compare, and the find-first kernels may overrun the
//     window by up to a block — any hit out there would start >= t1.
//
// Verdict equivalence with the scalar walks is argued case by case at each
// call site; the common facts are that block_min_/block_max_ hold the exact
// component-wise min/max of their members (so folding a block entry folds
// its members) and that min/max folds are order-independent over the finite
// doubles the audit tier guarantees.

bool ReservationLedger::span_could_fit_simd(const simd::KernelTable& k, std::size_t lo,
                                            SimTime t1, const ResourceVector& r) const {
  // Covering-segment fast accept — the scalar loop's opening check and the
  // common outcome of uncontended probes; it needs no mirrors, so a stale
  // tail stays unpaid-for until a fold actually has to run.
  if ((segs_[lo].level + r).fits_within(capacity_)) return true;
  ensure_mirror();
  const double add[3] = {r.cpu, r.mem, r.io};
  const double bound[3] = {capacity_.cpu + kResourceEpsilon, capacity_.mem + kResourceEpsilon,
                           capacity_.io + kResourceEpsilon};
  // The scalar loop's per-segment accept chain — cached-headroom shortcut,
  // then `(running_min + r).fits_within(capacity_)` — never accepts a span
  // the pure min-fold verdict rejects (a headroom-accepted segment's level
  // already satisfies the exact compare, and the running min is <= it), so
  // the kernels need only the exact fold: identical verdicts, fewer ops.
  const std::size_t hi = lower_index_soa(lo, t1);  // > lo: segs_[lo].start <= t0 < t1
  const std::size_t head_end = std::min(hi, (lo + kBlockSize - 1) & ~(kBlockSize - 1));
  const std::size_t body_end = head_end + (((hi - head_end) >> kBlockShift) << kBlockShift);
  double m[3] = {std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  if (k.span_fit3(soa_cpu_.data() + lo, soa_mem_.data() + lo, soa_io_.data() + lo, head_end - lo,
                  add, bound, m)) {
    return true;
  }
  if (body_end > head_end) {
    const std::size_t b0 = head_end >> kBlockShift;
    const std::size_t nb = (body_end - head_end) >> kBlockShift;
    if (k.span_fit3(soa_bmin_cpu_.data() + b0, soa_bmin_mem_.data() + b0,
                    soa_bmin_io_.data() + b0, nb, add, bound, m)) {
      return true;
    }
  }
  return k.span_fit3(soa_cpu_.data() + body_end, soa_mem_.data() + body_end,
                     soa_io_.data() + body_end, hi - body_end, add, bound, m);
}

bool ReservationLedger::fits_simd(const simd::KernelTable& k, std::size_t lo, SimTime t1,
                                  const ResourceVector& r, SimTime* refit_out) const {
  ensure_mirror();
  const double add[3] = {r.cpu, r.mem, r.io};
  const double bound[3] = {capacity_.cpu + kResourceEpsilon, capacity_.mem + kResourceEpsilon,
                           capacity_.io + kResourceEpsilon};
  const std::size_t n = segs_.size();
  const SimTime* starts = soa_start_.data();
  // Scalar-shaped walk, first blocker decides. The scalar walk's
  // segment_blocks() is the same predicate: its headroom shortcut only
  // skips the vector compare for segments that provably pass it. A blocked
  // *block max* implies a blocked member (its per-dimension argmax), and
  // vice versa by monotone IEEE add — so a whole in-window block decides by
  // three plane reads, exactly like the scalar branch.
  std::size_t bad = kNoSegment;
  std::size_t i = lo;
  // Leading partial stretch (to the first block boundary) runs the scalar
  // per-segment predicate inline — headroom shortcut, exact compare, per
  // element window exit. Admission windows usually resolve right here, and
  // for those few-segment scans the kernel-call setup costs more than the
  // scan; the kernels take over at block granularity where they win.
  const double frac = demand_fraction(r);
  const std::size_t lead_end = std::min(n, (lo | (kBlockSize - 1)) + 1);
  while (i < lead_end && starts[i] < t1 && bad == kNoSegment) {
    if (frac + kHeadroomSafety > soa_headroom_[i] &&
        (soa_cpu_[i] + add[0] > bound[0] || soa_mem_[i] + add[1] > bound[1] ||
         soa_io_[i] + add[2] > bound[2])) {
      bad = i;
    } else {
      ++i;
    }
  }
  while (bad == kNoSegment && i < n && starts[i] < t1) {
    if ((i & (kBlockSize - 1)) == 0 && i + kBlockSize <= n && starts[i + kBlockSize - 1] < t1) {
      const std::size_t b = i >> kBlockShift;
      if (soa_bmax_cpu_[b] + add[0] > bound[0] || soa_bmax_mem_[b] + add[1] > bound[1] ||
          soa_bmax_io_[b] + add[2] > bound[2]) {
        if (refit_out == nullptr) return false;  // scalar also skips the descent
        const std::size_t bj = k.first_blocked3(soa_cpu_.data() + i, soa_mem_.data() + i,
                                                soa_io_.data() + i, kBlockSize, add, bound);
        VMLP_CHECK_MSG(bj < kBlockSize, "blocked block max without a blocking member");
        bad = i + bj;
        break;
      }
      i += kBlockSize;
    } else {
      // Rest of this block (or of the profile), scanned without clipping to
      // t1: a hit is kept only if it starts inside the window, and a miss
      // advances to the next block boundary where the outer condition
      // re-clips. At most kBlockSize-1 past-window segments are touched.
      const std::size_t stretch = std::min(n, (i | (kBlockSize - 1)) + 1) - i;
      const std::size_t j = k.first_blocked3(soa_cpu_.data() + i, soa_mem_.data() + i,
                                             soa_io_.data() + i, stretch, add, bound);
      if (j < stretch) {
        if (starts[i + j] >= t1) return true;  // first blocker past the window
        bad = i + j;
        break;
      }
      i += stretch;
    }
  }
  if (bad == kNoSegment) return true;
  if (refit_out != nullptr) {
    // blocking_run_end's twin: first exactly-fitting segment after `bad`
    // bounds the maximal blocking run (scanned to the profile tail, not
    // just hi — a run may extend past the query window).
    const std::size_t rest = segs_.size() - (bad + 1);
    const std::size_t fj = k.first_fit3(soa_cpu_.data() + bad + 1, soa_mem_.data() + bad + 1,
                                        soa_io_.data() + bad + 1, rest, add, bound);
    *refit_out = fj < rest ? soa_start_[bad + 1 + fj] : kTimeInfinity;
  }
  return false;
}

ResourceVector ReservationLedger::extreme_usage_simd(const simd::KernelTable& k, std::size_t lo,
                                                     SimTime t1, bool want_max) const {
  ensure_mirror();
  const std::size_t hi = lower_index_soa(lo, t1);
  const std::size_t head_end = std::min(hi, (lo + kBlockSize - 1) & ~(kBlockSize - 1));
  const std::size_t body_end = head_end + (((hi - head_end) >> kBlockShift) << kBlockShift);
  const double init =
      want_max ? -std::numeric_limits<double>::infinity() : std::numeric_limits<double>::infinity();
  double m[3] = {init, init, init};
  const auto fold = want_max ? k.reduce_max3 : k.reduce_min3;
  fold(soa_cpu_.data() + lo, soa_mem_.data() + lo, soa_io_.data() + lo, head_end - lo, m);
  if (body_end > head_end) {
    const std::size_t b0 = head_end >> kBlockShift;
    const std::size_t nb = (body_end - head_end) >> kBlockShift;
    if (want_max) {
      fold(soa_bmax_cpu_.data() + b0, soa_bmax_mem_.data() + b0, soa_bmax_io_.data() + b0, nb, m);
    } else {
      fold(soa_bmin_cpu_.data() + b0, soa_bmin_mem_.data() + b0, soa_bmin_io_.data() + b0, nb, m);
    }
  }
  fold(soa_cpu_.data() + body_end, soa_mem_.data() + body_end, soa_io_.data() + body_end,
       hi - body_end, m);
  return ResourceVector{m[0], m[1], m[2]};
}

// --------------------------------------------------------------------------
// Legacy map backend helpers.
// --------------------------------------------------------------------------

std::map<SimTime, ResourceVector>::iterator ReservationLedger::split_at(SimTime t) {
  auto it = profile_.lower_bound(t);
  if (it != profile_.end() && it->first == t) return it;
  VMLP_CHECK_MSG(it != profile_.begin(), "time " << t << " precedes ledger origin");
  auto prev = std::prev(it);
  return profile_.emplace_hint(it, t, prev->second);
}

void ReservationLedger::coalesce(SimTime t0, SimTime t1) {
  auto it = profile_.lower_bound(t0);
  if (it != profile_.begin()) --it;
  while (it != profile_.end()) {
    auto next = std::next(it);
    if (next == profile_.end() || next->first > t1) break;
    if (nearly_equal(it->second, next->second)) {
      profile_.erase(next);
    } else {
      it = next;
    }
  }
}

// --------------------------------------------------------------------------
// Mutations.
// --------------------------------------------------------------------------

void ReservationLedger::reserve(SimTime t0, SimTime t1, const ResourceVector& r) {
  VMLP_CHECK_MSG(t0 < t1, "empty reservation window [" << t0 << "," << t1 << ")");
  ++version_;
  if (obs_ != nullptr) obs_->count(obs_->ledger().windows_reserved);
  // A negative or non-finite reservation silently *creates* capacity — the
  // canonical corruption a buggy planner would introduce.
  VMLP_AUDIT_ASSERT(r.is_finite(), "non-finite reservation " << r.to_string());
  VMLP_AUDIT_ASSERT(!r.any_negative(), "negative reservation " << r.to_string());
  if (backend_ == Backend::kFlat) {
    const std::size_t begin = split_index_at(t0);
    const std::size_t end = split_index_at(t1);
    for (std::size_t i = begin; i < end; ++i) {
      segs_[i].level += r;
      segs_[i].headroom = headroom_of(segs_[i].level);
      // Keep the peak bound exact across reserves: raising levels can only
      // move the whole-profile peak to one of the levels written here.
      peak_ = peak_.max(segs_[i].level);
    }
    coalesce_flat(t0, t1);
    index_dirty_ = true;
    dirty_from_ = std::min(dirty_from_, begin == 0 ? 0 : begin - 1);
    mirror_from_ = std::min(mirror_from_, dirty_from_);
    mirror_clean_ = false;
  } else {
    auto begin = split_at(t0);
    auto end = split_at(t1);
    for (auto it = begin; it != end; ++it) it->second += r;
    coalesce(t0, t1);
  }
  if (obs_ != nullptr) {
    obs_->gauge_max(obs_->ledger().segments_peak, static_cast<double>(segment_count()));
  }
  if (::vmlp::audit::enabled()) audit_invariants();
}

void ReservationLedger::release(SimTime t0, SimTime t1, const ResourceVector& r) {
  VMLP_CHECK_MSG(t0 < t1, "empty release window");
  ++version_;
  if (obs_ != nullptr) obs_->count(obs_->ledger().windows_released);
  VMLP_AUDIT_ASSERT(r.is_finite(), "non-finite release " << r.to_string());
  VMLP_AUDIT_ASSERT(!r.any_negative(),
                    "negative release " << r.to_string() << " would inflate the profile");
  if (backend_ == Backend::kFlat) {
    const std::size_t begin = split_index_at(t0);
    const std::size_t end = split_index_at(t1);
    for (std::size_t i = begin; i < end; ++i) {
      segs_[i].level -= r;
      VMLP_CHECK_MSG(!segs_[i].level.any_negative(),
                     "release drives profile negative at t=" << segs_[i].start);
      // Snap tiny float residue to exact zero so fits() stays sharp.
      if (segs_[i].level.near_zero()) segs_[i].level = ResourceVector::zero();
      segs_[i].headroom = headroom_of(segs_[i].level);
    }
    coalesce_flat(t0, t1);
    index_dirty_ = true;
    dirty_from_ = std::min(dirty_from_, begin == 0 ? 0 : begin - 1);
    mirror_from_ = std::min(mirror_from_, dirty_from_);
    mirror_clean_ = false;
  } else {
    auto begin = split_at(t0);
    auto end = split_at(t1);
    for (auto it = begin; it != end; ++it) {
      it->second -= r;
      VMLP_CHECK_MSG(!it->second.any_negative(),
                     "release drives profile negative at t=" << it->first);
      if (it->second.near_zero()) it->second = ResourceVector::zero();
    }
    coalesce(t0, t1);
  }
  if (::vmlp::audit::enabled()) audit_invariants();
}

void ReservationLedger::compact_before(SimTime t) {
  if (backend_ == Backend::kFlat) {
    const auto it = std::upper_bound(segs_.begin(), segs_.end(), t,
                                     [](SimTime v, const Segment& s) { return v < s.start; });
    if (it == segs_.begin()) return;
    const std::size_t cover = static_cast<std::size_t>(it - segs_.begin()) - 1;
    if (cover == 0) return;
    ++version_;
    segs_.erase(segs_.begin(), segs_.begin() + static_cast<std::ptrdiff_t>(cover));
    index_dirty_ = true;
    dirty_from_ = 0;  // the prefix erase shifted every surviving index
    mirror_from_ = 0;
    mirror_clean_ = false;
    return;
  }
  auto it = profile_.upper_bound(t);
  if (it == profile_.begin()) return;
  --it;  // segment covering t
  if (it == profile_.begin()) return;
  ++version_;
  const ResourceVector level = it->second;
  const SimTime key = it->first;
  profile_.erase(profile_.begin(), it);
  // Re-anchor the origin at the covering segment's start.
  profile_[key] = level;
}

// --------------------------------------------------------------------------
// Queries.
// --------------------------------------------------------------------------

double ReservationLedger::free_fraction() const {
  if (backend_ == Backend::kFlat) {
    // Deliberately no ensure_index(): peak_ is a maintained upper bound (see
    // its declaration), and rebuilding the index here made the cell headroom
    // summary's refresh cost O(segments) per mutated machine — at 1k+
    // machines that re-folded the whole cluster's ledgers once per mutation
    // and re-coupled per-placement cost to cluster size.
    return std::max(0.0, headroom_of(peak_));
  }
  ResourceVector peak = ResourceVector::zero();
  for (const auto& [t, level] : profile_) peak = peak.max(level);
  return std::max(0.0, headroom_of(peak));
}

ResourceVector ReservationLedger::usage_at(SimTime t) const {
  if (backend_ == Backend::kFlat) return segs_[covering_index(t)].level;
  auto it = profile_.upper_bound(t);
  VMLP_CHECK_MSG(it != profile_.begin(), "time " << t << " precedes ledger origin");
  return std::prev(it)->second;
}

ResourceVector ReservationLedger::max_usage(SimTime t0, SimTime t1) const {
  VMLP_CHECK_MSG(t0 < t1, "empty query window");
  if (backend_ == Backend::kFlat) {
    ensure_index();
    const std::size_t lo = covering_index(t0);
    const simd::KernelTable& kt = simd::kernels();
    if (kt.target != simd::Target::kScalar) return extreme_usage_simd(kt, lo, t1, /*want_max=*/true);
    // The window-end bound is checked lazily against segment starts instead
    // of a second binary search: for i >= lo, `segs_[i].start < t1` is
    // exactly `i < lower_index(t1)`, and the fold order is unchanged.
    ResourceVector m = segs_[lo].level;
    std::size_t i = lo;
    while (i < segs_.size() && segs_[i].start < t1) {
      // Whole block inside the window: one cached entry covers 32 segments.
      if ((i & (kBlockSize - 1)) == 0 && i + kBlockSize <= segs_.size() &&
          segs_[i + kBlockSize - 1].start < t1) {
        m = m.max(block_max_[i >> kBlockShift]);
        i += kBlockSize;
      } else {
        m = m.max(segs_[i].level);
        ++i;
      }
    }
    return m;
  }
  ResourceVector m = usage_at(t0);
  for (auto it = profile_.upper_bound(t0); it != profile_.end() && it->first < t1; ++it) {
    m = m.max(it->second);
  }
  return m;
}

ResourceVector ReservationLedger::min_usage(SimTime t0, SimTime t1) const {
  VMLP_CHECK_MSG(t0 < t1, "empty query window");
  if (backend_ == Backend::kFlat) {
    ensure_index();
    const std::size_t lo = covering_index(t0);
    const simd::KernelTable& kt = simd::kernels();
    if (kt.target != simd::Target::kScalar) return extreme_usage_simd(kt, lo, t1, /*want_max=*/false);
    ResourceVector m = segs_[lo].level;
    std::size_t i = lo;
    while (i < segs_.size() && segs_[i].start < t1) {
      if ((i & (kBlockSize - 1)) == 0 && i + kBlockSize <= segs_.size() &&
          segs_[i + kBlockSize - 1].start < t1) {
        m = m.min(block_min_[i >> kBlockShift]);
        i += kBlockSize;
      } else {
        m = m.min(segs_[i].level);
        ++i;
      }
    }
    return m;
  }
  ResourceVector m = usage_at(t0);
  for (auto it = profile_.upper_bound(t0); it != profile_.end() && it->first < t1; ++it) {
    m = m.min(it->second);
  }
  return m;
}

bool ReservationLedger::span_could_fit(SimTime t0, SimTime t1, const ResourceVector& r,
                                       std::size_t* cover_hint) const {
  VMLP_CHECK_MSG(t0 < t1, "empty query window");
  if (obs_ != nullptr) obs_->count(obs_->ledger().spans_tested);
  if (backend_ == Backend::kFlat) {
    ensure_index();
    const std::size_t lo = hinted_covering_index(t0, cover_hint);
    const simd::KernelTable& kt = simd::kernels();
    if (kt.target != simd::Target::kScalar) return span_could_fit_simd(kt, lo, t1, r);
    const double frac = demand_fraction(r);
    ResourceVector m = segs_[lo].level;
    if ((m + r).fits_within(capacity_)) return true;
    std::size_t i = lo;
    while (i < segs_.size() && segs_[i].start < t1) {
      if ((i & (kBlockSize - 1)) == 0 && i + kBlockSize <= segs_.size() &&
          segs_[i + kBlockSize - 1].start < t1) {
        m = m.min(block_min_[i >> kBlockShift]);
        i += kBlockSize;
      } else {
        // Scalar accept: a segment whose cached headroom admits the demand
        // satisfies level + r <= capacity, and the span min is <= this
        // level component-wise, so the exact verdict is already true.
        if (frac + kHeadroomSafety <= segs_[i].headroom) return true;
        m = m.min(segs_[i].level);
        ++i;
      }
      if ((m + r).fits_within(capacity_)) return true;
    }
    return (m + r).fits_within(capacity_);
  }
  ResourceVector m = usage_at(t0);
  if ((m + r).fits_within(capacity_)) return true;
  for (auto it = profile_.upper_bound(t0); it != profile_.end() && it->first < t1; ++it) {
    m = m.min(it->second);
    if ((m + r).fits_within(capacity_)) return true;
  }
  return false;
}

ResourceVector ReservationLedger::available(SimTime t0, SimTime t1) const {
  return (capacity_ - max_usage(t0, t1)).max(ResourceVector::zero());
}

bool ReservationLedger::fits(SimTime t0, SimTime t1, const ResourceVector& r,
                             std::size_t* cover_hint, SimTime* refit_out) const {
  if (obs_ != nullptr) obs_->count(obs_->ledger().fits_queried);
  if (backend_ == Backend::kFlat) {
    VMLP_CHECK_MSG(t0 < t1, "empty query window");
    ensure_index();
    // Uncontended fast accept: if the demand fits atop the whole-profile
    // peak, it fits any window (max_usage <= peak component-wise). The hint
    // is left untouched — it stays valid for the next, later-starting query.
    if ((peak_ + r).fits_within(capacity_)) return true;
    const std::size_t lo = hinted_covering_index(t0, cover_hint);
    const simd::KernelTable& kt = simd::kernels();
    if (kt.target != simd::Target::kScalar) return fits_simd(kt, lo, t1, r, refit_out);
    const double frac = demand_fraction(r);
    std::size_t i = lo;
    while (i < segs_.size() && segs_[i].start < t1) {
      if ((i & (kBlockSize - 1)) == 0 && i + kBlockSize <= segs_.size() &&
          segs_[i + kBlockSize - 1].start < t1) {
        // Whole block: the cached max decides for all 32 segments at once.
        if (!(block_max_[i >> kBlockShift] + r).fits_within(capacity_)) {
          // The block's max blocks, so the argmax segment inside blocks too;
          // descend to the first one only when the caller wants the bound.
          if (refit_out != nullptr) {
            while (!segment_blocks(segs_[i], r, frac)) ++i;
            *refit_out = blocking_run_end(i, r, frac);
          }
          return false;
        }
        i += kBlockSize;
      } else {
        if (segment_blocks(segs_[i], r, frac)) {
          if (refit_out != nullptr) *refit_out = blocking_run_end(i, r, frac);
          return false;
        }
        ++i;
      }
    }
    return true;
  }
  return (max_usage(t0, t1) + r).fits_within(capacity_);
}

SimTime ReservationLedger::blocking_run_end(std::size_t first_blocking, const ResourceVector& r,
                                            double frac) const {
  std::size_t j = first_blocking;
  while (j + 1 < segs_.size() && segment_blocks(segs_[j + 1], r, frac)) ++j;
  return j + 1 < segs_.size() ? segs_[j + 1].start : kTimeInfinity;
}

SimTime ReservationLedger::earliest_fit(SimTime from, SimDuration duration,
                                        const ResourceVector& r, SimTime horizon,
                                        std::size_t* probes_out) const {
  VMLP_CHECK(duration > 0);
  std::size_t probes = 0;
  if (backend_ == Backend::kFlat) {
    ensure_index();
    const double frac = demand_fraction(r);
    SimTime t = from;
    while (t <= horizon) {
      ++probes;
      const std::size_t lo = covering_index(t);
      const std::size_t hi = lower_index(t + duration);
      // Find the LAST blocking segment in [lo, hi): jumping past it (and the
      // run of blocking segments that follows) skips every candidate start
      // that provably fails — any earlier start still overlaps the blocker.
      std::size_t blocker = kNoSegment;
      std::size_t i = hi;
      while (i > lo) {
        --i;
        // Whole clean block: skip 32 segments via the cached max.
        if (((i + 1) & (kBlockSize - 1)) == 0 && i + 1 >= kBlockSize &&
            i + 1 - kBlockSize >= lo &&
            (block_max_[i >> kBlockShift] + r).fits_within(capacity_)) {
          i -= kBlockSize - 1;
          continue;
        }
        if (segment_blocks(segs_[i], r, frac)) {
          blocker = i;
          break;
        }
      }
      if (blocker == kNoSegment) {
        if (obs_ != nullptr) obs_->count(obs_->ledger().probes_walked, probes);
        if (probes_out != nullptr) *probes_out = probes;
        return t;
      }
      std::size_t j = blocker;
      while (j + 1 < segs_.size() && segment_blocks(segs_[j + 1], r, frac)) ++j;
      if (j + 1 == segs_.size()) break;  // blocked through the infinite tail
      t = segs_[j + 1].start;
    }
    if (obs_ != nullptr) obs_->count(obs_->ledger().probes_walked, probes);
    if (probes_out != nullptr) *probes_out = probes;
    return kTimeInfinity;
  }
  // Legacy reference: candidate start times are `from` itself, then every
  // profile boundary after the current candidate — one boundary per failed
  // probe (the pre-fast-path behaviour).
  SimTime t = from;
  while (t <= horizon) {
    ++probes;
    if (fits(t, t + duration, r)) {
      if (obs_ != nullptr) obs_->count(obs_->ledger().probes_walked, probes);
      if (probes_out != nullptr) *probes_out = probes;
      return t;
    }
    auto it = profile_.upper_bound(t);
    if (it == profile_.end()) break;  // constant level for the rest of time
    t = it->first;
  }
  if (obs_ != nullptr) obs_->count(obs_->ledger().probes_walked, probes);
  if (probes_out != nullptr) *probes_out = probes;
  return kTimeInfinity;
}

void ReservationLedger::audit_invariants() const {
  if (backend_ == Backend::kFlat) {
    VMLP_CHECK_MSG(!segs_.empty(), "ledger profile lost its origin segment");
    const Segment* prev = nullptr;
    for (const Segment& s : segs_) {
      VMLP_CHECK_MSG(s.level.is_finite(), "non-finite ledger level at t=" << s.start);
      VMLP_CHECK_MSG(!s.level.any_negative(),
                     "negative ledger level " << s.level.to_string() << " at t=" << s.start);
      VMLP_CHECK_MSG(s.headroom == headroom_of(s.level),
                     "stale cached headroom at t=" << s.start);
      if (prev != nullptr) {
        VMLP_CHECK_MSG(prev->start < s.start,
                       "ledger segments out of order at t=" << s.start);
        VMLP_CHECK_MSG(!nearly_equal(prev->level, s.level),
                       "ledger not canonical: duplicate adjacent level at t=" << s.start);
      }
      prev = &s;
    }
    // SoA mirror invariant: everything below the watermarks bitwise-equals
    // the AoS truth. (Entries at or above them are declared stale and get
    // rewritten by ensure_mirror before any kernel reads them.)
    const std::size_t mirrored =
        std::min({mirror_from_, segs_.size(), soa_start_.size()});
    for (std::size_t i = 0; i < mirrored; ++i) {
      const Segment& s = segs_[i];
      VMLP_CHECK_MSG(soa_start_[i] == s.start && soa_cpu_[i] == s.level.cpu &&
                         soa_mem_[i] == s.level.mem && soa_io_[i] == s.level.io &&
                         soa_headroom_[i] == s.headroom,
                     "SoA segment mirror diverged from segments at index " << i);
    }
    if (!index_dirty_) {
      const std::size_t bmirrored =
          std::min({block_mirror_from_, block_max_.size(), soa_bmax_cpu_.size()});
      for (std::size_t b = 0; b < bmirrored; ++b) {
        VMLP_CHECK_MSG(soa_bmax_cpu_[b] == block_max_[b].cpu &&
                           soa_bmax_mem_[b] == block_max_[b].mem &&
                           soa_bmax_io_[b] == block_max_[b].io &&
                           soa_bmin_cpu_[b] == block_min_[b].cpu &&
                           soa_bmin_mem_[b] == block_min_[b].mem &&
                           soa_bmin_io_[b] == block_min_[b].io,
                       "SoA block mirror diverged from the coarse index at block " << b);
      }
    }
    return;
  }
  VMLP_CHECK_MSG(!profile_.empty(), "ledger profile lost its origin segment");
  const ResourceVector* prev = nullptr;
  for (const auto& [t, level] : profile_) {
    VMLP_CHECK_MSG(level.is_finite(), "non-finite ledger level at t=" << t);
    VMLP_CHECK_MSG(!level.any_negative(),
                   "negative ledger level " << level.to_string() << " at t=" << t);
    if (prev != nullptr) {
      VMLP_CHECK_MSG(!nearly_equal(*prev, level),
                     "ledger not canonical: duplicate adjacent level at t=" << t);
    }
    prev = &level;
  }
}

}  // namespace vmlp::cluster
