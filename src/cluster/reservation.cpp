#include "cluster/reservation.h"

#include <algorithm>

#include "common/audit.h"
#include "common/error.h"

namespace vmlp::cluster {
namespace {

bool nearly_equal(const ResourceVector& a, const ResourceVector& b) {
  const ResourceVector d = a - b;
  return !d.any_negative() && !(b - a).any_negative();
}

}  // namespace

ReservationLedger::ReservationLedger(ResourceVector capacity) : capacity_(capacity) {
  VMLP_CHECK_MSG(!capacity.any_negative(), "negative capacity");
  profile_.emplace(0, ResourceVector::zero());
}

std::map<SimTime, ResourceVector>::iterator ReservationLedger::split_at(SimTime t) {
  auto it = profile_.lower_bound(t);
  if (it != profile_.end() && it->first == t) return it;
  VMLP_CHECK_MSG(it != profile_.begin(), "time " << t << " precedes ledger origin");
  auto prev = std::prev(it);
  return profile_.emplace_hint(it, t, prev->second);
}

void ReservationLedger::reserve(SimTime t0, SimTime t1, const ResourceVector& r) {
  VMLP_CHECK_MSG(t0 < t1, "empty reservation window [" << t0 << "," << t1 << ")");
  // A negative or non-finite reservation silently *creates* capacity — the
  // canonical corruption a buggy planner would introduce.
  VMLP_AUDIT_ASSERT(r.is_finite(), "non-finite reservation " << r.to_string());
  VMLP_AUDIT_ASSERT(!r.any_negative(), "negative reservation " << r.to_string());
  auto begin = split_at(t0);
  auto end = split_at(t1);
  for (auto it = begin; it != end; ++it) it->second += r;
  coalesce(t0, t1);
  if (::vmlp::audit::enabled()) audit_invariants();
}

void ReservationLedger::release(SimTime t0, SimTime t1, const ResourceVector& r) {
  VMLP_CHECK_MSG(t0 < t1, "empty release window");
  VMLP_AUDIT_ASSERT(r.is_finite(), "non-finite release " << r.to_string());
  VMLP_AUDIT_ASSERT(!r.any_negative(),
                    "negative release " << r.to_string() << " would inflate the profile");
  auto begin = split_at(t0);
  auto end = split_at(t1);
  for (auto it = begin; it != end; ++it) {
    it->second -= r;
    VMLP_CHECK_MSG(!it->second.any_negative(),
                   "release drives profile negative at t=" << it->first);
    // Snap tiny float residue to exact zero so fits() stays sharp.
    if (it->second.near_zero()) it->second = ResourceVector::zero();
  }
  coalesce(t0, t1);
  if (::vmlp::audit::enabled()) audit_invariants();
}

void ReservationLedger::coalesce(SimTime t0, SimTime t1) {
  auto it = profile_.lower_bound(t0);
  if (it != profile_.begin()) --it;
  while (it != profile_.end()) {
    auto next = std::next(it);
    if (next == profile_.end() || next->first > t1) break;
    if (nearly_equal(it->second, next->second)) {
      profile_.erase(next);
    } else {
      it = next;
    }
  }
}

ResourceVector ReservationLedger::usage_at(SimTime t) const {
  auto it = profile_.upper_bound(t);
  VMLP_CHECK_MSG(it != profile_.begin(), "time " << t << " precedes ledger origin");
  return std::prev(it)->second;
}

ResourceVector ReservationLedger::max_usage(SimTime t0, SimTime t1) const {
  VMLP_CHECK_MSG(t0 < t1, "empty query window");
  ResourceVector m = usage_at(t0);
  for (auto it = profile_.upper_bound(t0); it != profile_.end() && it->first < t1; ++it) {
    m = m.max(it->second);
  }
  return m;
}

ResourceVector ReservationLedger::available(SimTime t0, SimTime t1) const {
  return (capacity_ - max_usage(t0, t1)).max(ResourceVector::zero());
}

bool ReservationLedger::fits(SimTime t0, SimTime t1, const ResourceVector& r) const {
  return (max_usage(t0, t1) + r).fits_within(capacity_);
}

SimTime ReservationLedger::earliest_fit(SimTime from, SimDuration duration,
                                        const ResourceVector& r, SimTime horizon) const {
  VMLP_CHECK(duration > 0);
  // Candidate start times: `from` itself, then every profile boundary after
  // it. A window can only newly fit when the usage level drops, and levels
  // change only at boundaries.
  SimTime t = from;
  while (t <= horizon) {
    if (fits(t, t + duration, r)) return t;
    auto it = profile_.upper_bound(t);
    if (it == profile_.end()) break;  // constant level for the rest of time
    t = it->first;
  }
  return kTimeInfinity;
}

void ReservationLedger::audit_invariants() const {
  VMLP_CHECK_MSG(!profile_.empty(), "ledger profile lost its origin segment");
  const ResourceVector* prev = nullptr;
  for (const auto& [t, level] : profile_) {
    VMLP_CHECK_MSG(level.is_finite(), "non-finite ledger level at t=" << t);
    VMLP_CHECK_MSG(!level.any_negative(),
                   "negative ledger level " << level.to_string() << " at t=" << t);
    if (prev != nullptr) {
      VMLP_CHECK_MSG(!nearly_equal(*prev, level),
                     "ledger not canonical: duplicate adjacent level at t=" << t);
    }
    prev = &level;
  }
}

void ReservationLedger::compact_before(SimTime t) {
  auto it = profile_.upper_bound(t);
  if (it == profile_.begin()) return;
  --it;  // segment covering t
  if (it == profile_.begin()) return;
  const ResourceVector level = it->second;
  const SimTime key = it->first;
  profile_.erase(profile_.begin(), it);
  // Re-anchor the origin at the covering segment's start.
  profile_[key] = level;
}

}  // namespace vmlp::cluster
