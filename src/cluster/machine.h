// Machine: one node of the simulated cluster — a capacity vector, the set of
// containers currently placed on it, and the reservation ledger describing
// its committed future.
#pragma once

#include <map>
#include <vector>

#include "cluster/container.h"
#include "cluster/reservation.h"
#include "cluster/resources.h"
#include "common/types.h"

namespace vmlp::cluster {

class Machine {
 public:
  Machine(MachineId id, ResourceVector capacity,
          ReservationLedger::Backend ledger_backend = ReservationLedger::Backend::kFlat);

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }

  /// Failure injection marks machines down for crash windows; schedulers must
  /// never select a down machine (sched/failure.h). Containers already on a
  /// crashing machine are purged by the driver, not here.
  [[nodiscard]] bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] ReservationLedger& ledger() { return ledger_; }
  [[nodiscard]] const ReservationLedger& ledger() const { return ledger_; }

  /// Place a container. Throws if the id already exists.
  Container& add_container(ContainerId id, InstanceId instance, const ResourceVector& demand,
                           const ResourceVector& limit);
  /// Remove a finished container. Throws if absent.
  void remove_container(ContainerId id);
  [[nodiscard]] Container* find_container(ContainerId id);
  [[nodiscard]] const Container* find_container(ContainerId id) const;
  [[nodiscard]] std::size_t container_count() const { return containers_.size(); }
  [[nodiscard]] std::vector<ContainerId> container_ids() const;

  /// Sum of effective usage of the containers placed here, clamped to
  /// capacity (oversubscription shows up as allocation pressure, not as
  /// physically impossible consumption).
  [[nodiscard]] ResourceVector current_usage() const;
  /// Sum of granted limits (may exceed capacity under oversubscription).
  [[nodiscard]] ResourceVector allocated() const;
  /// Total demand of the containers placed here.
  [[nodiscard]] ResourceVector demanded() const;
  /// Per-node efficiency term of the paper's U metric:
  /// (u_cpu + u_mem + u_io) with each u in [0,1].
  [[nodiscard]] double utilization_sum() const;
  /// True when allocated limits exceed capacity in any dimension.
  [[nodiscard]] bool oversubscribed() const;
  /// Contention factor >= 1: how much allocation exceeds capacity at worst.
  [[nodiscard]] double contention_factor() const;

 private:
  MachineId id_;
  ResourceVector capacity_;
  bool up_ = true;
  ReservationLedger ledger_;
  // Ordered by ContainerId so usage/allocation sums accumulate in a stable
  // order — unordered iteration would make exported metrics depend on
  // rehash history (see tools/vmlp_lint.py, rule unordered-iter).
  std::map<ContainerId, Container> containers_;
};

}  // namespace vmlp::cluster
