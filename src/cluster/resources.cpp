#include "cluster/resources.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vmlp::cluster {

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  cpu += o.cpu;
  mem += o.mem;
  io += o.io;
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  cpu -= o.cpu;
  mem -= o.mem;
  io -= o.io;
  return *this;
}

ResourceVector& ResourceVector::operator*=(double k) {
  cpu *= k;
  mem *= k;
  io *= k;
  return *this;
}

ResourceVector ResourceVector::max(const ResourceVector& o) const {
  return {std::max(cpu, o.cpu), std::max(mem, o.mem), std::max(io, o.io)};
}

ResourceVector ResourceVector::min(const ResourceVector& o) const {
  return {std::min(cpu, o.cpu), std::min(mem, o.mem), std::min(io, o.io)};
}

ResourceVector ResourceVector::clamp_to(const ResourceVector& hi) const {
  return {std::clamp(cpu, 0.0, hi.cpu), std::clamp(mem, 0.0, hi.mem), std::clamp(io, 0.0, hi.io)};
}

bool ResourceVector::fits_within(const ResourceVector& budget) const {
  return cpu <= budget.cpu + kResourceEpsilon && mem <= budget.mem + kResourceEpsilon &&
         io <= budget.io + kResourceEpsilon;
}

bool ResourceVector::any_negative() const {
  return cpu < -kResourceEpsilon || mem < -kResourceEpsilon || io < -kResourceEpsilon;
}

bool ResourceVector::is_finite() const {
  return std::isfinite(cpu) && std::isfinite(mem) && std::isfinite(io);
}

bool ResourceVector::near_zero() const {
  return std::abs(cpu) <= kResourceEpsilon && std::abs(mem) <= kResourceEpsilon &&
         std::abs(io) <= kResourceEpsilon;
}

double ResourceVector::utilization_sum(const ResourceVector& capacity) const {
  double total = 0.0;
  if (capacity.cpu > 0) total += std::clamp(cpu / capacity.cpu, 0.0, 1.0);
  if (capacity.mem > 0) total += std::clamp(mem / capacity.mem, 0.0, 1.0);
  if (capacity.io > 0) total += std::clamp(io / capacity.io, 0.0, 1.0);
  return total;
}

double ResourceVector::max_ratio_over(const ResourceVector& other) const {
  double r = 0.0;
  if (other.cpu > kResourceEpsilon) r = std::max(r, cpu / other.cpu);
  else if (cpu > kResourceEpsilon) return std::numeric_limits<double>::infinity();
  if (other.mem > kResourceEpsilon) r = std::max(r, mem / other.mem);
  else if (mem > kResourceEpsilon) return std::numeric_limits<double>::infinity();
  if (other.io > kResourceEpsilon) r = std::max(r, io / other.io);
  else if (io > kResourceEpsilon) return std::numeric_limits<double>::infinity();
  return r;
}

std::string ResourceVector::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{cpu=%.1fmC mem=%.1fMB io=%.1fMB/s}", cpu, mem, io);
  return buf;
}

}  // namespace vmlp::cluster
