// Three-dimensional resource vectors: CPU (millicores), memory (MB), and IO
// bandwidth (MB/s) — the resource types the paper monitors and controls
// (Table III) and the dimensions of its utilization metric U.
#pragma once

#include <string>

namespace vmlp::cluster {

struct ResourceVector {
  double cpu = 0.0;  ///< millicores
  double mem = 0.0;  ///< MB
  double io = 0.0;   ///< MB/s

  static ResourceVector zero() { return {}; }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  ResourceVector& operator*=(double k);

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) { return a -= b; }
  friend ResourceVector operator*(ResourceVector a, double k) { return a *= k; }
  friend ResourceVector operator*(double k, ResourceVector a) { return a *= k; }
  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.cpu == b.cpu && a.mem == b.mem && a.io == b.io;
  }

  /// Component-wise max / min.
  [[nodiscard]] ResourceVector max(const ResourceVector& o) const;
  [[nodiscard]] ResourceVector min(const ResourceVector& o) const;
  /// Clamp each component into [0, hi_component].
  [[nodiscard]] ResourceVector clamp_to(const ResourceVector& hi) const;

  /// True when every component of this fits within `budget` (<=, with a small
  /// epsilon to absorb floating-point drift from repeated reserve/release).
  [[nodiscard]] bool fits_within(const ResourceVector& budget) const;
  /// True when any component is negative (beyond epsilon).
  [[nodiscard]] bool any_negative() const;
  /// True when every component is a finite number (no NaN/inf). Corrupted
  /// arithmetic upstream shows up here first; checked by the audit layer.
  [[nodiscard]] bool is_finite() const;
  /// True when every component is (near) zero.
  [[nodiscard]] bool near_zero() const;

  /// Sum of per-component utilization fractions vs. `capacity` (each clamped
  /// to [0,1]); divide by 3 for the paper's per-node efficiency term.
  [[nodiscard]] double utilization_sum(const ResourceVector& capacity) const;

  /// Largest component-wise ratio this/other over components where other > 0.
  /// Used for bottleneck factors (demand / allocation).
  [[nodiscard]] double max_ratio_over(const ResourceVector& other) const;

  [[nodiscard]] std::string to_string() const;
};

inline constexpr double kResourceEpsilon = 1e-6;

}  // namespace vmlp::cluster
