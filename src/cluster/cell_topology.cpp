#include "cluster/cell_topology.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "common/audit.h"
#include "common/error.h"
#include "common/simd.h"

namespace vmlp::cluster {
namespace {

/// Same margin discipline as the ledger's scalar headroom fast path
/// (reservation.cpp kHeadroomSafety): the summary may only claim a fit the
/// exact vector compare would also accept.
constexpr double kHeadroomSafety = 1e-9;

/// Forces the first refresh_block fold: real ledger epochs start at 0.
constexpr std::uint64_t kNeverSeen = std::numeric_limits<std::uint64_t>::max();

}  // namespace

CellTopology::CellTopology(std::size_t machine_count, const CellTopologyParams& params) {
  VMLP_CHECK_MSG(machine_count > 0, "topology needs machines");
  // MachineId narrowing guard, repeated from Cluster: this member constructs
  // before Cluster's ctor body runs its checks, and the per-machine vectors
  // below must not be sized from an id space that cannot exist.
  VMLP_CHECK_MSG(machine_count < std::numeric_limits<std::uint32_t>::max(),
                 "machine_count " << machine_count << " overflows MachineId");
  std::size_t cells = params.cells;
  if (cells == 0) cells = (machine_count + kAutoCellTarget - 1) / kAutoCellTarget;
  cells = std::min(cells, machine_count);  // no empty cells

  // Contiguous partition: base machines per cell, the first `extra` cells
  // take one more. Contiguity keeps a cell's machines inside a run of
  // headroom-index blocks and preserves rack adjacency (net::Topology racks
  // are id-contiguous too).
  const std::size_t base = machine_count / cells;
  const std::size_t extra = machine_count % cells;
  begins_.reserve(cells + 1);
  begins_.push_back(0);
  for (std::size_t c = 0; c < cells; ++c) {
    begins_.push_back(begins_.back() + base + (c < extra ? 1 : 0));
  }
  VMLP_CHECK(begins_.back() == machine_count);

  cell_of_.resize(machine_count);
  for (std::size_t c = 0; c < cells; ++c) {
    for (std::size_t i = begins_[c]; i < begins_[c + 1]; ++i) {
      cell_of_[i] = static_cast<std::uint32_t>(c);
    }
  }
  live_.assign(cells, 0);
  cell_peak_.assign(cells, 0);

  const std::size_t blocks = (machine_count + kBlockSize - 1) >> kBlockShift;
  free_frac_.assign(machine_count, 0.0);
  seen_epoch_.assign(machine_count, kNeverSeen);
  block_free_max_.assign(blocks, 0.0);
  block_folded_.assign(blocks, 0);  // first query folds from the ledgers
}

void CellTopology::ranked_cells(std::vector<std::size_t>& out) const {
  out.resize(cell_count());
  std::iota(out.begin(), out.end(), std::size_t{0});
  // Stable insertion-order start + exact integer density compare + id
  // tie-break: the ranking is a pure function of the live counters.
  std::sort(out.begin(), out.end(), [this](std::size_t a, std::size_t b) {
    const std::uint64_t lhs = live_[a] * static_cast<std::uint64_t>(cell_size(b));
    const std::uint64_t rhs = live_[b] * static_cast<std::uint64_t>(cell_size(a));
    if (lhs != rhs) return lhs < rhs;
    return a < b;
  });
}

void CellTopology::note_mutation(MachineId m, const Machine& machine) {
  const std::size_t i = m.value();
  VMLP_CHECK_MSG(i < machine_count(), "note_mutation machine id out of range");
  free_frac_[i] = machine.ledger().free_fraction();  // O(1): cached peak bound
  seen_epoch_[i] = machine.ledger().version();
  const std::size_t b = i >> kBlockShift;
  if (block_folded_[b] == 0) return;  // first query folds the whole block
  // Refold the block max over the cached fractions: 32 contiguous doubles,
  // no ledger touches. (A max-only fold can't be maintained in O(1) because
  // a release may lower the current maximum.) The fold runs through the
  // dispatched SIMD kernel; max over finite doubles is order-independent,
  // and the fractions are never negative (free_fraction clamps at 0.0), so
  // every target — including the kernel's -inf empty-fold identity vs the
  // old loop's 0.0 seed — produces the same bits.
  const std::size_t lo = b << kBlockShift;
  const std::size_t hi = std::min(machine_count(), lo + kBlockSize);
  block_free_max_[b] = simd::kernels().reduce_max1(free_frac_.data() + lo, hi - lo);
}

double CellTopology::refresh_block(const Cluster& cluster, std::size_t b) const {
  const std::size_t lo = b << kBlockShift;
  const std::size_t hi = std::min(machine_count(), lo + kBlockSize);
  if (block_folded_[b] != 0) {
    // Push-maintained: the cached max is current by the driver's
    // notification discipline. The audit tier proves that discipline — a
    // ledger that moved without note_mutation fails loudly here instead of
    // silently degrading the jump hint.
    if (::vmlp::audit::enabled()) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& led = cluster.machine(MachineId(static_cast<std::uint32_t>(i))).ledger();
        VMLP_AUDIT_ASSERT(led.version() == seen_epoch_[i],
                          "headroom summary stale: machine "
                              << i << " mutated (ledger epoch " << led.version()
                              << ", summary saw " << seen_epoch_[i]
                              << ") without CellTopology::note_mutation");
      }
    }
    return block_free_max_[b];
  }
  double mx = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& led = cluster.machine(MachineId(static_cast<std::uint32_t>(i))).ledger();
    free_frac_[i] = led.free_fraction();
    seen_epoch_[i] = led.version();
    mx = std::max(mx, free_frac_[i]);
  }
  block_free_max_[b] = mx;
  block_folded_[b] = 1;
  return mx;
}

std::size_t CellTopology::first_fit_candidate(const Cluster& cluster, std::size_t cell,
                                              std::size_t cursor, double demand_frac) const {
  const std::size_t begin = cell_begin(cell);
  const std::size_t size = cell_size(cell);
  const std::size_t end = begin + size;
  // Blocks are global (a boundary block may straddle cells); the member scan
  // below clips to the cell range, so a straddling block driven past the
  // threshold by a neighbour-cell machine is just a skipped false positive.
  const std::size_t begin_block = begin >> kBlockShift;
  const std::size_t last_block = (end - 1) >> kBlockShift;
  const std::size_t n_blocks = last_block - begin_block + 1;
  const std::size_t start_block = (begin + (cursor % size)) >> kBlockShift;
  // Hoisted admission threshold: the same `demand_frac + kHeadroomSafety`
  // IEEE sum the per-machine compare used to re-evaluate — hoisting cannot
  // change any verdict, it just lets the member scan run as one vectorized
  // find-first over the contiguous fraction cache. `x >= need` is exactly
  // the complement of the old `need > x` skip (no NaNs: an infinite
  // demand_frac stays infinite under + and simply never matches).
  const double need = demand_frac + kHeadroomSafety;
  const auto& k = simd::kernels();
  for (std::size_t step = 0; step < n_blocks; ++step) {
    std::size_t b = start_block + step;
    if (b > last_block) b -= n_blocks;  // wrap within the cell's block run
    const double block_max = refresh_block(cluster, b);
    if (need > block_max) continue;
    const std::size_t lo = std::max(b << kBlockShift, begin);
    const std::size_t hi = std::min((b + 1) << kBlockShift, end);
    // Jump hit to hit: first_ge finds the next admitting fraction in index
    // order; only the (rare) down machines force a resume past a hit.
    std::size_t i = lo;
    while (i < hi) {
      const std::size_t j = i + k.first_ge(free_frac_.data() + i, hi - i, need);
      if (j >= hi) break;
      if (cluster.machine(MachineId(static_cast<std::uint32_t>(j))).up()) return j;
      i = j + 1;
    }
  }
  return kNoMachine;
}

}  // namespace vmlp::cluster
