#include "cluster/container.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::cluster {

Container::Container(ContainerId id, InstanceId instance, MachineId machine, ResourceVector demand,
                     ResourceVector limit)
    : id_(id), instance_(instance), machine_(machine), demand_(demand), limit_(limit) {
  VMLP_CHECK_MSG(id.valid() && machine.valid(), "invalid container identity");
  VMLP_CHECK_MSG(!demand.any_negative() && !limit.any_negative(), "negative container resources");
}

ResourceVector Container::set_limit(const ResourceVector& limit) {
  VMLP_CHECK_MSG(!limit.any_negative(), "negative container limit");
  ResourceVector old = limit_;
  limit_ = limit;
  return old;
}

ResourceVector Container::effective_usage() const {
  const ResourceVector running = limit_.min(demand_);
  if (state_ == ContainerState::kRunning) return running;
  return {std::max(kSuspendedCpuFloor, running.cpu * kSuspendedCpuFraction),
          std::max(kSuspendedMemFloor, running.mem * kSuspendedMemFraction),
          std::max(kSuspendedIoFloor, running.io * kSuspendedIoFraction)};
}

}  // namespace vmlp::cluster
