#include "cluster/cluster.h"

#include <cstdint>
#include <limits>

#include "common/error.h"

namespace vmlp::cluster {

Cluster::Cluster(const ClusterParams& params)
    : cells_(params.machine_count, params.topology) {
  VMLP_CHECK_MSG(params.machine_count > 0, "cluster needs machines");
  // MachineId's uint32 rep reserves its max value as the invalid sentinel;
  // ids are the machine indices, so the count must stay strictly below it.
  VMLP_CHECK_MSG(params.machine_count < std::numeric_limits<std::uint32_t>::max(),
                 "machine_count " << params.machine_count << " overflows MachineId");
  VMLP_CHECK_MSG(!params.machine_capacity.any_negative(), "negative machine capacity");
  machines_.reserve(params.machine_count);
  const auto backend = params.legacy_ledger ? ReservationLedger::Backend::kLegacyMap
                                            : ReservationLedger::Backend::kFlat;
  for (std::size_t i = 0; i < params.machine_count; ++i) {
    machines_.emplace_back(MachineId(static_cast<std::uint32_t>(i)), params.machine_capacity,
                           backend);
  }
}

// Aggregate folds iterate machines_ by ascending machine id — the vector's
// storage order, fixed at construction. Explicit accumulation order matters
// at 10k machines: float addition is not associative, and any order that
// depended on container rehash history or cell ranking would make exported
// aggregates run-dependent (tools/vmlp_analyze rule unordered-escape).

double Cluster::overall_utilization() const {
  double total = 0.0;
  for (const auto& m : machines_) total += m.utilization_sum();
  return total / (3.0 * static_cast<double>(machines_.size()));
}

ResourceVector Cluster::total_usage() const {
  ResourceVector total;
  for (const auto& m : machines_) total += m.current_usage();
  return total;
}

ResourceVector Cluster::total_capacity() const {
  ResourceVector total;
  for (const auto& m : machines_) total += m.capacity();
  return total;
}

void Cluster::compact_ledgers_before(SimTime t) {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    machines_[i].ledger().compact_before(t);
    // Compaction never moves free_fraction (the peak bound is untouched),
    // but it does bump the mutation epoch — notify the headroom index so
    // its audit-tier epoch cross-check stays exact.
    cells_.note_mutation(MachineId(static_cast<std::uint32_t>(i)), machines_[i]);
  }
}

}  // namespace vmlp::cluster
