#include "cluster/cluster.h"

#include "common/error.h"

namespace vmlp::cluster {

Cluster::Cluster(const ClusterParams& params) {
  VMLP_CHECK_MSG(params.machine_count > 0, "cluster needs machines");
  VMLP_CHECK_MSG(!params.machine_capacity.any_negative(), "negative machine capacity");
  machines_.reserve(params.machine_count);
  const auto backend = params.legacy_ledger ? ReservationLedger::Backend::kLegacyMap
                                            : ReservationLedger::Backend::kFlat;
  for (std::size_t i = 0; i < params.machine_count; ++i) {
    machines_.emplace_back(MachineId(static_cast<std::uint32_t>(i)), params.machine_capacity,
                           backend);
  }
}

double Cluster::overall_utilization() const {
  double total = 0.0;
  for (const auto& m : machines_) total += m.utilization_sum();
  return total / (3.0 * static_cast<double>(machines_.size()));
}

ResourceVector Cluster::total_usage() const {
  ResourceVector total;
  for (const auto& m : machines_) total += m.current_usage();
  return total;
}

ResourceVector Cluster::total_capacity() const {
  ResourceVector total;
  for (const auto& m : machines_) total += m.capacity();
  return total;
}

void Cluster::compact_ledgers_before(SimTime t) {
  for (auto& m : machines_) m.ledger().compact_before(t);
}

}  // namespace vmlp::cluster
