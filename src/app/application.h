// Application model: the registry of microservice types plus the request
// types (each a DAG over those services with per-node logic-path scales and
// an SLO). Concrete instances — SocialNetwork and TrainTicket — live in
// src/workloads/.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "app/dag.h"
#include "app/microservice.h"
#include "app/volatility.h"
#include "common/types.h"

namespace vmlp::app {

/// One node of a request DAG: which microservice runs and how much this
/// request type's logic path scales its nominal time (Fig. 2's source of
/// heterogeneity: the same service does different work per request type).
struct RequestNode {
  ServiceTypeId service;
  double time_scale = 1.0;
};

class Application;

class RequestType {
 public:
  RequestType(RequestTypeId id, std::string name, std::vector<RequestNode> nodes, Dag dag,
              SimDuration slo);

  [[nodiscard]] RequestTypeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<RequestNode>& nodes() const { return nodes_; }
  [[nodiscard]] const Dag& dag() const { return dag_; }
  [[nodiscard]] SimDuration slo() const { return slo_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  RequestTypeId id_;
  std::string name_;
  std::vector<RequestNode> nodes_;
  Dag dag_;
  SimDuration slo_;
};

/// Builder for one request type; obtained from Application::build_request.
class RequestTypeBuilder {
 public:
  /// Append a node invoking `service`; returns the node index.
  RequestTypeBuilder& node(ServiceTypeId service, double time_scale = 1.0);
  /// Add a caller→callee dependency between node indices.
  RequestTypeBuilder& edge(std::size_t from, std::size_t to);
  /// Chain sugar: edges n0→n1→…→nk over already-added node indices.
  RequestTypeBuilder& chain(const std::vector<std::size_t>& path);
  /// Explicit SLO; when omitted the application derives one from the nominal
  /// critical path (× slo_factor).
  RequestTypeBuilder& slo(SimDuration slo);

  /// Finalize; registers the request type with the application.
  RequestTypeId commit();

 private:
  friend class Application;
  RequestTypeBuilder(Application& app, std::string name);

  Application& app_;
  std::string name_;
  std::vector<RequestNode> nodes_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::optional<SimDuration> slo_;
};

class Application {
 public:
  explicit Application(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Register a microservice type; returns its id.
  ServiceTypeId add_service(const std::string& name, cluster::ResourceVector demand,
                            SimDuration nominal_time, ServiceClass cls,
                            ResourceIntensity intensity);

  /// Start building a request type.
  RequestTypeBuilder build_request(const std::string& name);

  [[nodiscard]] const MicroserviceType& service(ServiceTypeId id) const;
  [[nodiscard]] const RequestType& request(RequestTypeId id) const;
  [[nodiscard]] std::optional<ServiceTypeId> find_service(const std::string& name) const;
  [[nodiscard]] std::optional<RequestTypeId> find_request(const std::string& name) const;
  [[nodiscard]] std::size_t service_count() const { return services_.size(); }
  [[nodiscard]] std::size_t request_count() const { return requests_.size(); }
  [[nodiscard]] const std::vector<MicroserviceType>& services() const { return services_; }
  [[nodiscard]] const std::vector<RequestType>& requests() const { return requests_; }

  /// V_r of a request type (Section III-B) over its invoked services.
  [[nodiscard]] double volatility(RequestTypeId id) const;
  [[nodiscard]] VolatilityBand band(RequestTypeId id) const;

  /// Contention-free expected end-to-end latency: longest path with node
  /// weight nominal×scale and a fixed per-edge communication estimate.
  [[nodiscard]] SimDuration nominal_e2e(RequestTypeId id, SimDuration edge_comm) const;

  /// Factor applied to nominal_e2e when deriving default SLOs.
  void set_slo_factor(double factor);
  [[nodiscard]] double slo_factor() const { return slo_factor_; }
  /// Per-edge communication estimate used for default SLOs.
  void set_slo_edge_comm(SimDuration comm);

 private:
  friend class RequestTypeBuilder;
  RequestTypeId commit_request(RequestTypeBuilder& builder);

  std::string name_;
  std::vector<MicroserviceType> services_;
  std::vector<RequestType> requests_;
  double slo_factor_ = 5.0;
  SimDuration slo_edge_comm_ = 2 * kMsec;
};

}  // namespace vmlp::app
