#include "app/request_runtime.h"

#include "common/error.h"

namespace vmlp::app {

const char* node_state_name(NodeState s) {
  switch (s) {
    case NodeState::kWaiting: return "waiting";
    case NodeState::kReady: return "ready";
    case NodeState::kPlaced: return "placed";
    case NodeState::kRunning: return "running";
    case NodeState::kDone: return "done";
  }
  return "?";
}

RequestRuntime::RequestRuntime(const RequestType& type, RequestId id, SimTime arrival)
    : type_(&type), id_(id), arrival_(arrival), nodes_(type.size()) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].pending_parents = type.dag().parents(i).size();
    if (nodes_[i].pending_parents == 0) {
      nodes_[i].state = NodeState::kReady;
      nodes_[i].ready_at = arrival;
    }
  }
}

const NodeRuntime& RequestRuntime::node(std::size_t i) const {
  VMLP_CHECK(i < nodes_.size());
  return nodes_[i];
}

NodeRuntime& RequestRuntime::node(std::size_t i) {
  VMLP_CHECK(i < nodes_.size());
  return nodes_[i];
}

std::vector<std::size_t> RequestRuntime::ready_nodes() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == NodeState::kReady) out.push_back(i);
  }
  return out;
}

void RequestRuntime::mark_ready(std::size_t i, SimTime t) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kWaiting,
                 "node " << i << " not waiting: " << node_state_name(n.state));
  VMLP_CHECK_MSG(n.pending_parents == 0, "node " << i << " still has unmet dependencies");
  n.state = NodeState::kReady;
  n.ready_at = t;
}

void RequestRuntime::mark_placed(std::size_t i, MachineId machine, InstanceId instance,
                                 SimTime planned_start) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kWaiting || n.state == NodeState::kReady,
                 "placing node " << i << " in state " << node_state_name(n.state));
  n.state = NodeState::kPlaced;
  n.machine = machine;
  n.instance = instance;
  n.planned_start = planned_start;
}

void RequestRuntime::mark_running(std::size_t i, ContainerId container, SimTime t) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kPlaced,
                 "starting node " << i << " in state " << node_state_name(n.state));
  VMLP_CHECK_MSG(n.pending_parents == 0, "starting node " << i << " before its dependencies");
  n.state = NodeState::kRunning;
  n.container = container;
  n.started_at = t;
}

void RequestRuntime::revert_placement(std::size_t i, SimTime t) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kPlaced,
                 "reverting node " << i << " in state " << node_state_name(n.state));
  n.machine = MachineId::invalid();
  n.instance = InstanceId::invalid();
  n.planned_start = -1;
  if (n.pending_parents == 0) {
    n.state = NodeState::kReady;
    if (n.ready_at < 0) n.ready_at = t;
  } else {
    n.state = NodeState::kWaiting;
  }
}

void RequestRuntime::mark_failed(std::size_t i, SimTime t) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kRunning,
                 "failing node " << i << " in state " << node_state_name(n.state));
  n.state = NodeState::kReady;
  n.machine = MachineId::invalid();
  n.instance = InstanceId::invalid();
  n.container = ContainerId::invalid();
  n.planned_start = -1;
  n.started_at = -1;
  n.ready_at = t;
}

std::vector<std::size_t> RequestRuntime::mark_done(std::size_t i, SimTime t) {
  NodeRuntime& n = node(i);
  VMLP_CHECK_MSG(n.state == NodeState::kRunning,
                 "finishing node " << i << " in state " << node_state_name(n.state));
  n.state = NodeState::kDone;
  n.finished_at = t;
  ++done_count_;

  std::vector<std::size_t> unblocked;
  for (std::size_t child : type_->dag().children(i)) {
    NodeRuntime& c = nodes_[child];
    VMLP_CHECK(c.pending_parents > 0);
    if (--c.pending_parents == 0) unblocked.push_back(child);
  }
  return unblocked;
}

bool RequestRuntime::independent_of_active(std::size_t i) const {
  const NodeRuntime& n = node(i);
  if (n.state != NodeState::kWaiting && n.state != NodeState::kReady) return false;
  for (std::size_t other = 0; other < nodes_.size(); ++other) {
    if (other == i) continue;
    const NodeState s = nodes_[other].state;
    const bool active = s == NodeState::kRunning || s == NodeState::kPlaced;
    if (active && type_->dag().reaches(other, i)) return false;
  }
  return true;
}

}  // namespace vmlp::app
