// Execution-time model (Section II's characterization, made generative).
//
// A microservice invocation is a quantity of *work* — its duration at full
// allocation — processed at a *rate* determined by how much of its demand the
// scheduler granted:
//
//   work  = T₀ · request-type scale · inner-logic noise(I)
//   rate  = f^(−e(S)),  f = max(1, demand/allocation bottleneck ratio)
//   duration = work / rate, plus extra dispersion for S=3 under contention
//
// Inner-logic classes (Fig. 2): I=1 keeps worst-case variation under 15 %,
// I=2 between 15–45 %, I=3 heavy-tailed (the "order doubles" case).
// Sensitivity classes (Fig. 3(c)): S=1 nearly insensitive, S=2 mean shifts,
// S=3 mean *and* variance inflate under capping.
//
// Work/rate factoring is what lets the self-healing module's resource stretch
// change allocations mid-flight: remaining work is invariant, the rate — and
// hence the completion time — changes.
#pragma once

#include "app/microservice.h"
#include "cluster/resources.h"
#include "common/rng.h"
#include "common/types.h"

namespace vmlp::app {

struct ExecModelParams {
  // Lognormal CV of the inner-logic noise per I class (index 0 unused).
  double inner_cv[4] = {0.0, 0.045, 0.10, 0.28};
  // Rate exponent e(S) per S class (index 0 unused): rate = f^-e.
  double sensitivity_exponent[4] = {0.0, 0.30, 1.00, 1.25};
  // Extra lognormal CV applied per unit of (f-1) for S=3 services.
  double high_sensitivity_extra_cv = 0.18;
};

class ExecModel {
 public:
  explicit ExecModel(ExecModelParams params = {});

  /// Sampled work: duration at full allocation, including inner-logic noise.
  [[nodiscard]] SimDuration sample_work(const MicroserviceType& type, double request_scale,
                                        Rng& rng) const;

  /// Relative execution rate in (0, 1] for a given allocation. 1.0 when the
  /// allocation covers the demand.
  [[nodiscard]] double rate(const MicroserviceType& type,
                            const cluster::ResourceVector& allocation) const;

  /// Bottleneck factor f >= 1 (demand over allocation, worst dimension).
  [[nodiscard]] double bottleneck(const MicroserviceType& type,
                                  const cluster::ResourceVector& allocation) const;

  /// Full duration sample for a constant allocation (work, rate and — for
  /// S=3 under contention — extra dispersion combined).
  [[nodiscard]] SimDuration sample_duration(const MicroserviceType& type, double request_scale,
                                            const cluster::ResourceVector& allocation,
                                            Rng& rng) const;

  [[nodiscard]] const ExecModelParams& params() const { return params_; }

 private:
  ExecModelParams params_;
};

}  // namespace vmlp::app
