#include "app/application.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::app {

RequestType::RequestType(RequestTypeId id, std::string name, std::vector<RequestNode> nodes,
                         Dag dag, SimDuration slo)
    : id_(id), name_(std::move(name)), nodes_(std::move(nodes)), dag_(std::move(dag)), slo_(slo) {
  VMLP_CHECK_MSG(!nodes_.empty(), "request type '" << name_ << "' has no nodes");
  VMLP_CHECK_MSG(dag_.node_count() == nodes_.size(), "DAG/node count mismatch");
  VMLP_CHECK_MSG(dag_.is_acyclic(), "request type '" << name_ << "' has a cyclic DAG");
  VMLP_CHECK_MSG(slo_ > 0, "request type '" << name_ << "' has no SLO");
}

RequestTypeBuilder::RequestTypeBuilder(Application& app, std::string name)
    : app_(app), name_(std::move(name)) {}

RequestTypeBuilder& RequestTypeBuilder::node(ServiceTypeId service, double time_scale) {
  VMLP_CHECK_MSG(time_scale > 0.0, "non-positive time scale");
  (void)app_.service(service);  // validates the id
  nodes_.push_back(RequestNode{service, time_scale});
  return *this;
}

RequestTypeBuilder& RequestTypeBuilder::edge(std::size_t from, std::size_t to) {
  VMLP_CHECK_MSG(from < nodes_.size() && to < nodes_.size(), "edge endpoint out of range");
  edges_.emplace_back(from, to);
  return *this;
}

RequestTypeBuilder& RequestTypeBuilder::chain(const std::vector<std::size_t>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) edge(path[i - 1], path[i]);
  return *this;
}

RequestTypeBuilder& RequestTypeBuilder::slo(SimDuration value) {
  VMLP_CHECK_MSG(value > 0, "non-positive SLO");
  slo_ = value;
  return *this;
}

RequestTypeId RequestTypeBuilder::commit() { return app_.commit_request(*this); }

Application::Application(std::string name) : name_(std::move(name)) {}

ServiceTypeId Application::add_service(const std::string& name, cluster::ResourceVector demand,
                                       SimDuration nominal_time, ServiceClass cls,
                                       ResourceIntensity intensity) {
  VMLP_CHECK_MSG(!find_service(name).has_value(), "duplicate service name '" << name << "'");
  VMLP_CHECK_MSG(cls.valid(), "invalid class terms for service '" << name << "'");
  VMLP_CHECK_MSG(nominal_time > 0, "service '" << name << "' needs a positive nominal time");
  VMLP_CHECK_MSG(!demand.any_negative() && !demand.near_zero(),
                 "service '" << name << "' needs a demand vector");
  const ServiceTypeId id(static_cast<std::uint32_t>(services_.size()));
  services_.push_back(MicroserviceType{id, name, demand, nominal_time, cls, intensity});
  return id;
}

RequestTypeBuilder Application::build_request(const std::string& name) {
  VMLP_CHECK_MSG(!find_request(name).has_value(), "duplicate request name '" << name << "'");
  return RequestTypeBuilder(*this, name);
}

RequestTypeId Application::commit_request(RequestTypeBuilder& builder) {
  const RequestTypeId id(static_cast<std::uint32_t>(requests_.size()));
  Dag dag(builder.nodes_.size());
  for (const auto& [from, to] : builder.edges_) dag.add_edge(from, to);

  SimDuration slo = builder.slo_.value_or(0);
  if (slo == 0) {
    // Derive from the contention-free critical path.
    RequestType probe(id, builder.name_, builder.nodes_, dag, 1);
    requests_.push_back(std::move(probe));
    const SimDuration nominal = nominal_e2e(id, slo_edge_comm_);
    requests_.pop_back();
    slo = static_cast<SimDuration>(std::llround(static_cast<double>(nominal) * slo_factor_));
  }
  requests_.emplace_back(id, builder.name_, std::move(builder.nodes_), std::move(dag), slo);
  return id;
}

const MicroserviceType& Application::service(ServiceTypeId id) const {
  VMLP_CHECK_MSG(id.valid() && id.value() < services_.size(),
                 "unknown service id " << id.value());
  return services_[id.value()];
}

const RequestType& Application::request(RequestTypeId id) const {
  VMLP_CHECK_MSG(id.valid() && id.value() < requests_.size(),
                 "unknown request type id " << id.value());
  return requests_[id.value()];
}

std::optional<ServiceTypeId> Application::find_service(const std::string& name) const {
  for (const auto& s : services_) {
    if (s.name == name) return s.id;
  }
  return std::nullopt;
}

std::optional<RequestTypeId> Application::find_request(const std::string& name) const {
  for (const auto& r : requests_) {
    if (r.name() == name) return r.id();
  }
  return std::nullopt;
}

double Application::volatility(RequestTypeId id) const {
  const RequestType& rt = request(id);
  std::vector<ServiceClass> classes;
  classes.reserve(rt.size());
  for (const auto& node : rt.nodes()) classes.push_back(service(node.service).cls);
  return request_volatility(classes);
}

VolatilityBand Application::band(RequestTypeId id) const {
  return volatility_band(volatility(id));
}

SimDuration Application::nominal_e2e(RequestTypeId id, SimDuration edge_comm) const {
  const RequestType& rt = request(id);
  const auto order = rt.dag().topo_order();
  std::vector<double> finish(rt.size(), 0.0);
  for (std::size_t node : order) {
    double start = 0.0;
    for (std::size_t parent : rt.dag().parents(node)) {
      start = std::max(start, finish[parent] + static_cast<double>(edge_comm));
    }
    const auto& n = rt.nodes()[node];
    finish[node] = start + static_cast<double>(service(n.service).nominal_time) * n.time_scale;
  }
  return static_cast<SimDuration>(std::llround(*std::max_element(finish.begin(), finish.end())));
}

void Application::set_slo_factor(double factor) {
  VMLP_CHECK_MSG(factor > 0.0, "non-positive SLO factor");
  slo_factor_ = factor;
}

void Application::set_slo_edge_comm(SimDuration comm) {
  VMLP_CHECK_MSG(comm >= 0, "negative SLO edge comm");
  slo_edge_comm_ = comm;
}

}  // namespace vmlp::app
