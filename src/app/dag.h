// Directed acyclic graph over request nodes.
//
// A request's invoked microservices form a DAG (Fig. 1(b)); execution follows
// topological order, and Algorithm 1 considers m distinct chain choices c_j —
// topological linearizations — per request. Enumerating all linearizations is
// exponential, so chain_choices() samples distinct ones via randomized Kahn
// tie-breaking (deterministic given the Rng).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace vmlp::app {

class Dag {
 public:
  explicit Dag(std::size_t nodes);

  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t node_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::vector<std::size_t>& parents(std::size_t node) const;
  [[nodiscard]] const std::vector<std::size_t>& children(std::size_t node) const;
  [[nodiscard]] std::vector<std::size_t> roots() const;
  [[nodiscard]] std::vector<std::size_t> sinks() const;

  /// True when the graph has no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Canonical topological order (Kahn, smallest-index tie-break). Throws on
  /// cyclic graphs.
  [[nodiscard]] std::vector<std::size_t> topo_order() const;

  /// Up to `max_choices` distinct topological linearizations (the paper's
  /// chain choices c_j). The canonical order is always the first entry.
  [[nodiscard]] std::vector<std::vector<std::size_t>> chain_choices(std::size_t max_choices,
                                                                    Rng& rng) const;

  /// Longest path length in *node count* (chain depth).
  [[nodiscard]] std::size_t critical_path_length() const;

  /// True if `ancestor` can reach `node` through directed edges.
  [[nodiscard]] bool reaches(std::size_t ancestor, std::size_t node) const;

 private:
  [[nodiscard]] std::vector<std::size_t> topo_with_tiebreak(Rng* rng) const;

  std::size_t n_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::vector<std::size_t>> parents_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace vmlp::app
