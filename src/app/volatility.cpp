#include "app/volatility.h"

#include "common/error.h"

namespace vmlp::app {

const char* band_name(VolatilityBand band) {
  switch (band) {
    case VolatilityBand::kLow: return "low";
    case VolatilityBand::kMid: return "mid";
    case VolatilityBand::kHigh: return "high";
  }
  return "?";
}

double request_volatility(const std::vector<ServiceClass>& services) {
  VMLP_CHECK_MSG(!services.empty(), "volatility of a request with no microservices");
  double sum = 0.0;
  for (const auto& cls : services) {
    VMLP_CHECK_MSG(cls.valid(), "service class terms out of the 1..3 range");
    sum += static_cast<double>(cls.inner_variability) *
           static_cast<double>(cls.resource_sensitivity) *
           static_cast<double>(cls.comm_overhead);
  }
  return kVolatilityAlpha * sum / static_cast<double>(services.size());
}

VolatilityBand volatility_band(double v_r) {
  VMLP_CHECK_MSG(v_r >= 0.0 && v_r <= 1.0 + 1e-9, "V_r out of range: " << v_r);
  if (v_r < kLowVolatilityMax) return VolatilityBand::kLow;
  if (v_r <= kHighVolatilityMin) return VolatilityBand::kMid;
  return VolatilityBand::kHigh;
}

}  // namespace vmlp::app
