#include "app/microservice.h"

namespace vmlp::app {

const char* intensity_name(ResourceIntensity intensity) {
  switch (intensity) {
    case ResourceIntensity::kCpu: return "cpu";
    case ResourceIntensity::kIo: return "io";
    case ResourceIntensity::kCpuIo: return "cpu+io";
  }
  return "?";
}

}  // namespace vmlp::app
