#include "app/exec_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vmlp::app {

ExecModel::ExecModel(ExecModelParams params) : params_(params) {
  for (int i = 1; i <= 3; ++i) {
    VMLP_CHECK(params_.inner_cv[i] >= 0.0);
    VMLP_CHECK(params_.sensitivity_exponent[i] >= 0.0);
  }
}

SimDuration ExecModel::sample_work(const MicroserviceType& type, double request_scale,
                                   Rng& rng) const {
  VMLP_CHECK_MSG(type.nominal_time > 0, "microservice '" << type.name << "' has no nominal time");
  VMLP_CHECK_MSG(request_scale > 0.0, "non-positive request scale");
  VMLP_CHECK_MSG(type.cls.valid(), "invalid service class for '" << type.name << "'");
  const double mean = static_cast<double>(type.nominal_time) * request_scale;
  const double cv = params_.inner_cv[type.cls.inner_variability];
  const double work = rng.lognormal_mean_cv(mean, cv);
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(work)));
}

double ExecModel::bottleneck(const MicroserviceType& type,
                             const cluster::ResourceVector& allocation) const {
  const cluster::ResourceVector granted =
      allocation.clamp_to(type.demand).max(cluster::ResourceVector{1e-3, 1e-3, 1e-3});
  return std::max(1.0, type.demand.max_ratio_over(granted));
}

double ExecModel::rate(const MicroserviceType& type,
                       const cluster::ResourceVector& allocation) const {
  const double f = bottleneck(type, allocation);
  const double e = params_.sensitivity_exponent[type.cls.resource_sensitivity];
  return std::pow(f, -e);
}

SimDuration ExecModel::sample_duration(const MicroserviceType& type, double request_scale,
                                       const cluster::ResourceVector& allocation,
                                       Rng& rng) const {
  const SimDuration work = sample_work(type, request_scale, rng);
  const double f = bottleneck(type, allocation);
  double duration = static_cast<double>(work) / rate(type, allocation);
  if (type.cls.resource_sensitivity == 3 && f > 1.0) {
    // Fig. 3(c)'s "highly variable" class: contention widens the distribution,
    // not just its mean.
    const double extra_cv = params_.high_sensitivity_extra_cv * (f - 1.0);
    duration *= rng.lognormal_mean_cv(1.0, extra_cv);
  }
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(duration)));
}

}  // namespace vmlp::app
