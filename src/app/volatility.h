// Volatility of requests (Section III-B):
//
//   V_r = α × Σ_{i=1..n} I_i × S_i × C_i / n,   α = 1/27
//
// so V_r ∈ (0, 1] with 1 reached when every invoked microservice maxes all
// three terms. Bands follow Algorithm 1: low < 0.3 ≤ mid ≤ 0.7 < high.
#pragma once

#include <vector>

#include "app/microservice.h"

namespace vmlp::app {

inline constexpr double kVolatilityAlpha = 1.0 / 27.0;
inline constexpr double kLowVolatilityMax = 0.3;
inline constexpr double kHighVolatilityMin = 0.7;

enum class VolatilityBand { kLow, kMid, kHigh };

const char* band_name(VolatilityBand band);

/// V_r over the classes of a request's invoked microservices. Throws on an
/// empty set or invalid class values.
double request_volatility(const std::vector<ServiceClass>& services);

/// Band classification per Algorithm 1's thresholds.
VolatilityBand volatility_band(double v_r);

}  // namespace vmlp::app
