// Microservice type model.
//
// A microservice is characterized by (Section II):
//   * a nominal resource demand vector and its intensity class
//     (CPU-, IO-, or CPU&IO-intensive — Fig. 3(a));
//   * I — inner execution-logic variability class (Fig. 2);
//   * S — sensitivity to resource shortage (Fig. 3(c));
//   * C — communication-overhead level of its caller links (Fig. 4);
// I, S, C ∈ {1, 2, 3} per Table II and enter the volatility metric V_r.
#pragma once

#include <string>

#include "cluster/resources.h"
#include "common/types.h"

namespace vmlp::app {

enum class ResourceIntensity { kCpu, kIo, kCpuIo };

const char* intensity_name(ResourceIntensity intensity);

/// The volatility terms of Table II.
struct ServiceClass {
  int inner_variability = 1;    ///< I: 1 (low) .. 3 (high)
  int resource_sensitivity = 1; ///< S: 1 (low) .. 3 (high)
  int comm_overhead = 1;        ///< C: 1 .. 3, from Var(RTT)

  [[nodiscard]] bool valid() const {
    auto ok = [](int v) { return v >= 1 && v <= 3; };
    return ok(inner_variability) && ok(resource_sensitivity) && ok(comm_overhead);
  }
};

struct MicroserviceType {
  ServiceTypeId id;
  std::string name;
  cluster::ResourceVector demand;  ///< nominal demand at full speed
  SimDuration nominal_time = 0;    ///< service time at full allocation, baseline logic path
  ServiceClass cls;
  ResourceIntensity intensity = ResourceIntensity::kCpu;
};

}  // namespace vmlp::app
