// RequestRuntime: the execution state machine of one in-flight request.
//
// Tracks per-node lifecycle (waiting → ready → placed → running → done),
// dependency counts, and per-node placement/timestamps. Shared by every
// scheduler; scheduling *policy* stays out of this class.
#pragma once

#include <vector>

#include "app/application.h"
#include "common/types.h"

namespace vmlp::app {

enum class NodeState { kWaiting, kReady, kPlaced, kRunning, kDone };

const char* node_state_name(NodeState s);

struct NodeRuntime {
  NodeState state = NodeState::kWaiting;
  std::size_t pending_parents = 0;
  MachineId machine;          ///< valid once placed
  InstanceId instance;        ///< valid once placed
  ContainerId container;      ///< valid while running
  SimTime ready_at = -1;      ///< when all parents finished + comm arrived
  SimTime planned_start = -1; ///< scheduler's predicted start (v-MLP)
  SimTime started_at = -1;
  SimTime finished_at = -1;
};

class RequestRuntime {
 public:
  RequestRuntime(const RequestType& type, RequestId id, SimTime arrival);

  [[nodiscard]] RequestId id() const { return id_; }
  [[nodiscard]] const RequestType& type() const { return *type_; }
  [[nodiscard]] SimTime arrival() const { return arrival_; }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const NodeRuntime& node(std::size_t i) const;
  [[nodiscard]] NodeRuntime& node(std::size_t i);

  /// Nodes currently in kReady state (dependencies met, not yet placed).
  [[nodiscard]] std::vector<std::size_t> ready_nodes() const;
  /// All nodes done?
  [[nodiscard]] bool finished() const { return done_count_ == nodes_.size(); }
  [[nodiscard]] std::size_t done_count() const { return done_count_; }

  /// Mark a node ready (roots become ready at arrival automatically).
  void mark_ready(std::size_t i, SimTime t);
  /// Record placement (reservation made; not running yet).
  void mark_placed(std::size_t i, MachineId machine, InstanceId instance, SimTime planned_start);
  /// Record actual start.
  void mark_running(std::size_t i, ContainerId container, SimTime t);
  /// Undo a placement that never started (self-healing relocates late
  /// invocations): back to kReady when dependencies are met, kWaiting
  /// otherwise.
  void revert_placement(std::size_t i, SimTime t);
  /// A running execution was lost (machine crash, container fault, or
  /// invocation timeout): back to kReady for re-placement. Dependencies stay
  /// satisfied; completed work is discarded.
  void mark_failed(std::size_t i, SimTime t);
  /// Record completion; returns children whose dependencies are now all met
  /// (they are NOT auto-marked ready — communication delay happens first).
  std::vector<std::size_t> mark_done(std::size_t i, SimTime t);

  /// A node is a delay-slot candidate iff it is still waiting/ready and none
  /// of its ancestors is currently running or late (Section III-F: candidates
  /// must not depend on executing or late-invoking microservices).
  [[nodiscard]] bool independent_of_active(std::size_t i) const;

 private:
  const RequestType* type_;
  RequestId id_;
  SimTime arrival_;
  std::vector<NodeRuntime> nodes_;
  std::size_t done_count_ = 0;
};

}  // namespace vmlp::app
