#include "app/dag.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace vmlp::app {

Dag::Dag(std::size_t nodes) : n_(nodes), parents_(nodes), children_(nodes) {
  VMLP_CHECK_MSG(nodes > 0, "DAG needs at least one node");
}

void Dag::add_edge(std::size_t from, std::size_t to) {
  VMLP_CHECK_MSG(from < n_ && to < n_, "edge endpoint out of range");
  VMLP_CHECK_MSG(from != to, "self edge on node " << from);
  edges_.emplace_back(from, to);
  children_[from].push_back(to);
  parents_[to].push_back(from);
}

const std::vector<std::size_t>& Dag::parents(std::size_t node) const {
  VMLP_CHECK(node < n_);
  return parents_[node];
}

const std::vector<std::size_t>& Dag::children(std::size_t node) const {
  VMLP_CHECK(node < n_);
  return children_[node];
}

std::vector<std::size_t> Dag::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (parents_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dag::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (children_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dag::topo_with_tiebreak(Rng* rng) const {
  std::vector<std::size_t> indegree(n_, 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indegree[to];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n_; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n_);
  while (!frontier.empty()) {
    std::size_t pick_pos = 0;
    if (rng != nullptr && frontier.size() > 1) {
      pick_pos = static_cast<std::size_t>(
          rng->uniform_int(0, static_cast<std::int64_t>(frontier.size()) - 1));
    } else {
      pick_pos = static_cast<std::size_t>(
          std::min_element(frontier.begin(), frontier.end()) - frontier.begin());
    }
    const std::size_t node = frontier[pick_pos];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick_pos));
    order.push_back(node);
    for (std::size_t child : children_[node]) {
      if (--indegree[child] == 0) frontier.push_back(child);
    }
  }
  VMLP_CHECK_MSG(order.size() == n_, "DAG contains a cycle");
  return order;
}

bool Dag::is_acyclic() const {
  try {
    (void)topo_with_tiebreak(nullptr);
    return true;
  } catch (const InvariantError&) {
    return false;
  }
}

std::vector<std::size_t> Dag::topo_order() const { return topo_with_tiebreak(nullptr); }

std::vector<std::vector<std::size_t>> Dag::chain_choices(std::size_t max_choices, Rng& rng) const {
  VMLP_CHECK(max_choices >= 1);
  std::set<std::vector<std::size_t>> unique;
  std::vector<std::vector<std::size_t>> out;
  const auto canonical = topo_order();
  unique.insert(canonical);
  out.push_back(canonical);
  // Sampling budget: a few tries per requested choice is enough in practice;
  // narrow DAGs simply yield fewer distinct linearizations.
  const std::size_t attempts = max_choices * 4;
  for (std::size_t i = 0; i < attempts && out.size() < max_choices; ++i) {
    auto order = topo_with_tiebreak(&rng);
    if (unique.insert(order).second) out.push_back(std::move(order));
  }
  return out;
}

std::size_t Dag::critical_path_length() const {
  const auto order = topo_order();
  std::vector<std::size_t> depth(n_, 1);
  for (std::size_t node : order) {
    for (std::size_t child : children_[node]) {
      depth[child] = std::max(depth[child], depth[node] + 1);
    }
  }
  return *std::max_element(depth.begin(), depth.end());
}

bool Dag::reaches(std::size_t ancestor, std::size_t node) const {
  VMLP_CHECK(ancestor < n_ && node < n_);
  if (ancestor == node) return true;
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack{ancestor};
  seen[ancestor] = true;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    for (std::size_t child : children_[cur]) {
      if (child == node) return true;
      if (!seen[child]) {
        seen[child] = true;
        stack.push_back(child);
      }
    }
  }
  return false;
}

}  // namespace vmlp::app
