// Arrival generation: a non-homogeneous Poisson process over a workload
// pattern (thinning method), with a request-type mix.
//
// Mix helpers mirror the paper's experiment setups: category streams where
// every request type of one V_r category takes an equal share (Table V), the
// mixed stream of Fig. 12, and the high-V_r-ratio sweeps of Fig. 14.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "app/application.h"
#include "common/rng.h"
#include "loadgen/patterns.h"

namespace vmlp::loadgen {

struct Arrival {
  SimTime time = 0;
  RequestTypeId type;
};

struct MixEntry {
  RequestTypeId type;
  double weight = 1.0;
};

class RequestMix {
 public:
  RequestMix() = default;
  explicit RequestMix(std::vector<MixEntry> entries);

  void add(RequestTypeId type, double weight);
  [[nodiscard]] const std::vector<MixEntry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Draw one request type proportionally to the weights.
  [[nodiscard]] RequestTypeId sample(Rng& rng) const;

  /// Equal-share mix over all request types of `band` in `application`
  /// ("different types of requests in one category take up the same portion").
  static RequestMix category(const app::Application& application, app::VolatilityBand band);
  /// Equal-share mix over every request type of `application`.
  static RequestMix all(const app::Application& application);
  /// Mix with `high_ratio` of high-V_r requests, remainder spread equally
  /// over the non-high types (the Fig. 14 sweep).
  static RequestMix with_high_ratio(const app::Application& application, double high_ratio);

 private:
  std::vector<MixEntry> entries_;
  /// Weight column cache: sample() is called once per accepted arrival, and
  /// rebuilding the weights vector per draw was a per-arrival allocation.
  std::vector<double> weights_;
};

/// Quantize a candidate arrival at `t_sec` seconds onto the simulation clock.
/// Returns -1 when rounding pushes the tick to or past `horizon`: a candidate
/// drawn just under the horizon can round UP (llround half-away-from-zero),
/// and an arrival at t == horizon would never execute — Engine::run_until
/// fires it, but the driver's QoS window excludes it, so it must be rejected
/// here, not silently mis-binned.
[[nodiscard]] SimTime quantize_arrival(double t_sec, SimTime horizon);

/// Streaming arrival iterator: the thinning loop of generate_arrivals as a
/// pull-based source, so a 10^6-request scale run schedules arrivals one at a
/// time (the driver chains each pull off the previous arrival event) and
/// never materializes the arrival vector. Draw-for-draw identical to the bulk
/// generator — same candidate walk, same rng draw order — so draining a
/// stream reproduces generate_arrivals byte-for-byte.
class ArrivalStream {
 public:
  /// `pattern` must outlive the stream; the mix and the rng are captured by
  /// value so the stream is otherwise self-contained. Rng is a sink parameter
  /// (pass an rvalue substream); see CommModel.
  ArrivalStream(const WorkloadPattern& pattern, RequestMix mix, Rng&& rng,
                double qps_scale = 1.0);

  /// Next accepted arrival in time order; nullopt once the candidate walk
  /// crosses the horizon (terminal — later calls keep returning nullopt).
  [[nodiscard]] std::optional<Arrival> next();

  /// Accepted arrivals emitted so far.
  [[nodiscard]] std::size_t emitted() const { return emitted_; }
  /// The stream-advanced rng (generate_arrivals writes it back to its caller
  /// so bulk generation still advances the caller's stream as before).
  [[nodiscard]] const Rng& rng() const { return rng_; }

 private:
  const WorkloadPattern* pattern_;
  RequestMix mix_;
  Rng rng_;
  double qps_scale_;
  double envelope_;     ///< req/s thinning upper bound (peak rate x scale)
  double horizon_sec_;
  SimTime horizon_;
  double t_sec_ = 0.0;  ///< candidate walk position (seconds)
  bool done_ = false;
  std::size_t emitted_ = 0;
};

/// Generate arrivals over the pattern's horizon via thinning. `qps_scale`
/// proportionally scales the rate curve (the Fig. 12 workload levels).
/// Result is sorted by time; every time is in [0, horizon). Implemented by
/// draining an ArrivalStream; the vector grows geometrically (no up-front
/// expected-count reservation) under an audited envelope-derived bound.
std::vector<Arrival> generate_arrivals(const WorkloadPattern& pattern, const RequestMix& mix,
                                       Rng& rng, double qps_scale = 1.0);

}  // namespace vmlp::loadgen
