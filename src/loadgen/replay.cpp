#include "loadgen/replay.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vmlp::loadgen {

void save_arrivals_csv(const std::vector<Arrival>& arrivals, const app::Application& application,
                       std::ostream& out) {
  out << "time_us,request_type\n";
  for (const auto& a : arrivals) {
    out << a.time << "," << application.request(a.type).name() << "\n";
  }
}

void save_arrivals_csv_file(const std::vector<Arrival>& arrivals,
                            const app::Application& application, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  save_arrivals_csv(arrivals, application, out);
  if (!out) throw ConfigError("write failed: " + path);
}

std::vector<Arrival> load_arrivals_csv(const app::Application& application, std::istream& in) {
  std::vector<Arrival> arrivals;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno == 1 && line.rfind("time_us", 0) == 0) continue;  // header
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw ConfigError("arrival CSV line " + std::to_string(lineno) + ": expected 2 columns");
    }
    const std::string time_str = line.substr(0, comma);
    const std::string name = line.substr(comma + 1);
    char* end = nullptr;
    const long long t = std::strtoll(time_str.c_str(), &end, 10);
    if (end == time_str.c_str() || *end != '\0' || t < 0) {
      throw ConfigError("arrival CSV line " + std::to_string(lineno) + ": bad time '" +
                        time_str + "'");
    }
    const auto type = application.find_request(name);
    if (!type.has_value()) {
      throw ConfigError("arrival CSV line " + std::to_string(lineno) +
                        ": unknown request type '" + name + "'");
    }
    arrivals.push_back(Arrival{static_cast<SimTime>(t), *type});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
  return arrivals;
}

std::vector<Arrival> load_arrivals_csv_file(const app::Application& application,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open arrival trace: " + path);
  return load_arrivals_csv(application, in);
}

}  // namespace vmlp::loadgen
