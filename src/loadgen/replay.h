// Arrival-trace persistence: save a generated request stream to CSV and
// replay it later — the "realistic traces as input" path of the paper's
// trace-driven evaluation (Fig. 8), decoupled from the synthetic generator.
//
// Format: header `time_us,request_type` followed by one row per arrival,
// request types by *name* so traces survive application re-ordering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "app/application.h"
#include "loadgen/generator.h"

namespace vmlp::loadgen {

/// Write arrivals as CSV (types by name).
void save_arrivals_csv(const std::vector<Arrival>& arrivals, const app::Application& application,
                       std::ostream& out);
void save_arrivals_csv_file(const std::vector<Arrival>& arrivals,
                            const app::Application& application, const std::string& path);

/// Parse arrivals from CSV. Throws ConfigError on malformed rows or unknown
/// request-type names. Result is sorted by time.
std::vector<Arrival> load_arrivals_csv(const app::Application& application, std::istream& in);
std::vector<Arrival> load_arrivals_csv_file(const app::Application& application,
                                            const std::string& path);

}  // namespace vmlp::loadgen
