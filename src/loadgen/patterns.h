// Workload patterns of Fig. 9 — arrival-rate curves drawn from a realistic
// datacenter trace, max 1000 req/s over a 100 s horizon with the main load
// peak arriving at t = 40 s (Section V-B):
//
//   L1 — pulse-like workload peak: flat base with one sharp pulse;
//   L2 — fluctuating workload: a bounded random walk re-drawn every segment;
//   L3 — periodic workload with wide peaks: plateaus recurring on a period.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace vmlp::loadgen {

enum class PatternKind { kL1Pulse, kL2Fluctuating, kL3Periodic };

const char* pattern_name(PatternKind kind);

struct PatternParams {
  SimTime horizon = 100 * kSec;
  double max_rate = 1000.0;   ///< req/s ceiling (the paper's maximum)
  double base_rate = 250.0;   ///< off-peak level
  SimTime peak_time = 40 * kSec;  ///< the Fig. 11 peak arrival instant
  // L1: pulse width.
  SimDuration pulse_width = 6 * kSec;
  // L2: random-walk segment length and bounds.
  SimDuration segment = 2 * kSec;
  double l2_min_rate = 150.0;
  double l2_max_step = 300.0;
  // L3: plateau width and period.
  SimDuration plateau = 10 * kSec;
  SimDuration period = 30 * kSec;
};

class WorkloadPattern {
 public:
  /// Build a pattern; `seed` drives L2's random walk (ignored by L1/L3).
  static WorkloadPattern make(PatternKind kind, const PatternParams& params, std::uint64_t seed);

  [[nodiscard]] PatternKind kind() const { return kind_; }
  [[nodiscard]] const PatternParams& params() const { return params_; }

  /// Instantaneous arrival rate (req/s) at simulated time t; 0 outside
  /// [0, horizon).
  [[nodiscard]] double rate_at(SimTime t) const;
  /// Upper bound on rate_at over the horizon (thinning envelope).
  [[nodiscard]] double peak_rate() const;
  /// Expected total arrivals over the horizon (trapezoid integration).
  [[nodiscard]] double expected_arrivals() const;
  /// Rate series sampled every `step` (the Fig. 9 plot).
  [[nodiscard]] std::vector<double> rate_series(SimDuration step) const;

 private:
  WorkloadPattern(PatternKind kind, PatternParams params);

  PatternKind kind_;
  PatternParams params_;
  std::vector<double> l2_levels_;  // one level per segment (L2 only)
};

}  // namespace vmlp::loadgen
