#include "loadgen/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace vmlp::loadgen {

const char* pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kL1Pulse: return "L1";
    case PatternKind::kL2Fluctuating: return "L2";
    case PatternKind::kL3Periodic: return "L3";
  }
  return "?";
}

WorkloadPattern::WorkloadPattern(PatternKind kind, PatternParams params)
    : kind_(kind), params_(params) {
  VMLP_CHECK(params_.horizon > 0);
  VMLP_CHECK(params_.max_rate > 0 && params_.base_rate > 0 &&
             params_.base_rate <= params_.max_rate);
  VMLP_CHECK(params_.peak_time >= 0 && params_.peak_time < params_.horizon);
}

WorkloadPattern WorkloadPattern::make(PatternKind kind, const PatternParams& params,
                                      std::uint64_t seed) {
  WorkloadPattern p(kind, params);
  if (kind == PatternKind::kL2Fluctuating) {
    VMLP_CHECK(params.segment > 0);
    Rng rng(seed);
    const auto segments =
        static_cast<std::size_t>((params.horizon + params.segment - 1) / params.segment);
    p.l2_levels_.reserve(segments);
    double level = params.base_rate * 1.6;
    for (std::size_t i = 0; i < segments; ++i) {
      level += rng.uniform(-params.l2_max_step, params.l2_max_step);
      level = std::clamp(level, params.l2_min_rate, params.max_rate);
      p.l2_levels_.push_back(level);
    }
    // Force the main load peak at peak_time so every pattern stresses the
    // cluster at the same instant (Fig. 11's 40th second).
    const auto peak_seg = static_cast<std::size_t>(params.peak_time / params.segment);
    for (std::size_t i = peak_seg; i < std::min(segments, peak_seg + 3); ++i) {
      p.l2_levels_[i] = params.max_rate * rng.uniform(0.92, 1.0);
    }
  }
  return p;
}

double WorkloadPattern::rate_at(SimTime t) const {
  if (t < 0 || t >= params_.horizon) return 0.0;
  switch (kind_) {
    case PatternKind::kL1Pulse: {
      // Smooth pulse: raised cosine centered on the peak.
      const double half = static_cast<double>(params_.pulse_width) / 2.0;
      const double d = std::abs(static_cast<double>(t - params_.peak_time));
      if (d >= half) return params_.base_rate;
      const double shape = 0.5 * (1.0 + std::cos(std::numbers::pi * d / half));
      return params_.base_rate + (params_.max_rate - params_.base_rate) * shape;
    }
    case PatternKind::kL2Fluctuating: {
      const auto seg = static_cast<std::size_t>(t / params_.segment);
      return l2_levels_[std::min(seg, l2_levels_.size() - 1)];
    }
    case PatternKind::kL3Periodic: {
      // Plateaus aligned so one covers the peak instant.
      const SimTime start_offset = params_.peak_time - params_.plateau / 2;
      SimTime phase = (t - start_offset) % params_.period;
      if (phase < 0) phase += params_.period;
      if (phase < params_.plateau) return params_.max_rate * 0.95;
      // Smooth shoulders on either side of the plateau.
      const double edge = static_cast<double>(params_.period - params_.plateau) / 4.0;
      const double after = static_cast<double>(phase - params_.plateau);
      const double before = static_cast<double>(params_.period - phase);
      const double near_edge = std::min(after, before);
      if (near_edge < edge) {
        const double shape = 0.5 * (1.0 + std::cos(std::numbers::pi * near_edge / edge));
        return params_.base_rate + (params_.max_rate * 0.95 - params_.base_rate) * shape;
      }
      return params_.base_rate;
    }
  }
  return 0.0;
}

double WorkloadPattern::peak_rate() const { return params_.max_rate; }

double WorkloadPattern::expected_arrivals() const {
  const SimDuration step = 10 * kMsec;
  double total = 0.0;
  for (SimTime t = 0; t < params_.horizon; t += step) {
    total += rate_at(t) * (static_cast<double>(step) / kSec);
  }
  return total;
}

std::vector<double> WorkloadPattern::rate_series(SimDuration step) const {
  VMLP_CHECK(step > 0);
  std::vector<double> out;
  for (SimTime t = 0; t < params_.horizon; t += step) out.push_back(rate_at(t));
  return out;
}

}  // namespace vmlp::loadgen
