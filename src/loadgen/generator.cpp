#include "loadgen/generator.h"

#include <cmath>

#include "common/error.h"

namespace vmlp::loadgen {

RequestMix::RequestMix(std::vector<MixEntry> entries) : entries_(std::move(entries)) {
  for (const auto& e : entries_) VMLP_CHECK_MSG(e.weight >= 0.0, "negative mix weight");
}

void RequestMix::add(RequestTypeId type, double weight) {
  VMLP_CHECK_MSG(weight >= 0.0, "negative mix weight");
  entries_.push_back(MixEntry{type, weight});
}

RequestTypeId RequestMix::sample(Rng& rng) const {
  VMLP_CHECK_MSG(!entries_.empty(), "sampling from an empty mix");
  std::vector<double> weights;
  weights.reserve(entries_.size());
  for (const auto& e : entries_) weights.push_back(e.weight);
  return entries_[rng.weighted_index(weights)].type;
}

RequestMix RequestMix::category(const app::Application& application, app::VolatilityBand band) {
  RequestMix mix;
  for (const auto& rt : application.requests()) {
    if (application.band(rt.id()) == band) mix.add(rt.id(), 1.0);
  }
  VMLP_CHECK_MSG(!mix.empty(), "application '" << application.name() << "' has no "
                                               << app::band_name(band) << "-V_r request types");
  return mix;
}

RequestMix RequestMix::all(const app::Application& application) {
  RequestMix mix;
  for (const auto& rt : application.requests()) mix.add(rt.id(), 1.0);
  VMLP_CHECK_MSG(!mix.empty(), "application has no request types");
  return mix;
}

RequestMix RequestMix::with_high_ratio(const app::Application& application, double high_ratio) {
  VMLP_CHECK_MSG(high_ratio >= 0.0 && high_ratio <= 1.0, "high_ratio=" << high_ratio);
  std::vector<RequestTypeId> high;
  std::vector<RequestTypeId> rest;
  for (const auto& rt : application.requests()) {
    (application.band(rt.id()) == app::VolatilityBand::kHigh ? high : rest).push_back(rt.id());
  }
  VMLP_CHECK_MSG(!high.empty() && !rest.empty(),
                 "need both high- and non-high-V_r request types for a ratio mix");
  RequestMix mix;
  for (auto id : high) mix.add(id, high_ratio / static_cast<double>(high.size()));
  for (auto id : rest) mix.add(id, (1.0 - high_ratio) / static_cast<double>(rest.size()));
  return mix;
}

SimTime quantize_arrival(double t_sec, SimTime horizon) {
  if (t_sec < 0.0) return -1;
  const auto t = static_cast<SimTime>(std::llround(t_sec * kSec));
  return t < horizon ? t : -1;
}

std::vector<Arrival> generate_arrivals(const WorkloadPattern& pattern, const RequestMix& mix,
                                       Rng& rng, double qps_scale) {
  VMLP_CHECK_MSG(qps_scale > 0.0, "qps_scale must be positive");
  VMLP_CHECK_MSG(!mix.empty(), "empty request mix");

  const double envelope = pattern.peak_rate() * qps_scale;  // req/s upper bound
  const SimTime horizon = pattern.params().horizon;
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(pattern.expected_arrivals() * qps_scale * 1.1));

  // Thinning: candidate arrivals from a homogeneous process at the envelope
  // rate, accepted with probability rate(t)/envelope.
  double t_sec = 0.0;
  const double horizon_sec = static_cast<double>(horizon) / kSec;
  while (true) {
    t_sec += rng.exponential_mean(1.0 / envelope);
    if (t_sec >= horizon_sec) break;
    const SimTime t = quantize_arrival(t_sec, horizon);
    if (t < 0) continue;  // rounding crossed the horizon; candidate is void
    const double accept = pattern.rate_at(t) * qps_scale / envelope;
    if (rng.bernoulli(accept)) {
      arrivals.push_back(Arrival{t, mix.sample(rng)});
    }
  }
  return arrivals;
}

}  // namespace vmlp::loadgen
