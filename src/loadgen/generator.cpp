#include "loadgen/generator.h"

#include <cmath>

#include "common/error.h"

namespace vmlp::loadgen {

RequestMix::RequestMix(std::vector<MixEntry> entries) : entries_(std::move(entries)) {
  for (const auto& e : entries_) {
    VMLP_CHECK_MSG(e.weight >= 0.0, "negative mix weight");
    weights_.push_back(e.weight);
  }
}

void RequestMix::add(RequestTypeId type, double weight) {
  VMLP_CHECK_MSG(weight >= 0.0, "negative mix weight");
  entries_.push_back(MixEntry{type, weight});
  weights_.push_back(weight);
}

RequestTypeId RequestMix::sample(Rng& rng) const {
  VMLP_CHECK_MSG(!entries_.empty(), "sampling from an empty mix");
  return entries_[rng.weighted_index(weights_)].type;
}

RequestMix RequestMix::category(const app::Application& application, app::VolatilityBand band) {
  RequestMix mix;
  for (const auto& rt : application.requests()) {
    if (application.band(rt.id()) == band) mix.add(rt.id(), 1.0);
  }
  VMLP_CHECK_MSG(!mix.empty(), "application '" << application.name() << "' has no "
                                               << app::band_name(band) << "-V_r request types");
  return mix;
}

RequestMix RequestMix::all(const app::Application& application) {
  RequestMix mix;
  for (const auto& rt : application.requests()) mix.add(rt.id(), 1.0);
  VMLP_CHECK_MSG(!mix.empty(), "application has no request types");
  return mix;
}

RequestMix RequestMix::with_high_ratio(const app::Application& application, double high_ratio) {
  VMLP_CHECK_MSG(high_ratio >= 0.0 && high_ratio <= 1.0, "high_ratio=" << high_ratio);
  std::vector<RequestTypeId> high;
  std::vector<RequestTypeId> rest;
  for (const auto& rt : application.requests()) {
    (application.band(rt.id()) == app::VolatilityBand::kHigh ? high : rest).push_back(rt.id());
  }
  VMLP_CHECK_MSG(!high.empty() && !rest.empty(),
                 "need both high- and non-high-V_r request types for a ratio mix");
  RequestMix mix;
  for (auto id : high) mix.add(id, high_ratio / static_cast<double>(high.size()));
  for (auto id : rest) mix.add(id, (1.0 - high_ratio) / static_cast<double>(rest.size()));
  return mix;
}

SimTime quantize_arrival(double t_sec, SimTime horizon) {
  if (t_sec < 0.0) return -1;
  const auto t = static_cast<SimTime>(std::llround(t_sec * kSec));
  return t < horizon ? t : -1;
}

ArrivalStream::ArrivalStream(const WorkloadPattern& pattern, RequestMix mix, Rng&& rng,
                             double qps_scale)
    : pattern_(&pattern),
      mix_(std::move(mix)),
      rng_(rng),
      qps_scale_(qps_scale),
      envelope_(pattern.peak_rate() * qps_scale),
      horizon_sec_(static_cast<double>(pattern.params().horizon) / kSec),
      horizon_(pattern.params().horizon) {
  VMLP_CHECK_MSG(qps_scale > 0.0, "qps_scale must be positive");
  VMLP_CHECK_MSG(!mix_.empty(), "empty request mix");
}

std::optional<Arrival> ArrivalStream::next() {
  if (done_) return std::nullopt;
  // Thinning: candidate arrivals from a homogeneous process at the envelope
  // rate, accepted with probability rate(t)/envelope.
  while (true) {
    t_sec_ += rng_.exponential_mean(1.0 / envelope_);
    if (t_sec_ >= horizon_sec_) {
      done_ = true;
      return std::nullopt;
    }
    const SimTime t = quantize_arrival(t_sec_, horizon_);
    if (t < 0) continue;  // rounding crossed the horizon; candidate is void
    const double accept = pattern_->rate_at(t) * qps_scale_ / envelope_;
    if (rng_.bernoulli(accept)) {
      ++emitted_;
      return Arrival{t, mix_.sample(rng_)};
    }
  }
}

std::vector<Arrival> generate_arrivals(const WorkloadPattern& pattern, const RequestMix& mix,
                                       Rng& rng, double qps_scale) {
  // Deliberate stream duplication: the stream advances the copy, and the
  // final state is written back to the caller below — net effect identical
  // to the historical in-place loop.
  ArrivalStream stream(pattern, mix, Rng(rng), qps_scale);
  // Geometric vector growth replaces the old up-front reservation of
  // expected_arrivals * qps_scale * 1.1 — at scale-family request counts the
  // eager reservation WAS the allocation spike, and a mis-estimated
  // expectation either wasted the slack or reallocated anyway. The audited
  // bound catches a broken thinning envelope (acceptance > 1 would emit more
  // than the candidate process should ever yield): 8x expectation has
  // vanishing Poisson tail mass at any size, and the additive slack covers
  // tiny expectations where 8x rounds to nothing.
  const auto bound = static_cast<std::size_t>(pattern.expected_arrivals() * qps_scale * 8.0) + 4096;
  std::vector<Arrival> arrivals;
  while (auto a = stream.next()) {
    VMLP_CHECK_MSG(arrivals.size() < bound,
                   "arrival count exceeded the envelope bound " << bound
                                                                << " — thinning envelope is wrong");
    arrivals.push_back(*a);
  }
  rng = stream.rng();  // bulk generation still advances the caller's stream
  return arrivals;
}

}  // namespace vmlp::loadgen
