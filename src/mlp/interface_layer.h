// InterfaceLayer (Section III-D, Table III): the abstraction through which
// v-MLP's modules observe and actuate the system — the simulation analogue of
// docker-stats monitoring plus cgroups controllers, fed by tracing.
//
// It is deliberately the *only* surface the self-organizing / self-healing
// modules touch, mirroring the paper's layering between the request handler
// and the server hardware.
#pragma once

#include "cluster/resources.h"
#include "common/types.h"
#include "sched/driver.h"

namespace vmlp::mlp {

class InterfaceLayer {
 public:
  explicit InterfaceLayer(sched::SimulationDriver& driver) : driver_(&driver) {}

  // --- monitors (docker stats / cAdvisor analogues) ---------------------
  [[nodiscard]] SimTime now() const { return driver_->now(); }
  [[nodiscard]] const cluster::Cluster& cluster() const { return driver_->cluster(); }
  [[nodiscard]] cluster::Cluster& cluster() { return driver_->cluster(); }
  [[nodiscard]] double machine_load(MachineId m) const {
    return driver_->cluster().machine(m).utilization_sum() / 3.0;
  }
  [[nodiscard]] const trace::ProfileStore& profiles() const {
    return const_cast<sched::SimulationDriver*>(driver_)->profiles();
  }
  [[nodiscard]] const app::Application& application() const { return driver_->application(); }
  [[nodiscard]] SimDuration expected_comm(MachineId a, MachineId b) const {
    return driver_->expected_comm(a, b);
  }
  [[nodiscard]] SimDuration expected_ingress() const { return driver_->expected_ingress(); }
  [[nodiscard]] std::vector<std::pair<RequestId, std::size_t>> running_on(MachineId m) const {
    return driver_->running_on(m);
  }
  [[nodiscard]] double volatility(RequestTypeId type) const { return driver_->volatility(type); }
  [[nodiscard]] sched::ActiveRequest* find_request(RequestId id) {
    return driver_->find_request(id);
  }
  [[nodiscard]] std::vector<RequestId> active_requests() const {
    return driver_->active_requests();
  }
  /// Telemetry sink (nullptr when collection is off). Write-only by contract:
  /// modules may record decisions through it but must never read it back into
  /// a decision.
  [[nodiscard]] obs::Collector* observer() { return driver_->observer(); }

  // --- controllers (cgroups analogues) -----------------------------------
  /// cgroups cpuset / memory.limit_in_bytes / net_cls in one call.
  void set_container_limit(RequestId id, std::size_t node, const cluster::ResourceVector& limit) {
    driver_->adjust_limit(id, node, limit);
  }
  /// Commit a placement (reservation + planned start).
  void place(RequestId id, std::size_t node, MachineId machine,
             const cluster::ResourceVector& limit, SimTime planned_start,
             SimDuration reserve_duration) {
    driver_->place(id, node, machine, limit, planned_start, reserve_duration);
  }
  /// Free a pending node's reserved window (delay-slot vacancy reuse).
  void release_reservation(RequestId id, std::size_t node) {
    driver_->release_reservation(id, node);
  }

 private:
  sched::SimulationDriver* driver_;
};

}  // namespace vmlp::mlp
