// Self-organizing module (Section III-E, Algorithm 1).
//
// Coalesces the microservice chains of waiting requests into the cluster's
// committed future: for a popped request it walks its chain choices c_j in
// topological order, estimates each microservice's execution slack Δt per the
// request's volatility band, and admits each stage onto a machine whose
// reservation ledger has the resource budget over [t, t+Δt). A request is
// committed atomically — if any stage cannot be admitted (within a bounded
// slip window), the whole plan is abandoned and the request deferred
// ("switch r_i with r_{i+1}").
//
// Planning uses a local overlay of tentative reservations so stages of the
// same plan cannot double-book a machine before the plan commits.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "mlp/interface_layer.h"
#include "mlp/metrics.h"

namespace vmlp::mlp {

struct NodePlan {
  std::size_t node = 0;
  MachineId machine;
  SimTime start = 0;
  /// Expected busy time — what the stage books on the machine's ledger.
  SimDuration busy = 0;
  /// Band-conservative Δt — what successors align against (Algorithm 1's
  /// slack). slack >= busy for mid/high-V_r requests.
  SimDuration slack = 0;
};

/// Audit tier: a committed plan must cover each currently unplaced,
/// unfinished node of the request exactly once (the coalesced chain preserves
/// the request's stage multiset), reference only valid node indices, and
/// never book negative/non-finite windows. When `require_full_cover` is
/// false (single-node planning) only the per-entry checks apply. Checks are
/// live only when vmlp::audit::enabled(); violations throw InvariantError.
void audit_plan_integrity(const sched::ActiveRequest& ar, const std::vector<NodePlan>& plans,
                          bool require_full_cover);

class SelfOrganizing {
 public:
  SelfOrganizing(InterfaceLayer& iface, const VmlpParams& params, Rng rng);

  /// Plan and commit every unplaced node of the request. True = fully
  /// assigned (Algorithm 1's "totally assigned").
  bool organize(RequestId id);

  /// Plan and commit a single unblocked node (used for requests that entered
  /// execution piecemeal through the delay slot).
  bool organize_node(RequestId id, std::size_t node);

  /// Reorder ratio R of a waiting request at the current time.
  [[nodiscard]] double reorder_ratio_of(RequestId id);

  /// Algorithm 1's Δt for one node of a request (exposed for self-healing's
  /// candidate sizing).
  [[nodiscard]] SimDuration slack_of(RequestId id, std::size_t node);

  [[nodiscard]] std::size_t plans_committed() const { return plans_committed_; }
  [[nodiscard]] std::size_t plans_deferred() const { return plans_deferred_; }
  /// Time of the most recent failed plan (-1 if none) — the self-healing
  /// module backs off request fills while the cluster is saturated.
  [[nodiscard]] SimTime last_defer_at() const { return last_defer_at_; }

 private:
  struct Overlay {
    struct Entry {
      MachineId machine;
      SimTime t0;
      SimTime t1;
      cluster::ResourceVector res;
    };
    std::vector<Entry> entries;
    [[nodiscard]] cluster::ResourceVector max_over(MachineId m, SimTime t0, SimTime t1) const;
  };

  [[nodiscard]] bool fits_with_overlay(const Overlay& overlay, MachineId m, SimTime t0, SimTime t1,
                                       const cluster::ResourceVector& r) const;
  /// Find (machine, start) for one stage; first-fit from a rotating cursor at
  /// the desired start, escalating through the slip window. nullopt = defer.
  [[nodiscard]] std::optional<std::pair<MachineId, SimTime>> admit_stage(
      const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
      const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine);

  [[nodiscard]] std::optional<std::vector<NodePlan>> try_chain(
      sched::ActiveRequest& ar, const std::vector<std::size_t>& chain, double v_r, double x);

  [[nodiscard]] SimDuration max_slo() const;
  [[nodiscard]] SimDuration ref_stage_time() const;

  InterfaceLayer* iface_;
  VmlpParams params_;
  Rng rng_;
  std::size_t cursor_ = 0;  // rotating first-fit start index
  std::size_t plans_committed_ = 0;
  std::size_t plans_deferred_ = 0;
  SimTime last_defer_at_ = -1;
  mutable SimDuration cached_max_slo_ = 0;
  mutable SimDuration cached_ref_ = 0;
};

}  // namespace vmlp::mlp
