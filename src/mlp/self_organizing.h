// Self-organizing module (Section III-E, Algorithm 1).
//
// Coalesces the microservice chains of waiting requests into the cluster's
// committed future: for a popped request it walks its chain choices c_j in
// topological order, estimates each microservice's execution slack Δt per the
// request's volatility band, and admits each stage onto a machine whose
// reservation ledger has the resource budget over [t, t+Δt). A request is
// committed atomically — if any stage cannot be admitted (within a bounded
// slip window), the whole plan is abandoned and the request deferred
// ("switch r_i with r_{i+1}").
//
// Planning uses a local overlay of tentative reservations so stages of the
// same plan cannot double-book a machine before the plan commits.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "mlp/interface_layer.h"
#include "mlp/metrics.h"

namespace vmlp::mlp {

struct NodePlan {
  std::size_t node = 0;
  MachineId machine;
  SimTime start = 0;
  /// Expected busy time — what the stage books on the machine's ledger.
  SimDuration busy = 0;
  /// Band-conservative Δt — what successors align against (Algorithm 1's
  /// slack). slack >= busy for mid/high-V_r requests.
  SimDuration slack = 0;
};

/// Audit tier: a committed plan must cover each currently unplaced,
/// unfinished node of the request exactly once (the coalesced chain preserves
/// the request's stage multiset), reference only valid node indices, and
/// never book negative/non-finite windows. When `require_full_cover` is
/// false (single-node planning) only the per-entry checks apply. Checks are
/// live only when vmlp::audit::enabled(); violations throw InvariantError.
void audit_plan_integrity(const sched::ActiveRequest& ar, const std::vector<NodePlan>& plans,
                          bool require_full_cover);

class SelfOrganizing {
 public:
  /// Rng is a sink parameter (pass an rvalue substream); see CommModel.
  SelfOrganizing(InterfaceLayer& iface, const VmlpParams& params, Rng&& rng);

  /// Plan and commit every unplaced node of the request. True = fully
  /// assigned (Algorithm 1's "totally assigned").
  bool organize(RequestId id);

  /// Plan and commit a single unblocked node (used for requests that entered
  /// execution piecemeal through the delay slot).
  bool organize_node(RequestId id, std::size_t node);

  /// Reorder ratio R of a waiting request at the current time.
  [[nodiscard]] double reorder_ratio_of(RequestId id);

  /// Algorithm 1's Δt for one node of a request (exposed for self-healing's
  /// candidate sizing).
  [[nodiscard]] SimDuration slack_of(RequestId id, std::size_t node);

  [[nodiscard]] std::size_t plans_committed() const { return plans_committed_; }
  [[nodiscard]] std::size_t plans_deferred() const { return plans_deferred_; }
  /// Time of the most recent failed plan (-1 if none) — the self-healing
  /// module backs off request fills while the cluster is saturated.
  [[nodiscard]] SimTime last_defer_at() const { return last_defer_at_; }

 private:
  struct Overlay {
    struct Span {
      SimTime t0;
      SimTime t1;
      cluster::ResourceVector res;
    };
    /// Tentative reservations grouped by machine (first-touch order). A plan
    /// holds only a handful of entries, so flat buckets beat hashing — and a
    /// probe for machine m now touches m's spans only instead of sweeping
    /// every tentative entry of the plan.
    std::vector<std::pair<MachineId, std::vector<Span>>> buckets;
    void add(MachineId m, SimTime t0, SimTime t1, const cluster::ResourceVector& res);
    [[nodiscard]] cluster::ResourceVector max_over(MachineId m, SimTime t0, SimTime t1) const;
  };

  /// Per-organize() memoized planning inputs. Algorithm 1's per-node slack
  /// Δt, expected busy time and the finish-time predictions seeded from
  /// already-progressed nodes are invariant across the up-to
  /// `max_chain_choices` chain attempts of one organize call (profiles only
  /// record at execution time, and nothing commits until a chain succeeds),
  /// so recomputing them per chain — the pre-fast-path behaviour — yields
  /// bit-equal values. With `admission_fast_path` off they are rebuilt per
  /// chain as the differential reference.
  struct PlanContext {
    struct NodeEst {
      SimDuration slack = 0;
      SimDuration busy = 0;
    };
    double v_r = 0.0;
    double x = 0.0;
    std::vector<std::optional<NodeEst>> est;
    std::vector<SimTime> seed_finish;
    std::vector<MachineId> seed_machine;
  };

  [[nodiscard]] PlanContext make_context(const sched::ActiveRequest& ar);
  /// Slack/busy estimate for one node, computed on first use per context.
  [[nodiscard]] const PlanContext::NodeEst& node_est(PlanContext& ctx,
                                                     const sched::ActiveRequest& ar,
                                                     std::size_t node) const;
  [[nodiscard]] PlanContext::NodeEst compute_est(const app::RequestType& type, std::size_t node,
                                                 double v_r, double x) const;

  /// `refit_out` is forwarded to ReservationLedger::fits only on the bare
  /// (overlay-free) path: a blocking-run bound derived with an
  /// overlay-inflated demand would not be sound for later windows whose
  /// overlay contribution is smaller.
  [[nodiscard]] bool fits_with_overlay(const Overlay& overlay, MachineId m, SimTime t0, SimTime t1,
                                       const cluster::ResourceVector& r,
                                       std::size_t* cover_hint = nullptr,
                                       SimTime* refit_out = nullptr) const;
  /// Find (machine, start) for one stage; first-fit from a rotating cursor at
  /// the desired start, escalating through the slip window. nullopt = defer.
  /// With `admission_fast_path`, machines whose capacity can never hold the
  /// demand, or whose quietest ledger level across every start this stage
  /// could probe already blocks it, are skipped after the first touch — the
  /// skipped probes still count against `max_admit_probes` and are provably
  /// ones that would have failed, so the accepted (machine, start) and the
  /// cursor trajectory are identical to the exhaustive search.
  /// With `cell_router`, the scan goes cell by cell in the topology's ranked
  /// order (per-cell cursors, shed on a probeless pass); on a single-cell
  /// topology the arithmetic degenerates bit-exactly to the flat scan.
  [[nodiscard]] std::optional<std::pair<MachineId, SimTime>> admit_stage(
      const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
      const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine);
  /// admit_stage's search loop; the public wrapper only adds telemetry.
  /// `probes_out` / `pruned_out` report the stage's probe budget spend and
  /// how many of those probes were pruned (classified or refit-bound skips).
  [[nodiscard]] std::optional<std::pair<MachineId, SimTime>> admit_stage_impl(
      const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
      const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine,
      std::size_t& probes_out, std::size_t& pruned_out);

  [[nodiscard]] std::optional<std::vector<NodePlan>> try_chain(
      sched::ActiveRequest& ar, const std::vector<std::size_t>& chain, PlanContext& ctx);

  [[nodiscard]] SimDuration max_slo() const;
  [[nodiscard]] SimDuration ref_stage_time() const;

  InterfaceLayer* iface_;
  VmlpParams params_;
  Rng rng_;
  /// Rotating first-fit start index (cell_router off: flat machine index).
  std::size_t cursor_ = 0;
  /// Per-cell rotating cursors (cell-local offsets) for the router path. On
  /// a single-cell topology cell_cursor_[0] traces exactly the trajectory
  /// cursor_ would — the claim-7 byte-identity hinge.
  std::vector<std::size_t> cell_cursor_;
  /// ranked_cells scratch, reused so routing stays allocation-free.
  std::vector<std::size_t> ranked_cells_;
  std::size_t plans_committed_ = 0;
  std::size_t plans_deferred_ = 0;
  SimTime last_defer_at_ = -1;
  // Value-carrying caches: 0 is a legitimate result for neither (max_slo of
  // an application with all-zero SLOs, a degenerate ref time), so an empty
  // optional — not a 0 sentinel — marks "not yet computed".
  mutable std::optional<SimDuration> cached_max_slo_;
  mutable std::optional<SimDuration> cached_ref_;
  // admit_stage scratch (sized to the cluster, reused across calls so the
  // inner planning loop stays allocation-free). Per-stage validity is
  // tracked by probe_epoch_, NOT by clearing: an eager per-stage
  // assign() is O(machines) per placement — invisible at 100 machines,
  // ~9 KB of writes per stage at 1k and ~90 KB at 10k, which silently
  // re-couples per-placement cost to cluster size after the cell router
  // decoupled the scan itself. A machine's entry is live only when its
  // epoch matches the current stage's; probe_one initializes it on first
  // touch, so stage setup is O(1) and stage cost is O(machines probed).
  std::vector<std::int8_t> probe_state_;
  std::vector<SimTime> probe_desired_;
  /// Stage stamp per machine: entries of probe_state_/probe_refit_ (and
  /// probe_desired_, which is only read once state != 0) are valid iff
  /// probe_epoch_[m] == stage_epoch_.
  std::vector<std::uint64_t> probe_epoch_;
  std::uint64_t stage_epoch_ = 0;
  /// Per-machine ledger covering-index cache (kNoCoverHint = untouched).
  /// Valid for one admit_stage call: the ledger is not mutated while a
  /// stage probes, and each machine's probe starts only slip forward.
  std::vector<std::size_t> probe_cover_;
  /// Per-machine refit bound: after a failed probe, the end of the blocking
  /// run it hit (ReservationLedger::fits refit_out). Later slip steps whose
  /// start is still below the bound overlap the same run and provably fail,
  /// so they are counted but not walked. Valid for one admit_stage call for
  /// the same reasons as probe_cover_.
  std::vector<SimTime> probe_refit_;
};

}  // namespace vmlp::mlp
