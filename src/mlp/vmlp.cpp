#include "mlp/vmlp.h"

#include <algorithm>

#include "common/error.h"
#include "sched/driver.h"

namespace vmlp::mlp {

VmlpScheduler::VmlpScheduler(VmlpParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void VmlpScheduler::attach(sched::SimulationDriver& driver) {
  sched::IScheduler::attach(driver);
  iface_ = std::make_unique<InterfaceLayer>(driver);
  organizer_ = std::make_unique<SelfOrganizing>(*iface_, params_, Rng(seed_).fork("organize"));
  healer_ = std::make_unique<SelfHealing>(*iface_, params_);
}

void VmlpScheduler::on_request_arrival(RequestId id) {
  // One immediate attempt; backlog ordering is the periodic pass's job.
  if (!organizer_->organize(id)) waiting_.push_back(id);
}

void VmlpScheduler::sort_waiting_by_reorder_ratio() {
  if (waiting_.size() < 2) return;
  // Decorate-sort: R is computed once per request, not once per comparison.
  std::vector<std::pair<double, RequestId>> keyed;
  keyed.reserve(waiting_.size());
  for (RequestId id : waiting_) keyed.emplace_back(-organizer_->reorder_ratio_of(id), id);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  waiting_.clear();
  for (const auto& [key, id] : keyed) waiting_.push_back(id);
}

void VmlpScheduler::organize_pass() {
  sort_waiting_by_reorder_ratio();
  std::vector<RequestId> still_waiting;
  std::size_t defers = 0;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    const RequestId id = waiting_[i];
    if (driver_->find_request(id) == nullptr) continue;
    if (defers >= params_.max_defers_per_pass) {
      still_waiting.push_back(id);  // cluster saturated: stop scanning
      continue;
    }
    if (!organizer_->organize(id)) {
      // "Switch r_i with r_{i+1}": keep scanning so smaller requests behind
      // a blocked head can still be admitted this pass.
      ++defers;
      still_waiting.push_back(id);
    }
  }
  waiting_ = std::move(still_waiting);
}

void VmlpScheduler::on_node_unblocked(RequestId id, std::size_t node) {
  // Only requests that entered execution piecemeal (via the delay slot) have
  // unplaced nodes unblocking; place them immediately when possible.
  if (!organizer_->organize_node(id, node)) ready_.emplace_back(id, node);
}

void VmlpScheduler::on_tick() {
  organize_pass();
  std::vector<std::pair<RequestId, std::size_t>> leftover;
  for (const auto& [id, node] : ready_) {
    sched::ActiveRequest* ar = driver_->find_request(id);
    if (ar == nullptr || ar->nodes[node].placed || ar->nodes[node].done) continue;
    if (!organizer_->organize_node(id, node)) leftover.emplace_back(id, node);
  }
  ready_ = std::move(leftover);
}

void VmlpScheduler::on_late_invocation(RequestId id, std::size_t node) {
  sched::ActiveRequest* ar = driver_->find_request(id);
  if (ar == nullptr) return;
  sched::DriverNode& dn = ar->nodes[node];
  if (!dn.placed || dn.running || dn.done) return;

  // Relocation of the late-invoking microservice itself (Fig. 7): if its
  // dependencies are met but the planned machine keeps refusing, move the
  // stage to wherever it can execute now — overbooking the old machine at
  // the planned time would be strictly worse.
  if (ar->runtime.node(node).pending_parents == 0) {
    const MachineId old_machine = dn.machine;
    const SimDuration old_duration = dn.reserve_duration;
    driver_->unplace(id, node);
    if (!organizer_->organize_node(id, node)) {
      if (driver_->cluster().machine(old_machine).up()) {
        // Nowhere better — fall back to the original machine; the contention
        // model arbitrates. The planned start is pushed one retry interval
        // into the future: re-planning at now() would arm the driver's late
        // watch at the current timestamp, and when the (resampled) parent
        // hop keeps landing past now() the watch fires before the start
        // event, re-entering this fallback in a zero-delay event cycle that
        // freezes simulated time. The backoff keeps every relocation retry
        // strictly advancing the clock, so the loop is bounded by the
        // horizon.
        const auto& svc = driver_->application().service(
            ar->runtime.type().nodes()[node].service);
        driver_->place(id, node, old_machine, svc.demand,
                       driver_->now() + sched::kEarlyRetryInterval,
                       std::max<SimDuration>(1, old_duration));
      } else {
        // The old machine crashed since the event was armed: park the node
        // for the periodic pass instead of booking a dead machine.
        ready_.emplace_back(id, node);
      }
    }
    ++relocations_;
    return;
  }

  // Dependencies still executing: the stage is genuinely late — free its
  // vacancy and back-fill (delay slot), or stretch the executing neighbours.
  const std::size_t healed = healer_->on_late(id, node, waiting_, ready_, *organizer_);
  if (healed > 0) {
    // The healer may have organized whole waiting requests and placed ready
    // nodes into the slot; drop entries that are now handled.
    waiting_.erase(std::remove_if(waiting_.begin(), waiting_.end(),
                                  [this](RequestId rid) {
                                    sched::ActiveRequest* req = driver_->find_request(rid);
                                    if (req == nullptr) return true;
                                    for (std::size_t n = 0; n < req->nodes.size(); ++n) {
                                      if (!req->nodes[n].placed && !req->nodes[n].done) return false;
                                    }
                                    return true;
                                  }),
                   waiting_.end());
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [this](const auto& e) {
                                  sched::ActiveRequest* req = driver_->find_request(e.first);
                                  return req == nullptr || req->nodes[e.second].placed ||
                                         req->nodes[e.second].done;
                                }),
                 ready_.end());
  }
}

void VmlpScheduler::on_node_orphaned(RequestId id, std::size_t node) {
  // Crash healing rides the relocation machinery (Fig. 7): re-plan the
  // orphaned stage onto a live machine's reserved window; park it in the
  // ready queue otherwise — the periodic pass keeps retrying.
  ++orphan_relocations_;
  if (obs::Collector* obs = iface_->observer(); obs != nullptr) {
    obs->count(obs->mlp().orphans_relocated);
  }
  if (!organizer_->organize_node(id, node)) ready_.emplace_back(id, node);
}

void VmlpScheduler::on_request_finished(RequestId id) {
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), id), waiting_.end());
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [id](const auto& e) { return e.first == id; }),
               ready_.end());
}

}  // namespace vmlp::mlp
