#include "mlp/self_healing.h"

#include <algorithm>

#include "common/audit.h"
#include "common/error.h"
#include "obs/collector.h"

namespace vmlp::mlp {

SelfHealing::SelfHealing(InterfaceLayer& iface, const VmlpParams& params)
    : iface_(&iface), params_(params) {}

std::size_t SelfHealing::on_late(RequestId id, std::size_t node,
                                 const std::vector<RequestId>& waiting,
                                 const std::vector<std::pair<RequestId, std::size_t>>& ready_extras,
                                 SelfOrganizing& organizer) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return 0;
  sched::DriverNode& dn = ar->nodes[node];
  if (dn.running || dn.done || !dn.placed) return 0;

  const MachineId machine = dn.machine;
  const SimTime vacancy_end = dn.reserved_end;
  const cluster::ResourceVector freed = dn.limit;
  if (vacancy_end <= iface_->now()) return 0;

  // Free the vacancy; the late node re-books at its actual start.
  if (dn.has_reservation) iface_->release_reservation(id, node);
  VMLP_AUDIT_ASSERT(!dn.has_reservation,
                    "late node still holds its reservation after the vacancy release — "
                    "delay-slot fills would double-book the window");

  std::size_t actions = 0;
  if (params_.enable_delay_slot) {
    actions += fill_delay_slot(machine, vacancy_end, waiting, ready_extras, organizer);
  }
  if (actions == 0 && params_.enable_resource_stretch) {
    actions += stretch_resources(machine, freed);
  }
  return actions;
}

std::size_t SelfHealing::fill_delay_slot(
    MachineId machine, SimTime vacancy_end, const std::vector<RequestId>& waiting,
    const std::vector<std::pair<RequestId, std::size_t>>& ready_extras,
    SelfOrganizing& organizer) {
  const SimTime now = iface_->now();
  const SimDuration vacancy_len = vacancy_end - now;
  std::size_t filled = 0;

  // Microservice candidates first: ready nodes of executing requests with no
  // dependence on active or late nodes. A candidate whose demand does not
  // fully fit may run *capped* (at least half demand) — the resource-stretch
  // mechanism lifts the cap later when resources free up.
  std::size_t scanned = 0;
  for (const auto& [rid, n] : ready_extras) {
    if (++scanned > params_.max_heal_candidates) break;
    sched::ActiveRequest* ar = iface_->find_request(rid);
    if (ar == nullptr || ar->nodes[n].placed || ar->nodes[n].done) continue;
    if (!ar->runtime.independent_of_active(n)) continue;
    const auto& type = ar->runtime.type();
    const auto& svc = iface_->application().service(type.nodes()[n].service);
    SimDuration est = organizer.slack_of(rid, n);
    if (est > vacancy_len + vacancy_len / 2) continue;  // would outlive the slot

    const auto& ledger = iface_->cluster().machine(machine).ledger();
    cluster::ResourceVector limit = svc.demand;
    if (!ledger.fits(now, now + est, limit)) {
      const cluster::ResourceVector avail = ledger.available(now, now + est).min(svc.demand);
      if (!(svc.demand * 0.5).fits_within(avail)) continue;  // too little room
      limit = avail;
      // Capped execution is slower; size the reservation accordingly.
      const double f = std::max(1.0, svc.demand.max_ratio_over(limit));
      est = static_cast<SimDuration>(static_cast<double>(est) * f);
    }
    iface_->place(rid, n, machine, limit, now, est);
    ++delay_slot_fills_;
    ++filled;
    if (obs::Collector* obs = iface_->observer(); obs != nullptr) {
      obs->count(obs->mlp().slots_filled);
      obs->event(obs::DecisionKind::kDelaySlotFill, now, rid.value(),
                 static_cast<std::uint32_t>(n), machine.value(),
                 static_cast<std::int64_t>(est));
    }
  }

  // Request candidates: organize whole requests from the waiting queue into
  // the freed capacity (bounded attempts — the queue is already R-ordered).
  // Back off while the organizer is visibly saturated; re-planning the same
  // unplaceable requests on every late event would melt the scheduler.
  if (organizer.last_defer_at() >= 0 && now - organizer.last_defer_at() < 2 * kMsec) {
    return filled;
  }
  std::size_t attempts = 0;
  for (RequestId rid : waiting) {
    if (attempts >= std::min<std::size_t>(4, params_.max_heal_candidates)) break;
    ++attempts;
    if (organizer.organize(rid)) {
      ++request_fills_;
      ++filled;
      if (obs::Collector* obs = iface_->observer(); obs != nullptr) {
        obs->count(obs->mlp().requests_filled);
        obs->event(obs::DecisionKind::kDelaySlotFill, now, rid.value());
      }
    }
  }
  return filled;
}

std::size_t SelfHealing::stretch_resources(MachineId machine,
                                           const cluster::ResourceVector& freed) {
  // EDF first, then highest resource sensitivity (Fig. 3(c) "highly variable
  // first"): those services convert extra resources into the largest
  // mean-and-variance improvement.
  auto running = iface_->running_on(machine);
  if (running.empty()) return 0;

  std::vector<std::tuple<SimTime, int, RequestId, std::size_t>> order;
  for (const auto& [rid, n] : running) {
    sched::ActiveRequest* ar = iface_->find_request(rid);
    if (ar == nullptr) continue;
    const auto& type = ar->runtime.type();
    const SimTime deadline = ar->runtime.arrival() + type.slo();
    const int sensitivity =
        iface_->application().service(type.nodes()[n].service).cls.resource_sensitivity;
    order.emplace_back(deadline, -sensitivity, rid, n);
  }
  std::sort(order.begin(), order.end());

  cluster::ResourceVector budget = freed;
  std::size_t stretched = 0;
  for (const auto& [deadline, neg_sens, rid, n] : order) {
    (void)deadline;
    (void)neg_sens;
    if (budget.near_zero()) break;
    sched::ActiveRequest* ar = iface_->find_request(rid);
    if (ar == nullptr) continue;
    sched::DriverNode& dn = ar->nodes[n];
    if (!dn.running) continue;
    const auto& svc = iface_->application().service(ar->runtime.type().nodes()[n].service);
    const cluster::ResourceVector gap = (svc.demand - dn.limit).max(cluster::ResourceVector::zero());
    if (gap.near_zero()) continue;  // already at full demand
    const cluster::ResourceVector grant = gap.min(budget);
    if (grant.near_zero()) continue;
    iface_->set_container_limit(rid, n, dn.limit + grant);
    budget -= grant;
    VMLP_AUDIT_ASSERT(!budget.any_negative(),
                      "resource stretch overdrew the freed budget: " << budget.to_string());
    ++stretches_;
    ++stretched;
    if (obs::Collector* obs = iface_->observer(); obs != nullptr) {
      obs->count(obs->mlp().resources_stretched);
      obs->event(obs::DecisionKind::kStretch, iface_->now(), rid.value(),
                 static_cast<std::uint32_t>(n), machine.value());
    }
  }
  return stretched;
}

}  // namespace vmlp::mlp
