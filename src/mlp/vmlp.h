// VmlpScheduler: the paper's proposal (Table VI, "v-MLP").
//
// A volatility-aware microservice-level-parallelism scheduler composed of the
// self-organizing module (Algorithm 1 — chain coalescing onto reserved
// future resource windows, queue ordered by the reorder ratio R) and the
// self-healing module (delay slot + resource stretch on late invocations),
// glued through the interface layer.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "mlp/interface_layer.h"
#include "mlp/metrics.h"
#include "mlp/self_healing.h"
#include "mlp/self_organizing.h"
#include "sched/scheduler.h"

namespace vmlp::mlp {

class VmlpScheduler final : public sched::IScheduler {
 public:
  explicit VmlpScheduler(VmlpParams params = {}, std::uint64_t seed = 7);

  [[nodiscard]] std::string name() const override { return "v-MLP"; }
  void attach(sched::SimulationDriver& driver) override;
  void on_request_arrival(RequestId id) override;
  void on_node_unblocked(RequestId id, std::size_t node) override;
  void on_tick() override;
  void on_late_invocation(RequestId id, std::size_t node) override;
  void on_node_orphaned(RequestId id, std::size_t node) override;
  void on_request_finished(RequestId id) override;

  [[nodiscard]] const SelfOrganizing* organizer() const { return organizer_.get(); }
  [[nodiscard]] const SelfHealing* healer() const { return healer_.get(); }
  [[nodiscard]] std::size_t waiting_count() const { return waiting_.size(); }
  /// Late/stuck stages moved to a better machine (Fig. 7's "relocation of
  /// late-invoking" microservices).
  [[nodiscard]] std::size_t relocations() const { return relocations_; }
  /// Failure orphans routed through the relocation machinery (crash healing).
  [[nodiscard]] std::size_t orphan_relocations() const { return orphan_relocations_; }

 private:
  /// One Algorithm 1 pass over the R-ordered waiting queue.
  void organize_pass();
  void sort_waiting_by_reorder_ratio();

  VmlpParams params_;
  std::uint64_t seed_;
  std::unique_ptr<InterfaceLayer> iface_;
  std::unique_ptr<SelfOrganizing> organizer_;
  std::unique_ptr<SelfHealing> healer_;

  std::vector<RequestId> waiting_;                        // unplanned requests
  std::vector<std::pair<RequestId, std::size_t>> ready_;  // unblocked, unplaced nodes
  std::size_t relocations_ = 0;
  std::size_t orphan_relocations_ = 0;
};

}  // namespace vmlp::mlp
