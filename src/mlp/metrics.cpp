#include "mlp/metrics.h"

#include <algorithm>
#include <cmath>

#include "app/volatility.h"
#include "common/error.h"

namespace vmlp::mlp {

double x_percent(double v_r, SimDuration slo, SimDuration max_slo) {
  VMLP_CHECK_MSG(slo > 0 && max_slo >= slo, "bad SLO pair: " << slo << " / " << max_slo);
  VMLP_CHECK_MSG(v_r >= 0.0 && v_r <= 1.0 + 1e-9, "V_r out of range");
  // SLA term: tighter SLOs (small slo/max_slo) need fresher, larger windows.
  const double sla = static_cast<double>(max_slo) / static_cast<double>(slo);
  return std::clamp(100.0 * v_r * std::min(sla, 2.0) / 2.0, 1.0, 100.0);
}

double reorder_ratio(double v_r, SimDuration slo, SimDuration waited, SimDuration dt0,
                     SimDuration ref_dt) {
  VMLP_CHECK(slo > 0 && dt0 > 0 && ref_dt > 0);
  VMLP_CHECK(waited >= 0);
  const double urgency = static_cast<double>(waited + kMsec) / static_cast<double>(slo);
  const double sjf = static_cast<double>(ref_dt) / static_cast<double>(dt0);
  const double s = v_r * urgency * sjf;
  return s / (1.0 + s);
}

SimDuration estimate_slack(const trace::ProfileStore& profiles, ServiceTypeId service,
                           RequestTypeId request_type, double v_r, double x,
                           SimDuration fallback, const VmlpParams& params) {
  std::optional<SimDuration> est;
  if (!params.volatility_aware) {
    est = profiles.mean_exec(service, request_type);
  } else {
    switch (app::volatility_band(v_r)) {
      case app::VolatilityBand::kLow:
        // Δt directly determined by historical value: the max slack column.
        est = profiles.max_slack(service, request_type);
        break;
      case app::VolatilityBand::kMid:
        est = profiles.quantile_of_recent(service, request_type, params.mid_quantile, x);
        break;
      case app::VolatilityBand::kHigh:
        est = profiles.quantile_of_recent(service, request_type, params.high_quantile, x);
        break;
    }
  }
  return std::max<SimDuration>(1, est.value_or(fallback));
}

}  // namespace vmlp::mlp
