// Self-healing module (Section III-F, Fig. 7).
//
// When a planned microservice has not started by its planned time, its
// reserved window is a resource vacancy. Two mechanisms restore the pipeline:
//
//  * Delay slot — fill the vacancy with candidates that cannot conflict with
//    executing or late-invoking microservices: ready-but-unplaced nodes of
//    executing requests that are independent of all active nodes, and whole
//    requests from the back of the waiting queue (in reorder-ratio order).
//  * Resource stretch — when the slot finds no candidates, reassign the late
//    node's idle resources to microservices already executing on the machine,
//    prioritized by earliest deadline first and then highest resource
//    sensitivity (Fig. 3(c)'s "highly variable first").
#pragma once

#include <utility>
#include <vector>

#include "mlp/interface_layer.h"
#include "mlp/metrics.h"
#include "mlp/self_organizing.h"

namespace vmlp::mlp {

class SelfHealing {
 public:
  SelfHealing(InterfaceLayer& iface, const VmlpParams& params);

  /// React to a late invocation of `node` of request `id`.
  /// `waiting` is the waiting queue in descending reorder-ratio order;
  /// `ready_extras` are ready-but-unplaced nodes of executing requests.
  /// Returns the number of healing actions taken (fills + stretches).
  std::size_t on_late(RequestId id, std::size_t node, const std::vector<RequestId>& waiting,
                      const std::vector<std::pair<RequestId, std::size_t>>& ready_extras,
                      SelfOrganizing& organizer);

  [[nodiscard]] std::size_t delay_slot_fills() const { return delay_slot_fills_; }
  [[nodiscard]] std::size_t request_fills() const { return request_fills_; }
  [[nodiscard]] std::size_t stretches() const { return stretches_; }

 private:
  std::size_t fill_delay_slot(MachineId machine, SimTime vacancy_end,
                              const std::vector<RequestId>& waiting,
                              const std::vector<std::pair<RequestId, std::size_t>>& ready_extras,
                              SelfOrganizing& organizer);
  std::size_t stretch_resources(MachineId machine, const cluster::ResourceVector& freed);

  InterfaceLayer* iface_;
  VmlpParams params_;
  std::size_t delay_slot_fills_ = 0;
  std::size_t request_fills_ = 0;
  std::size_t stretches_ = 0;
};

}  // namespace vmlp::mlp
