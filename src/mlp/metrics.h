// v-MLP scheduling metrics (Section III-E):
//
//  * x — the history-window metric, x ∝ SLA × V_r, clamped into [1, 100];
//  * Δt — the per-microservice execution-time slack estimate, chosen per
//    volatility band (Algorithm 1):
//        low V_r   → the historical maximum slack,
//        mid V_r   → the 50 % latency of the most recent x % executions,
//        high V_r  → the 99 % latency of the most recent x % executions;
//  * R — the waiting-queue reorder ratio. The paper's formula
//    R = α·V_r·SLA·t_arr/Δt₀ combines volatility, SLA urgency, FCFS and SJF;
//    we realize those semantics dimensionally soundly as
//        R = σ( V_r · (waited/SLO) · (ref/Δt₀) )
//    with σ(s) = s/(1+s) normalizing into (0, 1): longer waiting, tighter
//    SLA, shorter shortest-stage and higher volatility all raise priority.
#pragma once

#include <optional>

#include "common/types.h"
#include "trace/profile_store.h"

namespace vmlp::mlp {

struct VmlpParams {
  double mid_quantile = 0.50;   ///< Algorithm 1 line 13
  double high_quantile = 0.99;  ///< Algorithm 1 line 19
  std::size_t max_chain_choices = 4;      ///< m, the chain choices per request
  SimDuration plan_search_window = 50 * kMsec;  ///< how far ahead a stage may slip
  std::size_t plan_search_steps = 8;            ///< admission probes inside the window
  std::size_t max_admit_probes = 160;           ///< total (machine, start) probes per stage
  std::size_t max_failed_chains = 2;            ///< chain choices tried once one failed
  std::size_t max_defers_per_pass = 8;          ///< failed plans tolerated per queue scan;
                                                ///< the scan continues past failures
                                                ///< ("switch r_i with r_{i+1}") so smaller
                                                ///< requests behind a blocked head still admit
  std::size_t max_heal_candidates = 32;         ///< waiting-queue prefix scanned per late event
  // Ablation switches (benchmarked in bench/ablation_vmlp).
  bool volatility_aware = true;   ///< false: every request uses the mean Δt
  bool enable_delay_slot = true;
  bool enable_resource_stretch = true;
  /// Admission fast path: per-organize memoization of slack/busy estimates
  /// and guaranteed-fail probe pruning in admit_stage. Decision-identical to
  /// the slow path (prunes only probes that would have failed, recomputation
  /// yields bit-equal values); false = the pre-fast-path reference mode used
  /// by determinism_check claim 5 and the sched.* reference benchmark.
  bool admission_fast_path = true;
  /// Cell router: admit_stage probes machines cell by cell in the cluster
  /// topology's ranked order (least-loaded first), shedding to the next cell
  /// when one has no probeable machine, instead of scanning the flat machine
  /// range. On a single-cell topology the router arithmetic degenerates to
  /// the flat scan bit-exactly; false = the pre-topology reference loop used
  /// by determinism_check claim 7.
  bool cell_router = true;
  /// Cells visited per admission stage before giving up (the shed budget).
  /// Bounds admission work by O(router_max_cells × cell size) instead of
  /// O(cluster size); ignored when the topology has one cell.
  std::size_t router_max_cells = 2;
};

/// x ∈ [1, 100]: fraction of recent history consulted, growing with SLA
/// tightness (slo relative to the application's loosest SLO) and volatility.
double x_percent(double v_r, SimDuration slo, SimDuration max_slo);

/// Reorder ratio in (0, 1); higher pops first.
double reorder_ratio(double v_r, SimDuration slo, SimDuration waited, SimDuration dt0,
                     SimDuration ref_dt);

/// Algorithm 1's Δt for one microservice of a request with volatility v_r.
/// Falls back to `fallback` when no history exists.
SimDuration estimate_slack(const trace::ProfileStore& profiles, ServiceTypeId service,
                           RequestTypeId request_type, double v_r, double x,
                           SimDuration fallback, const VmlpParams& params);

}  // namespace vmlp::mlp
