#include "mlp/self_organizing.h"

#include <algorithm>
#include <cmath>

#include "common/audit.h"
#include "common/error.h"

namespace vmlp::mlp {

void audit_plan_integrity(const sched::ActiveRequest& ar, const std::vector<NodePlan>& plans,
                          bool require_full_cover) {
  if (!audit::enabled()) return;
  std::vector<bool> covered(ar.nodes.size(), false);
  for (const NodePlan& plan : plans) {
    VMLP_AUDIT_ASSERT(plan.node < ar.nodes.size(),
                      "plan references node " << plan.node << " outside request of size "
                                              << ar.nodes.size());
    VMLP_AUDIT_ASSERT(!covered[plan.node],
                      "plan books node " << plan.node << " twice (double-booked reservation)");
    covered[plan.node] = true;
    const sched::DriverNode& dn = ar.nodes[plan.node];
    VMLP_AUDIT_ASSERT(!dn.placed && !dn.done,
                      "plan books node " << plan.node << " that is already placed or finished");
    VMLP_AUDIT_ASSERT(plan.busy > 0 && plan.slack >= 0 && plan.start >= 0,
                      "plan for node " << plan.node << " has a degenerate window: start="
                                       << plan.start << " busy=" << plan.busy
                                       << " slack=" << plan.slack);
  }
  if (require_full_cover) {
    for (std::size_t i = 0; i < ar.nodes.size(); ++i) {
      const sched::DriverNode& dn = ar.nodes[i];
      if (dn.placed || dn.done) continue;
      VMLP_AUDIT_ASSERT(covered[i], "plan drops node " << i
                                                       << " — coalesced chain does not preserve "
                                                          "the request's stage multiset");
    }
  }
}

SelfOrganizing::SelfOrganizing(InterfaceLayer& iface, const VmlpParams& params, Rng rng)
    : iface_(&iface), params_(params), rng_(rng) {}

cluster::ResourceVector SelfOrganizing::Overlay::max_over(MachineId m, SimTime t0,
                                                          SimTime t1) const {
  // Conservative: sum every overlapping tentative reservation (exact maxima
  // would need sweep-line; plans hold only a handful of entries).
  cluster::ResourceVector total;
  for (const auto& e : entries) {
    if (e.machine == m && e.t0 < t1 && t0 < e.t1) total += e.res;
  }
  return total;
}

bool SelfOrganizing::fits_with_overlay(const Overlay& overlay, MachineId m, SimTime t0, SimTime t1,
                                       const cluster::ResourceVector& r) const {
  const auto& ledger = iface_->cluster().machine(m).ledger();
  return ledger.fits(t0, t1, r + overlay.max_over(m, t0, t1));
}

SimDuration SelfOrganizing::max_slo() const {
  if (cached_max_slo_ == 0) {
    for (const auto& rt : iface_->application().requests()) {
      cached_max_slo_ = std::max(cached_max_slo_, rt.slo());
    }
  }
  return cached_max_slo_;
}

SimDuration SelfOrganizing::ref_stage_time() const {
  if (cached_ref_ == 0) {
    double sum = 0.0;
    const auto& services = iface_->application().services();
    for (const auto& s : services) sum += static_cast<double>(s.nominal_time);
    cached_ref_ = std::max<SimDuration>(
        1, static_cast<SimDuration>(sum / std::max<std::size_t>(1, services.size())));
  }
  return cached_ref_;
}

double SelfOrganizing::reorder_ratio_of(RequestId id) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return 0.0;
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const SimDuration waited = iface_->now() - ar->runtime.arrival();

  SimDuration dt0 = kTimeInfinity;
  for (const auto& node : type.nodes()) {
    const auto mean = iface_->profiles().mean_exec(node.service, type.id());
    const SimDuration est = mean.value_or(static_cast<SimDuration>(std::llround(
        static_cast<double>(iface_->application().service(node.service).nominal_time) *
        node.time_scale)));
    dt0 = std::min(dt0, std::max<SimDuration>(1, est));
  }
  return reorder_ratio(v_r, type.slo(), waited, dt0, ref_stage_time());
}

SimDuration SelfOrganizing::slack_of(RequestId id, std::size_t node) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  VMLP_CHECK(ar != nullptr);
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const double x = x_percent(v_r, type.slo(), max_slo());
  const auto& req_node = type.nodes()[node];
  const auto& svc = iface_->application().service(req_node.service);
  const auto fallback = static_cast<SimDuration>(
      std::llround(2.0 * static_cast<double>(svc.nominal_time) * req_node.time_scale));
  return estimate_slack(iface_->profiles(), req_node.service, type.id(), v_r, x, fallback,
                        params_);
}

std::optional<std::pair<MachineId, SimTime>> SelfOrganizing::admit_stage(
    const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
    const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine) {
  const std::size_t n_machines = iface_->cluster().machine_count();
  const SimTime now = iface_->now();
  const SimDuration step =
      std::max<SimDuration>(1, params_.plan_search_window /
                                   static_cast<SimDuration>(params_.plan_search_steps));

  std::size_t probes = 0;
  for (std::size_t k = 0; k <= params_.plan_search_steps; ++k) {
    for (std::size_t j = 0; j < n_machines; ++j) {
      if (++probes > params_.max_admit_probes) return std::nullopt;
      const MachineId m(static_cast<std::uint32_t>((cursor_ + j) % n_machines));
      if (!iface_->cluster().machine(m).up()) continue;  // crash window
      SimTime desired = now;
      if (parent_finish.empty()) {
        // Root stage: ingress hop from the request handler.
        desired = now + iface_->expected_ingress();
      } else {
        for (std::size_t p = 0; p < parent_finish.size(); ++p) {
          desired = std::max(desired,
                             parent_finish[p] + iface_->expected_comm(parent_machine[p], m));
        }
        desired = std::max(desired, now);
      }
      const SimTime start = desired + static_cast<SimDuration>(k) * step;
      if (fits_with_overlay(overlay, m, start, start + slack, demand)) {
        cursor_ = (m.value() + 1) % n_machines;
        return std::make_pair(m, start);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodePlan>> SelfOrganizing::try_chain(
    sched::ActiveRequest& ar, const std::vector<std::size_t>& chain, double v_r, double x) {
  const auto& type = ar.runtime.type();
  const auto& application = iface_->application();
  const SimTime now = iface_->now();

  std::vector<SimTime> pred_finish(type.size(), -1);
  std::vector<MachineId> pred_machine(type.size());

  // Seed predictions for nodes that already progressed (delay-slot entrants).
  for (std::size_t i = 0; i < type.size(); ++i) {
    const sched::DriverNode& dn = ar.nodes[i];
    const auto& rn = ar.runtime.node(i);
    if (dn.done) {
      pred_finish[i] = rn.finished_at;
      pred_machine[i] = dn.machine;
    } else if (dn.running) {
      pred_finish[i] = std::max(now + kMsec, rn.started_at + slack_of(ar.runtime.id(), i));
      pred_machine[i] = dn.machine;
    } else if (dn.placed) {
      pred_finish[i] = std::max(dn.planned_start, now) + dn.reserve_duration;
      pred_machine[i] = dn.machine;
    }
  }

  Overlay overlay;
  std::vector<NodePlan> plans;
  for (std::size_t node : chain) {
    const sched::DriverNode& dn = ar.nodes[node];
    if (dn.placed || dn.done) continue;

    const auto& req_node = type.nodes()[node];
    const auto& svc = application.service(req_node.service);
    const auto fallback = static_cast<SimDuration>(
        std::llround(2.0 * static_cast<double>(svc.nominal_time) * req_node.time_scale));
    // Δt (band-conservative) aligns successors; the ledger books only the
    // *expected* busy time — reserving worst-case windows would halve the
    // cluster's effective capacity for volatile streams.
    const SimDuration slack =
        estimate_slack(iface_->profiles(), req_node.service, type.id(), v_r, x, fallback, params_);
    const SimDuration busy = std::max<SimDuration>(
        1, iface_->profiles().mean_exec(req_node.service, type.id()).value_or(fallback / 2));

    std::vector<SimTime> pf;
    std::vector<MachineId> pm;
    for (std::size_t parent : type.dag().parents(node)) {
      VMLP_CHECK_MSG(pred_finish[parent] >= 0, "chain order violated dependency order");
      pf.push_back(pred_finish[parent]);
      pm.push_back(pred_machine[parent]);
    }

    const auto admitted = admit_stage(overlay, svc.demand, busy, pf, pm);
    if (!admitted.has_value()) return std::nullopt;

    const auto [machine, start] = *admitted;
    plans.push_back(NodePlan{node, machine, start, busy, slack});
    overlay.entries.push_back(Overlay::Entry{machine, start, start + busy, svc.demand});
    pred_finish[node] = start + std::max(busy, slack);
    pred_machine[node] = machine;
  }
  return plans;
}

bool SelfOrganizing::organize(RequestId id) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return false;
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const double x = x_percent(v_r, type.slo(), max_slo());

  const auto chains = type.dag().chain_choices(params_.max_chain_choices, rng_);
  std::size_t failed = 0;
  for (const auto& chain : chains) {
    if (failed >= params_.max_failed_chains) break;  // saturated; retrying costs more than it buys
    auto plans = try_chain(*ar, chain, v_r, x);
    if (!plans.has_value()) {
      ++failed;
      continue;
    }
    audit_plan_integrity(*ar, *plans, /*require_full_cover=*/true);
    for (const auto& plan : *plans) {
      const auto& svc = iface_->application().service(type.nodes()[plan.node].service);
      iface_->place(id, plan.node, plan.machine, svc.demand, plan.start, plan.busy);
    }
    ++plans_committed_;
    return true;
  }
  ++plans_deferred_;
  last_defer_at_ = iface_->now();
  return false;
}

bool SelfOrganizing::organize_node(RequestId id, std::size_t node) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return false;
  if (ar->nodes[node].placed || ar->nodes[node].done) return true;
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const double x = x_percent(v_r, type.slo(), max_slo());
  auto plans = try_chain(*ar, {node}, v_r, x);
  if (!plans.has_value() || plans->empty()) return false;
  audit_plan_integrity(*ar, *plans, /*require_full_cover=*/false);
  const auto& plan = plans->front();
  const auto& svc = iface_->application().service(type.nodes()[plan.node].service);
  iface_->place(id, plan.node, plan.machine, svc.demand, plan.start, plan.busy);
  return true;
}

}  // namespace vmlp::mlp
