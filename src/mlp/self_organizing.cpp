#include "mlp/self_organizing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/audit.h"
#include "common/error.h"
#include "obs/collector.h"

namespace vmlp::mlp {

void audit_plan_integrity(const sched::ActiveRequest& ar, const std::vector<NodePlan>& plans,
                          bool require_full_cover) {
  if (!audit::enabled()) return;
  std::vector<bool> covered(ar.nodes.size(), false);
  for (const NodePlan& plan : plans) {
    VMLP_AUDIT_ASSERT(plan.node < ar.nodes.size(),
                      "plan references node " << plan.node << " outside request of size "
                                              << ar.nodes.size());
    VMLP_AUDIT_ASSERT(!covered[plan.node],
                      "plan books node " << plan.node << " twice (double-booked reservation)");
    covered[plan.node] = true;
    const sched::DriverNode& dn = ar.nodes[plan.node];
    VMLP_AUDIT_ASSERT(!dn.placed && !dn.done,
                      "plan books node " << plan.node << " that is already placed or finished");
    VMLP_AUDIT_ASSERT(plan.busy > 0 && plan.slack >= 0 && plan.start >= 0,
                      "plan for node " << plan.node << " has a degenerate window: start="
                                       << plan.start << " busy=" << plan.busy
                                       << " slack=" << plan.slack);
  }
  if (require_full_cover) {
    for (std::size_t i = 0; i < ar.nodes.size(); ++i) {
      const sched::DriverNode& dn = ar.nodes[i];
      if (dn.placed || dn.done) continue;
      VMLP_AUDIT_ASSERT(covered[i], "plan drops node " << i
                                                       << " — coalesced chain does not preserve "
                                                          "the request's stage multiset");
    }
  }
}

SelfOrganizing::SelfOrganizing(InterfaceLayer& iface, const VmlpParams& params, Rng&& rng)
    : iface_(&iface), params_(params), rng_(rng) {}

void SelfOrganizing::Overlay::add(MachineId m, SimTime t0, SimTime t1,
                                  const cluster::ResourceVector& res) {
  for (auto& [machine, spans] : buckets) {
    if (machine == m) {
      spans.push_back(Span{t0, t1, res});
      return;
    }
  }
  buckets.emplace_back(m, std::vector<Span>{Span{t0, t1, res}});
}

cluster::ResourceVector SelfOrganizing::Overlay::max_over(MachineId m, SimTime t0,
                                                          SimTime t1) const {
  // Conservative: sum every overlapping tentative reservation (exact maxima
  // would need sweep-line; plans hold only a handful of entries). Buckets
  // preserve per-machine insertion order, so the sum accumulates in the same
  // order as a filtered sweep of a global entry list would.
  cluster::ResourceVector total;
  for (const auto& [machine, spans] : buckets) {
    if (machine != m) continue;
    for (const auto& s : spans) {
      if (s.t0 < t1 && t0 < s.t1) total += s.res;
    }
    break;
  }
  return total;
}

bool SelfOrganizing::fits_with_overlay(const Overlay& overlay, MachineId m, SimTime t0, SimTime t1,
                                       const cluster::ResourceVector& r,
                                       std::size_t* cover_hint, SimTime* refit_out) const {
  const auto& ledger = iface_->cluster().machine(m).ledger();
  if (overlay.buckets.empty()) return ledger.fits(t0, t1, r, cover_hint, refit_out);
  return ledger.fits(t0, t1, r + overlay.max_over(m, t0, t1), cover_hint);
}

SimDuration SelfOrganizing::max_slo() const {
  if (!cached_max_slo_.has_value()) {
    SimDuration max_seen = 0;
    for (const auto& rt : iface_->application().requests()) {
      max_seen = std::max(max_seen, rt.slo());
    }
    cached_max_slo_ = max_seen;
  }
  return *cached_max_slo_;
}

SimDuration SelfOrganizing::ref_stage_time() const {
  if (!cached_ref_.has_value()) {
    double sum = 0.0;
    const auto& services = iface_->application().services();
    for (const auto& s : services) sum += static_cast<double>(s.nominal_time);
    cached_ref_ = std::max<SimDuration>(
        1, static_cast<SimDuration>(sum / std::max<std::size_t>(1, services.size())));
  }
  return *cached_ref_;
}

double SelfOrganizing::reorder_ratio_of(RequestId id) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return 0.0;
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const SimDuration waited = iface_->now() - ar->runtime.arrival();

  SimDuration dt0 = kTimeInfinity;
  for (const auto& node : type.nodes()) {
    const auto mean = iface_->profiles().mean_exec(node.service, type.id());
    const SimDuration est = mean.value_or(static_cast<SimDuration>(std::llround(
        static_cast<double>(iface_->application().service(node.service).nominal_time) *
        node.time_scale)));
    dt0 = std::min(dt0, std::max<SimDuration>(1, est));
  }
  return reorder_ratio(v_r, type.slo(), waited, dt0, ref_stage_time());
}

SelfOrganizing::PlanContext::NodeEst SelfOrganizing::compute_est(const app::RequestType& type,
                                                                 std::size_t node, double v_r,
                                                                 double x) const {
  const auto& req_node = type.nodes()[node];
  const auto& svc = iface_->application().service(req_node.service);
  const auto fallback = static_cast<SimDuration>(
      std::llround(2.0 * static_cast<double>(svc.nominal_time) * req_node.time_scale));
  // Δt (band-conservative) aligns successors; the ledger books only the
  // *expected* busy time — reserving worst-case windows would halve the
  // cluster's effective capacity for volatile streams.
  PlanContext::NodeEst est;
  est.slack =
      estimate_slack(iface_->profiles(), req_node.service, type.id(), v_r, x, fallback, params_);
  est.busy = std::max<SimDuration>(
      1, iface_->profiles().mean_exec(req_node.service, type.id()).value_or(fallback / 2));
  return est;
}

const SelfOrganizing::PlanContext::NodeEst& SelfOrganizing::node_est(
    PlanContext& ctx, const sched::ActiveRequest& ar, std::size_t node) const {
  auto& slot = ctx.est[node];
  if (!slot.has_value()) slot = compute_est(ar.runtime.type(), node, ctx.v_r, ctx.x);
  return *slot;
}

SelfOrganizing::PlanContext SelfOrganizing::make_context(const sched::ActiveRequest& ar) {
  const auto& type = ar.runtime.type();
  PlanContext ctx;
  ctx.v_r = iface_->volatility(type.id());
  ctx.x = x_percent(ctx.v_r, type.slo(), max_slo());
  ctx.est.assign(type.size(), std::nullopt);
  ctx.seed_finish.assign(type.size(), -1);
  ctx.seed_machine.assign(type.size(), MachineId());

  // Seed predictions for nodes that already progressed (delay-slot entrants).
  const SimTime now = iface_->now();
  for (std::size_t i = 0; i < type.size(); ++i) {
    const sched::DriverNode& dn = ar.nodes[i];
    const auto& rn = ar.runtime.node(i);
    if (dn.done) {
      ctx.seed_finish[i] = rn.finished_at;
      ctx.seed_machine[i] = dn.machine;
    } else if (dn.running) {
      ctx.seed_finish[i] = std::max(now + kMsec, rn.started_at + node_est(ctx, ar, i).slack);
      ctx.seed_machine[i] = dn.machine;
    } else if (dn.placed) {
      ctx.seed_finish[i] = std::max(dn.planned_start, now) + dn.reserve_duration;
      ctx.seed_machine[i] = dn.machine;
    }
  }
  return ctx;
}

SimDuration SelfOrganizing::slack_of(RequestId id, std::size_t node) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  VMLP_CHECK(ar != nullptr);
  const auto& type = ar->runtime.type();
  const double v_r = iface_->volatility(type.id());
  const double x = x_percent(v_r, type.slo(), max_slo());
  return compute_est(type, node, v_r, x).slack;
}

std::optional<std::pair<MachineId, SimTime>> SelfOrganizing::admit_stage(
    const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
    const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine) {
  obs::Collector* obs = iface_->observer();
  const std::uint64_t hint_hits_before =
      obs != nullptr ? obs->counter_value(obs->ledger().hints_hit) : 0;
  std::size_t probes = 0;
  std::size_t pruned = 0;
  const auto result = admit_stage_impl(overlay, demand, slack, parent_finish, parent_machine,
                                       probes, pruned);
  if (obs != nullptr) {
    // Per-stage summaries, not per-probe records: one kAdmitProbe event per
    // stage keeps the ring readable at admission rates of thousands of
    // probes per simulated second.
    const SimTime t = iface_->now();
    obs->count(obs->mlp().probes_spent, probes);
    obs->event(obs::DecisionKind::kAdmitProbe, t, obs::DecisionEvent::kNoRequest,
               obs::DecisionEvent::kNoIndex,
               result.has_value() ? result->first.value() : obs::DecisionEvent::kNoIndex,
               static_cast<std::int64_t>(probes));
    if (pruned > 0) {
      obs->count(obs->mlp().probes_pruned, pruned);
      obs->event(obs::DecisionKind::kAdmitPrune, t, obs::DecisionEvent::kNoRequest,
                 obs::DecisionEvent::kNoIndex, obs::DecisionEvent::kNoIndex,
                 static_cast<std::int64_t>(pruned));
    }
    const std::uint64_t hits = obs->counter_value(obs->ledger().hints_hit) - hint_hits_before;
    if (hits > 0) {
      obs->event(obs::DecisionKind::kAdmitHintHit, t, obs::DecisionEvent::kNoRequest,
                 obs::DecisionEvent::kNoIndex, obs::DecisionEvent::kNoIndex,
                 static_cast<std::int64_t>(hits));
    }
  }
  return result;
}

std::optional<std::pair<MachineId, SimTime>> SelfOrganizing::admit_stage_impl(
    const Overlay& overlay, const cluster::ResourceVector& demand, SimDuration slack,
    const std::vector<SimTime>& parent_finish, const std::vector<MachineId>& parent_machine,
    std::size_t& probes_out, std::size_t& pruned_out) {
  const std::size_t n_machines = iface_->cluster().machine_count();
  const SimTime now = iface_->now();
  const SimDuration step =
      std::max<SimDuration>(1, params_.plan_search_window /
                                   static_cast<SimDuration>(params_.plan_search_steps));
  const bool fast = params_.admission_fast_path;

  // Desired starts depend only on the machine (expected_comm is a pure
  // function of topology distance), so one computation per machine serves
  // every slip step k. probe_state_ classifies each machine on first touch:
  // 0 = untouched, 1 = must probe, 2 = every probe this stage is guaranteed
  // to fail (see quick-rejects below).
  if (fast) {
    // O(1) stage setup: entries are invalidated by bumping the stage epoch,
    // never by clearing the vectors (see the probe_epoch_ declaration — an
    // eager O(machines) assign() per stage is the latent cost that
    // re-couples placements/sec to cluster size). probe_one initializes a
    // machine's state/refit on first touch of the stage.
    ++stage_epoch_;
    if (probe_state_.size() < n_machines) {
      probe_state_.resize(n_machines, 0);
      probe_epoch_.resize(n_machines, 0);  // 0 != any stage_epoch_ (it starts at 1)
      probe_refit_.resize(n_machines, std::numeric_limits<SimTime>::min());
      probe_desired_.resize(n_machines);
    }
    // Covering-index hints survive across stages: the ledger validates them
    // against its current profile, and consecutive stages probe each machine
    // at nearby times. Refit bounds do not — they encode this stage's demand
    // and duration.
    if (probe_cover_.size() < n_machines) probe_cover_.resize(n_machines, cluster::kNoCoverHint);
  }

  auto desired_for = [&](MachineId m) {
    SimTime desired = now;
    if (parent_finish.empty()) {
      // Root stage: ingress hop from the request handler.
      desired = now + iface_->expected_ingress();
    } else {
      for (std::size_t p = 0; p < parent_finish.size(); ++p) {
        desired =
            std::max(desired, parent_finish[p] + iface_->expected_comm(parent_machine[p], m));
      }
      desired = std::max(desired, now);
    }
    return desired;
  };

  std::size_t& probes = probes_out;
  std::size_t& pruned = pruned_out;

  // One (machine, slip step) probe — the body shared verbatim by the flat
  // reference scan and the cell-router scan below, so the two orderings can
  // never drift in per-probe behaviour. kFit leaves the accepted pair in
  // `result` (cursor bookkeeping is the caller's: flat and cell cursors
  // update differently); kNoFit may mark the pass probeable; kBudget means
  // the stage's probe budget is spent.
  enum class Probe { kFit, kNoFit, kBudget };
  std::optional<std::pair<MachineId, SimTime>> result;
  auto probe_one = [&](MachineId m, std::size_t k, bool& any_probeable) {
    // Pruned probes still consume budget: which probe exhausts
    // max_admit_probes must not depend on the fast path.
    if (++probes > params_.max_admit_probes) return Probe::kBudget;
    if (!iface_->cluster().machine(m).up()) return Probe::kNoFit;  // crash window
    SimTime desired = 0;
    std::int8_t* state = nullptr;
    if (fast) {
      if (probe_epoch_[m.value()] != stage_epoch_) {
        // First touch this stage: lazily reset what the eager per-stage
        // clear used to write for every machine.
        probe_epoch_[m.value()] = stage_epoch_;
        probe_state_[m.value()] = 0;
        probe_refit_[m.value()] = std::numeric_limits<SimTime>::min();
      }
      state = &probe_state_[m.value()];
      if (*state == 2) {
        ++pruned;
        return Probe::kNoFit;  // counted, and provably would have failed
      }
      if (*state == 0) {
        desired = desired_for(m);
        probe_desired_[m.value()] = desired;
      } else {
        desired = probe_desired_[m.value()];
      }
    } else {
      desired = desired_for(m);
    }
    const SimTime start = desired + static_cast<SimDuration>(k) * step;
    if (fast && start < probe_refit_[m.value()]) {
      // The window still overlaps the blocking run an earlier probe of
      // this machine hit, so it provably fails (the run's bound holds for
      // every later-starting window of the same demand and duration).
      any_probeable = true;  // later slip steps may clear the run
      ++pruned;
      return Probe::kNoFit;
    }
    std::size_t* cover = fast ? &probe_cover_[m.value()] : nullptr;
    SimTime* refit = fast ? &probe_refit_[m.value()] : nullptr;
    if (fits_with_overlay(overlay, m, start, start + slack, demand, cover, refit)) {
      result = std::make_pair(m, start);
      return Probe::kFit;
    }
    if (state != nullptr && *state == 0) {
      // First failed probe on this machine: classify it so the slip loop
      // does not keep paying for probes that provably fail. Classification
      // is deferred until a failure because a machine whose first probe
      // succeeds never needs it.
      const auto& machine = iface_->cluster().machine(m);
      if (!demand.fits_within(machine.capacity())) {
        // The bare capacity can never hold the demand; any non-negative
        // ledger level or overlay only raises the tested usage.
        *state = 2;
      } else {
        // Every start this stage can probe lies in
        // [desired, desired + steps·step], so every probed window is a
        // subset of that span plus the slack tail. If even the quietest
        // level across the whole span cannot host the demand, each
        // window's max certainly cannot (max ≥ span min, and the exact
        // test adds the same non-negative demand+overlay on top).
        // span_could_fit early-exits the span fold on the usual "machine
        // stays probeable" verdict — via the dispatched SIMD min-fold over
        // the ledger's SoA mirrors when a vector target is active, with a
        // verdict byte-identical to the scalar walk (common/simd.h).
        const SimTime span_end =
            desired + static_cast<SimDuration>(params_.plan_search_steps) * step + slack;
        // The span starts at `desired` == this k=0 probe's start, so the
        // hint the failed probe just stored is already the span's
        // covering index.
        *state = machine.ledger().span_could_fit(desired, span_end, demand, cover) ? 1 : 2;
      }
    }
    if (state == nullptr || *state != 2) any_probeable = true;
    return Probe::kNoFit;
  };

  if (!params_.cell_router) {
    // Pre-topology flat scan — determinism_check claim 7's reference mode.
    for (std::size_t k = 0; k <= params_.plan_search_steps; ++k) {
      // Tracks whether this pass met any machine that could still admit. Once
      // every up machine is classified 2 (guaranteed fail), the remaining slip
      // passes only tick the probe counter — no probe can succeed, no cursor
      // move, and the stage ends in std::nullopt either way — so the fast path
      // returns that verdict immediately. Machines cannot change state while a
      // stage runs (the simulation does not advance inside admit_stage).
      bool any_probeable = false;
      for (std::size_t j = 0; j < n_machines; ++j) {
        const MachineId m(static_cast<std::uint32_t>((cursor_ + j) % n_machines));
        switch (probe_one(m, k, any_probeable)) {
          case Probe::kBudget:
            return std::nullopt;
          case Probe::kFit:
            cursor_ = (m.value() + 1) % n_machines;
            return result;
          case Probe::kNoFit:
            break;
        }
      }
      if (fast && !any_probeable) return std::nullopt;
    }
    return std::nullopt;
  }

  // Cell-router scan: cells in ranked order (least loaded first), the full
  // slip window inside one cell before shedding to the next. On a
  // single-cell topology this is bit-exact to the flat scan: begin = 0,
  // size = n_machines, and cell_cursor_[0] traces cursor_'s trajectory —
  // determinism_check claim 7. The work bound per stage is
  // O(router_max_cells × cell size), independent of cluster size.
  const auto& clstr = iface_->cluster();
  const cluster::CellTopology& cells = clstr.cells();
  const std::size_t n_cells = cells.cell_count();
  cells.ranked_cells(ranked_cells_);
  if (cell_cursor_.size() != n_cells) cell_cursor_.assign(n_cells, 0);
  const std::size_t visit =
      std::min(n_cells, std::max<std::size_t>(1, params_.router_max_cells));
  obs::Collector* obs = iface_->observer();
  if (obs != nullptr && n_cells > 1) obs->count(obs->topology().stages_routed);
  for (std::size_t ci = 0; ci < visit; ++ci) {
    const std::size_t cell = ranked_cells_[ci];
    const std::size_t begin = cells.cell_begin(cell);
    const std::size_t size = cells.cell_size(cell);
    std::size_t& cursor = cell_cursor_[cell];
    // Headroom-index jump (multi-cell only — a single cell must stay
    // bit-exact to the flat scan): rotate the scan base to the first machine
    // the per-32-machine summary guarantees can host the demand at every
    // time (a vectorized find-first over the cell's cached free fractions —
    // see CellTopology::first_fit_candidate). Typically its j = 0 probe
    // admits immediately; if a plan overlay blocks it, the scan continues
    // from there — same coverage, rotated order, still a pure function of
    // simulation state.
    std::size_t base = cursor;
    if (fast && n_cells > 1) {
      const double frac = clstr.machine(MachineId(static_cast<std::uint32_t>(begin)))
                              .ledger()
                              .demand_fraction_of(demand);
      const std::size_t cand = cells.first_fit_candidate(clstr, cell, cursor, frac);
      if (cand != cluster::CellTopology::kNoMachine) {
        base = cand - begin;
        if (obs != nullptr) obs->count(obs->topology().index_jumps);
      }
    }
    bool shed = false;  // fast path: cell has no probeable machine left
    for (std::size_t k = 0; k <= params_.plan_search_steps && !shed; ++k) {
      bool any_probeable = false;  // see the flat scan's comment
      for (std::size_t j = 0; j < size; ++j) {
        const MachineId m(static_cast<std::uint32_t>(begin + (base + j) % size));
        switch (probe_one(m, k, any_probeable)) {
          case Probe::kBudget:
            return std::nullopt;
          case Probe::kFit:
            cursor = (m.value() - begin + 1) % size;
            return result;
          case Probe::kNoFit:
            break;
        }
      }
      if (fast && !any_probeable) shed = true;
    }
    if (obs != nullptr && n_cells > 1 && ci + 1 < visit) {
      obs->count(obs->topology().cells_shed);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodePlan>> SelfOrganizing::try_chain(
    sched::ActiveRequest& ar, const std::vector<std::size_t>& chain, PlanContext& ctx) {
  const auto& type = ar.runtime.type();
  const auto& application = iface_->application();

  std::vector<SimTime> pred_finish = ctx.seed_finish;
  std::vector<MachineId> pred_machine = ctx.seed_machine;

  Overlay overlay;
  std::vector<NodePlan> plans;
  for (std::size_t node : chain) {
    const sched::DriverNode& dn = ar.nodes[node];
    if (dn.placed || dn.done) continue;

    const auto& req_node = type.nodes()[node];
    const auto& svc = application.service(req_node.service);
    const PlanContext::NodeEst est = node_est(ctx, ar, node);

    std::vector<SimTime> pf;
    std::vector<MachineId> pm;
    for (std::size_t parent : type.dag().parents(node)) {
      VMLP_CHECK_MSG(pred_finish[parent] >= 0, "chain order violated dependency order");
      pf.push_back(pred_finish[parent]);
      pm.push_back(pred_machine[parent]);
    }

    const auto admitted = admit_stage(overlay, svc.demand, est.busy, pf, pm);
    if (!admitted.has_value()) return std::nullopt;

    const auto [machine, start] = *admitted;
    plans.push_back(NodePlan{node, machine, start, est.busy, est.slack});
    overlay.add(machine, start, start + est.busy, svc.demand);
    pred_finish[node] = start + std::max(est.busy, est.slack);
    pred_machine[node] = machine;
  }
  return plans;
}

bool SelfOrganizing::organize(RequestId id) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return false;
  obs::Collector* obs = iface_->observer();
  if (obs != nullptr) obs->count(obs->mlp().organize_calls);
  const auto& type = ar->runtime.type();
  PlanContext ctx = make_context(*ar);

  const auto chains = type.dag().chain_choices(params_.max_chain_choices, rng_);
  std::size_t failed = 0;
  for (const auto& chain : chains) {
    if (failed >= params_.max_failed_chains) break;  // saturated; retrying costs more than it buys
    // Reference mode pays the pre-fast-path cost of re-deriving every
    // estimate per chain attempt; the values are bit-equal either way.
    if (!params_.admission_fast_path) ctx = make_context(*ar);
    auto plans = try_chain(*ar, chain, ctx);
    if (!plans.has_value()) {
      ++failed;
      continue;
    }
    audit_plan_integrity(*ar, *plans, /*require_full_cover=*/true);
    for (const auto& plan : *plans) {
      const auto& svc = iface_->application().service(type.nodes()[plan.node].service);
      iface_->place(id, plan.node, plan.machine, svc.demand, plan.start, plan.busy);
    }
    ++plans_committed_;
    if (obs != nullptr) {
      obs->count(obs->mlp().plans_committed);
      obs->count(obs->mlp().stages_coalesced, plans->size());
      obs->event(obs::DecisionKind::kCoalesce, iface_->now(), id.value(),
                 obs::DecisionEvent::kNoIndex, obs::DecisionEvent::kNoIndex,
                 static_cast<std::int64_t>(plans->size()));
      for (const auto& plan : *plans) {
        // A stage with predecessors was aligned against their predicted
        // finishes (Algorithm 1's Δt alignment); roots only pay the ingress
        // hop.
        if (type.dag().parents(plan.node).empty()) continue;
        obs->count(obs->mlp().stages_aligned);
        obs->event(obs::DecisionKind::kAlign, iface_->now(), id.value(),
                   static_cast<std::uint32_t>(plan.node), plan.machine.value(),
                   static_cast<std::int64_t>(plan.slack));
      }
    }
    return true;
  }
  ++plans_deferred_;
  last_defer_at_ = iface_->now();
  if (obs != nullptr) obs->count(obs->mlp().plans_deferred);
  return false;
}

bool SelfOrganizing::organize_node(RequestId id, std::size_t node) {
  sched::ActiveRequest* ar = iface_->find_request(id);
  if (ar == nullptr) return false;
  if (ar->nodes[node].placed || ar->nodes[node].done) return true;
  const auto& type = ar->runtime.type();
  PlanContext ctx = make_context(*ar);
  auto plans = try_chain(*ar, {node}, ctx);
  if (!plans.has_value() || plans->empty()) return false;
  audit_plan_integrity(*ar, *plans, /*require_full_cover=*/false);
  const auto& plan = plans->front();
  const auto& svc = iface_->application().service(type.nodes()[plan.node].service);
  iface_->place(id, plan.node, plan.machine, svc.demand, plan.start, plan.busy);
  return true;
}

}  // namespace vmlp::mlp
