#include "sim/engine.h"

#include "common/audit.h"
#include "common/error.h"

namespace vmlp::sim {

EventHandle Engine::schedule_at(SimTime t, Callback fn) {
  VMLP_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  VMLP_CHECK_MSG(fn != nullptr, "null event callback");
  // A plan that propagated kTimeInfinity (e.g. a failed earliest_fit search)
  // must never reach the event queue — it would freeze simulated time at the
  // horizon with the event perpetually pending.
  VMLP_AUDIT_ASSERT(t < kTimeInfinity, "event scheduled at infinity (unresolved plan time)");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventHandle{id};
}

EventHandle Engine::schedule_after(SimDuration delay, Callback fn) {
  VMLP_CHECK_MSG(delay >= 0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_periodic(SimTime start, SimDuration period, Callback fn) {
  VMLP_CHECK_MSG(period > 0, "periodic period must be positive");
  VMLP_CHECK_MSG(fn != nullptr, "null periodic callback");
  const std::uint64_t id = next_id_++;
  periodics_.emplace(id, PeriodicState{period, std::move(fn)});
  schedule_periodic_next(id, start);
  return EventHandle{id};
}

void Engine::schedule_periodic_next(std::uint64_t series_id, SimTime t) {
  queue_.push(Entry{t, next_seq_++, series_id});
  callbacks_[series_id] = [this, series_id] {
    auto it = periodics_.find(series_id);
    if (it == periodics_.end()) return;
    // Re-arm before running the body so the body may cancel the series.
    const SimTime next = now_ + it->second.period;
    Callback body = it->second.fn;  // copy: body may cancel and erase state
    schedule_periodic_next(series_id, next);
    body();
  };
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  periodics_.erase(handle.id);
  return callbacks_.erase(handle.id) > 0;
}

bool Engine::pending(EventHandle handle) const {
  return handle.valid() && callbacks_.count(handle.id) > 0;
}

bool Engine::step() {
  // Every live callback owns exactly one queue entry (cancellation is lazy:
  // the callback map is the source of truth, stale queue entries linger).
  VMLP_AUDIT_ASSERT(callbacks_.size() <= queue_.size(),
                    "callback map (" << callbacks_.size() << ") larger than event queue ("
                                     << queue_.size() << ")");
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled: lazy removal
    VMLP_CHECK_MSG(entry.time >= now_, "event queue time went backwards");
    VMLP_AUDIT_ASSERT(entry.time >= last_fired_, "event firing order not monotonic: t="
                                                     << entry.time << " after " << last_fired_);
    last_fired_ = entry.time;
    now_ = entry.time;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  VMLP_CHECK_MSG(horizon >= now_, "horizon in the past");
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    if (callbacks_.count(entry.id) == 0) {  // cancelled
      queue_.pop();
      continue;
    }
    if (entry.time > horizon) break;
    step();
  }
  now_ = horizon;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace vmlp::sim
