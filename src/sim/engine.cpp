#include "sim/engine.h"

#include <utility>

#include "common/audit.h"
#include "common/error.h"
#include "obs/collector.h"

namespace vmlp::sim {

namespace {

/// Handle ids pack (generation << 32) | slot. Generations cycle through
/// [1, 2^31-1]: never zero (0 marks a free slot / invalid handle) and never
/// touching bit 63 (the periodic-series tag bit).
std::uint64_t pack_id(std::uint64_t generation, std::uint32_t slot) {
  const std::uint64_t gen = (generation % 0x7fffffffULL) + 1;
  return (gen << 32) | slot;
}

}  // namespace

void Engine::reserve(std::size_t events) {
  pool_.reserve(events);
  heap_.reserve(events);
  free_slots_.reserve(events);
}

std::uint32_t Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  pool_.emplace_back();
  // Slots are 32-bit (packed into the low half of the event id); the pool
  // only grows to the peak pending-event count, but a bulk-loaded 10^9-event
  // run would silently wrap the cast without this guard.
  VMLP_CHECK_MSG(pool_.size() < kNoHeapPos, "event pool exceeds 32-bit slot space");
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Event& e = pool_[slot];
  e.id = 0;
  e.heap_pos = kNoHeapPos;
  e.fn = nullptr;  // release closure resources; inline storage stays pooled
  free_slots_.push_back(slot);
}

void Engine::sift_up(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!before(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pool_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = slot;
  pool_[slot].heap_pos = pos;
}

void Engine::sift_down(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    pool_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = slot;
  pool_[slot].heap_pos = pos;
}

void Engine::heap_insert(std::uint32_t slot) {
  heap_.push_back(slot);
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
}

void Engine::heap_remove(std::uint32_t slot) {
  const std::uint32_t pos = pool_[slot].heap_pos;
  VMLP_AUDIT_ASSERT(pos < heap_.size() && heap_[pos] == slot,
                    "indexed heap position out of sync for slot " << slot);
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (last != slot) {
    heap_[pos] = last;
    pool_[last].heap_pos = pos;
    // The replacement may need to move either direction relative to pos.
    sift_up(pos);
    sift_down(pool_[last].heap_pos);
  }
  pool_[slot].heap_pos = kNoHeapPos;
}

void Engine::set_observer(obs::Collector* obs) {
  obs_ = obs;
  obs_ring_ = obs != nullptr && obs->ring_engine_events();
}

void Engine::flush_observability() {
  if (obs_ == nullptr) return;
  const auto& handles = obs_->engine();
  obs_->set_counter(handles.events_scheduled, obs_scheduled_);
  obs_->set_counter(handles.events_cancelled, obs_cancelled_);
  obs_->set_counter(handles.events_rescheduled, obs_rescheduled_);
  obs_->set_counter(handles.events_executed, executed_);
  obs_->gauge_max(handles.pending_peak, static_cast<double>(obs_pending_peak_));
}

EventHandle Engine::schedule_at(SimTime t, Callback fn) {
  VMLP_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  VMLP_CHECK_MSG(static_cast<bool>(fn), "null event callback");
  // A plan that propagated kTimeInfinity (e.g. a failed earliest_fit search)
  // must never reach the event queue — it would freeze simulated time at the
  // horizon with the event perpetually pending.
  VMLP_AUDIT_ASSERT(t < kTimeInfinity, "event scheduled at infinity (unresolved plan time)");
  const std::uint32_t slot = acquire_slot();
  Event& e = pool_[slot];
  e.time = t;
  e.seq = next_seq_++;
  e.id = pack_id(next_generation_++, slot);
  e.fn = std::move(fn);
  heap_insert(slot);
  if (obs_ != nullptr) {
    ++obs_scheduled_;
    if (heap_.size() > obs_pending_peak_) obs_pending_peak_ = heap_.size();
  }
  return EventHandle{e.id};
}

EventHandle Engine::schedule_after(SimDuration delay, Callback fn) {
  VMLP_CHECK_MSG(delay >= 0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_periodic(SimTime start, SimDuration period, Callback fn) {
  VMLP_CHECK_MSG(period > 0, "periodic period must be positive");
  VMLP_CHECK_MSG(static_cast<bool>(fn), "null periodic callback");
  const std::uint64_t series_id = kPeriodicBit | ++next_series_;
  auto shared = std::make_shared<Callback>(std::move(fn));
  periodics_.emplace(series_id,
                     PeriodicState{period, [shared] { (*shared)(); }, EventHandle{}});
  arm_periodic(series_id, start);
  return EventHandle{series_id};
}

void Engine::arm_periodic(std::uint64_t series_id, SimTime t) {
  auto it = periodics_.find(series_id);
  VMLP_CHECK(it != periodics_.end());
  it->second.occurrence = schedule_at(t, [this, series_id] {
    auto sit = periodics_.find(series_id);
    if (sit == periodics_.end()) return;
    // Re-arm before running the body so the body may cancel the series.
    const SimTime next = now_ + sit->second.period;
    std::function<void()> body = sit->second.fn;  // copy: body may cancel and erase state
    arm_periodic(series_id, next);
    body();
  });
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if ((handle.id & kPeriodicBit) != 0) {
    auto it = periodics_.find(handle.id);
    if (it == periodics_.end()) return false;
    const EventHandle occurrence = it->second.occurrence;
    periodics_.erase(it);
    return cancel(occurrence);
  }
  if (!live(handle)) return false;
  const std::uint32_t slot = slot_of(handle.id);
  heap_remove(slot);
  release_slot(slot);
  if (obs_ != nullptr) ++obs_cancelled_;
  return true;
}

bool Engine::pending(EventHandle handle) const {
  if (!handle.valid()) return false;
  if ((handle.id & kPeriodicBit) != 0) return periodics_.count(handle.id) > 0;
  return live(handle);
}

bool Engine::reschedule(EventHandle handle, SimTime t) {
  if (!handle.valid() || (handle.id & kPeriodicBit) != 0 || !live(handle)) return false;
  VMLP_CHECK_MSG(t >= now_, "rescheduling into the past: t=" << t << " now=" << now_);
  VMLP_AUDIT_ASSERT(t < kTimeInfinity, "event rescheduled to infinity (unresolved plan time)");
  const std::uint32_t slot = slot_of(handle.id);
  Event& e = pool_[slot];
  const SimTime prev = e.time;
  e.time = t;
  // Fresh sequence number: the rescheduled event fires after events already
  // queued at the same timestamp, matching cancel+schedule_at semantics.
  e.seq = next_seq_++;
  // The key can move either direction (earlier or later time).
  sift_up(e.heap_pos);
  sift_down(pool_[slot].heap_pos);
  if (obs_ != nullptr) {
    ++obs_rescheduled_;
    if (obs_ring_) {
      obs_->event(obs::DecisionKind::kEngineReschedule, now_, obs::DecisionEvent::kNoRequest,
                  obs::DecisionEvent::kNoIndex, obs::DecisionEvent::kNoIndex, t - prev);
    }
  }
  return true;
}

bool Engine::reschedule_after(EventHandle handle, SimDuration delay) {
  VMLP_CHECK_MSG(delay >= 0, "negative delay " << delay);
  return reschedule(handle, now_ + delay);
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0];
  Event& e = pool_[slot];
  VMLP_CHECK_MSG(e.time >= now_, "event queue time went backwards");
  VMLP_AUDIT_ASSERT(e.time >= last_fired_, "event firing order not monotonic: t="
                                               << e.time << " after " << last_fired_);
  last_fired_ = e.time;
  now_ = e.time;
  // Detach the callback and free the slot *before* invoking: the callback may
  // schedule new events, reusing this slot or growing the pool (which would
  // invalidate references into pool_).
  Callback fn = std::move(e.fn);
  heap_remove(slot);
  release_slot(slot);
  ++executed_;
  fn();
  return true;
}

void Engine::run_until(SimTime horizon) {
  VMLP_CHECK_MSG(horizon >= now_, "horizon in the past");
  while (!heap_.empty() && pool_[heap_[0]].time <= horizon) {
    step();
  }
  now_ = horizon;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace vmlp::sim
