// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonically increasing sequence number breaks ties).
// Events are cancellable — the self-healing module's resource stretch cancels
// and reschedules in-flight completion events when it reallocates resources.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace vmlp::sim {

/// Opaque handle to a scheduled event; value 0 is "no event".
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now). Returns a handle
  /// usable with cancel().
  EventHandle schedule_at(SimTime t, Callback fn);
  /// Schedule `fn` after `delay` from now.
  EventHandle schedule_after(SimDuration delay, Callback fn);
  /// Schedule `fn` every `period`, first firing at `start`. Returns the handle
  /// of the *first* occurrence; cancelling it stops the whole series.
  EventHandle schedule_periodic(SimTime start, SimDuration period, Callback fn);

  /// Cancel a pending event. Returns false if it already fired/was cancelled.
  bool cancel(EventHandle handle);
  /// True if the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle handle) const;

  /// Run events until the queue drains or simulated time would exceed
  /// `horizon`. Time stops at the last executed event (or `horizon` if the
  /// queue drained earlier / the next event lies beyond it).
  void run_until(SimTime horizon);
  /// Run until the queue drains completely.
  void run_all();
  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct PeriodicState {
    SimDuration period;
    Callback fn;
  };

  void schedule_periodic_next(std::uint64_t series_id, SimTime t);

  SimTime now_ = 0;
  SimTime last_fired_ = 0;  // audit bookkeeping: firing-order monotonicity
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  // Periodic series: series id -> state; occurrence events re-arm themselves
  // under the same handle id so one cancel() stops the series.
  std::unordered_map<std::uint64_t, PeriodicState> periodics_;
};

}  // namespace vmlp::sim
