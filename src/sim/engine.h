// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonically increasing sequence number breaks ties).
// Events are cancellable and *reschedulable* — the self-healing module's
// resource stretch and the driver's re-rating move in-flight completion
// events instead of cancelling and re-creating them.
//
// Fast path (the simulator's hottest structure):
//  * Indexed binary heap: every pending event knows its heap position, so
//    cancel() and reschedule() are O(log n) sift operations instead of the
//    classic lazy-delete scheme that leaves tombstones in the queue and
//    re-heapifies them on every pop.
//  * Pooled event slots: fired/cancelled events return their slot (including
//    the callback's inline storage) to a free list, so steady-state
//    scheduling performs no allocation for closures up to the
//    InlineFunction buffer size.
//  * Handles encode (slot, generation): validity checks are two array reads,
//    no hashing. Stale handles (fired/cancelled) are detected by generation
//    mismatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/inline_function.h"
#include "common/types.h"

namespace vmlp::obs {
class Collector;
}

namespace vmlp::sim {

/// Opaque handle to a scheduled event; value 0 is "no event".
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

class Engine {
 public:
  using Callback = InlineFunction<void(), 48>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now). Returns a handle
  /// usable with cancel() / reschedule().
  EventHandle schedule_at(SimTime t, Callback fn);
  /// Schedule `fn` after `delay` from now.
  EventHandle schedule_after(SimDuration delay, Callback fn);
  /// Schedule `fn` every `period`, first firing at `start`. Returns the handle
  /// of the series; cancelling it stops the whole series.
  EventHandle schedule_periodic(SimTime start, SimDuration period, Callback fn);

  /// Cancel a pending event. Returns false if it already fired/was cancelled.
  bool cancel(EventHandle handle);
  /// True if the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle handle) const;

  /// Move a pending event to absolute time `t` (>= now), keeping its stored
  /// callback and handle — the decrease-key path for the driver's frequent
  /// re-rating reschedules. The event is re-sequenced as if freshly
  /// scheduled: among events at equal `t` it fires after those already
  /// queued, exactly matching the cancel+schedule_at idiom it replaces.
  /// Returns false (no-op) if the handle is not pending; periodic series
  /// handles cannot be rescheduled.
  bool reschedule(EventHandle handle, SimTime t);
  /// reschedule() at now + delay.
  bool reschedule_after(EventHandle handle, SimDuration delay);

  /// Run events until the queue drains or simulated time would exceed
  /// `horizon`. Time stops at `horizon` if the queue drained earlier / the
  /// next event lies beyond it.
  void run_until(SimTime horizon);
  /// Run until the queue drains completely.
  void run_all();
  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Pre-size the event pool/heap for `events` concurrently-pending events.
  /// Callers that know the arrival-table size (the driver) reserve up front
  /// so the growth doublings — the engine's only steady-state allocations —
  /// happen once, inside the shard arena when one is bound.
  void reserve(std::size_t events);

  /// Attach (or detach with nullptr) a telemetry collector. Recording is
  /// strictly write-only — the engine never reads it back — so attaching one
  /// cannot change event order (the zero-perturbation contract).
  void set_observer(obs::Collector* obs);
  /// Publish the accumulated engine tallies into the collector's registry.
  /// The hot paths only bump plain members (schedule/cancel/reschedule run
  /// ~once per executed event — registry indirections there cost real
  /// throughput, see the bench obs.* family); the driver calls this once at
  /// end of run. Idempotent: tallies are written as absolute values.
  void flush_observability();

 private:
  static constexpr std::uint32_t kNoHeapPos = 0xffffffffu;
  /// Tag bit distinguishing periodic-series handles from event handles.
  static constexpr std::uint64_t kPeriodicBit = 1ULL << 63;

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;  ///< full handle id; 0 = free slot
    std::uint32_t heap_pos = kNoHeapPos;
    Callback fn;
  };

  struct PeriodicState {
    SimDuration period;
    // std::function (copyable): the occurrence body is copied before each
    // call so the body may cancel — and thereby destroy — the series state.
    std::function<void()> fn;
    EventHandle occurrence;  ///< the currently queued occurrence event
  };

  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }

  [[nodiscard]] bool live(EventHandle handle) const {
    const std::uint32_t slot = slot_of(handle.id);
    return (handle.id & kPeriodicBit) == 0 && slot < pool_.size() &&
           pool_[slot].id == handle.id && handle.id != 0;
  }

  /// True when the event in `a` fires before the event in `b`.
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Event& ea = pool_[a];
    const Event& eb = pool_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.seq < eb.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_insert(std::uint32_t slot);
  void heap_remove(std::uint32_t slot);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void arm_periodic(std::uint64_t series_id, SimTime t);

  SimTime now_ = 0;
  SimTime last_fired_ = 0;  // audit bookkeeping: firing-order monotonicity
  std::uint64_t next_generation_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_series_ = 0;
  std::uint64_t executed_ = 0;
  obs::Collector* obs_ = nullptr;           ///< optional telemetry sink (write-only)
  bool obs_ring_ = false;                   ///< cached Params::ring_engine_events
  // Telemetry tallies, flushed by flush_observability(); only tracked while
  // an observer is attached.
  std::uint64_t obs_scheduled_ = 0;
  std::uint64_t obs_cancelled_ = 0;
  std::uint64_t obs_rescheduled_ = 0;
  std::size_t obs_pending_peak_ = 0;
  // The three hot arrays are arena-backed: an Engine constructed inside a
  // shard's ShardArena::Scope grows them from the lane-local arena instead of
  // the (contended) global allocator. Outside a scope they are plain heap
  // vectors. The Engine must not outlive the arena it was constructed under —
  // the trial runner guarantees this by scoping both to one trial.
  ArenaVector<Event> pool_;                 ///< slot-indexed event storage
  ArenaVector<std::uint32_t> free_slots_;   ///< reusable pool slots
  ArenaVector<std::uint32_t> heap_;         ///< binary min-heap of slot indices
  /// Periodic series: series handle id -> state; occurrence events re-arm
  /// themselves under fresh event ids while the series id stays stable so one
  /// cancel() stops the series. Cold path: a handful per simulation.
  std::unordered_map<std::uint64_t, PeriodicState> periodics_;
};

}  // namespace vmlp::sim
