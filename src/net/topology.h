// Cluster network topology: machines grouped into racks. Placement distance
// (same machine / same rack / cross rack) selects the communication-delay
// distribution in CommModel.
#pragma once

#include <cstddef>

#include "common/error.h"
#include "common/types.h"

namespace vmlp::net {

enum class Distance { kSameMachine, kSameRack, kCrossRack };

class Topology {
 public:
  Topology(std::size_t machines, std::size_t machines_per_rack);

  [[nodiscard]] std::size_t machine_count() const { return machines_; }
  [[nodiscard]] std::size_t rack_count() const;
  // rack_of/distance are defined inline: the admission planner's
  // desired-start estimation calls them per (parent, candidate machine)
  // probe — tens of millions of times on a contended cell.
  [[nodiscard]] std::size_t rack_of(MachineId m) const {
    VMLP_CHECK_MSG(m.valid() && m.value() < machines_, "machine id out of range");
    return m.value() / per_rack_;
  }
  [[nodiscard]] Distance distance(MachineId a, MachineId b) const {
    if (a == b) return Distance::kSameMachine;
    return rack_of(a) == rack_of(b) ? Distance::kSameRack : Distance::kCrossRack;
  }

 private:
  std::size_t machines_;
  std::size_t per_rack_;
};

const char* distance_name(Distance d);

}  // namespace vmlp::net
