// Cluster network topology: machines grouped into racks. Placement distance
// (same machine / same rack / cross rack) selects the communication-delay
// distribution in CommModel.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace vmlp::net {

enum class Distance { kSameMachine, kSameRack, kCrossRack };

class Topology {
 public:
  Topology(std::size_t machines, std::size_t machines_per_rack);

  [[nodiscard]] std::size_t machine_count() const { return machines_; }
  [[nodiscard]] std::size_t rack_count() const;
  [[nodiscard]] std::size_t rack_of(MachineId m) const;
  [[nodiscard]] Distance distance(MachineId a, MachineId b) const;

 private:
  std::size_t machines_;
  std::size_t per_rack_;
};

const char* distance_name(Distance d);

}  // namespace vmlp::net
