#include "net/comm_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/summary.h"

namespace vmlp::net {

int comm_class_from_variance(double var_rtt_units) {
  // Table II: C ∈ 1..3 as Var(RTT) moves across the 100..400 scale.
  if (var_rtt_units < 100.0) return 1;
  if (var_rtt_units < 400.0) return 2;
  return 3;
}

CommModel::CommModel(const Topology& topology, CommModelParams params, Rng&& rng)
    : topology_(topology), params_(params), rng_(rng) {
  VMLP_CHECK(params_.same_machine_mean_us > 0 && params_.same_rack_mean_us > 0 &&
             params_.cross_rack_mean_us > 0);
  VMLP_CHECK(params_.congestion_prob >= 0.0 && params_.congestion_prob <= 1.0);
  VMLP_CHECK(params_.congestion_mult_lo >= 1.0 &&
             params_.congestion_mult_hi >= params_.congestion_mult_lo);
}

SimDuration CommModel::sample_with(const CommModelParams& params, Distance d, Rng& rng) {
  double mean;
  double cv;
  switch (d) {
    case Distance::kSameMachine:
      mean = params.same_machine_mean_us;
      cv = params.same_machine_cv;
      break;
    case Distance::kSameRack:
      mean = params.same_rack_mean_us;
      cv = params.same_rack_cv;
      break;
    case Distance::kCrossRack:
    default:
      mean = params.cross_rack_mean_us;
      cv = params.cross_rack_cv;
      break;
  }
  double delay = rng.lognormal_mean_cv(mean, cv);
  if (rng.bernoulli(params.congestion_prob)) {
    delay *= rng.uniform(params.congestion_mult_lo, params.congestion_mult_hi);
  }
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(delay)));
}

SimDuration CommModel::sample_delay(MachineId src, MachineId dst) {
  return sample_with(params_, topology_.distance(src, dst), rng_);
}

SimDuration CommModel::sample_delay(Distance d) { return sample_with(params_, d, rng_); }

int CommModel::estimate_comm_class(Distance d, std::size_t n, std::uint64_t probe_seed) const {
  VMLP_CHECK_MSG(n >= 2, "need at least 2 RTT probes");
  Rng probe(probe_seed);
  stats::Summary rtts;
  for (std::size_t i = 0; i < n; ++i) {
    const SimDuration one_way = sample_with(params_, d, probe);
    const SimDuration back = sample_with(params_, d, probe);
    // RTT in units of 0.2 ms: calibrated so the default model's three
    // distance classes land on Table II's Var(RTT) 100..400 scale
    // (same-machine < 100 → C=1, same-rack ≈ 100-400 → C=2, cross-rack
    // > 400 → C=3).
    rtts.add(static_cast<double>(one_way + back) / 200.0);
  }
  return comm_class_from_variance(rtts.sample_variance());
}

}  // namespace vmlp::net
