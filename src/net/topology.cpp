#include "net/topology.h"

#include "common/error.h"

namespace vmlp::net {

Topology::Topology(std::size_t machines, std::size_t machines_per_rack)
    : machines_(machines), per_rack_(machines_per_rack) {
  VMLP_CHECK_MSG(machines > 0, "topology needs at least one machine");
  VMLP_CHECK_MSG(machines_per_rack > 0, "machines_per_rack must be positive");
}

std::size_t Topology::rack_count() const { return (machines_ + per_rack_ - 1) / per_rack_; }

const char* distance_name(Distance d) {
  switch (d) {
    case Distance::kSameMachine: return "same-machine";
    case Distance::kSameRack: return "same-rack";
    case Distance::kCrossRack: return "cross-rack";
  }
  return "?";
}

}  // namespace vmlp::net
