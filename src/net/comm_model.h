// Stochastic caller→callee communication-time model (Section II-C, Fig. 4).
//
// Delays are lognormal per distance class, with a small congestion
// probability that multiplies the sample (the rare "green block" cells in
// the paper's heat map: network congestion or changed routing). The model
// also classifies a link's C volatility term (Table II) from the variance
// of its observed RTT history.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"

namespace vmlp::net {

struct CommModelParams {
  // Mean one-way communication time per distance class, and lognormal CV.
  double same_machine_mean_us = 300.0;
  double same_machine_cv = 0.25;
  double same_rack_mean_us = 1200.0;
  double same_rack_cv = 0.45;
  double cross_rack_mean_us = 1900.0;
  double cross_rack_cv = 0.65;
  // Congestion / rerouting spike: probability and multiplier range.
  double congestion_prob = 0.03;
  double congestion_mult_lo = 3.0;
  double congestion_mult_hi = 10.0;
};

/// Volatility C term thresholds (Table II): Var(RTT) measured in units of
/// (0.2 ms)^2, mapped onto the paper's 100–400 scale.
int comm_class_from_variance(double var_rtt_units);

class CommModel {
 public:
  /// The Rng is a sink parameter: pass an rvalue substream (e.g.
  /// `parent.fork("comm")`). Taking Rng&& makes silently copying a live
  /// stream — substream duplication that breaks seed-purity — a compile
  /// error (vmlp_analyze [rng-by-value] checks the same property).
  CommModel(const Topology& topology, CommModelParams params, Rng&& rng);

  /// Sample the one-way caller→callee delay between two placements.
  SimDuration sample_delay(MachineId src, MachineId dst);
  /// Sample a delay for an explicit distance class (characterization benches).
  SimDuration sample_delay(Distance d);

  /// Estimate the C volatility term for a distance class by sampling `n`
  /// RTTs (2× one-way) and classifying their variance. Does not disturb the
  /// model's main stream.
  int estimate_comm_class(Distance d, std::size_t n, std::uint64_t probe_seed) const;

  [[nodiscard]] const CommModelParams& params() const { return params_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

 private:
  static SimDuration sample_with(const CommModelParams& params, Distance d, Rng& rng);

  const Topology& topology_;
  CommModelParams params_;
  Rng rng_;
};

}  // namespace vmlp::net
