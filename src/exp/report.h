// Result-table printing shared by the bench binaries: fixed-width columns,
// normalization helpers, and simple ASCII series rendering for the
// figure-shaped outputs.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace vmlp::sched {
struct RunResult;
}

namespace vmlp::obs {
struct Snapshot;
}

namespace vmlp::exp {

struct ObsCapture;

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; cells are pre-formatted strings.
  void row(std::vector<std::string> cells);
  /// Print with aligned columns to `out`.
  void print(std::ostream& out = std::cout) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt_double(double v, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_ms(double microseconds, int precision = 2);

/// value / baseline, guarding a zero baseline (returns 1 when both are ~0,
/// a large sentinel when only the baseline is ~0).
double normalize(double value, double baseline);

/// Render a numeric series as a compact sparkline-style ASCII bar chart, one
/// line of block characters scaled to max. Useful for rate/utilization series.
std::string ascii_series(const std::vector<double>& values, std::size_t width = 80);

/// Print a titled section separator.
void print_section(const std::string& title, std::ostream& out = std::cout);

/// Column titles for the failure-robustness metrics, in the same order
/// `failure_cells` emits them. Prepend scheme/config columns as needed.
std::vector<std::string> failure_table_header();
/// One run's failure metrics formatted for a Table row.
std::vector<std::string> failure_cells(const sched::RunResult& r);

/// Column titles for the attribution blame tables, one per trace::Phase in
/// declaration order. Spelled as literals (not via trace::phase_name) so
/// tools/vmlp_lint.py can statically prove every Phase has a report column;
/// tests/test_critical_path.cpp pins the literals against phase_name().
std::vector<std::string> attribution_phase_columns();

/// Print the per-request-class latency attribution report: for each request
/// type with completed traced requests, the mean critical-path phase shares
/// over all requests and over the p99 tail (latency >= the type's p99), the
/// mean blocking-chain length, and the tail's dominant ("blame") phase.
/// Needs capture.spans + capture.request_records (run with trace_spans on);
/// prints a note and returns when either is missing.
void print_attribution_report(const ObsCapture& capture, std::ostream& out = std::cout);

/// Write one instrumented run's telemetry as Chrome trace-event JSON that
/// ui.perfetto.dev loads directly. Two clock domains on separate pids:
///  * pid 1 — microservice execution lanes (one thread per machine) and
///    pid 2 — scheduler decision instants, both on *simulated* time;
///  * pid 3 — policy-callback profiling slices on *host* time (nanoseconds
///    since the run's policy epoch);
///  * pid 4 — the critical-path lane: each traced request's blocking chain
///    re-emitted on its machines' rows, every slice tagged critical:true
///    (present only when request records were captured).
/// No-op (empty valid trace) when the capture is disabled.
void write_perfetto_trace(const ObsCapture& capture, std::ostream& out);

/// Write the metrics registry snapshot in Prometheus text exposition format.
void write_metrics_snapshot(const obs::Snapshot& snapshot, std::ostream& out);

}  // namespace vmlp::exp
