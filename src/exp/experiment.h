// Experiment harness: one simulation run = (scheme, workload pattern,
// request stream, QPS scale, seed) over the combined SN+TT benchmark suite
// on the 100-machine simulated cluster of Section V.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "loadgen/generator.h"
#include "loadgen/patterns.h"
#include "mlp/metrics.h"
#include "obs/collector.h"
#include "sched/driver.h"
#include "sched/scheduler.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace vmlp::exp {

enum class SchemeKind { kFairSched, kCurSched, kPartProfile, kFullProfile, kVmlp };

const char* scheme_name(SchemeKind scheme);
/// The five evaluated schemes, in Table VI order.
std::vector<SchemeKind> all_schemes();
/// Instantiate a scheduler policy. `vmlp` configures v-MLP (and its ablation
/// switches); ignored for baselines.
std::unique_ptr<sched::IScheduler> make_scheduler(SchemeKind scheme,
                                                  const mlp::VmlpParams& vmlp = {},
                                                  std::uint64_t seed = 7);

/// Which request stream feeds the run (Section V's experiment axes).
enum class StreamKind { kLowVr, kMidVr, kHighVr, kMixed, kHighRatio };

const char* stream_name(StreamKind stream);

struct ExperimentConfig {
  SchemeKind scheme = SchemeKind::kVmlp;
  loadgen::PatternKind pattern = loadgen::PatternKind::kL1Pulse;
  StreamKind stream = StreamKind::kMixed;
  double high_ratio = 0.5;  ///< used only with StreamKind::kHighRatio
  double qps_scale = 1.0;
  std::uint64_t seed = 1;
  /// Feed the driver through loadgen::ArrivalStream (O(1) arrival state)
  /// instead of materializing the arrival vector. Deterministic per config,
  /// but a distinct mode: event interleaving differs from the bulk path, so
  /// results are not byte-comparable across the two modes.
  bool stream_arrivals = false;
  sched::DriverParams driver;
  mlp::VmlpParams vmlp;
  loadgen::PatternParams pattern_params;
};

/// Telemetry captured from one instrumented run (config.driver.obs.enabled).
/// Strictly an *output* of the run: nothing here feeds back into scheduling,
/// so RunResult is byte-identical whether or not this was captured.
struct ObsCapture {
  bool enabled = false;
  obs::Snapshot snapshot;                      ///< metrics registry (sim-time domain)
  std::vector<obs::DecisionEvent> decisions;   ///< ring contents, oldest → newest
  std::size_t decisions_dropped = 0;           ///< overwritten by ring wraparound
  std::vector<obs::PolicySlice> policy_slices; ///< host-clock callback profile
  std::size_t policy_slices_dropped = 0;
  std::vector<trace::Span> spans;              ///< microservice lanes for the trace
  /// Request lifecycles (arrival/completion), arrival order. Pairs with
  /// `spans` to drive per-request attribution: the critical-path extractor
  /// needs each request's end-to-end window, not just its spans.
  std::vector<trace::RequestRecord> request_records;
};

struct ExperimentResult {
  ExperimentConfig config;
  sched::RunResult run;
  std::vector<double> utilization_series;  ///< U per monitor bucket (Fig. 11)
  ObsCapture obs;                          ///< empty unless driver.obs.enabled
};

/// The seed-independent inputs of a trial sweep, built once and shared
/// read-only across every trial (and every shard thread). The application
/// suite and the request mix depend only on (stream, high_ratio) — never on
/// the seed — yet run_experiment() historically rebuilt both per run. A
/// sweep of N trials shares one template instead: "cloning" a trial's world
/// is a shared_ptr copy plus a mix copy, and the simulation only ever reads
/// through const. Everything seed-dependent (pattern, arrivals, scheduler,
/// driver) is still constructed fresh per trial.
struct TrialTemplate {
  std::shared_ptr<const app::Application> application;
  loadgen::RequestMix mix;
};

/// Build the shared template for `base`. Only `base.stream` and
/// `base.high_ratio` matter; the result is valid for any config that agrees
/// on those two fields (which a trial sweep does by construction).
TrialTemplate build_trial_template(const ExperimentConfig& base);

/// Execute one configuration (thread-safe: every run owns its world).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// As above, but against a pre-built shared template instead of rebuilding
/// the application + mix. Byte-identical results to the template-free
/// overload (tests/test_trial_runner.cpp pins this).
ExperimentResult run_experiment(const ExperimentConfig& config, const TrialTemplate& tpl);

/// Execute a grid of configurations in parallel over a thread pool
/// (0 threads = hardware concurrency). Results align with the input order.
std::vector<ExperimentResult> run_grid(const std::vector<ExperimentConfig>& grid,
                                       std::size_t threads = 0);

}  // namespace vmlp::exp
