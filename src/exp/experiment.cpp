#include "exp/experiment.h"

#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"
#include "loadgen/generator.h"
#include "mlp/vmlp.h"
#include "sched/cur_sched.h"
#include "sched/fair_sched.h"
#include "sched/full_profile.h"
#include "sched/part_profile.h"
#include "workloads/suite.h"

namespace vmlp::exp {

const char* scheme_name(SchemeKind scheme) {
  switch (scheme) {
    case SchemeKind::kFairSched: return "FairSched";
    case SchemeKind::kCurSched: return "CurSched";
    case SchemeKind::kPartProfile: return "PartProfile";
    case SchemeKind::kFullProfile: return "FullProfile";
    case SchemeKind::kVmlp: return "v-MLP";
  }
  return "?";
}

std::vector<SchemeKind> all_schemes() {
  return {SchemeKind::kFairSched, SchemeKind::kCurSched, SchemeKind::kPartProfile,
          SchemeKind::kFullProfile, SchemeKind::kVmlp};
}

std::unique_ptr<sched::IScheduler> make_scheduler(SchemeKind scheme, const mlp::VmlpParams& vmlp,
                                                  std::uint64_t seed) {
  switch (scheme) {
    case SchemeKind::kFairSched: return std::make_unique<sched::FairSched>();
    case SchemeKind::kCurSched: return std::make_unique<sched::CurSched>();
    case SchemeKind::kPartProfile: return std::make_unique<sched::PartProfile>();
    case SchemeKind::kFullProfile: return std::make_unique<sched::FullProfile>();
    case SchemeKind::kVmlp: return std::make_unique<mlp::VmlpScheduler>(vmlp, seed);
  }
  VMLP_CHECK_MSG(false, "unknown scheme");
  return nullptr;
}

const char* stream_name(StreamKind stream) {
  switch (stream) {
    case StreamKind::kLowVr: return "low-Vr";
    case StreamKind::kMidVr: return "mid-Vr";
    case StreamKind::kHighVr: return "high-Vr";
    case StreamKind::kMixed: return "mixed";
    case StreamKind::kHighRatio: return "high-ratio";
  }
  return "?";
}

namespace {

loadgen::RequestMix make_mix(const app::Application& application, StreamKind stream,
                             double high_ratio) {
  switch (stream) {
    case StreamKind::kLowVr:
      return loadgen::RequestMix::category(application, app::VolatilityBand::kLow);
    case StreamKind::kMidVr:
      return loadgen::RequestMix::category(application, app::VolatilityBand::kMid);
    case StreamKind::kHighVr:
      return loadgen::RequestMix::category(application, app::VolatilityBand::kHigh);
    case StreamKind::kMixed:
      return loadgen::RequestMix::all(application);
    case StreamKind::kHighRatio:
      return loadgen::RequestMix::with_high_ratio(application, high_ratio);
  }
  VMLP_CHECK_MSG(false, "unknown stream kind");
  return {};
}

}  // namespace

TrialTemplate build_trial_template(const ExperimentConfig& base) {
  TrialTemplate tpl;
  tpl.application = workloads::make_benchmark_suite();
  tpl.mix = make_mix(*tpl.application, base.stream, base.high_ratio);
  return tpl;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, build_trial_template(config));
}

ExperimentResult run_experiment(const ExperimentConfig& config, const TrialTemplate& tpl) {
  const app::Application& application = *tpl.application;

  sched::DriverParams driver_params = config.driver;
  driver_params.seed = config.seed;

  loadgen::PatternParams pattern_params = config.pattern_params;
  pattern_params.horizon = driver_params.horizon;

  const auto pattern = loadgen::WorkloadPattern::make(config.pattern, pattern_params,
                                                      Rng(config.seed).fork("pattern").seed());
  Rng arrival_rng = Rng(config.seed).fork("arrivals");

  auto scheduler = make_scheduler(config.scheme, config.vmlp, config.seed);
  sched::SimulationDriver driver(application, *scheduler, driver_params);
  if (config.stream_arrivals) {
    // `pattern` outlives `driver` in this scope, which is all the stream's
    // borrowed pattern pointer needs.
    driver.stream_arrivals(
        loadgen::ArrivalStream(pattern, tpl.mix, std::move(arrival_rng), config.qps_scale));
  } else {
    const auto arrivals =
        loadgen::generate_arrivals(pattern, tpl.mix, arrival_rng, config.qps_scale);
    driver.load_arrivals(arrivals);
  }

  ExperimentResult result;
  result.config = config;
  result.run = driver.run();
  result.utilization_series = driver.cluster_monitor().overall_series().mean_series();
  if (const obs::Collector* c = driver.observer(); c != nullptr) {
    result.obs.enabled = true;
    result.obs.snapshot = c->snapshot();
    result.obs.decisions = c->events().ordered();
    result.obs.decisions_dropped = c->events().dropped();
    result.obs.policy_slices = c->policy_slices();
    result.obs.policy_slices_dropped = c->policy_slices_dropped();
    // A release-on-completion run recycles span slots in place, so the flat
    // span view no longer exists (Tracer::spans() throws); the capture is
    // for post-run analysis, which that mode gives up by design.
    if (!driver_params.trace_release_completed) {
      result.obs.spans = driver.tracer().spans();
    }
    for (const trace::RequestRecord* rec : driver.tracer().requests()) {
      result.obs.request_records.push_back(*rec);
    }
  }
  return result;
}

std::vector<ExperimentResult> run_grid(const std::vector<ExperimentConfig>& grid,
                                       std::size_t threads) {
  std::vector<ExperimentResult> results(grid.size());
  ThreadPool pool(threads);
  pool.parallel_for(0, grid.size(),
                    [&](std::size_t i) { results[i] = run_experiment(grid[i]); });
  return results;
}

}  // namespace vmlp::exp
