// Post-run trace analysis: where did each request's end-to-end time go?
//
// From the tracer's spans and the request DAG we decompose latency into
//   execution — time inside microservices on the critical path,
//   handoff    — gaps between a stage and its latest-finishing parent
//                (communication + scheduling wait + misalignment),
//   ingress    — arrival to first span start.
// Misaligned pipelines show up as fat handoff shares — exactly the waste MLP
// targets — so the breakdown quantifies *why* one scheduler beats another,
// not just that it does.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/application.h"
#include "stats/summary.h"
#include "trace/tracer.h"

namespace vmlp::exp {

/// Latency decomposition of one completed request.
struct RequestBreakdown {
  RequestId id;
  RequestTypeId type;
  SimDuration total = 0;      ///< end-to-end latency
  SimDuration ingress = 0;    ///< arrival -> first span start
  SimDuration execution = 0;  ///< critical-path span time
  SimDuration handoff = 0;    ///< critical-path inter-stage gaps
  /// Node index (in the request DAG) of the longest critical-path stage.
  std::size_t dominant_stage = 0;
};

/// Aggregated decomposition for one request type.
struct TypeBreakdown {
  RequestTypeId type;
  std::string name;
  std::size_t requests = 0;
  stats::Summary total;
  stats::Summary ingress;
  stats::Summary execution;
  stats::Summary handoff;
  /// dominant-stage frequency by node index.
  std::unordered_map<std::size_t, std::size_t> dominant_counts;

  /// Fraction of mean end-to-end time spent in handoffs.
  [[nodiscard]] double handoff_share() const;
  /// Name of the most frequently dominant microservice.
  [[nodiscard]] std::string dominant_service(const app::Application& application) const;
};

/// Decompose one completed request; nullopt if it did not finish or its
/// span set is incomplete.
std::optional<RequestBreakdown> analyze_request(const trace::Tracer& tracer,
                                                const app::Application& application,
                                                RequestId id);

/// Aggregate breakdowns for every completed request, keyed by request type
/// (ordered by request-type id).
std::vector<TypeBreakdown> analyze_all(const trace::Tracer& tracer,
                                       const app::Application& application);

}  // namespace vmlp::exp
