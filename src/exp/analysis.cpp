#include "exp/analysis.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace vmlp::exp {

double TypeBreakdown::handoff_share() const {
  if (requests == 0 || total.mean() <= 0.0) return 0.0;
  return handoff.mean() / total.mean();
}

std::string TypeBreakdown::dominant_service(const app::Application& application) const {
  std::size_t best_node = 0;
  std::size_t best_count = 0;
  // Order-independent: selects max count, min node on ties — no float
  // accumulation, event scheduling, or export leaves this loop.
  for (const auto& [node, count] : dominant_counts) {
    if (count > best_count || (count == best_count && node < best_node)) {
      best_node = node;
      best_count = count;
    }
  }
  if (best_count == 0) return "-";
  const auto& rt = application.request(type);
  return application.service(rt.nodes()[best_node].service).name;
}

std::optional<RequestBreakdown> analyze_request(const trace::Tracer& tracer,
                                                const app::Application& application,
                                                RequestId id) {
  const trace::RequestRecord* rec = tracer.find_request(id);
  if (rec == nullptr || !rec->finished()) return std::nullopt;
  const auto& rt = application.request(rec->type);
  const auto spans = tracer.spans_of(id);
  if (spans.size() != rt.size()) return std::nullopt;

  // Map DAG node -> span. Our request types never invoke the same service
  // twice, so the service id identifies the node.
  std::vector<const trace::Span*> by_node(rt.size(), nullptr);
  for (const auto* s : spans) {
    for (std::size_t n = 0; n < rt.size(); ++n) {
      if (rt.nodes()[n].service == s->service && by_node[n] == nullptr) {
        by_node[n] = s;
        break;
      }
    }
  }
  for (const auto* s : by_node) {
    if (s == nullptr) return std::nullopt;
  }

  // Critical path: walk back from the last-finishing sink through the
  // latest-finishing parent of each stage.
  std::size_t cursor = 0;
  SimTime best_end = -1;
  for (std::size_t n = 0; n < rt.size(); ++n) {
    if (rt.dag().children(n).empty() && by_node[n]->end > best_end) {
      best_end = by_node[n]->end;
      cursor = n;
    }
  }

  RequestBreakdown out;
  out.id = id;
  out.type = rec->type;
  out.total = rec->latency();

  SimDuration longest_stage = -1;
  for (;;) {
    const trace::Span* span = by_node[cursor];
    out.execution += span->duration();
    if (span->duration() > longest_stage) {
      longest_stage = span->duration();
      out.dominant_stage = cursor;
    }
    const auto& parents = rt.dag().parents(cursor);
    if (parents.empty()) {
      out.ingress = span->start - rec->arrival;
      break;
    }
    std::size_t latest = parents.front();
    for (std::size_t p : parents) {
      if (by_node[p]->end > by_node[latest]->end) latest = p;
    }
    out.handoff += span->start - by_node[latest]->end;
    cursor = latest;
  }
  return out;
}

std::vector<TypeBreakdown> analyze_all(const trace::Tracer& tracer,
                                       const app::Application& application) {
  std::map<std::uint32_t, TypeBreakdown> by_type;
  for (const auto* rec : tracer.requests()) {
    const auto breakdown = analyze_request(tracer, application, rec->id);
    if (!breakdown.has_value()) continue;
    TypeBreakdown& agg = by_type[rec->type.value()];
    if (agg.requests == 0) {
      agg.type = rec->type;
      agg.name = application.request(rec->type).name();
    }
    ++agg.requests;
    agg.total.add(static_cast<double>(breakdown->total));
    agg.ingress.add(static_cast<double>(breakdown->ingress));
    agg.execution.add(static_cast<double>(breakdown->execution));
    agg.handoff.add(static_cast<double>(breakdown->handoff));
    ++agg.dominant_counts[breakdown->dominant_stage];
  }
  std::vector<TypeBreakdown> out;
  out.reserve(by_type.size());
  for (auto& [key, agg] : by_type) out.push_back(std::move(agg));
  return out;
}

}  // namespace vmlp::exp
