#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "exp/experiment.h"
#include "obs/export.h"
#include "sched/driver.h"
#include "stats/percentile.h"
#include "trace/critical_path.h"

namespace vmlp::exp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VMLP_CHECK_MSG(!header_.empty(), "table needs a header");
}

void Table::row(std::vector<std::string> cells) {
  VMLP_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_ms(double microseconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fms", precision, microseconds / 1000.0);
  return buf;
}

double normalize(double value, double baseline) {
  constexpr double kTiny = 1e-12;
  if (std::abs(baseline) < kTiny) return std::abs(value) < kTiny ? 1.0 : 999.0;
  return value / baseline;
}

std::string ascii_series(const std::vector<double>& values, std::size_t width) {
  if (values.empty() || width == 0) return "";
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const double maxv = *std::max_element(values.begin(), values.end());
  std::string out;
  const std::size_t n = std::min(width, values.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Downsample by averaging each bucket of the series.
    const std::size_t lo = i * values.size() / n;
    const std::size_t hi = std::max(lo + 1, (i + 1) * values.size() / n);
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += values[j];
    const double v = sum / static_cast<double>(hi - lo);
    const int level =
        maxv <= 0.0 ? 0 : static_cast<int>(std::lround(v / maxv * 8.0));
    out += kBlocks[std::clamp(level, 0, 8)];
  }
  return out;
}

void print_section(const std::string& title, std::ostream& out) {
  out << '\n' << "=== " << title << " ===\n";
}

std::vector<std::string> failure_table_header() {
  return {"crashes", "faults",    "timeouts",    "orphans",
          "retries", "abandoned", "goodput r/s", "orphan p99"};
}

std::vector<std::string> failure_cells(const sched::RunResult& r) {
  return {std::to_string(r.machine_crashes),
          std::to_string(r.container_faults),
          std::to_string(r.invocation_timeouts),
          std::to_string(r.orphaned_nodes),
          std::to_string(r.retries),
          std::to_string(r.abandoned_requests),
          fmt_double(r.goodput_rps, 1),
          fmt_ms(r.orphaned_p99_latency_us)};
}

namespace {

/// Spans of each traced request, grouped from the capture's flat span list
/// (insertion order preserved within a request — the extractor sorts as it
/// needs). Keyed by raw request id.
std::unordered_map<std::uint64_t, std::vector<const trace::Span*>> group_spans(
    const std::vector<trace::Span>& spans) {
  std::unordered_map<std::uint64_t, std::vector<const trace::Span*>> by_request;
  for (const trace::Span& s : spans) by_request[s.request.value()].push_back(&s);
  return by_request;
}

}  // namespace

std::vector<std::string> attribution_phase_columns() {
  // Literal Phase names in trace::Phase declaration order — see header.
  return {"network", "queue", "exec", "lost_exec", "backoff", "heal"};
}

void print_attribution_report(const ObsCapture& capture, std::ostream& out) {
  print_section("latency attribution (critical-path p99 blame)", out);
  if (!capture.enabled || capture.spans.empty() || capture.request_records.empty()) {
    out << "(no traced requests captured — run with trace_spans + attribution on)\n";
    return;
  }

  const auto by_request = group_spans(capture.spans);

  // Per-request-type accumulation: latency samples plus each completed
  // request's critical-path decomposition.
  struct Extracted {
    double latency = 0.0;
    std::size_t path_len = 0;
    std::array<SimDuration, trace::kPhaseCount> totals{};
  };
  struct TypeAgg {
    stats::SampleSet latencies;
    std::vector<Extracted> requests;
  };
  std::map<std::uint64_t, TypeAgg> by_type;  // ordered → stable row order

  for (const trace::RequestRecord& rec : capture.request_records) {
    if (!rec.finished()) continue;
    const auto it = by_request.find(rec.id.value());
    if (it == by_request.end()) continue;
    const auto path = trace::extract_critical_path(rec, it->second);
    if (path.steps.empty()) continue;
    TypeAgg& agg = by_type[rec.type.value()];
    Extracted ex;
    ex.latency = static_cast<double>(rec.latency());
    ex.path_len = path.steps.size();
    ex.totals = path.totals;
    agg.latencies.add(ex.latency);
    agg.requests.push_back(ex);
  }
  if (by_type.empty()) {
    out << "(no completed traced requests)\n";
    return;
  }

  const std::vector<std::string> phases = attribution_phase_columns();
  auto share_table_header = [&phases]() {
    std::vector<std::string> header = {"request type", "n", "path len"};
    for (const std::string& p : phases) header.push_back(p);
    return header;
  };

  // Mean phase shares over a subset of a type's requests (those with
  // latency >= floor), plus the subset's mean chain length and the phase
  // carrying the largest share ("blame").
  auto aggregate_rows = [&](std::ostream& os, double quantile) {
    Table table(share_table_header());
    for (const auto& [type, agg] : by_type) {
      const double floor = quantile > 0.0 ? agg.latencies.quantile(quantile) : 0.0;
      std::array<double, trace::kPhaseCount> share_sum{};
      double path_sum = 0.0;
      std::size_t n = 0;
      for (const Extracted& ex : agg.requests) {
        if (ex.latency < floor || ex.latency <= 0.0) continue;
        ++n;
        path_sum += static_cast<double>(ex.path_len);
        for (std::size_t p = 0; p < trace::kPhaseCount; ++p) {
          share_sum[p] += static_cast<double>(ex.totals[p]) / ex.latency;
        }
      }
      if (n == 0) continue;
      std::vector<std::string> cells = {"type" + std::to_string(type), std::to_string(n),
                                        fmt_double(path_sum / static_cast<double>(n), 1)};
      std::size_t blame = 0;
      for (std::size_t p = 0; p < trace::kPhaseCount; ++p) {
        if (share_sum[p] > share_sum[blame]) blame = p;
        cells.push_back(fmt_percent(share_sum[p] / static_cast<double>(n)));
      }
      cells[cells.size() - trace::kPhaseCount + blame] += " *";
      table.row(cells);
    }
    table.print(os);
    os << "(* = blame: the phase with the largest mean share of latency)\n";
  };

  out << "\nmean critical-path phase shares, all completed requests:\n";
  aggregate_rows(out, 0.0);
  out << "\np99 tail (requests with latency >= their type's p99):\n";
  aggregate_rows(out, 0.99);
}

void write_perfetto_trace(const ObsCapture& capture, std::ostream& out) {
  // Clock-domain separation: simulated-time lanes (spans, decisions) and the
  // host-time policy profile must never share a pid — Perfetto renders each
  // process on its own timeline, which is exactly the isolation the dual
  // domains need.
  constexpr std::uint64_t kSpansPid = 1;
  constexpr std::uint64_t kDecisionsPid = 2;
  constexpr std::uint64_t kHostPid = 3;
  constexpr std::uint64_t kCriticalPid = 4;

  obs::PerfettoWriter writer(out);
  if (capture.enabled) {
    // Blocking-chain spans across all traced requests: marked critical:true
    // in the execution lanes and re-emitted on the dedicated pid-4 lane.
    std::unordered_set<const trace::Span*> critical;
    if (!capture.request_records.empty() && !capture.spans.empty()) {
      const auto by_request = group_spans(capture.spans);
      for (const trace::RequestRecord& rec : capture.request_records) {
        if (!rec.finished()) continue;
        const auto it = by_request.find(rec.id.value());
        if (it == by_request.end()) continue;
        const auto path = trace::extract_critical_path(rec, it->second);
        for (const trace::CriticalStep& step : path.steps) critical.insert(step.span);
      }
    }

    writer.process_name(kSpansPid, "sim: microservice execution");
    for (const trace::Span& s : capture.spans) {
      obs::PerfettoWriter::Args args;
      args.emplace_back("request", std::to_string(s.request.value()));
      args.emplace_back("service", std::to_string(s.service.value()));
      if (s.node != trace::Span::kNoNode) args.emplace_back("node", std::to_string(s.node));
      if (critical.count(&s) != 0) args.emplace_back("critical", "true");
      writer.complete(kSpansPid, static_cast<std::uint64_t>(s.machine.value()) + 1, "exec",
                      "svc" + std::to_string(s.service.value()),
                      static_cast<double>(s.start), static_cast<double>(s.duration()), args);
    }
    if (!critical.empty()) {
      writer.process_name(kCriticalPid, "sim: critical path");
      for (const trace::Span& s : capture.spans) {
        if (critical.count(&s) == 0) continue;
        obs::PerfettoWriter::Args args;
        args.emplace_back("request", std::to_string(s.request.value()));
        args.emplace_back("critical", "true");
        writer.complete(kCriticalPid, static_cast<std::uint64_t>(s.machine.value()) + 1,
                        "critical", "svc" + std::to_string(s.service.value()),
                        static_cast<double>(s.start), static_cast<double>(s.duration()), args);
      }
    }
    obs::write_decision_events(writer, capture.decisions, kDecisionsPid);
    obs::write_policy_slices(writer, capture.policy_slices, kHostPid);
  }
  writer.finish();
}

void write_metrics_snapshot(const obs::Snapshot& snapshot, std::ostream& out) {
  obs::write_prometheus_text(snapshot, out);
}

}  // namespace vmlp::exp
