#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "exp/experiment.h"
#include "obs/export.h"
#include "sched/driver.h"

namespace vmlp::exp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VMLP_CHECK_MSG(!header_.empty(), "table needs a header");
}

void Table::row(std::vector<std::string> cells) {
  VMLP_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_ms(double microseconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fms", precision, microseconds / 1000.0);
  return buf;
}

double normalize(double value, double baseline) {
  constexpr double kTiny = 1e-12;
  if (std::abs(baseline) < kTiny) return std::abs(value) < kTiny ? 1.0 : 999.0;
  return value / baseline;
}

std::string ascii_series(const std::vector<double>& values, std::size_t width) {
  if (values.empty() || width == 0) return "";
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const double maxv = *std::max_element(values.begin(), values.end());
  std::string out;
  const std::size_t n = std::min(width, values.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Downsample by averaging each bucket of the series.
    const std::size_t lo = i * values.size() / n;
    const std::size_t hi = std::max(lo + 1, (i + 1) * values.size() / n);
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += values[j];
    const double v = sum / static_cast<double>(hi - lo);
    const int level =
        maxv <= 0.0 ? 0 : static_cast<int>(std::lround(v / maxv * 8.0));
    out += kBlocks[std::clamp(level, 0, 8)];
  }
  return out;
}

void print_section(const std::string& title, std::ostream& out) {
  out << '\n' << "=== " << title << " ===\n";
}

std::vector<std::string> failure_table_header() {
  return {"crashes", "faults",    "timeouts",    "orphans",
          "retries", "abandoned", "goodput r/s", "orphan p99"};
}

std::vector<std::string> failure_cells(const sched::RunResult& r) {
  return {std::to_string(r.machine_crashes),
          std::to_string(r.container_faults),
          std::to_string(r.invocation_timeouts),
          std::to_string(r.orphaned_nodes),
          std::to_string(r.retries),
          std::to_string(r.abandoned_requests),
          fmt_double(r.goodput_rps, 1),
          fmt_ms(r.orphaned_p99_latency_us)};
}

void write_perfetto_trace(const ObsCapture& capture, std::ostream& out) {
  // Clock-domain separation: simulated-time lanes (spans, decisions) and the
  // host-time policy profile must never share a pid — Perfetto renders each
  // process on its own timeline, which is exactly the isolation the dual
  // domains need.
  constexpr std::uint64_t kSpansPid = 1;
  constexpr std::uint64_t kDecisionsPid = 2;
  constexpr std::uint64_t kHostPid = 3;

  obs::PerfettoWriter writer(out);
  if (capture.enabled) {
    writer.process_name(kSpansPid, "sim: microservice execution");
    for (const trace::Span& s : capture.spans) {
      obs::PerfettoWriter::Args args;
      args.emplace_back("request", std::to_string(s.request.value()));
      args.emplace_back("service", std::to_string(s.service.value()));
      if (s.node != trace::Span::kNoNode) args.emplace_back("node", std::to_string(s.node));
      writer.complete(kSpansPid, static_cast<std::uint64_t>(s.machine.value()) + 1, "exec",
                      "svc" + std::to_string(s.service.value()),
                      static_cast<double>(s.start), static_cast<double>(s.duration()), args);
    }
    obs::write_decision_events(writer, capture.decisions, kDecisionsPid);
    obs::write_policy_slices(writer, capture.policy_slices, kHostPid);
  }
  writer.finish();
}

void write_metrics_snapshot(const obs::Snapshot& snapshot, std::ostream& out) {
  obs::write_prometheus_text(snapshot, out);
}

}  // namespace vmlp::exp
