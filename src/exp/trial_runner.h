// Parallel trial runner: shard repeated trials (seed replicas) of one
// experiment configuration across a ThreadPool.
//
// The paper's evaluation repeats every (scheme, pattern, stream) cell over
// multiple seeds; sweeps dominate evaluation cost, so trials are the unit of
// parallelism (the simulator itself stays single-threaded per run).
//
// Determinism contract — N-thread and 1-thread runs are byte-identical:
//  * Seed splitting: trial i draws its seed from the base seed via
//    Rng::fork(i) (SplitMix64 over seed + odd-constant * (i+1)), never from
//    shared RNG state, so streams are independent of execution order.
//  * Each trial is a pure function of its config (run_experiment owns its
//    whole world per run).
//  * Results land in a pre-sized vector by trial index, and every aggregate
//    is folded in index order after the pool joins — float accumulation
//    order is fixed regardless of completion order.
//
// Scaling architecture (DESIGN.md §12) — all of it invisible to the bytes:
//  * Shared TrialTemplate: the application suite + request mix are built
//    once and read-only shared by every trial instead of rebuilt per run.
//  * Per-lane ShardArena: each worker lane owns a cache-padded arena, bound
//    for the duration of a trial, so the trial's event pool, ledger
//    segments, DAG node state and registry arrays never touch the global
//    allocator; reset() between trials recycles the lane's memory.
//  * Dynamic assignment: lanes draw trial indices from a shared ticket
//    (ThreadPool::parallel_for_dynamic), so one long trial cannot serialize
//    the trials statically chunked behind it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace vmlp::exp {

/// Seed for trial `trial` derived from `base_seed` by stream splitting.
/// Distinct, order-independent, and decorrelated between adjacent trials.
std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial);

struct TrialSpec {
  ExperimentConfig base;       ///< per-trial config; `seed` is overridden
  std::size_t trials = 8;
  std::uint64_t base_seed = 1;
};

/// One trial's outcome, tagged with its index and derived seed.
struct TrialRow {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  sched::RunResult run;
  /// Per-trial metrics registry snapshot (empty unless the base config
  /// enables telemetry). Each trial owns its collector — shards never share
  /// registries — and the merge below folds them in trial-index order.
  obs::Snapshot obs;
};

/// Mean/min/max of one metric across trials (folded in trial-index order).
struct MetricSummary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Deterministic ordered merge of the per-trial results.
struct TrialSetResult {
  std::vector<TrialRow> trials;  ///< in trial-index order
  std::size_t total_arrived = 0;
  std::size_t total_completed = 0;
  std::size_t total_unfinished = 0;
  MetricSummary qos_violation_rate;
  MetricSummary mean_utilization;
  MetricSummary p50_latency_us;
  MetricSummary p90_latency_us;
  MetricSummary p99_latency_us;
  MetricSummary mean_latency_us;
  MetricSummary throughput_rps;
  /// Ordered merge of the per-trial registries (counters sum, gauges take the
  /// peak, histogram buckets add). Folded in trial-index order after the pool
  /// joins, so the merged snapshot is byte-stable across thread counts.
  obs::Snapshot obs;
  bool obs_enabled = false;
};

/// Run `spec.trials` independent trials on a `threads`-wide pool
/// (0 = hardware concurrency) and merge. The merged result is byte-stable
/// across thread counts; a throwing trial propagates its first exception.
TrialSetResult run_trials(const TrialSpec& spec, std::size_t threads = 1);

/// Canonical full-precision text form of a merged trial set — the byte
/// stream the determinism harness compares across thread counts.
std::string format_trial_set(const TrialSetResult& result);

}  // namespace vmlp::exp
