#include "exp/trial_runner.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/arena.h"
#include "common/cache_line.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "loadgen/patterns.h"

namespace vmlp::exp {

std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial) {
  return Rng(base_seed).fork(static_cast<std::uint64_t>(trial)).seed();
}

namespace {

/// Fold one metric across trials in index order (fixed accumulation order).
template <typename Getter>
MetricSummary summarize(const std::vector<TrialRow>& trials, Getter get) {
  MetricSummary s;
  if (trials.empty()) return s;
  double sum = 0.0;
  s.min = get(trials.front());
  s.max = s.min;
  for (const TrialRow& t : trials) {
    const double v = get(t);
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(trials.size());
  return s;
}

}  // namespace

TrialSetResult run_trials(const TrialSpec& spec, std::size_t threads) {
  VMLP_CHECK_MSG(spec.trials > 0, "trial set must contain at least one trial");

  // Seed-independent world, built once and shared read-only by every trial.
  const TrialTemplate tpl = build_trial_template(spec.base);

  TrialSetResult result;
  result.trials.resize(spec.trials);
  {
    ThreadPool pool(threads);
    // One arena per worker lane, each padded onto its own cache line so
    // adjacent lanes' bump pointers never false-share. A lane binds its
    // arena for exactly one trial at a time and reset() recycles the
    // chunks for the lane's next trial — steady state allocates nothing
    // from the global heap.
    const std::size_t lanes = std::min(spec.trials, pool.thread_count());
    std::vector<CachePadded<ShardArena>> arenas(lanes);
    pool.parallel_for_dynamic(0, spec.trials, [&](std::size_t lane, std::size_t i) {
      ShardArena& arena = arenas[lane].value;
      arena.reset();  // previous trial on this lane is fully destroyed
      ShardArena::Scope scope(arena);
      ExperimentConfig config = spec.base;
      config.seed = trial_seed(spec.base_seed, i);
      TrialRow row;
      row.index = i;
      row.seed = config.seed;
      ExperimentResult er = run_experiment(config, tpl);
      // Everything a trial publishes (RunResult, Snapshot) is plain heap
      // data, so moving it into the shared result outlives the arena.
      row.run = er.run;
      row.obs = std::move(er.obs.snapshot);
      result.trials[i] = std::move(row);
    });
  }

  for (const TrialRow& t : result.trials) {
    result.total_arrived += t.run.arrived;
    result.total_completed += t.run.completed;
    result.total_unfinished += t.run.unfinished;
  }
  result.qos_violation_rate =
      summarize(result.trials, [](const TrialRow& t) { return t.run.qos_violation_rate; });
  result.mean_utilization =
      summarize(result.trials, [](const TrialRow& t) { return t.run.mean_utilization; });
  result.p50_latency_us =
      summarize(result.trials, [](const TrialRow& t) { return t.run.p50_latency_us; });
  result.p90_latency_us =
      summarize(result.trials, [](const TrialRow& t) { return t.run.p90_latency_us; });
  result.p99_latency_us =
      summarize(result.trials, [](const TrialRow& t) { return t.run.p99_latency_us; });
  result.mean_latency_us =
      summarize(result.trials, [](const TrialRow& t) { return t.run.mean_latency_us; });
  result.throughput_rps =
      summarize(result.trials, [](const TrialRow& t) { return t.run.throughput_rps; });
  if (spec.base.driver.obs.enabled) {
    result.obs_enabled = true;
    result.obs = result.trials.front().obs;
    for (std::size_t i = 1; i < result.trials.size(); ++i) {
      result.obs.merge_from(result.trials[i].obs);
    }
  }
  return result;
}

std::string format_trial_set(const TrialSetResult& result) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const TrialRow& t : result.trials) {
    os << "trial " << t.index << " seed=" << t.seed << ": arrived=" << t.run.arrived
       << " completed=" << t.run.completed << " unfinished=" << t.run.unfinished
       << " qos=" << t.run.qos_violation_rate << " util=" << t.run.mean_utilization
       << " p50=" << t.run.p50_latency_us << " p90=" << t.run.p90_latency_us
       << " p99=" << t.run.p99_latency_us << " mean=" << t.run.mean_latency_us
       << " thr=" << t.run.throughput_rps << '\n';
  }
  const auto emit = [&os](const char* name, const MetricSummary& s) {
    os << "summary " << name << ": mean=" << s.mean << " min=" << s.min << " max=" << s.max
       << '\n';
  };
  os << "summary totals: arrived=" << result.total_arrived
     << " completed=" << result.total_completed << " unfinished=" << result.total_unfinished
     << '\n';
  emit("qos", result.qos_violation_rate);
  emit("util", result.mean_utilization);
  emit("p50", result.p50_latency_us);
  emit("p90", result.p90_latency_us);
  emit("p99", result.p99_latency_us);
  emit("mean_latency", result.mean_latency_us);
  emit("throughput", result.throughput_rps);
  return os.str();
}

}  // namespace vmlp::exp
