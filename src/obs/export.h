// Telemetry exporters: Prometheus text snapshots and a streaming Chrome
// trace-event JSON writer (the format ui.perfetto.dev loads directly).
//
// Both operate on obs-owned data only; composing them with the tracer's
// request spans (the simulated-time lanes) happens in exp/report so this
// module keeps its single dependency on common.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/collector.h"

namespace vmlp::obs {

/// Prometheus text exposition format: metric names get a `vmlp_` prefix with
/// dots mapped to underscores, each preceded by # HELP / # TYPE comments;
/// histograms expand to cumulative _bucket{le="..."} series plus _sum and
/// _count. Deterministic: derived purely from the (deterministic) snapshot.
void write_prometheus_text(const Snapshot& snap, std::ostream& out);
[[nodiscard]] std::string prometheus_text(const Snapshot& snap);

/// Streaming writer for the Chrome trace-event JSON array format.
///
/// The caller assigns pids/tids to model lanes; the writer never invents
/// structure. Timestamps are in trace microseconds (Chrome's unit); the two
/// clock domains — simulated time and host time — must be kept on different
/// pids by the caller (see exp::write_perfetto_trace).
class PerfettoWriter {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit PerfettoWriter(std::ostream& out);

  void process_name(std::uint64_t pid, const std::string& name);
  void thread_name(std::uint64_t pid, std::uint64_t tid, const std::string& name);
  /// "X" complete event: a slice [ts_us, ts_us + dur_us).
  void complete(std::uint64_t pid, std::uint64_t tid, const std::string& cat,
                const std::string& name, double ts_us, double dur_us, const Args& args = {});
  /// "i" thread-scoped instant event.
  void instant(std::uint64_t pid, std::uint64_t tid, const std::string& cat,
               const std::string& name, double ts_us, const Args& args = {});
  /// Close the traceEvents array and the enclosing object.
  void finish();

 private:
  void begin_event();
  void write_args(const Args& args);
  static void append_number(std::string& out, double v);

  std::ostream& out_;
  bool first_ = true;
  bool finished_ = false;
};

/// Decision-event instants (one tid per machine, lane 0 for machine-less
/// events) on `pid` — the simulated clock domain.
void write_decision_events(PerfettoWriter& writer, const std::vector<DecisionEvent>& events,
                           std::uint64_t pid);
/// Host-clock policy-callback slices on `pid`; timestamps are nanoseconds
/// since the run's policy epoch, emitted as trace microseconds.
void write_policy_slices(PerfettoWriter& writer, const std::vector<PolicySlice>& slices,
                         std::uint64_t pid);
/// Convenience wrapper: both of the above straight from a live collector.
void write_collector_events(PerfettoWriter& writer, const Collector& collector,
                            std::uint64_t decisions_pid, std::uint64_t host_pid);

}  // namespace vmlp::obs
