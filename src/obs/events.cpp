#include "obs/events.h"

namespace vmlp::obs {

const char* decision_kind_name(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kAdmitProbe:
      return "admit_probe";
    case DecisionKind::kAdmitPrune:
      return "admit_prune";
    case DecisionKind::kAdmitHintHit:
      return "admit_hint_hit";
    case DecisionKind::kCoalesce:
      return "coalesce";
    case DecisionKind::kAlign:
      return "align";
    case DecisionKind::kDelaySlotFill:
      return "delay_slot_fill";
    case DecisionKind::kStretch:
      return "stretch";
    case DecisionKind::kCrash:
      return "crash";
    case DecisionKind::kRecover:
      return "recover";
    case DecisionKind::kOrphan:
      return "orphan";
    case DecisionKind::kRetry:
      return "retry";
    case DecisionKind::kEngineReschedule:
      return "engine_reschedule";
    case DecisionKind::kKindCount:
      break;
  }
  return "unknown";
}

std::vector<DecisionEvent> EventRing::ordered() const {
  std::vector<DecisionEvent> out;
  out.reserve(size_);
  const std::size_t start = size_ < buf_.size() ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

}  // namespace vmlp::obs
