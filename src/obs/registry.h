// Metrics registry: counters, gauges and fixed-bucket histograms behind
// pre-registered integer handles.
//
// Design rules (the zero-perturbation contract, DESIGN.md §10):
//  * Registration is cold and happens once, in obs::Collector's constructor —
//    the single place metric names live (tools/vmlp_lint.py enforces the
//    naming style and name uniqueness statically; the registry re-checks at
//    runtime).
//  * The hot path is an indexed add into a plain array. No locks, no hashing,
//    no allocation: one registry belongs to exactly one single-threaded
//    simulation run (parallel trial shards each own a private registry and
//    merge snapshots in trial-index order afterwards).
//  * Only simulated-domain values may enter the registry. Host-clock
//    measurements (policy profiling) live in obs::Collector's slice buffer so
//    every Snapshot is deterministic and safe to byte-compare across thread
//    counts and runs (determinism_check claim 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"

namespace vmlp::obs {

struct CounterHandle {
  std::uint32_t idx = 0;
};
struct GaugeHandle {
  std::uint32_t idx = 0;
};
struct HistogramHandle {
  std::uint32_t idx = 0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Cumulative histogram state: `buckets[i]` counts observations
/// <= bounds[i]; the final implicit +Inf bucket is buckets[bounds.size()].
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One metric's frozen value, in registration order within a Snapshot.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;  ///< kCounter
  double gauge = 0.0;         ///< kGauge
  HistogramData hist;         ///< kHistogram
};

/// A frozen, deterministic copy of a registry — what experiment results carry
/// and what the Prometheus exporter renders.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  /// Fold another shard's snapshot into this one: counters and histogram
  /// buckets sum, gauges take the max (every registered gauge is a peak /
  /// high-water mark). Both snapshots must come from identically registered
  /// collectors; call in a fixed shard order so float sums stay byte-stable.
  void merge_from(const Snapshot& other);

  [[nodiscard]] const MetricSnapshot* find(const std::string& name) const;
  /// Metrics with at least one recorded value (tests' vacuity guard).
  [[nodiscard]] std::size_t nonzero_count() const;
};

class Registry {
 public:
  /// Registration (cold): names must be unique, lowercase, dot-separated
  /// `subsystem.noun_verb` style — see tools/vmlp_lint.py. Throws
  /// InvariantError on a duplicate or malformed name.
  CounterHandle add_counter(const std::string& name, const std::string& help);
  GaugeHandle add_gauge(const std::string& name, const std::string& help);
  HistogramHandle add_histogram(const std::string& name, const std::string& help,
                                std::vector<double> bounds);

  // ---- hot path: plain indexed array ops, no locks ----------------------
  void count(CounterHandle h, std::uint64_t n = 1) { counters_[h.idx] += n; }
  /// Counters synced from an authoritative external tally (engine/driver
  /// counters copied in at snapshot time instead of per-op increments).
  void set_counter(CounterHandle h, std::uint64_t v) { counters_[h.idx] = v; }
  void set_gauge(GaugeHandle h, double v) { gauges_[h.idx] = v; }
  /// Peak-tracking gauge update.
  void gauge_max(GaugeHandle h, double v) {
    if (v > gauges_[h.idx]) gauges_[h.idx] = v;
  }
  void observe(HistogramHandle h, double v);

  [[nodiscard]] std::uint64_t counter_value(CounterHandle h) const { return counters_[h.idx]; }
  [[nodiscard]] double gauge_value(GaugeHandle h) const { return gauges_[h.idx]; }
  [[nodiscard]] std::size_t metric_count() const { return meta_.size(); }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Meta {
    std::string name;
    std::string help;
    MetricKind kind;
    std::uint32_t idx;  ///< index into the kind-specific value array
  };

  void check_name(const std::string& name) const;

  std::vector<Meta> meta_;  ///< registration order (snapshot/export order)
  // Hot value arrays are arena-backed: each shard's registry is built and
  // torn down inside that shard's arena scope, so per-trial registries never
  // touch the global allocator. Snapshot() copies into plain heap vectors,
  // so snapshots safely outlive the arena. meta_ stays heap-allocated — its
  // strings are cold and registration happens once.
  ArenaVector<std::uint64_t> counters_;
  ArenaVector<double> gauges_;
  std::vector<HistogramData> hists_;
};

}  // namespace vmlp::obs
