#include "obs/registry.h"

#include <algorithm>

#include "common/error.h"

namespace vmlp::obs {

namespace {

bool is_style_component(const std::string& s, std::size_t begin, std::size_t end) {
  if (begin >= end) return false;
  if (s[begin] < 'a' || s[begin] > 'z') return false;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = s[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void Registry::check_name(const std::string& name) const {
  // subsystem.noun_verb: >= 2 dot-separated lowercase components.
  std::size_t components = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      VMLP_CHECK_MSG(is_style_component(name, begin, i),
                     "metric name '" << name << "' violates subsystem.noun_verb style");
      ++components;
      begin = i + 1;
    }
  }
  VMLP_CHECK_MSG(components >= 2,
                 "metric name '" << name << "' needs a subsystem prefix (subsystem.noun_verb)");
  for (const Meta& m : meta_) {
    VMLP_CHECK_MSG(m.name != name, "metric '" << name << "' registered twice");
  }
}

CounterHandle Registry::add_counter(const std::string& name, const std::string& help) {
  check_name(name);
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back(0);
  meta_.push_back({name, help, MetricKind::kCounter, idx});
  return CounterHandle{idx};
}

GaugeHandle Registry::add_gauge(const std::string& name, const std::string& help) {
  check_name(name);
  const auto idx = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back(0.0);
  meta_.push_back({name, help, MetricKind::kGauge, idx});
  return GaugeHandle{idx};
}

HistogramHandle Registry::add_histogram(const std::string& name, const std::string& help,
                                        std::vector<double> bounds) {
  check_name(name);
  VMLP_CHECK_MSG(!bounds.empty(), "histogram '" << name << "' needs at least one bucket bound");
  VMLP_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram '" << name << "' bounds must be ascending");
  const auto idx = static_cast<std::uint32_t>(hists_.size());
  HistogramData h;
  h.buckets.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  hists_.push_back(std::move(h));
  meta_.push_back({name, help, MetricKind::kHistogram, idx});
  return HistogramHandle{idx};
}

void Registry::observe(HistogramHandle h, double v) {
  HistogramData& hist = hists_[h.idx];
  std::size_t b = 0;
  while (b < hist.bounds.size() && v > hist.bounds[b]) ++b;
  ++hist.buckets[b];
  ++hist.count;
  hist.sum += v;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.metrics.reserve(meta_.size());
  for (const Meta& m : meta_) {
    MetricSnapshot out;
    out.name = m.name;
    out.help = m.help;
    out.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        out.counter = counters_[m.idx];
        break;
      case MetricKind::kGauge:
        out.gauge = gauges_[m.idx];
        break;
      case MetricKind::kHistogram:
        out.hist = hists_[m.idx];
        break;
    }
    snap.metrics.push_back(std::move(out));
  }
  return snap;
}

void Snapshot::merge_from(const Snapshot& other) {
  VMLP_CHECK_MSG(metrics.size() == other.metrics.size(),
                 "merging snapshots from differently registered collectors");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    MetricSnapshot& a = metrics[i];
    const MetricSnapshot& b = other.metrics[i];
    VMLP_CHECK_MSG(a.name == b.name && a.kind == b.kind,
                   "snapshot layout mismatch at '" << a.name << "' vs '" << b.name << "'");
    switch (a.kind) {
      case MetricKind::kCounter:
        a.counter += b.counter;
        break;
      case MetricKind::kGauge:
        a.gauge = std::max(a.gauge, b.gauge);
        break;
      case MetricKind::kHistogram: {
        VMLP_CHECK_MSG(a.hist.bounds == b.hist.bounds,
                       "histogram '" << a.name << "' bucket bounds differ across shards");
        for (std::size_t j = 0; j < a.hist.buckets.size(); ++j) {
          a.hist.buckets[j] += b.hist.buckets[j];
        }
        a.hist.count += b.hist.count;
        a.hist.sum += b.hist.sum;
        break;
      }
    }
  }
}

const MetricSnapshot* Snapshot::find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::size_t Snapshot::nonzero_count() const {
  std::size_t n = 0;
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        n += m.counter != 0 ? 1 : 0;
        break;
      case MetricKind::kGauge:
        n += m.gauge != 0.0 ? 1 : 0;
        break;
      case MetricKind::kHistogram:
        n += m.hist.count != 0 ? 1 : 0;
        break;
    }
  }
  return n;
}

}  // namespace vmlp::obs
