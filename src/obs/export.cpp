#include "obs/export.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/json.h"

namespace vmlp::obs {

namespace {

/// vmlp_ prefix + dots to underscores: "engine.events_executed" ->
/// "vmlp_engine_events_executed".
std::string prometheus_name(const std::string& name) {
  std::string out = "vmlp_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += c == '.' ? '_' : c;
  return out;
}

/// Shortest exact decimal for a double ("1000", "0.125"); deterministic.
/// Integral values print without an exponent (Prometheus `le` labels and
/// trace timestamps read as "10", not "1e+01").
std::string number_text(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

}  // namespace

void write_prometheus_text(const Snapshot& snap, std::ostream& out) {
  for (const MetricSnapshot& m : snap.metrics) {
    const std::string name = prometheus_name(m.name);
    out << "# HELP " << name << ' ' << m.help << '\n';
    switch (m.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << ' ' << m.counter << '\n';
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << ' ' << number_text(m.gauge) << '\n';
        break;
      case MetricKind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.hist.bounds.size(); ++b) {
          cumulative += m.hist.buckets[b];
          out << name << "_bucket{le=\"" << number_text(m.hist.bounds[b]) << "\"} "
              << cumulative << '\n';
        }
        cumulative += m.hist.buckets.back();
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        out << name << "_sum " << number_text(m.hist.sum) << '\n';
        out << name << "_count " << m.hist.count << '\n';
        break;
      }
    }
  }
}

std::string prometheus_text(const Snapshot& snap) {
  std::ostringstream os;
  write_prometheus_text(snap, os);
  return os.str();
}

PerfettoWriter::PerfettoWriter(std::ostream& out) : out_(out) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void PerfettoWriter::begin_event() {
  VMLP_CHECK_MSG(!finished_, "PerfettoWriter used after finish()");
  if (!first_) out_ << ',';
  first_ = false;
  out_ << "\n";
}

void PerfettoWriter::append_number(std::string& out, double v) { out += number_text(v); }

void PerfettoWriter::write_args(const Args& args) {
  out_ << ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << '"' << json_escape(args[i].first) << "\":\"" << json_escape(args[i].second) << '"';
  }
  out_ << '}';
}

void PerfettoWriter::process_name(std::uint64_t pid, const std::string& name) {
  begin_event();
  out_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"name\":\"process_name\"";
  write_args({{"name", name}});
  out_ << '}';
}

void PerfettoWriter::thread_name(std::uint64_t pid, std::uint64_t tid, const std::string& name) {
  begin_event();
  out_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\"";
  write_args({{"name", name}});
  out_ << '}';
}

void PerfettoWriter::complete(std::uint64_t pid, std::uint64_t tid, const std::string& cat,
                              const std::string& name, double ts_us, double dur_us,
                              const Args& args) {
  begin_event();
  out_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"cat\":\""
       << json_escape(cat) << "\",\"name\":\"" << json_escape(name)
       << "\",\"ts\":" << number_text(ts_us) << ",\"dur\":" << number_text(dur_us);
  if (!args.empty()) write_args(args);
  out_ << '}';
}

void PerfettoWriter::instant(std::uint64_t pid, std::uint64_t tid, const std::string& cat,
                             const std::string& name, double ts_us, const Args& args) {
  begin_event();
  out_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"cat\":\""
       << json_escape(cat) << "\",\"name\":\"" << json_escape(name)
       << "\",\"ts\":" << number_text(ts_us);
  if (!args.empty()) write_args(args);
  out_ << '}';
}

void PerfettoWriter::finish() {
  VMLP_CHECK_MSG(!finished_, "PerfettoWriter finished twice");
  finished_ = true;
  out_ << "\n]}\n";
}

void write_decision_events(PerfettoWriter& writer, const std::vector<DecisionEvent>& events,
                           std::uint64_t pid) {
  writer.process_name(pid, "sim: scheduler decisions");
  for (const DecisionEvent& e : events) {
    PerfettoWriter::Args args;
    if (e.request != DecisionEvent::kNoRequest) {
      args.emplace_back("request", std::to_string(e.request));
    }
    if (e.node != DecisionEvent::kNoIndex) args.emplace_back("node", std::to_string(e.node));
    args.emplace_back("detail", std::to_string(e.detail));
    // One lane per machine; machine-less decisions land on lane 0.
    const std::uint64_t tid =
        e.machine == DecisionEvent::kNoIndex ? 0 : static_cast<std::uint64_t>(e.machine) + 1;
    writer.instant(pid, tid, "decision", decision_kind_name(e.kind),
                   static_cast<double>(e.at), args);
  }
}

void write_policy_slices(PerfettoWriter& writer, const std::vector<PolicySlice>& slices,
                         std::uint64_t pid) {
  writer.process_name(pid, "host: policy callbacks");
  for (const PolicySlice& s : slices) {
    writer.complete(pid, 1, "policy", policy_callback_name(s.kind),
                    static_cast<double>(s.start_ns) / 1000.0,
                    static_cast<double>(s.dur_ns) / 1000.0);
  }
}

void write_collector_events(PerfettoWriter& writer, const Collector& collector,
                            std::uint64_t decisions_pid, std::uint64_t host_pid) {
  write_decision_events(writer, collector.events().ordered(), decisions_pid);
  write_policy_slices(writer, collector.policy_slices(), host_pid);
}

}  // namespace vmlp::obs
