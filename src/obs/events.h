// Structured decision-event ring buffer.
//
// Every scheduler decision worth explaining — admission probes, prunes,
// plan coalesces, stage alignments, delay-slot fills, stretches, failures,
// engine reschedules — is recorded as one fixed-size typed record stamped
// with simulated time. The ring overwrites its oldest record when full and
// counts the overwritten tail, so recording cost is flat and a run can never
// grow telemetry without bound. Purely an output channel: nothing in the
// simulator reads it back, which is what keeps collection zero-perturbation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace vmlp::obs {

enum class DecisionKind : std::uint8_t {
  kAdmitProbe = 0,    ///< one admission stage: detail = (machine,start) probes spent
  kAdmitPrune,        ///< stage used the fast path: detail = probes pruned
  kAdmitHintHit,      ///< stage's ledger queries resolved via cover hints: detail = hits
  kCoalesce,          ///< a request's chain plan committed: detail = plan stage count
  kAlign,             ///< one stage aligned to its predecessor: detail = slack (us)
  kDelaySlotFill,     ///< healer moved a candidate into a late node's vacancy
  kStretch,           ///< healer granted extra resources to a running node
  kCrash,             ///< machine outage window entered
  kRecover,           ///< machine outage window exited
  kOrphan,            ///< a running/pending execution lost to a failure
  kRetry,             ///< bounded-retry re-placement armed: detail = attempt #
  kEngineReschedule,  ///< decrease-key move of a pending event: detail = delta (us)
  kKindCount,
};

[[nodiscard]] const char* decision_kind_name(DecisionKind kind);

struct DecisionEvent {
  static constexpr std::uint64_t kNoRequest = ~0ULL;
  static constexpr std::uint32_t kNoIndex = ~0U;

  DecisionKind kind = DecisionKind::kAdmitProbe;
  SimTime at = 0;                       ///< simulated time of the decision
  std::uint64_t request = kNoRequest;   ///< RequestId::value() when applicable
  std::uint32_t node = kNoIndex;        ///< DAG node index when applicable
  std::uint32_t machine = kNoIndex;     ///< MachineId::value() when applicable
  std::int64_t detail = 0;              ///< kind-specific payload (see enum docs)
};

class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : buf_(capacity) {}

  void push(const DecisionEvent& e) {
    ++total_;
    if (buf_.empty()) return;
    buf_[head_] = e;
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    if (size_ < buf_.size()) ++size_;
  }

  /// Records oldest -> newest (at most capacity of the most recent pushes).
  [[nodiscard]] std::vector<DecisionEvent> ordered() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const { return total_ - size_; }

 private:
  std::vector<DecisionEvent> buf_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace vmlp::obs
