// obs::Collector — one run's telemetry: a metrics registry, a decision-event
// ring, and a host-time policy-profiling slice buffer.
//
// The collector is the single registration site for every metric name in the
// simulator (grouped into per-subsystem handle structs below), which makes
// "register once per name" checkable both at runtime (Registry) and
// statically (tools/vmlp_lint.py).
//
// Zero-perturbation contract:
//  * Subsystems hold a `Collector*` that is null when telemetry is off; every
//    instrumentation site is `if (obs_) obs_->...`. Recording never reads
//    back into any decision, RNG draw, or simulated state, so RunResult and
//    every exported figure table are byte-identical with collection on or
//    off (determinism_check claim 6).
//  * Clock domains never mix: the registry and the event ring carry only
//    simulated-time values and are themselves deterministic; host-clock
//    policy slices live in a separate buffer that only the Perfetto exporter
//    reads and no byte-compared output ever includes.
//  * Compiling with -DVMLP_NO_OBS turns every recording method into an empty
//    inline body, so the `if (obs_)` sites fold away entirely — the 0%-cost
//    build gated by the obs_overhead bench family.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/events.h"
#include "obs/registry.h"

namespace vmlp::obs {

struct Params {
  bool enabled = false;
  /// Decision-event ring capacity (records kept; older ones are counted and
  /// overwritten). 0 keeps counters/histograms but records no events.
  std::size_t ring_capacity = 1 << 16;
  /// Also record a ring event per engine reschedule — the hottest site in
  /// the simulator (~1 per executed event), so it is opt-in on top of
  /// `enabled`. Counters still track reschedules either way.
  bool ring_engine_events = false;
  /// Host-time policy profiling slices kept for Perfetto export (further
  /// slices are counted as dropped).
  std::size_t max_policy_slices = 1 << 16;
  /// Cell count of the run's cluster topology: sizes the bounded per-cell
  /// gauge family (clamped to kMaxCellGauges — per-cell labels, never
  /// per-machine cardinality). The driver fills this in from its cluster
  /// before constructing the collector.
  std::size_t topology_cells = 1;
};

/// Which scheduler policy callback a host-time profiling slice covers.
enum class PolicyCallback : std::uint8_t {
  kArrival = 0,
  kTick,
  kNodeStarted,
  kNodeFinished,
  kRequestFinished,
  kNodeUnblocked,
  kLateInvocation,
  kNodeOrphaned,
  kCallbackCount,
};

[[nodiscard]] const char* policy_callback_name(PolicyCallback cb);

/// One host-clock interval spent inside a scheduler policy callback,
/// relative to the run's start. Nondeterministic by nature — exported to the
/// Perfetto host lane only, never byte-compared.
struct PolicySlice {
  PolicyCallback kind = PolicyCallback::kArrival;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

class Collector {
 public:
  explicit Collector(const Params& params);

  // ---- pre-registered handle families (all names live in collector.cpp) --
  struct EngineMetrics {
    CounterHandle events_scheduled, events_executed, events_cancelled, events_rescheduled;
    GaugeHandle pending_peak;
  };
  struct DriverMetrics {
    CounterHandle requests_arrived, requests_completed, requests_unfinished,
        placements_committed, starts_early, starts_ontime, starts_denied, lates_fired,
        limits_adjusted, bursts_injected;
    HistogramHandle latency_us;
  };
  struct FailureMetrics {
    CounterHandle machines_crashed, machines_recovered, containers_faulted,
        invocations_timedout, nodes_orphaned, retries_scheduled, retries_dropped;
    GaugeHandle windows_planned;
  };
  struct LedgerMetrics {
    CounterHandle windows_reserved, windows_released, fits_queried, spans_tested,
        probes_walked, hints_hit, hints_missed;
    GaugeHandle segments_peak;
  };
  struct MlpMetrics {
    CounterHandle organize_calls, plans_committed, plans_deferred, stages_coalesced,
        stages_aligned, probes_spent, probes_pruned, slots_filled, requests_filled,
        resources_stretched, orphans_relocated;
  };
  struct TopologyMetrics {
    CounterHandle stages_routed, cells_shed, index_jumps;
    GaugeHandle cells_configured, cell_live_peak;
    /// Per-cell live-placement peaks, one gauge per cell up to kMaxCellGauges
    /// (names topology.cellN.live_peak) — the per-cell label family.
    std::vector<GaugeHandle> cell_live;
  };
  /// Per-request latency attribution (DriverParams::attribution): one family
  /// per volatility band (attribution.low.*, attribution.mid.*,
  /// attribution.high.*), each with a share-of-latency histogram per
  /// trace::Phase plus critical-path length and off-path slack. Fed at
  /// request completion by the driver's critical-path pass.
  struct AttributionMetrics {
    /// Mirrors trace::kPhaseCount in trace::Phase declaration order —
    /// static_assert'd at the single recording site (sched/driver.cpp).
    static constexpr std::size_t kPhases = 6;
    static constexpr std::size_t kBands = 3;  ///< app::VolatilityBand order
    struct BandMetrics {
      std::array<HistogramHandle, kPhases> phase_share;  ///< fraction of latency
      HistogramHandle path_len;                          ///< blocking-chain node count
      HistogramHandle off_path_slack_us;                 ///< slack of non-critical stages
    };
    std::array<BandMetrics, kBands> band;
  };

  /// Per-cell gauge cardinality bound: 10k machines at the auto cell target
  /// is 40 cells; anything past this exports as the aggregate peak only.
  static constexpr std::size_t kMaxCellGauges = 64;

  [[nodiscard]] const EngineMetrics& engine() const { return engine_; }
  [[nodiscard]] const DriverMetrics& driver() const { return driver_; }
  [[nodiscard]] const FailureMetrics& failure() const { return failure_; }
  [[nodiscard]] const LedgerMetrics& ledger() const { return ledger_; }
  [[nodiscard]] const MlpMetrics& mlp() const { return mlp_; }
  [[nodiscard]] const TopologyMetrics& topology() const { return topology_; }
  [[nodiscard]] const AttributionMetrics& attribution() const { return attribution_; }

  // ---- hot recording path (inline; compiled out under VMLP_NO_OBS) -------
#ifndef VMLP_NO_OBS
  void count(CounterHandle h, std::uint64_t n = 1) { registry_.count(h, n); }
  void set_counter(CounterHandle h, std::uint64_t v) { registry_.set_counter(h, v); }
  void set_gauge(GaugeHandle h, double v) { registry_.set_gauge(h, v); }
  void gauge_max(GaugeHandle h, double v) { registry_.gauge_max(h, v); }
  void observe(HistogramHandle h, double v) { registry_.observe(h, v); }
  void event(DecisionKind kind, SimTime at, std::uint64_t request = DecisionEvent::kNoRequest,
             std::uint32_t node = DecisionEvent::kNoIndex,
             std::uint32_t machine = DecisionEvent::kNoIndex, std::int64_t detail = 0) {
    ring_.push(DecisionEvent{kind, at, request, node, machine, detail});
  }
  void policy_slice(PolicyCallback kind, std::int64_t start_ns, std::int64_t dur_ns) {
    if (slices_.size() < params_.max_policy_slices) {
      slices_.push_back(PolicySlice{kind, start_ns, dur_ns});
    } else {
      ++slices_dropped_;
    }
  }
#else
  void count(CounterHandle, std::uint64_t = 1) {}
  void set_counter(CounterHandle, std::uint64_t) {}
  void set_gauge(GaugeHandle, double) {}
  void gauge_max(GaugeHandle, double) {}
  void observe(HistogramHandle, double) {}
  void event(DecisionKind, SimTime, std::uint64_t = DecisionEvent::kNoRequest,
             std::uint32_t = DecisionEvent::kNoIndex, std::uint32_t = DecisionEvent::kNoIndex,
             std::int64_t = 0) {}
  void policy_slice(PolicyCallback, std::int64_t, std::int64_t) {}
#endif

  [[nodiscard]] bool ring_engine_events() const { return params_.ring_engine_events; }
  [[nodiscard]] std::uint64_t counter_value(CounterHandle h) const {
    return registry_.counter_value(h);
  }

  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] const EventRing& events() const { return ring_; }
  [[nodiscard]] const std::vector<PolicySlice>& policy_slices() const { return slices_; }
  [[nodiscard]] std::uint64_t policy_slices_dropped() const { return slices_dropped_; }
  [[nodiscard]] Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  Params params_;
  Registry registry_;
  EventRing ring_;
  std::vector<PolicySlice> slices_;
  std::uint64_t slices_dropped_ = 0;

  EngineMetrics engine_;
  DriverMetrics driver_;
  FailureMetrics failure_;
  LedgerMetrics ledger_;
  MlpMetrics mlp_;
  TopologyMetrics topology_;
  AttributionMetrics attribution_;
};

}  // namespace vmlp::obs
